"""FleetHandle contract tests: journaling, replay identity, rejections.

The handle is the determinism boundary of the service: every mutation
that reaches the fleet is journaled, commands that cannot mutate are
not, and replaying the journal against a freshly built fleet must
reproduce the live snapshot byte-for-byte.  These tests pin that
contract without any HTTP in the way.
"""

import json

import pytest

from repro.cloud.admission import (
    RejectReason,
    classify_rejection,
    machine_reject_reason,
)
from repro.cloud.handle import FleetHandle, replay_journal
from repro.errors import UnknownTenantError
from repro.service.config import load_service_config

CONFIG = {
    "fleet": {"machines": 2, "socket": "xeon_d", "seed": 7, "interval_s": 1.0},
    "manager": {"type": "dcat"},
    "placement": "least_loaded",
    "service": {"tick_interval_s": 0.05},
}

ONE_MACHINE = dict(CONFIG, fleet={"machines": 1, "socket": "xeon_d", "seed": 7})

MLR = {"type": "mlr", "wss_mb": 8}


def make_handle(config=CONFIG):
    return FleetHandle(load_service_config(config).build().fleet)


class TestAdmit:
    def test_admit_places_and_journals(self):
        handle = make_handle()
        outcome = handle.admit("t0", 3, MLR)
        assert outcome.admitted is True
        assert outcome.machine in ("m0", "m1")
        assert outcome.reason == "placed"
        assert outcome.cos_id is not None
        assert [r.op for r in handle.journal] == ["admit"]
        assert handle.journal[0].args["name"] == "t0"

    def test_duplicate_admit_rejected_without_journaling(self):
        handle = make_handle()
        handle.admit("t0", 3, MLR)
        before = len(handle.journal)
        outcome = handle.admit("t0", 3, MLR)
        assert outcome.admitted is False
        assert outcome.reason == RejectReason.DUPLICATE_TENANT.value
        assert len(handle.journal) == before, "no-op commands must not journal"

    def test_duplicate_spans_departure(self):
        # The SLO ledger is forever, so a detached tenant's id stays taken.
        handle = make_handle()
        handle.admit("t0", 3, MLR)
        handle.detach("t0")
        outcome = handle.admit("t0", 3, MLR)
        assert outcome.reason == RejectReason.DUPLICATE_TENANT.value

    def test_invalid_spec_raises_before_journaling(self):
        handle = make_handle()
        with pytest.raises(ValueError):
            handle.admit("bad", 3, {"type": "no-such-workload"})
        assert handle.journal == []

    def test_ways_exhaustion_reports_no_ways(self):
        handle = make_handle(ONE_MACHINE)
        assert handle.admit("a", 10, {"type": "lookbusy"}).admitted
        outcome = handle.admit("b", 10, {"type": "lookbusy"})
        assert outcome.admitted is False
        assert outcome.reason == RejectReason.NO_WAYS.value
        # Policy rejections mutate the placement log, so they journal.
        assert [r.op for r in handle.journal] == ["admit", "admit"]


class TestDetach:
    def test_unknown_tenant_raises_without_journaling(self):
        handle = make_handle()
        with pytest.raises(UnknownTenantError):
            handle.detach("ghost")
        assert handle.journal == []

    def test_detach_returns_machine_and_reason(self):
        handle = make_handle()
        machine = handle.admit("t0", 3, MLR).machine
        result = handle.detach("t0")
        assert result == {"tenant_id": "t0", "machine": machine,
                          "reason": "detached"}

    def test_stats_survive_detach(self):
        handle = make_handle()
        handle.admit("t0", 3, MLR)
        handle.tick()
        handle.detach("t0")
        stats = handle.tenant_stats("t0")
        assert stats["resident"] is False
        assert stats["departed_s"] is not None

    def test_stats_unknown_tenant_raises(self):
        handle = make_handle()
        with pytest.raises(UnknownTenantError):
            handle.tenant_stats("ghost")


class TestReplay:
    def run_mixed_sequence(self, handle):
        handle.admit("t0", 3, MLR)
        handle.tick()
        handle.admit("t1", 2, {"type": "mload", "wss_mb": 60})
        handle.tick()
        handle.tick()
        handle.detach("t0")
        handle.admit("t2", 3, MLR)
        handle.tick()

    def test_replay_is_byte_identical(self):
        config = load_service_config(CONFIG)
        live = FleetHandle(config.build().fleet)
        self.run_mixed_sequence(live)
        replayed = replay_journal(
            lambda: config.build().fleet, live.journal_payload()
        )
        assert replayed.snapshot_json() == live.snapshot_json()
        assert replayed.snapshot_digest() == live.snapshot_digest()
        # Replay re-journals through the same paths: journals match too.
        assert replayed.journal_payload() == live.journal_payload()

    def test_replay_accepts_plain_dicts(self):
        # The journal round-trips through JSON (GET /v1/trace).
        config = load_service_config(CONFIG)
        live = FleetHandle(config.build().fleet)
        self.run_mixed_sequence(live)
        wire = json.loads(json.dumps(live.journal_payload()))
        replayed = replay_journal(lambda: config.build().fleet, wire)
        assert replayed.snapshot_json() == live.snapshot_json()

    def test_unknown_op_rejected(self):
        handle = make_handle()
        with pytest.raises(ValueError, match="unknown journal op"):
            handle.apply({"op": "teleport", "args": {}})

    def test_snapshot_digest_is_sha256_hex(self):
        handle = make_handle()
        digest = handle.snapshot_digest()
        assert len(digest) == 64
        int(digest, 16)

    def test_snapshot_excludes_wall_clock(self):
        # Only sim state: two identically seeded fleets that saw the same
        # commands hash identically no matter how long the walls took.
        config = load_service_config(CONFIG)
        a, b = FleetHandle(config.build().fleet), FleetHandle(config.build().fleet)
        for handle in (a, b):
            handle.admit("t0", 3, MLR)
            handle.tick()
        assert a.snapshot_digest() == b.snapshot_digest()


class TestFleetState:
    def test_fleet_state_shape(self):
        handle = make_handle()
        handle.admit("t0", 3, MLR)
        handle.tick()
        state = handle.fleet_state()
        assert state["policy"] == "least_loaded"
        assert state["ticks"] == 1
        names = [m["name"] for m in state["machines"]]
        assert names == ["m0", "m1"]
        host = next(m for m in state["machines"] if "t0" in m["residents"])
        assert host["reserved_ways"] >= 3
        assert sum(host["states"].values()) == 1


class TestRejectReasons:
    def test_machine_reject_reason_orders_budgets(self):
        config = load_service_config(ONE_MACHINE)
        machine = config.build().fleet.machines[0]
        assert machine_reject_reason(machine, 3) is None
        assert machine_reject_reason(machine, 99) == RejectReason.NO_WAYS

    def test_classify_unanimous_reason_is_specific(self):
        fleet = load_service_config(CONFIG).build().fleet
        assert classify_rejection(fleet.machines, 99) == RejectReason.NO_WAYS

    def test_classify_any_fit_collapses_to_no_capacity(self):
        # Some machine fits but the policy still declined: the budget
        # reasons disagree (None among them), so the verdict is generic.
        fleet = load_service_config(CONFIG).build().fleet
        handle = FleetHandle(fleet)
        handle.admit("a", 10, {"type": "lookbusy"})
        reasons = {machine_reject_reason(m, 10) for m in fleet.machines}
        assert None in reasons and len(reasons) > 1
        assert classify_rejection(fleet.machines, 10) == RejectReason.NO_CAPACITY
