"""Tests for repro.engine.runner: deterministic parallel experiment runs."""

import json

import pytest

from repro.engine.runner import derive_seed, run_experiments

FAST_IDS = ["fig3", "tab1"]


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(1234, "fig3") == derive_seed(1234, "fig3")
        assert derive_seed(1234, "fig3") != derive_seed(1234, "fig5")
        assert derive_seed(1234, "fig3") != derive_seed(4321, "fig3")

    def test_range(self):
        for eid in ("fig1", "tab6", "ablation_policy"):
            assert 0 <= derive_seed(1234, eid) < 2**31


class TestRunExperiments:
    def test_unknown_id_rejected_upfront(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiments(["fig3", "fig99"], jobs=1)

    def test_trace_requires_serial(self, tmp_path):
        with pytest.raises(ValueError, match="serial"):
            run_experiments(FAST_IDS, jobs=2, trace_path=str(tmp_path / "t.jsonl"))

    def test_serial_results_in_request_order(self):
        results = run_experiments(FAST_IDS, jobs=1, seed=42)
        assert [r.experiment_id for r in results] == FAST_IDS

    def test_parallel_identical_to_serial(self):
        """The acceptance bar: --jobs N must not change a single byte."""
        serial = run_experiments(FAST_IDS, jobs=1, seed=1234)
        parallel = run_experiments(FAST_IDS, jobs=2, seed=1234)
        assert [repr(r) for r in parallel] == [repr(r) for r in serial]

    def test_traced_run_writes_jsonl_and_metrics_notes(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        # fig10 would be slow; tab1 runs the dCat controller so the trace
        # carries controller events too.
        results = run_experiments(["tab1"], jobs=1, seed=7, trace_path=str(trace))
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines[0]["event"] == "Marker"
        assert lines[0]["experiment_id"] == "tab1"
        kinds = {line["event"] for line in lines}
        assert "IntervalStarted" in kinds
        assert "MasksProgrammed" in kinds
        assert any("event counts:" in note for note in results[0].notes)

    def test_traced_run_same_artifacts_as_untraced(self, tmp_path):
        traced = run_experiments(
            ["tab1"], jobs=1, seed=7, trace_path=str(tmp_path / "t.jsonl")
        )
        plain = run_experiments(["tab1"], jobs=1, seed=7)
        assert repr(traced[0].artifacts) == repr(plain[0].artifacts)
