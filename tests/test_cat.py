"""Tests for repro.cat: COS/CBM rules, the CAT device, pqos, and layout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.cos import (
    MAX_COS,
    ClassOfService,
    contiguous_mask,
    is_contiguous,
    mask_way_count,
    mask_ways,
    validate_cbm,
)
from repro.cat.layout import pack_contiguous
from repro.cat.pqos import PqosL3Ca, PqosLibrary


class TestCbmHelpers:
    def test_mask_way_count(self):
        assert mask_way_count(0b1011) == 3
        assert mask_way_count(0) == 0

    def test_mask_ways(self):
        assert mask_ways(0b1010) == [1, 3]

    def test_contiguous_mask(self):
        assert contiguous_mask(2, 3) == 0b11100

    def test_contiguous_mask_validation(self):
        with pytest.raises(ValueError):
            contiguous_mask(0, 0)
        with pytest.raises(ValueError):
            contiguous_mask(-1, 2)

    def test_is_contiguous(self):
        assert is_contiguous(0b1)
        assert is_contiguous(0b11100)
        assert not is_contiguous(0b101)
        assert not is_contiguous(0)


class TestValidateCbm:
    def test_accepts_valid(self):
        assert validate_cbm(0b0110, num_ways=4) == 0b0110

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one way"):
            validate_cbm(0, num_ways=4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="beyond"):
            validate_cbm(0b10000, num_ways=4)

    def test_rejects_non_contiguous(self):
        with pytest.raises(ValueError, match="contiguous"):
            validate_cbm(0b1010, num_ways=4)

    def test_min_cbm_bits(self):
        with pytest.raises(ValueError, match="min_cbm_bits"):
            validate_cbm(0b1, num_ways=4, min_cbm_bits=2)

    def test_cos_id_bounds(self):
        with pytest.raises(ValueError):
            ClassOfService(cos_id=MAX_COS, mask=1)


class TestCatDevice:
    def make(self):
        return CacheAllocationTechnology(num_ways=8, num_cores=4)

    def test_power_on_state(self):
        cat = self.make()
        assert cat.cos_mask(0) == 0xFF
        assert cat.core_cos(3) == 0
        assert cat.effective_mask(2) == 0xFF

    def test_programming_and_association(self):
        cat = self.make()
        cat.set_cos_mask(1, 0b0011)
        cat.associate_core(2, 1)
        assert cat.effective_mask(2) == 0b0011
        assert cat.effective_mask(0) == 0xFF  # others unaffected

    def test_invalid_mask_rejected(self):
        with pytest.raises(ValueError):
            self.make().set_cos_mask(1, 0b101)

    def test_bounds_checked(self):
        cat = self.make()
        with pytest.raises(ValueError):
            cat.set_cos_mask(16, 1)
        with pytest.raises(ValueError):
            cat.associate_core(9, 0)

    def test_listeners_fire_on_change_only(self):
        cat = self.make()
        events = []
        cat.on_mask_change(lambda cos, mask: events.append((cos, mask)))
        cat.set_cos_mask(1, 0b1)
        cat.set_cos_mask(1, 0b1)  # no-op
        assert events == [(1, 0b1)]

    def test_reset_restores_power_on(self):
        cat = self.make()
        cat.set_cos_mask(1, 0b1)
        cat.associate_core(0, 1)
        cat.reset()
        assert cat.cos_mask(1) == 0xFF
        assert cat.core_cos(0) == 0

    def test_overlap_detection(self):
        cat = self.make()
        cat.set_cos_mask(1, 0b0011)
        cat.set_cos_mask(2, 0b1100)
        assert not cat.masks_overlap(1, 2)
        cat.set_cos_mask(2, 0b0110)
        assert cat.masks_overlap(1, 2)


class TestPqos:
    def make(self):
        cat = CacheAllocationTechnology(num_ways=20, num_cores=8)
        return PqosLibrary(cat, way_size_bytes=2359296), cat

    def test_capability(self):
        pqos, _ = self.make()
        cap = pqos.cap_get()
        assert cap.num_cos == 16
        assert cap.num_ways == 20
        assert cap.way_size_bytes == 2359296

    def test_l3ca_set_get(self):
        pqos, cat = self.make()
        pqos.l3ca_set([PqosL3Ca(cos_id=2, ways_mask=0b111)])
        assert cat.cos_mask(2) == 0b111
        assert pqos.l3ca_get()[2].ways_mask == 0b111
        assert pqos.l3ca_get()[2].num_ways == 3

    def test_assoc(self):
        pqos, _ = self.make()
        pqos.alloc_assoc_set(3, 5)
        assert pqos.alloc_assoc_get(3) == 5
        assert pqos.assoc_map()[3] == 5


class TestLayoutPacking:
    def test_simple_pack(self):
        result = pack_contiguous({"a": 3, "b": 2}, num_ways=8)
        assert mask_way_count(result.masks["a"]) == 3
        assert mask_way_count(result.masks["b"]) == 2
        assert result.masks["a"] & result.masks["b"] == 0
        assert mask_way_count(result.free_mask) == 3

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            pack_contiguous({"a": 5, "b": 5}, num_ways=8)

    def test_zero_ways_rejected(self):
        with pytest.raises(ValueError, match="minimum"):
            pack_contiguous({"a": 0}, num_ways=8)

    def test_steady_state_does_not_move(self):
        first = pack_contiguous({"a": 3, "b": 2}, 8)
        second = pack_contiguous({"a": 3, "b": 2}, 8, previous=first.masks)
        assert second.masks == first.masks
        assert second.moved == []

    def test_growth_reports_moves(self):
        first = pack_contiguous({"a": 3, "b": 2}, 8)
        second = pack_contiguous({"a": 4, "b": 2}, 8, previous=first.masks)
        assert mask_way_count(second.masks["a"]) == 4
        assert "b" in second.moved or second.masks["b"] == first.masks["b"]

    def test_new_workloads_pack_after_existing(self):
        first = pack_contiguous({"a": 3}, 8)
        second = pack_contiguous({"a": 3, "b": 2}, 8, previous=first.masks)
        assert second.masks["a"] == first.masks["a"]
        assert "a" not in second.moved

    @settings(max_examples=60, deadline=None)
    @given(
        counts=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5),
        num_ways=st.integers(min_value=8, max_value=20),
    )
    def test_masks_always_disjoint_contiguous_and_sized(self, counts, num_ways):
        demand = {f"w{i}": c for i, c in enumerate(counts)}
        if sum(counts) > num_ways:
            with pytest.raises(ValueError):
                pack_contiguous(demand, num_ways)
            return
        result = pack_contiguous(demand, num_ways)
        union = 0
        for wid, mask in result.masks.items():
            assert is_contiguous(mask)
            assert mask_way_count(mask) == demand[wid]
            assert union & mask == 0
            union |= mask
        assert union | result.free_mask == (1 << num_ways) - 1
