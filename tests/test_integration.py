"""End-to-end integration tests: the paper's claims on the full stack.

Each test runs the real pipeline (machine + VMs + manager + controller) and
asserts the *shape* the paper reports — who wins, in which direction, and
the qualitative dynamics — rather than absolute numbers.
"""

import pytest

from repro.core.config import AllocationPolicy, DCatConfig
from repro.core.states import WorkloadState
from repro.harness.scenarios import build_stage, run_scenario
from repro.mem.address import MB
from repro.platform.managers import DCatManager, SharedCacheManager, StaticCatManager
from repro.workloads.base import PhasedWorkload, idle_phase
from repro.workloads.mload import MloadWorkload
from repro.workloads.mlr import MlrWorkload, mlr_phase

SEED = 1234


def mlr_stage(wss_mb, n_lookbusy=5, baseline=3, delay=2.0):
    def factory(machine):
        return build_stage(
            machine,
            [MlrWorkload(wss_mb * MB, start_delay_s=delay, name="target")],
            baseline_ways=baseline,
            n_lookbusy=n_lookbusy,
        )

    return factory


class TestGrowthDynamics:
    """Paper Fig. 10: dCat grows a starved workload to its preferred size."""

    def test_mlr_grows_beyond_baseline(self):
        res = run_scenario(mlr_stage(8), DCatManager(), duration_s=25.0, seed=SEED)
        assert res.steady_mean("target", "ways", 5) > 5

    def test_larger_wss_gets_more_ways(self):
        finals = {}
        for wss in (4, 16):
            res = run_scenario(
                mlr_stage(wss), DCatManager(), duration_s=30.0, seed=SEED
            )
            finals[wss] = res.steady_mean("target", "ways", 5)
        assert finals[16] > finals[4]

    def test_growth_is_one_way_per_round(self):
        res = run_scenario(mlr_stage(8), DCatManager(), duration_s=25.0, seed=SEED)
        ways = res.series("target", "ways")
        diffs = [b - a for a, b in zip(ways, ways[1:])]
        # Apart from the initial reclaim jump (1 -> baseline), growth steps
        # are single ways.
        grow_steps = [d for d in diffs if d > 0]
        assert grow_steps.count(1.0) >= len(grow_steps) - 1

    def test_lookbusy_neighbors_become_donors(self):
        res = run_scenario(mlr_stage(8), DCatManager(), duration_s=20.0, seed=SEED)
        for i in range(5):
            assert res.final(f"lookbusy-{i}", "ways") == 1.0
            assert res.timeline(f"lookbusy-{i}")[-1].state is WorkloadState.DONOR


class TestStreamingDetection:
    """Paper Fig. 13: MLOAD is unmasked and demoted to one way."""

    def test_mload_demoted(self):
        def factory(machine):
            return build_stage(
                machine,
                [MloadWorkload(60 * MB, start_delay_s=2.0, name="target")],
                baseline_ways=3,
                n_lookbusy=5,
            )

        res = run_scenario(factory, DCatManager(), duration_s=25.0, seed=SEED)
        tl = res.timeline("target")
        assert tl[-1].state is WorkloadState.STREAMING
        assert tl[-1].ways == 1.0
        # It first explored up to the streaming threshold (3x baseline).
        assert max(r.ways for r in tl) == pytest.approx(9.0)

    def test_mload_ipc_unharmed_by_demotion(self):
        def factory(machine):
            return build_stage(
                machine,
                [MloadWorkload(60 * MB, start_delay_s=2.0, name="target")],
                baseline_ways=3,
                n_lookbusy=5,
            )

        res = run_scenario(factory, DCatManager(), duration_s=25.0, seed=SEED)
        tl = res.timeline("target")
        ipc_at_baseline = next(
            r.ipc
            for r in tl
            if r.ways == 3.0 and r.ipc > 0 and "idle" not in (r.phase_name or "")
        )
        ipc_demoted = tl[-1].ipc
        assert ipc_demoted == pytest.approx(ipc_at_baseline, rel=0.05)


class TestBaselineGuarantee:
    """dCat's core promise: never worse than the static reservation."""

    def test_dcat_ipc_at_least_static(self):
        for wss in (4, 8, 16):
            static = run_scenario(
                mlr_stage(wss), StaticCatManager(), duration_s=25.0, seed=SEED
            ).steady_mean("target", "ipc", 5)
            dcat = run_scenario(
                mlr_stage(wss), DCatManager(), duration_s=25.0, seed=SEED
            ).steady_mean("target", "ipc", 5)
            assert dcat >= static * 0.98

    def test_reclaim_restores_baseline_on_phase_change(self):
        from dataclasses import replace

        def factory(machine):
            second = mlr_phase(16 * MB, duration_s=10.0, name="mlr-16mb-hot")
            # Different refs/instr so the detector sees a true phase change.
            second = replace(
                second, behavior=replace(second.behavior, refs_per_instr=0.35)
            )
            workload = PhasedWorkload(
                name="target",
                phases=[
                    idle_phase(duration_s=2.0, name="idle-a"),
                    mlr_phase(8 * MB, duration_s=10.0),
                    second,
                ],
            )
            return build_stage(machine, [workload], baseline_ways=3, n_lookbusy=5)

        res = run_scenario(factory, DCatManager(), duration_s=24.0, seed=SEED)
        tl = res.timeline("target")
        # Find the second phase's onset; the allocation must pass through
        # the baseline (reclaim) before growing again.
        onset = next(i for i, r in enumerate(tl) if r.phase_name == "mlr-16mb-hot")
        window = [r.ways for r in tl[onset : onset + 3]]
        assert 3.0 in window

    def test_wss_growth_without_phase_change_reopens_growth(self):
        """A working set that grows silently (same refs/instr) must still
        attract more ways once its miss rate climbs back up."""

        def factory(machine):
            workload = PhasedWorkload(
                name="target",
                phases=[
                    idle_phase(duration_s=2.0, name="idle-a"),
                    mlr_phase(8 * MB, duration_s=10.0),
                    mlr_phase(16 * MB, duration_s=14.0),
                ],
            )
            return build_stage(machine, [workload], baseline_ways=3, n_lookbusy=5)

        res = run_scenario(factory, DCatManager(), duration_s=28.0, seed=SEED)
        # Converged for 8 MB (~7 ways), then kept growing for 16 MB.
        assert res.steady_mean("target", "ways", 4) > 8


class TestIsolationOrdering:
    """Paper Figs. 1/11/16: dCat ~ full cache; static degrades; shared worst."""

    def test_three_regime_latency_ordering_with_noise(self):
        def factory(machine):
            return build_stage(
                machine,
                [MlrWorkload(12 * MB, start_delay_s=2.0, name="target")],
                baseline_ways=3,
                n_mload=2,
                n_lookbusy=3,
            )

        latencies = {}
        for label, manager in (
            ("shared", SharedCacheManager()),
            ("static", StaticCatManager()),
            ("dcat", DCatManager()),
        ):
            res = run_scenario(factory, manager, duration_s=30.0, seed=SEED)
            latencies[label] = res.steady_mean("target", "avg_mem_latency_cycles", 8)
        assert latencies["dcat"] < latencies["static"] < latencies["shared"]

    def test_victim_protected_while_neighbor_streams(self):
        """Paper Fig. 16: harvesting never hurts the donor."""

        def factory(machine):
            return build_stage(
                machine,
                [
                    MlrWorkload(8 * MB, start_delay_s=2.0, name="mlr-8mb"),
                    MloadWorkload(60 * MB, start_delay_s=2.0, name="mload-60mb"),
                ],
                baseline_ways=3,
                n_lookbusy=5,
            )

        res = run_scenario(factory, DCatManager(), duration_s=30.0, seed=SEED)
        # MLR converges to its preferred allocation...
        assert res.steady_mean("mlr-8mb", "ways", 5) >= 7
        # ...while MLOAD ends at 1 way with its IPC intact.
        tl = res.timeline("mload-60mb")
        assert tl[-1].ways == 1.0
        first_active = next(
            r.ipc
            for r in tl
            if r.ways == 3.0 and r.ipc > 0 and "idle" not in (r.phase_name or "")
        )
        assert tl[-1].ipc == pytest.approx(first_active, rel=0.05)


class TestPolicies:
    def test_max_performance_beats_fairness_under_scarcity(self):
        def factory(machine):
            return build_stage(
                machine,
                [
                    MlrWorkload(8 * MB, start_delay_s=2.0, name="mlr-8mb"),
                    MlrWorkload(12 * MB, start_delay_s=2.0, name="mlr-12mb"),
                ],
                baseline_ways=3,
                n_lookbusy=6,
            )

        totals = {}
        for policy in (AllocationPolicy.MAX_FAIRNESS, AllocationPolicy.MAX_PERFORMANCE):
            res = run_scenario(
                factory,
                DCatManager(config=DCatConfig(policy=policy)),
                duration_s=40.0,
                seed=SEED,
            )
            totals[policy] = sum(
                res.steady_mean(vm, "ipc", 5) for vm in ("mlr-8mb", "mlr-12mb")
            )
        assert (
            totals[AllocationPolicy.MAX_PERFORMANCE]
            >= totals[AllocationPolicy.MAX_FAIRNESS] * 0.999
        )


class TestPerformanceTableReuse:
    """Paper Fig. 12: the second run skips the one-way-per-round climb."""

    def test_restart_converges_faster_with_table(self):
        def factory(machine):
            workload = PhasedWorkload(
                name="target",
                phases=[
                    idle_phase(duration_s=2.0, name="idle-a"),
                    mlr_phase(8 * MB, duration_s=12.0),
                    idle_phase(duration_s=5.0, name="idle-b"),
                    mlr_phase(8 * MB, duration_s=12.0),
                    idle_phase(name="idle-c"),
                ],
            )
            return build_stage(machine, [workload], baseline_ways=3, n_lookbusy=5)

        def restart_time_to(res, target_ways):
            for rec in res.timeline("target"):
                if rec.time_s >= 19.0 and rec.ways >= target_ways:
                    return rec.time_s
            return float("inf")

        with_table = run_scenario(
            factory,
            DCatManager(config=DCatConfig(use_performance_table=True)),
            duration_s=32.0,
            seed=SEED,
        )
        without = run_scenario(
            factory,
            DCatManager(config=DCatConfig(use_performance_table=False)),
            duration_s=32.0,
            seed=SEED,
        )
        converged = max(r.ways for r in with_table.timeline("target") if r.time_s < 16)
        assert restart_time_to(with_table, converged) < restart_time_to(
            without, converged
        )
