"""Every registered experiment must run and render at its smallest size.

A one-line change to a shared layer (report renderer, result container,
controller default) can silently break a figure nobody re-ran.  This sweep
executes all registry entries through :func:`run_experiment_smoke` — which
shrinks the two SPEC-driven long runs via ``SMOKE_KWARGS`` — and pushes
each result through the full ASCII renderer.
"""

import pytest

from repro.harness.registry import (
    EXPERIMENTS,
    SMOKE_KWARGS,
    experiment_ids,
    run_experiment_smoke,
)
from repro.harness.report import render_experiment, render_series
from repro.harness.results import BarGroup, ExperimentResult, Series, TableResult


@pytest.mark.parametrize("experiment_id", experiment_ids())
def test_experiment_runs_and_renders(experiment_id):
    result = run_experiment_smoke(experiment_id)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.artifacts, f"{experiment_id} produced no artifacts"
    text = render_experiment(result)
    assert text.startswith(f"== {experiment_id}:")
    for name, artifact in result.artifacts.items():
        assert f"-- {name} --" in text
        assert isinstance(artifact, (TableResult, BarGroup, Series))


def test_smoke_kwargs_only_name_registered_experiments():
    assert set(SMOKE_KWARGS) <= set(EXPERIMENTS)


def test_spec_instruction_override_keeps_pattern_fields():
    # Regression: overriding `instructions` used to rebuild the Phase by
    # hand and drop hot_bytes/hot_fraction, crashing every HOTCOLD
    # benchmark (mcf, soplex, ...) run at reduced size.
    from repro.workloads.spec import spec_workload

    full = spec_workload("mcf").peek_phases()[0]
    small = spec_workload("mcf", instructions=2_000_000).peek_phases()[0]
    assert small.instructions == 2_000_000
    assert small.hot_bytes == full.hot_bytes
    assert small.hot_fraction == full.hot_fraction
    assert small.pattern == full.pattern


def test_render_series_handles_empty_series():
    # Regression: an empty series used to render as "name: " with a
    # trailing space; it must say so explicitly instead.
    empty = Series(name="empty", x=[], y=[])
    assert render_series(empty) == "empty: (empty)"
