"""Tests for repro.core.phase: the phase-change detector."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.phase import PhaseDetector, PhaseSignature


class TestDetection:
    def test_first_observation_is_not_a_change(self):
        det = PhaseDetector()
        assert det.observe(0.25) is False

    def test_small_drift_not_a_change(self):
        det = PhaseDetector(threshold=0.10)
        det.observe(0.25)
        assert det.observe(0.26) is False
        assert det.observe(0.27) is False

    def test_large_shift_detected(self):
        det = PhaseDetector(threshold=0.10)
        det.observe(0.25)
        assert det.observe(0.35) is True

    def test_threshold_boundary(self):
        det = PhaseDetector(threshold=0.10)
        det.observe(0.20)
        assert det.observe(0.22) is False  # exactly 10%
        det2 = PhaseDetector(threshold=0.10)
        det2.observe(0.20)
        assert det2.observe(0.2201) is True

    def test_reference_updates_on_change(self):
        det = PhaseDetector(threshold=0.10)
        det.observe(0.20)
        det.observe(0.35)  # change; new reference 0.35
        assert det.observe(0.36) is False

    def test_drift_below_threshold_never_fires(self):
        det = PhaseDetector(threshold=0.10)
        det.observe(0.25)
        # 2% wobble around the reference stays quiet forever.
        for i in range(50):
            ratio = 0.25 * (1.0 + 0.02 * ((-1) ** i))
            assert det.observe(ratio) is False


class TestIdleTransitions:
    def test_active_to_idle_is_a_change(self):
        det = PhaseDetector()
        det.observe(0.25)
        assert det.observe(0.0, idle=True) is True

    def test_idle_to_active_is_a_change(self):
        det = PhaseDetector()
        det.observe(0.0, idle=True)
        assert det.observe(0.25) is True

    def test_idle_while_idle_is_quiet(self):
        det = PhaseDetector()
        det.observe(0.0, idle=True)
        assert det.observe(0.0, idle=True) is False

    def test_initial_idle_not_a_change(self):
        det = PhaseDetector()
        assert det.observe(0.0, idle=True) is False

    def test_tiny_ratio_treated_as_idle(self):
        det = PhaseDetector()
        det.observe(0.25)
        assert det.observe(1e-9) is True
        assert det.current_signature.idle


class TestSignatures:
    def test_same_phase_same_signature(self):
        det = PhaseDetector()
        assert det.signature_for(0.25) == det.signature_for(0.2501)

    def test_distant_ratios_differ(self):
        det = PhaseDetector()
        assert det.signature_for(0.25) != det.signature_for(0.40)

    def test_signature_stable_across_restart(self):
        """A re-encountered phase must re-derive the same signature."""
        det1, det2 = PhaseDetector(), PhaseDetector()
        det1.observe(0.25)
        det2.observe(0.1)
        det2.observe(0.25)
        assert det1.current_signature == det2.current_signature

    def test_idle_signature(self):
        det = PhaseDetector()
        assert det.current_signature == PhaseSignature.idle_signature()

    def test_reset(self):
        det = PhaseDetector()
        det.observe(0.25)
        det.reset()
        assert det.observe(0.5) is False  # first observation again


class TestValidation:
    def test_threshold_range(self):
        with pytest.raises(ValueError):
            PhaseDetector(threshold=0.0)
        with pytest.raises(ValueError):
            PhaseDetector(threshold=1.0)


@settings(max_examples=60, deadline=None)
@given(
    base=st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    factor=st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
)
def test_detection_matches_relative_rule(base, factor):
    # Stay away from the exact threshold boundary, where float rounding
    # of base * factor legitimately decides either way.
    assume(abs(abs(factor - 1.0) - 0.10) > 1e-3)
    det = PhaseDetector(threshold=0.10)
    det.observe(base)
    changed = det.observe(base * factor)
    assert changed == (abs(factor - 1.0) > 0.10)
