"""Tests for repro.workloads.trace: access-trace generation."""

import numpy as np
import pytest

from repro.cache.analytical import AccessPattern, Footprint
from repro.mem.address import MB
from repro.mem.paging import PageTable
from repro.workloads.trace import TraceGenerator


def make_gen(pattern=AccessPattern.RANDOM, wss=1 * MB, seed=3, **kw):
    fp = Footprint(pattern, wss, **kw)
    table = PageTable(rng=np.random.default_rng(seed))
    return TraceGenerator(fp, table, rng=np.random.default_rng(seed + 1))


class TestBasics:
    def test_lazy_buffer_allocation(self):
        gen = make_gen()
        assert gen._buffer is None
        gen.generate(10)
        assert gen._buffer is not None

    def test_count_validation(self):
        with pytest.raises(ValueError):
            make_gen().generate(-1)

    def test_zero_count(self):
        assert make_gen().generate(0).size == 0

    def test_none_pattern_emits_nothing(self):
        fp = Footprint(AccessPattern.NONE, 0)
        gen = TraceGenerator(fp, PageTable(rng=np.random.default_rng(0)))
        assert gen.generate(100).size == 0

    def test_addresses_line_aligned(self):
        addrs = make_gen().generate(500)
        assert (addrs % 64 == 0).all()

    def test_deterministic_with_seed(self):
        a = make_gen(seed=9).generate(200)
        b = make_gen(seed=9).generate(200)
        assert np.array_equal(a, b)


class TestRandomPattern:
    def test_covers_working_set(self):
        gen = make_gen(wss=64 * 1024)  # 1024 lines
        addrs = gen.generate(20_000)
        assert np.unique(addrs).size > 900  # nearly full coverage


class TestSequentialPattern:
    def test_resumes_the_sweep(self):
        gen = make_gen(pattern=AccessPattern.SEQUENTIAL, wss=64 * 100)
        first = gen.generate(50)
        second = gen.generate(50)
        assert np.unique(np.concatenate([first, second])).size == 100

    def test_wraps_cyclically(self):
        gen = make_gen(pattern=AccessPattern.SEQUENTIAL, wss=64 * 10)
        addrs = gen.generate(30)
        assert np.array_equal(addrs[:10], addrs[10:20])


class TestHotColdPattern:
    def test_hot_fraction_respected(self):
        gen = make_gen(
            pattern=AccessPattern.HOTCOLD,
            wss=4 * MB,
            hot_bytes=1 * MB,
            hot_fraction=0.8,
        )
        addrs = gen.generate(30_000)
        # The hot tier occupies the buffer's first quarter of lines.
        hot_boundary = gen.buffer.vbase  # physical addrs, so count by line id
        line_ids = np.sort(np.unique(addrs))
        # Identify hot hits by regenerating the same line indices directly.
        idx = gen._line_indices(30_000)
        hot_lines = (1 * MB) // 64
        hot_share = float((idx < hot_lines).mean())
        assert hot_share == pytest.approx(0.8, abs=0.02)


class TestZipfPattern:
    def test_skew_concentrates_mass(self):
        gen = make_gen(pattern=AccessPattern.ZIPF, wss=4 * MB, zipf_s=1.1)
        idx = gen._line_indices(40_000)
        top_1pct = max(1, gen.num_lines // 100)
        share = float((idx < top_1pct).mean())
        assert share > 0.3  # heavy head

    def test_flat_zipf_spreads(self):
        gen = make_gen(pattern=AccessPattern.ZIPF, wss=4 * MB, zipf_s=0.3)
        idx = gen._line_indices(40_000)
        top_1pct = max(1, gen.num_lines // 100)
        share = float((idx < top_1pct).mean())
        assert share < 0.15

    def test_indices_in_range(self):
        gen = make_gen(pattern=AccessPattern.ZIPF, wss=2 * MB, zipf_s=0.99)
        idx = gen._line_indices(10_000)
        assert (idx >= 0).all()
        assert (idx < gen.num_lines).all()

    def test_zipf_matches_exact_sampling_on_small_sets(self):
        """Bucketized sampling tracks the exact Zipf distribution."""
        gen = make_gen(pattern=AccessPattern.ZIPF, wss=64 * 256, zipf_s=1.0)
        idx = gen._line_indices(200_000)
        n = gen.num_lines
        ranks = np.arange(1, n + 1, dtype=float)
        exact = ranks ** -1.0
        exact /= exact.sum()
        counts = np.bincount(idx, minlength=n) / idx.size
        # Compare mass in the head (top 16 lines) — the decisive region.
        assert counts[:16].sum() == pytest.approx(exact[:16].sum(), abs=0.03)
