"""Fleet-scale guarantees: integer-tick clock, event-driven stepping,
and the process-pool executor's byte-identity contract.

These pin the two bug classes this layer existed to eliminate:

* **Clock drift** — the old fleet accumulated ``now += interval_s`` in
  floats, so after ~1e7 millisecond intervals admission and departure
  boundaries shifted by an interval.  The clock is now a derived
  ``tick * interval_s``, exact at any horizon.
* **Divergent parallelism** — sharding the fleet across worker processes
  must be invisible: same placements, same SLO ledgers, same JSONL
  trace, byte for byte, whatever ``fleet_jobs`` is.
"""

import json
import pickle

import pytest

from repro.cloud import (
    ChurnScenarioError,
    CloudFleet,
    FleetMachine,
    LeastLoadedPolicy,
    load_churn_scenario,
    run_churn_scenario,
)
from repro.cloud.executor import ParallelCloudFleet
from repro.cloud.lifecycle import TenantSpec
from repro.cpu.socket import SocketSpec
from repro.harness import cli
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager, SharedCacheManager
from repro.platform.sim import CloudSimulation


def make_fleet_machine(name="m0", seed=7, manager=None):
    return FleetMachine(
        name=name,
        machine=Machine(spec=SocketSpec.xeon_d(), seed=seed),
        manager=manager or DCatManager(),
    )


def scenario(machines=3, seed=7, duration=12, interval=1.0, faults=False):
    data = {
        "fleet": {
            "machines": machines,
            "socket": "xeon_d",
            "seed": seed,
            "interval_s": interval,
        },
        "manager": {"type": "dcat"},
        "placement": "least_loaded",
        "duration_s": duration,
        "slo": {"tolerance": 0.05},
        "tenants": [
            {"name": "db", "arrival_s": 0, "baseline_ways": 4,
             "lifetime_s": 6, "workload": {"type": "postgres"}},
            {"name": "kv", "arrival_s": 1, "baseline_ways": 3,
             "workload": {"type": "redis"}},
            {"name": "ml", "arrival_s": 2, "baseline_ways": 3,
             "lifetime_s": 5, "workload": {"type": "mlr", "wss_mb": 8}},
        ],
        "poisson": {
            "rate_per_s": 0.3,
            "seed": seed + 1,
            "mix": [
                {"weight": 1, "baseline_ways": 3, "mean_lifetime_s": 4,
                 "workload": {"type": "lookbusy"}},
            ],
        },
    }
    if faults:
        data["faults"] = {
            "seed": 11,
            "rules": [
                {"kind": "counter_read_error", "probability": 0.2},
                {"kind": "l3ca_set_fail", "probability": 0.2},
            ],
        }
    return data


# -- integer-tick clock ------------------------------------------------------


class TestIntegerTickClock:
    def test_sim_clock_is_derived_not_accumulated(self):
        machine = Machine(spec=SocketSpec.xeon_d(), seed=1, interval_s=0.001)
        sim = CloudSimulation(machine, [], DCatManager())
        sim.skip_idle(10_000_000)
        assert sim.tick == 10_000_000
        # Exact product, not 1e7 accumulated additions of a non-dyadic
        # float (which lands ~2e-3 s off after this many intervals).
        assert sim._time_s == 10_000_000 * 0.001

    def test_skip_idle_rejects_negative_and_busy(self):
        fm = make_fleet_machine()
        with pytest.raises(ValueError):
            fm.sim.skip_idle(-1)
        spec = TenantSpec(name="t", arrival_s=0.0, baseline_ways=3,
                          workload={"type": "redis"})
        fm.admit(spec, spec.build_workload(), now=0.0)
        with pytest.raises(ValueError, match="attached"):
            fm.sim.skip_idle(5)

    def test_fleet_clock_exact_at_long_horizon(self):
        # Quiescent fleets bulk-skip, so 1e7 ms-intervals cost ~nothing.
        data = {
            "fleet": {"machines": 2, "socket": "xeon_d", "seed": 7,
                      "interval_s": 0.001},
            "manager": {"type": "dcat"},
            "placement": "least_loaded",
            "duration_s": 10_000,
            "tenants": [
                {"name": "late", "arrival_s": 9999.0, "baseline_ways": 3,
                 "lifetime_s": 0.05, "workload": {"type": "redis"}},
            ],
        }
        fleet, duration = load_churn_scenario(data)
        result = fleet.run(duration)
        assert fleet.tick == 10_000_000
        assert fleet.now == fleet.tick * 0.001
        stats = result.tenants["late"]
        # Admission lands on the first tick whose derived time reaches
        # arrival_s — computed with the same arithmetic the fleet uses.
        tick = int(9999.0 / 0.001)
        while tick * 0.001 < 9999.0:
            tick += 1
        assert stats.admitted_s == tick * 0.001
        # The lease is exactly 50 intervals at any horizon: drift in an
        # accumulated clock would stretch or clip it.
        assert stats.active_intervals == 50
        assert stats.departed_s is not None

    def test_machine_of_uses_tenant_index(self):
        machines = [make_fleet_machine(f"m{i}", seed=i) for i in range(3)]
        fleet = CloudFleet(machines=machines, policy=LeastLoadedPolicy(), tenants=[])
        spec = TenantSpec(name="t0", arrival_s=0.0, baseline_ways=3,
                          workload={"type": "redis"})
        record = fleet.admit_tenant(spec)
        assert fleet.machine_of("t0").name == record.machine
        fleet.depart_tenant("t0", reason="detached")
        assert fleet.machine_of("t0") is None
        assert fleet.machine_of("never-admitted") is None


# -- duration contract -------------------------------------------------------


class TestDurationContract:
    def test_run_rejects_non_multiple_duration(self):
        machine = FleetMachine(
            name="m0",
            machine=Machine(spec=SocketSpec.xeon_d(), seed=7, interval_s=0.25),
            manager=DCatManager(),
        )
        fleet = CloudFleet(machines=[machine], policy=LeastLoadedPolicy(),
                           tenants=[])
        with pytest.raises(ValueError, match="whole number of .* intervals"):
            fleet.run(1.1)

    def test_run_rejects_negative_duration(self):
        fleet = CloudFleet(machines=[make_fleet_machine()],
                           policy=LeastLoadedPolicy(), tenants=[])
        with pytest.raises(ValueError):
            fleet.run(-1.0)

    def test_scenario_names_field_on_bad_duration(self):
        data = scenario(duration=12)
        data["duration_s"] = 12.3
        data["fleet"]["interval_s"] = 0.5
        with pytest.raises(
            ChurnScenarioError,
            match=r"scenario\.duration_s: 12\.3 is not a whole number",
        ):
            load_churn_scenario(data)

    def test_cli_bad_duration_exits_2(self, tmp_path, capsys):
        data = scenario()
        data["duration_s"] = 7.77
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        assert cli.main(["churn", str(path)]) == 2
        assert "scenario.duration_s" in capsys.readouterr().err


# -- serial vs parallel byte-identity ---------------------------------------


class TestParallelByteIdentity:
    def run_pair(self, data, jobs=2, tmp_path=None):
        kwargs = {}
        results = []
        for n, tag in ((1, "serial"), (jobs, "parallel")):
            if tmp_path is not None:
                kwargs["trace"] = str(tmp_path / f"{tag}.jsonl")
            results.append(
                run_churn_scenario(dict(data), fleet_jobs=n, **kwargs)
            )
        return results

    def test_churn_results_identical(self):
        a, b = self.run_pair(scenario())
        assert a.canonical_bytes() == b.canonical_bytes()
        assert a.placements == b.placements
        assert a.summary == b.summary

    def test_churn_results_identical_with_faults(self):
        a, b = self.run_pair(scenario(faults=True), jobs=3)
        assert a.canonical_bytes() == b.canonical_bytes()
        assert a.faults == b.faults
        assert any(a.faults.values())  # the injectors actually fired

    def test_traces_identical(self, tmp_path):
        self.run_pair(scenario(), tmp_path=tmp_path)
        serial = (tmp_path / "serial.jsonl").read_bytes()
        parallel = (tmp_path / "parallel.jsonl").read_bytes()
        assert serial == parallel
        assert serial  # non-trivial trace

    def test_per_machine_results_identical(self):
        data = scenario()
        f1, d1 = load_churn_scenario(dict(data))
        f1.run(d1)
        r1 = f1.machine_results()
        f1.close()
        f2, d2 = load_churn_scenario(dict(data), fleet_jobs=2)
        try:
            f2.run(d2)
            r2 = f2.machine_results()
        finally:
            f2.close()
        assert list(r1) == list(r2)
        for name in r1:
            assert pickle.dumps(r1[name], protocol=4) == pickle.dumps(
                r2[name], protocol=4
            )

    def test_more_jobs_than_machines(self):
        a, b = self.run_pair(scenario(machines=2), jobs=5)
        assert a.canonical_bytes() == b.canonical_bytes()

    def test_shared_manager_fleet_parallel(self):
        data = scenario()
        data["manager"] = {"type": "shared"}
        del data["slo"]
        a, b = self.run_pair(data)
        assert a.canonical_bytes() == b.canonical_bytes()


# -- executor plumbing -------------------------------------------------------


class TestExecutor:
    def test_close_is_idempotent(self):
        fleet, duration = load_churn_scenario(scenario(), fleet_jobs=2)
        fleet.run(duration)
        fleet.close()
        fleet.close()  # second close is a no-op, not a hang or crash

    def test_rejects_bad_jobs(self):
        with pytest.raises(ChurnScenarioError, match="fleet_jobs"):
            load_churn_scenario(scenario(), fleet_jobs=0)

    def test_cli_rejects_bad_fleet_jobs(self, tmp_path, capsys):
        path = tmp_path / "churn.json"
        path.write_text(json.dumps(scenario()))
        assert cli.main(["churn", str(path), "--fleet-jobs", "0"]) == 2
        assert "--fleet-jobs" in capsys.readouterr().err

    def test_unknown_tenant_raises_in_parent(self):
        from repro.errors import UnknownTenantError

        fleet, _ = load_churn_scenario(scenario(), fleet_jobs=2)
        try:
            # The tenant index answers in the parent; a bogus depart must
            # raise cleanly without wedging the worker pipe protocol.
            with pytest.raises(UnknownTenantError):
                fleet.depart_tenant("ghost", reason="detached")
            fleet.step()  # the pool still works after the failed op
        finally:
            fleet.close()


# -- service-layer parity ----------------------------------------------------


class TestServiceFleetJobs:
    CONFIG = {
        "fleet": {"machines": 3, "socket": "xeon_d", "seed": 11},
        "manager": {"type": "dcat"},
        "placement": "least_loaded",
        "service": {"tick_interval_s": 0.01},
    }

    def build(self, jobs):
        from repro.service.config import load_service_config

        data = json.loads(json.dumps(self.CONFIG))
        data["service"]["fleet_jobs"] = jobs
        return load_service_config(data).build()

    def drive(self, setup):
        from repro.cloud.handle import FleetHandle

        handle = FleetHandle(setup.fleet)
        try:
            handle.admit("a", 4, {"type": "redis"})
            for _ in range(8):
                handle.tick()
            handle.admit("b", 4, {"type": "postgres"}, lifetime_s=0.04)
            for _ in range(12):
                handle.tick()
            handle.detach("a")
            for _ in range(4):
                handle.tick()
            return (
                handle.snapshot_json(),
                setup.violation_count(),
                setup.intervals_checked(),
            )
        finally:
            setup.fleet.close()

    def test_parallel_daemon_fleet_matches_serial(self):
        serial = self.drive(self.build(1))
        parallel = self.drive(self.build(2))
        assert serial[0] == parallel[0]
        assert serial[1] == parallel[1]
        # Parallel checkers live in the workers; their interval tallies
        # must still reach the setup's totals via checker_stats().
        assert serial[2] == parallel[2]
        assert serial[2] > 0

    def test_bad_fleet_jobs_named(self):
        from repro.service.config import ServiceConfigError, load_service_config

        data = json.loads(json.dumps(self.CONFIG))
        data["service"]["fleet_jobs"] = 0
        with pytest.raises(ServiceConfigError, match="service.fleet_jobs"):
            load_service_config(data)

    def test_parallel_fleet_is_parallel_class(self):
        setup = self.build(2)
        try:
            assert isinstance(setup.fleet, ParallelCloudFleet)
            assert setup.checkers == {}
        finally:
            setup.fleet.close()
