"""Tests for repro.engine: the event bus, sinks, staged loops, and the
events both interval loops publish."""

import io
import json

import pytest

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.pqos import PqosLibrary
from repro.core.config import DCatConfig
from repro.core.controller import DCatController
from repro.engine.events import (
    NULL_BUS,
    AllocationPlanned,
    EventBus,
    IntervalFinished,
    IntervalStarted,
    JsonlTraceWriter,
    MasksProgrammed,
    MetricsSink,
    PhaseChanged,
    RingBufferRecorder,
    SampleCollected,
    StateTransition,
    get_default_bus,
    use_bus,
)
from repro.engine.pipeline import FunctionStage, StagedLoop
from repro.hwcounters.events import (
    L1_CACHE_HITS,
    L1_CACHE_MISSES,
    LLC_MISSES,
    LLC_REFERENCES,
)
from repro.hwcounters.msr import CorePmu
from repro.hwcounters.perfmon import PerfMonitor
from repro.mem.address import MB
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager, SharedCacheManager
from repro.platform.sim import CloudSimulation
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mlr import MlrWorkload

CYCLES = 1_000_000


class TestEventBus:
    def test_inactive_until_subscribed(self):
        bus = EventBus()
        assert not bus.active
        unsub = bus.subscribe(lambda e: None)
        assert bus.active
        unsub()
        assert not bus.active

    def test_typed_subscription_filters(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, IntervalStarted)
        bus.emit(IntervalStarted(time_s=0.0, source="sim"))
        bus.emit(IntervalFinished(time_s=0.0, source="sim"))
        assert [type(e).__name__ for e in seen] == ["IntervalStarted"]

    def test_catch_all_sees_everything(self):
        bus = EventBus()
        rec = RingBufferRecorder()
        bus.subscribe(rec)
        bus.emit(IntervalStarted(time_s=0.0, source="sim"))
        bus.emit(IntervalFinished(time_s=0.0, source="sim"))
        assert rec.type_names() == ["IntervalStarted", "IntervalFinished"]

    def test_null_bus_rejects_subscribers(self):
        assert not NULL_BUS.active
        with pytest.raises(TypeError, match="NULL_BUS"):
            NULL_BUS.subscribe(lambda e: None)

    def test_fast_constructor_matches_init(self):
        """Event.fast must be indistinguishable from normal construction."""
        slow = SampleCollected(
            time_s=1.0,
            source="sim",
            workload_id="w",
            ipc=0.5,
            llc_miss_rate=0.4,
            mem_refs_per_instr=0.2,
            instructions=10,
            cycles=20,
            idle=False,
        )
        fast = SampleCollected.fast(
            time_s=1.0,
            source="sim",
            workload_id="w",
            ipc=0.5,
            llc_miss_rate=0.4,
            mem_refs_per_instr=0.2,
            instructions=10,
            cycles=20,
            idle=False,
        )
        assert fast == slow
        assert repr(fast) == repr(slow)
        with pytest.raises(Exception):  # still frozen
            fast.ipc = 1.0

    def test_default_bus_scoping(self):
        bus = EventBus()
        assert get_default_bus() is NULL_BUS
        with use_bus(bus):
            assert get_default_bus() is bus
        assert get_default_bus() is NULL_BUS


class TestSinks:
    def test_ring_buffer_capacity_and_filter(self):
        rec = RingBufferRecorder(capacity=2)
        for t in range(3):
            rec(IntervalStarted(time_s=float(t), source="sim"))
        assert len(rec.events) == 2
        assert rec.of_type(IntervalStarted)[0].time_s == 1.0
        rec.clear()
        assert not rec.events

    def test_jsonl_writer_serializes_events(self):
        buf = io.StringIO()
        writer = JsonlTraceWriter(buf)
        writer.mark(experiment_id="x")
        writer(MasksProgrammed(time_s=1.0, masks={"a": 0b11}, moved=("a",)))
        writer.close()
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert lines[0] == {"event": "Marker", "experiment_id": "x"}
        assert lines[1]["event"] == "MasksProgrammed"
        assert lines[1]["masks"] == {"a": 3}
        assert lines[1]["moved"] == ["a"]

    def test_metrics_sink_counts_and_histograms(self):
        sink = MetricsSink()
        sink(AllocationPlanned(time_s=0.0, plan={"a": 3}, free_ways=2))
        sink(AllocationPlanned(time_s=1.0, plan={"a": 4}, free_ways=6))
        assert sink.counters["AllocationPlanned"] == 2
        hist = sink.histograms["AllocationPlanned.free_ways"]
        assert (hist.count, hist.minimum, hist.maximum) == (2, 2.0, 6.0)
        assert hist.mean == pytest.approx(4.0)


class TestStagedLoop:
    def build(self, log):
        return StagedLoop(
            [
                FunctionStage("a", lambda ctx: log.append("a")),
                FunctionStage("b", lambda ctx: log.append("b")),
            ],
            name="test",
        )

    def test_runs_in_order(self):
        log = []
        self.build(log).run(None)
        assert log == ["a", "b"]

    def test_duplicate_names_rejected(self):
        log = []
        loop = self.build(log)
        with pytest.raises(ValueError, match="duplicate"):
            loop.append(FunctionStage("a", lambda ctx: None))

    def test_insert_replace_remove(self):
        log = []
        loop = self.build(log)
        loop.insert_after("a", FunctionStage("mid", lambda ctx: log.append("mid")))
        loop.insert_before("a", FunctionStage("pre", lambda ctx: log.append("pre")))
        old = loop.replace("b", FunctionStage("b", lambda ctx: log.append("B")))
        assert old.name == "b"
        loop.run(None)
        assert log == ["pre", "a", "mid", "B"]
        loop.remove("mid")
        assert loop.stage_names == ["pre", "a", "b"]
        with pytest.raises(KeyError):
            loop.get("mid")

    def test_wrapping_a_stage_for_instrumentation(self):
        log = []
        loop = self.build(log)
        inner = loop.get("a")
        calls = []

        def wrapped(ctx):
            calls.append("before")
            inner.run(ctx)

        loop.replace("a", FunctionStage("a", wrapped))
        loop.run(None)
        assert calls == ["before"] and log == ["a", "b"]


def controller_rig(bus):
    """A two-workload controller over hand-driven PMUs, wired to ``bus``."""
    cat = CacheAllocationTechnology(num_ways=20, num_cores=8)
    pmus = {c: CorePmu() for c in range(8)}
    controller = DCatController(
        pqos=PqosLibrary(cat, way_size_bytes=2359296),
        perfmon=PerfMonitor(pmus),
        config=DCatConfig(),
        nominal_cycles_per_core=CYCLES,
        bus=bus,
    )
    controller.register_workload("hungry", [0, 1], baseline_ways=3)
    controller.register_workload("quiet", [2, 3], baseline_ways=3)
    controller.initialize()
    return controller, pmus


def feed(pmus, core, refs_per_instr=0.25, miss_rate=0.5, ipc=0.5):
    instructions = int(CYCLES * ipc)
    l1_ref = int(instructions * refs_per_instr)
    llc_ref = int(instructions * 0.1)
    pmus[core].advance(
        instructions,
        CYCLES,
        {
            L1_CACHE_HITS: l1_ref - llc_ref,
            L1_CACHE_MISSES: llc_ref,
            LLC_REFERENCES: llc_ref,
            LLC_MISSES: int(llc_ref * miss_rate),
        },
    )


class TestControllerEvents:
    def test_stage_names_follow_fig4(self):
        controller, _ = controller_rig(EventBus())
        assert controller.loop.stage_names == [
            "collect",
            "detect_phase",
            "get_baseline",
            "categorize",
            "allocate",
            "commit",
        ]

    def test_full_event_sequence_for_one_interval(self):
        """A subscriber observes collect -> ... -> commit for one interval."""
        bus = EventBus()
        rec = RingBufferRecorder()
        bus.subscribe(rec)
        controller, pmus = controller_rig(bus)
        rec.clear()  # drop initialize()'s MasksProgrammed
        for core in range(4):
            feed(pmus, core)
        controller.step()

        names = rec.type_names()
        assert names[0] == "IntervalStarted"
        assert names[-1] == "IntervalFinished"
        assert names.count("SampleCollected") == 2  # one per workload
        # Stage order: samples before the plan, plan before the masks.
        assert names.index("SampleCollected") < names.index("AllocationPlanned")
        assert names.index("AllocationPlanned") < names.index("MasksProgrammed")
        samples = rec.of_type(SampleCollected)
        assert {s.workload_id for s in samples} == {"hungry", "quiet"}
        assert all(s.source == "controller" for s in samples)

    def test_phase_change_and_state_transition_events(self):
        bus = EventBus()
        rec = RingBufferRecorder()
        bus.subscribe(rec)
        controller, pmus = controller_rig(bus)
        for _ in range(2):  # establish the phase
            for core in range(4):
                feed(pmus, core)
            controller.step()
        rec.clear()
        for core in range(4):
            feed(pmus, core, refs_per_instr=0.05)  # new signature
        controller.step()
        changed = rec.of_type(PhaseChanged)
        assert {e.workload_id for e in changed} == {"hungry", "quiet"}
        transitions = rec.of_type(StateTransition)
        assert all(e.new_state == "reclaim" for e in transitions)

    def test_null_bus_emits_nothing_and_still_controls(self):
        controller, pmus = controller_rig(NULL_BUS)
        for core in range(4):
            feed(pmus, core)
        result = controller.step()
        assert set(result.statuses) == {"hungry", "quiet"}


class TestSimulationEvents:
    def make_sim(self, bus, manager=None):
        machine = Machine(seed=3, cycles_per_interval=500_000)
        vms = pin_vms(
            [
                VirtualMachine("mlr", MlrWorkload(4 * MB, name="mlr"), baseline_ways=3),
                VirtualMachine("busy", LookbusyWorkload(name="busy"), baseline_ways=3),
            ],
            machine.spec,
        )
        return CloudSimulation(machine, vms, manager or DCatManager(), bus=bus)

    def test_stage_names(self):
        sim = self.make_sim(EventBus())
        assert sim.loop.stage_names == [
            "resolve_hit_rates",
            "execute_cores",
            "feed_pmus",
            "record",
            "advance",
            "control",
            "update_dram",
        ]

    def test_sim_and_controller_share_the_bus(self):
        """One sim interval nests the controller's interval on the same bus."""
        bus = EventBus()
        rec = RingBufferRecorder()
        bus.subscribe(rec)
        sim = self.make_sim(bus)
        rec.clear()
        sim.step()
        starts = [e for e in rec.of_type(IntervalStarted)]
        assert [s.source for s in starts] == ["sim", "controller"]
        sim_samples = [
            e for e in rec.of_type(SampleCollected) if e.source == "sim"
        ]
        assert {e.workload_id for e in sim_samples} == {"mlr", "busy"}
        # The controller's interval is nested inside the sim's.
        names_sources = [
            (type(e).__name__, getattr(e, "source", None)) for e in rec.events
        ]
        assert names_sources.index(("IntervalFinished", "controller")) < (
            names_sources.index(("IntervalFinished", "sim"))
        )

    def test_shared_manager_emits_sim_events_only(self):
        bus = EventBus()
        rec = RingBufferRecorder()
        bus.subscribe(rec)
        sim = self.make_sim(bus, manager=SharedCacheManager())
        sim.step()
        assert all(getattr(e, "source", "sim") == "sim" for e in rec.events)

    def test_bus_off_produces_identical_timelines(self):
        """Event emission must not perturb the simulation itself."""
        quiet = self.make_sim(NULL_BUS)
        quiet.run(5.0)
        bus = EventBus()
        bus.subscribe(RingBufferRecorder())
        loud = self.make_sim(bus)
        loud.run(5.0)
        assert repr(quiet.result.records) == repr(loud.result.records)
