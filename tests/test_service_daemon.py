"""ControllerDaemon tests: HTTP lifecycle, shutdown, concurrent ingress.

Tests drive the real asyncio server on an ephemeral loopback port via
the stdlib client helper; no HTTP library is involved on either side.
The concurrency test is the serialization contract's teeth: N tasks
admit and detach simultaneously while the clock ticks, and the journal,
invariant checkers and COS pools must all come out coherent.
"""

import asyncio
import json

from repro.cloud.handle import replay_journal
from repro.service.config import load_service_config
from repro.service.daemon import ControllerDaemon
from repro.service.http import request_once

CONFIG = {
    "fleet": {"machines": 2, "socket": "xeon_d", "seed": 7, "interval_s": 1.0},
    "manager": {"type": "dcat"},
    "placement": "least_loaded",
    # Slow wall-clock ticks so tests control the clock:request ratio.
    "service": {"tick_interval_s": 0.02},
}

MLR = {"type": "mlr", "wss_mb": 8}


async def _with_daemon(body, **daemon_kwargs):
    config = load_service_config(CONFIG)
    daemon = ControllerDaemon(config, port=0, **daemon_kwargs)
    await daemon.start()
    try:
        await body(daemon)
    finally:
        await daemon.stop()
    return daemon


def run_with_daemon(body, **daemon_kwargs):
    return asyncio.run(_with_daemon(body, **daemon_kwargs))


async def call(daemon, method, path, payload=None):
    return await request_once("127.0.0.1", daemon.port, method, path, payload)


class TestHttpLifecycle:
    def test_admit_stats_detach_roundtrip(self):
        async def body(daemon):
            status, health = await call(daemon, "GET", "/healthz")
            assert (status, health["status"]) == (200, "ok")

            status, admitted = await call(
                daemon, "POST", "/v1/tenants",
                {"name": "t1", "baseline_ways": 3, "workload": MLR},
            )
            assert status == 201
            assert admitted["admitted"] is True
            assert admitted["machine"] in ("m0", "m1")
            assert isinstance(admitted["cos_id"], int)

            status, dup = await call(
                daemon, "POST", "/v1/tenants",
                {"name": "t1", "baseline_ways": 3, "workload": MLR},
            )
            assert status == 409
            assert dup["reason"] == "duplicate-tenant"

            status, stats = await call(daemon, "GET", "/v1/tenants/t1/stats")
            assert status == 200
            assert stats["resident"] is True

            status, fleet = await call(daemon, "GET", "/v1/fleet")
            assert status == 200
            assert any("t1" in m["residents"] for m in fleet["machines"])

            status, gone = await call(daemon, "DELETE", "/v1/tenants/t1")
            assert status == 200
            assert gone["reason"] == "detached"

            status, err = await call(daemon, "DELETE", "/v1/tenants/t1")
            assert status == 404
            assert "t1" in err["error"]

            status, err = await call(daemon, "GET", "/v1/tenants/ghost/stats")
            assert status == 404

        run_with_daemon(body)

    def test_metrics_and_trace_endpoints(self):
        async def body(daemon):
            await call(
                daemon, "POST", "/v1/tenants",
                {"name": "t1", "baseline_ways": 3, "workload": MLR},
            )
            status, text = await call(daemon, "GET", "/metrics")
            assert status == 200
            assert "dcat_http_requests_total" in text
            assert 'dcat_admissions_total{outcome="placed"} 1' in text

            status, trace = await call(daemon, "GET", "/v1/trace")
            assert status == 200
            ops = [record["op"] for record in trace["journal"]]
            assert "admit" in ops
            assert len(trace["snapshot_sha256"]) == 64

        run_with_daemon(body)

    def test_request_validation_and_routing_errors(self):
        async def body(daemon):
            cases = [
                ("POST", "/v1/tenants", {"workload": MLR}, 400),  # no name
                ("POST", "/v1/tenants", {"name": "x", "workload": MLR,
                                         "baseline_ways": 0}, 400),
                ("POST", "/v1/tenants", {"name": "x", "workload": MLR,
                                         "lifetime_s": -1}, 400),
                ("POST", "/v1/tenants", {"name": "x",
                                         "workload": {"type": "quake"}}, 400),
                ("POST", "/v1/tenants", ["not", "an", "object"], 400),
                ("GET", "/v1/tenants", None, 405),
                ("POST", "/healthz", None, 405),
                ("PATCH", "/v1/tenants/t1", None, 405),
                ("GET", "/nope", None, 404),
            ]
            for method, path, payload, expected in cases:
                status, _ = await call(daemon, method, path, payload)
                assert status == expected, (method, path, status)
            # Validation failures never reach the fleet or the journal.
            assert all(r.op == "tick" for r in daemon.handle.journal)

        run_with_daemon(body)

    def test_background_clock_advances_fleet(self):
        async def body(daemon):
            await asyncio.sleep(0.15)
            status, health = await call(daemon, "GET", "/healthz")
            assert status == 200
            assert health["ticks"] >= 3
            assert health["now"] == float(health["ticks"])  # interval_s=1.0

        run_with_daemon(body)


class TestGracefulShutdown:
    def test_shutdown_flushes_trace_and_metrics(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "svc.prom"

        async def body(daemon):
            await call(
                daemon, "POST", "/v1/tenants",
                {"name": "t1", "baseline_ways": 3, "workload": MLR},
            )
            await asyncio.sleep(0.1)

        daemon = run_with_daemon(
            body, trace_path=str(trace), metrics_path=str(metrics)
        )
        events = [json.loads(line)["event"]
                  for line in trace.read_text().splitlines()]
        assert "TenantAdmitted" in events
        assert metrics.exists()
        sibling = metrics.with_suffix(".prom.json")
        payload = json.loads(sibling.read_text())
        assert payload["format"] == "dcat-metrics/v1"
        # Checkers finalized, zero violations on a clean run.
        assert daemon.setup.violation_count() == 0
        assert daemon.setup.intervals_checked() > 0

    def test_stop_is_idempotent(self):
        async def main():
            daemon = ControllerDaemon(load_service_config(CONFIG), port=0)
            await daemon.start()
            await daemon.stop()
            await daemon.stop()

        asyncio.run(main())

    def test_trace_writer_drops_events_after_close(self, tmp_path):
        # The sink contract: close() is terminal, late events are dropped
        # rather than crashing a handler that fires during teardown.
        from repro.engine.events import JsonlTraceWriter

        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(str(path))
        writer.mark(note="alive")
        writer.flush()
        writer.close()
        writer.mark(note="late")
        writer.close()  # idempotent
        lines = path.read_text().splitlines()
        assert len(lines) == 1


class TestConcurrentIngress:
    N = 24

    def test_concurrent_admits_and_detaches_stay_coherent(self):
        """Satellite: N simultaneous mutations through the command queue."""

        async def body(daemon):
            async def admit(i):
                return await call(
                    daemon, "POST", "/v1/tenants",
                    {"name": f"c{i}", "baseline_ways": 2, "workload": MLR},
                )

            results = await asyncio.gather(*(admit(i) for i in range(self.N)))
            statuses = [status for status, _ in results]
            assert set(statuses) <= {201, 409}
            admitted = [body["tenant_id"] for status, body in results
                        if status == 201]
            assert admitted, "some admissions must land"

            # COS-pool invariants while fully loaded: per machine, every
            # resident holds a distinct allocatable COS and reservations
            # fit the LLC.
            for machine in daemon.handle.fleet.machines:
                controller = machine.sim.manager.controller
                cos_ids = [rec.cos_id for rec in controller.records.values()]
                assert len(cos_ids) == len(set(cos_ids))
                assert 0 not in cos_ids  # COS0 stays unmanaged
                assert machine.reserved_ways <= machine.machine.num_ways

            await asyncio.sleep(0.1)  # let the clock interleave ticks

            detaches = await asyncio.gather(
                *(call(daemon, "DELETE", f"/v1/tenants/{tid}")
                  for tid in admitted)
            )
            assert all(status in (200, 404) for status, _ in detaches)

            status, fleet = await call(daemon, "GET", "/v1/fleet")
            assert status == 200
            assert all(not m["residents"] for m in fleet["machines"])
            assert all(m["reserved_ways"] == 0 for m in fleet["machines"])

        daemon = run_with_daemon(body)
        # The watchdogs saw the whole run: zero invariant violations.
        assert daemon.setup.violation_count() == 0
        assert daemon.setup.intervals_checked() > 0
        # And the serialized journal replays byte-identically offline.
        config = load_service_config(CONFIG)
        replayed = replay_journal(
            lambda: config.build().fleet, daemon.handle.journal_payload()
        )
        assert replayed.snapshot_json() == daemon.handle.snapshot_json()
