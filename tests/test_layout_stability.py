"""Mask stability of pack_contiguous under plan churn.

Every way that changes owners costs a flush (the paper's user-level helper,
``flush_callback`` in the controller), so the packer's promise matters: a
workload whose size and left-hand neighborhood did not change must keep its
exact span, and ``moved`` must list only workloads whose mask actually
shifted.  These tests guard the flush path in ``DCatController._apply_plan``
against a quietly churn-happy packer.
"""

import random

from repro.cat.cos import is_contiguous, mask_way_count, mask_ways
from repro.cat.layout import pack_contiguous

NUM_WAYS = 20


def masks_disjoint(masks):
    used = 0
    for m in masks.values():
        if used & m:
            return False
        used |= m
    return True


class TestSteadyState:
    def test_identical_plan_never_moves(self):
        plan = {"a": 5, "b": 7, "c": 4}
        layout = pack_contiguous(plan, NUM_WAYS)
        for _ in range(10):
            layout = pack_contiguous(plan, NUM_WAYS, previous=layout.masks)
            assert layout.moved == []

    def test_rightmost_growth_into_free_pool_leaves_neighbors_put(self):
        plan = {"a": 5, "b": 7, "c": 4}
        layout = pack_contiguous(plan, NUM_WAYS)
        grown = dict(plan, c=8)  # c is rightmost; 4 free ways sit past it
        layout2 = pack_contiguous(grown, NUM_WAYS, previous=layout.masks)
        # Only the grown workload's mask changes, and it grows in place
        # (same starting way), so nothing else needs a flush.
        assert layout2.moved == ["c"]
        assert layout2.masks["a"] == layout.masks["a"]
        assert layout2.masks["b"] == layout.masks["b"]
        assert mask_ways(layout2.masks["c"])[0] == mask_ways(layout.masks["c"])[0]

    def test_oscillating_tail_leaves_head_stable(self):
        """A donor/receiver pair churning at the tail never moves the head."""
        layout = pack_contiguous({"head": 6, "x": 4, "y": 4}, NUM_WAYS)
        head_mask = layout.masks["head"]
        for i in range(20):
            plan = {"head": 6, "x": 4 + (i % 2) * 3, "y": 4}
            layout = pack_contiguous(plan, NUM_WAYS, previous=layout.masks)
            assert layout.masks["head"] == head_mask
            assert "head" not in layout.moved


class TestChurn:
    def test_moved_is_exactly_the_masks_that_changed(self):
        rng = random.Random(20180423)
        workloads = ["a", "b", "c", "d", "e"]
        plan = {w: 3 for w in workloads}
        previous = pack_contiguous(plan, NUM_WAYS).masks
        for _ in range(200):
            plan = dict(plan)
            plan[rng.choice(workloads)] = rng.randint(1, 5)
            if sum(plan.values()) > NUM_WAYS:
                continue
            layout = pack_contiguous(plan, NUM_WAYS, previous=previous)
            # Invariants: contiguous, disjoint, sized to plan.
            for wid, mask in layout.masks.items():
                assert is_contiguous(mask)
                assert mask_way_count(mask) == plan[wid]
            assert masks_disjoint(layout.masks)
            # moved = exactly the workloads whose span shifted.
            shifted = [
                wid
                for wid, mask in layout.masks.items()
                if previous.get(wid) is not None and previous[wid] != mask
            ]
            assert sorted(layout.moved) == sorted(shifted)
            previous = layout.masks

    def test_single_size_change_moves_at_most_downstream_spans(self):
        """Only workloads at-or-right-of the resized one may move."""
        plan = {"a": 4, "b": 4, "c": 4, "d": 4}
        layout = pack_contiguous(plan, NUM_WAYS)
        starts = {w: mask_ways(layout.masks[w])[0] for w in plan}
        resized = dict(plan, b=6)
        layout2 = pack_contiguous(resized, NUM_WAYS, previous=layout.masks)
        for wid in layout2.moved:
            assert starts[wid] >= starts["b"], (
                f"{wid} (left of the resized span) moved"
            )
