"""Golden-trace regression tests.

One small chaos scenario and one small churn scenario are pinned as
committed fixtures: the full JSONL event-bus trace plus the rendered
report.  The runs are seeded and every event field is simulation-time
derived, so a replay must be **byte-identical** — any diff means an
observable behavior change in the controller, the event vocabulary, or
the report renderers, and must be reviewed (not papered over).

To regenerate after an intentional change::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py

then inspect ``git diff tests/fixtures`` before committing.
"""

import io
import json
import os
from pathlib import Path

from repro.cloud.scenario import load_churn_scenario
from repro.engine.events import EventBus, JsonlTraceWriter, use_bus
from repro.faults.chaos import run_chaos
from repro.harness.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REGEN = os.environ.get("GOLDEN_REGEN") == "1"

CHAOS_SCENARIO = FIXTURES / "golden_chaos_scenario.json"
CHURN_SCENARIO = FIXTURES / "golden_churn_scenario.json"


def _check_golden(golden: Path, actual: str) -> None:
    if REGEN:
        golden.write_text(actual)
    assert golden.exists(), (
        f"missing fixture {golden.name}; regenerate with GOLDEN_REGEN=1"
    )
    expected = golden.read_text()
    assert actual == expected, (
        f"{golden.name} drifted from the committed golden copy; if the "
        "change is intentional, regenerate with GOLDEN_REGEN=1 and review "
        "the diff"
    )


class TestChaosGolden:
    def test_trace_replays_byte_identical(self, tmp_path):
        trace = tmp_path / "chaos.jsonl"
        run_chaos(str(CHAOS_SCENARIO), trace=str(trace))
        _check_golden(FIXTURES / "golden_chaos_trace.jsonl", trace.read_text())

    def test_report_replays_byte_identical(self):
        report = run_chaos(str(CHAOS_SCENARIO))
        _check_golden(
            FIXTURES / "golden_chaos_report.json", report.to_json() + "\n"
        )

    def test_two_runs_agree_with_each_other(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_chaos(str(CHAOS_SCENARIO), trace=str(a))
        run_chaos(str(CHAOS_SCENARIO), trace=str(b))
        assert a.read_text() == b.read_text()


class TestChurnGolden:
    def _run_traced(self) -> str:
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        bus = EventBus()
        bus.subscribe(writer)
        with use_bus(bus):
            fleet, duration_s = load_churn_scenario(str(CHURN_SCENARIO))
            fleet.run(duration_s)
        writer.close()
        return buffer.getvalue()

    def test_trace_replays_byte_identical(self):
        _check_golden(FIXTURES / "golden_churn_trace.jsonl", self._run_traced())

    def test_report_replays_byte_identical(self, capsys):
        exit_code = main(["churn", str(CHURN_SCENARIO)])
        out = capsys.readouterr().out
        assert exit_code == 0
        _check_golden(FIXTURES / "golden_churn_report.txt", out)

    def test_two_runs_agree_with_each_other(self):
        assert self._run_traced() == self._run_traced()


def test_golden_traces_are_valid_jsonl():
    for name in ("golden_chaos_trace.jsonl", "golden_churn_trace.jsonl"):
        path = FIXTURES / name
        if not path.exists():  # pragma: no cover - regen bootstrap only
            continue
        lines = path.read_text().splitlines()
        assert lines, f"{name} is empty"
        events = [json.loads(line) for line in lines]
        assert all("event" in ev and "time_s" in ev for ev in events)
