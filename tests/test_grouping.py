"""Tests for repro.core.grouping: tenant grouping beyond 16 classes."""

import pytest

from repro.core.grouping import TenantGrouper
from repro.core.states import WorkloadState

K = WorkloadState.KEEPER
D = WorkloadState.DONOR
S = WorkloadState.STREAMING
R = WorkloadState.RECEIVER


class TestPlentyOfSlots:
    def test_everyone_isolated_when_room(self):
        grouper = TenantGrouper(max_slots=15, stickiness=False)
        states = {f"t{i}": K for i in range(10)}
        plan = grouper.plan(states)
        assert plan.num_slots == 10
        assert all(len(members) == 1 for members in plan.groups.values())

    def test_empty_input(self):
        plan = TenantGrouper().plan({})
        assert plan.num_slots == 0


class TestScarceSlots:
    def test_donors_pool_when_slots_run_out(self):
        grouper = TenantGrouper(max_slots=4, stickiness=False)
        states = {"a": K, "b": R, "c": D, "d": D, "e": S}
        plan = grouper.plan(states, order=["a", "b", "c", "d", "e"])
        # The three poolable tenants share one slot; the two isolating ones
        # get dedicated slots.
        pooled_slot = plan.slot_of["c"]
        assert plan.slot_of["d"] == pooled_slot
        assert plan.slot_of["e"] == pooled_slot
        assert plan.slot_of["a"] != pooled_slot
        assert plan.slot_of["b"] != pooled_slot

    def test_isolating_overflow_shares_final_slot(self):
        grouper = TenantGrouper(max_slots=3, stickiness=False)
        states = {f"t{i}": R for i in range(5)}
        plan = grouper.plan(states, order=sorted(states))
        assert plan.num_slots <= 3
        counts = sorted(len(m) for m in plan.groups.values())
        assert counts == [1, 1, 3]

    def test_slot_budget_respected(self):
        grouper = TenantGrouper(max_slots=5, stickiness=False)
        states = {f"t{i}": (D if i % 2 else K) for i in range(20)}
        plan = grouper.plan(states)
        assert plan.num_slots <= 5
        assert set(plan.slot_of) == set(states)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            TenantGrouper(max_slots=0).plan({"a": K})


class TestStickiness:
    def test_stable_tenants_keep_their_slots(self):
        grouper = TenantGrouper(max_slots=4)
        states = {"a": K, "b": R, "c": D, "d": D, "e": S}
        first = grouper.plan(states, order=["a", "b", "c", "d", "e"])
        second = grouper.plan(states, order=["b", "a", "d", "c", "e"])
        # Same behaviour, reshuffled input order: nobody moves.
        assert second.slot_of == first.slot_of

    def test_waking_donor_leaves_the_pool(self):
        grouper = TenantGrouper(max_slots=4)
        states = {"a": K, "b": R, "c": D, "d": D, "e": S}
        first = grouper.plan(states, order=["a", "b", "c", "d", "e"])
        pool = first.slot_of["d"]
        # Tenant c becomes cache-hungry: it must leave the shared slot.
        states["c"] = R
        second = grouper.plan(states, order=["a", "b", "c", "d", "e"])
        assert second.slot_of["c"] != pool or not second.groups.get(pool) or (
            len(second.groups[second.slot_of["c"]]) == 1
        )

    def test_plan_inverse_views_agree(self):
        grouper = TenantGrouper(max_slots=4, stickiness=False)
        states = {"a": K, "b": D, "c": D}
        plan = grouper.plan(states)
        for slot, members in plan.groups.items():
            for m in members:
                assert plan.slot_of[m] == slot
