"""Unit tests for the bus→metrics collector and the bench payload schema."""

import json

import pytest

from repro.cloud.slo import TenantSloStats
from repro.core.states import WorkloadState
from repro.engine.events import (
    AllocationPlanned,
    EventBus,
    FaultInjected,
    FaultRecovered,
    IntervalFinished,
    InvariantViolated,
    SampleCollected,
    SloViolated,
    StateTransition,
    TenantAdmitted,
    TenantDeparted,
    TenantRejected,
    WorkloadDeregistered,
    WorkloadRegistered,
)
from repro.obs.bench import (
    BENCH_FORMAT,
    MIN_BENCHMARKS,
    validate_bench_payload,
    write_bench,
)
from repro.obs.collectors import BusMetricsCollector, record_slo_stats


def _sample(**kw):
    base = dict(
        time_s=1.0,
        source="controller",
        workload_id="w0",
        ipc=1.5,
        llc_miss_rate=0.2,
        mem_refs_per_instr=0.01,
        instructions=1000,
        cycles=800,
        idle=False,
    )
    base.update(kw)
    return SampleCollected(**base)


class TestBusMetricsCollector:
    def test_counts_every_event_by_type(self):
        c = BusMetricsCollector()
        c.on_event(_sample())
        c.on_event(_sample())
        c.on_event(IntervalFinished(time_s=1.0, source="controller"))
        assert c.registry.value("dcat_events_total", event="SampleCollected") == 2
        assert c.registry.value("dcat_events_total", event="IntervalFinished") == 1
        assert c.registry.value("dcat_intervals_total", loop="controller") == 1

    def test_only_active_controller_samples_feed_histograms(self):
        c = BusMetricsCollector()
        c.on_event(_sample(ipc=1.5))
        c.on_event(_sample(source="sim"))
        c.on_event(_sample(idle=True))
        ipc = c.registry.get("dcat_workload_ipc")
        (sample,) = ipc.samples()
        assert sample[1].count == 1

    def test_grants_and_harvests_attributed_to_tracked_state(self):
        c = BusMetricsCollector()
        c.on_event(WorkloadRegistered(time_s=0.0, workload_id="a", cos_id=1,
                                      baseline_ways=3))
        c.on_event(AllocationPlanned(time_s=0.0, plan={"a": 3}, free_ways=17))
        c.on_event(StateTransition(time_s=1.0, workload_id="a",
                                   old_state="keeper", new_state="receiver"))
        c.on_event(AllocationPlanned(time_s=1.0, plan={"a": 5}, free_ways=15))
        c.on_event(AllocationPlanned(time_s=2.0, plan={"a": 2}, free_ways=18))
        r = c.registry
        # First plan lands while "a" is still a keeper (registration default).
        assert r.value("dcat_ways_granted_total", state="keeper") == 3
        assert r.value("dcat_ways_granted_total", state="receiver") == 2
        assert r.value("dcat_ways_harvested_total", state="receiver") == 3
        assert r.value("dcat_free_ways") == 18
        assert r.value(
            "dcat_state_transitions_total", old_state="keeper", new_state="receiver"
        ) == 1

    def test_unknown_workload_attributed_to_unknown_state(self):
        c = BusMetricsCollector()
        c.on_event(AllocationPlanned(time_s=0.0, plan={"ghost": 4}, free_ways=16))
        assert c.registry.value(
            "dcat_ways_granted_total", state=WorkloadState.UNKNOWN.value
        ) == 4

    def test_state_gauge_follows_lifecycle(self):
        c = BusMetricsCollector()
        c.on_event(WorkloadRegistered(time_s=0.0, workload_id="a", cos_id=1,
                                      baseline_ways=3))
        c.on_event(WorkloadRegistered(time_s=0.0, workload_id="b", cos_id=2,
                                      baseline_ways=3))
        c.on_event(StateTransition(time_s=1.0, workload_id="a",
                                   old_state="keeper", new_state="donor"))
        assert c.registry.value("dcat_workloads", state="keeper") == 1
        assert c.registry.value("dcat_workloads", state="donor") == 1
        c.on_event(WorkloadDeregistered(time_s=2.0, workload_id="a", cos_id=1))
        assert c.registry.value("dcat_workloads", state="donor") == 0

    def test_fault_and_tenant_counters(self):
        c = BusMetricsCollector()
        c.on_event(FaultInjected(time_s=0.0, kind="msr_write_fail",
                                 target="w0", detail=""))
        c.on_event(FaultRecovered(time_s=0.1, kind="msr_write_fail",
                                  target="w0", action="retried", attempts=2))
        c.on_event(InvariantViolated(time_s=0.2, invariant="contiguous_masks",
                                     detail=""))
        c.on_event(TenantAdmitted(time_s=1.0, tenant_id="t0", machine="m0",
                                  baseline_ways=2))
        c.on_event(TenantRejected(time_s=1.0, tenant_id="t1", reason="full"))
        c.on_event(TenantDeparted(time_s=2.0, tenant_id="t0", machine="m0",
                                  reason="lease_end"))
        c.on_event(SloViolated(time_s=2.0, tenant_id="t0", machine="m0",
                               ipc=0.5, entitled_ipc=1.0))
        r = c.registry
        assert r.value("dcat_faults_injected_total", kind="msr_write_fail") == 1
        assert r.value("dcat_fault_recoveries_total", action="retried") == 1
        assert r.value(
            "dcat_invariant_violations_total", invariant="contiguous_masks"
        ) == 1
        assert r.value("dcat_tenant_lifecycle_total", action="admitted") == 1
        assert r.value("dcat_tenant_lifecycle_total", action="rejected") == 1
        assert r.value("dcat_tenant_lifecycle_total", action="departed") == 1
        assert r.value("dcat_slo_violations_total", tenant="t0") == 1

    def test_attach_detach(self):
        bus = EventBus()
        c = BusMetricsCollector(bus=bus)
        with pytest.raises(RuntimeError):
            c.attach(bus)
        bus.emit(IntervalFinished(time_s=0.0, source="sim"))
        c.detach()
        bus.emit(IntervalFinished(time_s=1.0, source="sim"))
        assert c.registry.value("dcat_intervals_total", loop="sim") == 1

    def test_determinism_same_stream_same_registry(self):
        events = [
            WorkloadRegistered(time_s=0.0, workload_id="a", cos_id=1,
                               baseline_ways=3),
            AllocationPlanned(time_s=0.0, plan={"a": 3}, free_ways=17),
            _sample(),
        ]
        snapshots = []
        for _ in range(2):
            c = BusMetricsCollector()
            for ev in events:
                c.on_event(ev)
            from repro.obs.export import render_prometheus
            snapshots.append(render_prometheus(c.registry))
        assert snapshots[0] == snapshots[1]


def test_record_slo_stats_gauges():
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    stats = TenantSloStats(tenant_id="t0", machine="m0", admitted_s=0.0)
    stats.active_intervals = 10
    stats.violation_intervals = 3
    stats.violation_spans = [(1.0, 2.0), (5.0, 7.5)]
    stats.normalized_sum = 9.0
    record_slo_stats(registry, {"t0": stats})
    assert registry.value("dcat_slo_active_intervals", tenant="t0") == 10
    assert registry.value("dcat_slo_violation_intervals", tenant="t0") == 3
    assert registry.value("dcat_slo_violation_spans", tenant="t0") == 2
    assert registry.value("dcat_slo_violation_seconds", tenant="t0") == 3.5
    assert registry.value(
        "dcat_slo_mean_normalized_ipc", tenant="t0"
    ) == pytest.approx(0.9)


def _good_payload():
    return {
        "format": BENCH_FORMAT,
        "quick": True,
        "benchmarks": [
            {
                "name": f"bench_{i}",
                "note": "n",
                "iterations": 10,
                "repeats": 3,
                "best_s": 1e-6,
                "median_s": 2e-6,
                "mean_s": 2e-6,
            }
            for i in range(MIN_BENCHMARKS)
        ],
    }


class TestBenchPayload:
    def test_good_payload_validates(self):
        validate_bench_payload(_good_payload())

    def test_wrong_format_rejected(self):
        payload = _good_payload()
        payload["format"] = "other/v9"
        with pytest.raises(ValueError, match="format"):
            validate_bench_payload(payload)

    def test_too_few_benchmarks_rejected(self):
        payload = _good_payload()
        payload["benchmarks"] = payload["benchmarks"][: MIN_BENCHMARKS - 1]
        with pytest.raises(ValueError):
            validate_bench_payload(payload)

    def test_missing_key_rejected(self):
        payload = _good_payload()
        del payload["benchmarks"][0]["best_s"]
        with pytest.raises(ValueError, match="best_s"):
            validate_bench_payload(payload)

    def test_duplicate_names_rejected(self):
        payload = _good_payload()
        payload["benchmarks"][1]["name"] = payload["benchmarks"][0]["name"]
        with pytest.raises(ValueError):
            validate_bench_payload(payload)

    def test_nonpositive_timing_rejected(self):
        payload = _good_payload()
        payload["benchmarks"][2]["best_s"] = 0.0
        with pytest.raises(ValueError):
            validate_bench_payload(payload)

    def test_best_exceeding_mean_rejected(self):
        payload = _good_payload()
        payload["benchmarks"][0]["best_s"] = 5e-6
        with pytest.raises(ValueError):
            validate_bench_payload(payload)

    def test_write_bench_round_trips(self, tmp_path):
        out = tmp_path / "BENCH.json"
        write_bench(_good_payload(), str(out))
        loaded = json.loads(out.read_text())
        assert loaded["format"] == BENCH_FORMAT
        validate_bench_payload(loaded)

    def test_write_bench_refuses_invalid(self, tmp_path):
        payload = _good_payload()
        payload["benchmarks"] = []
        out = tmp_path / "BENCH.json"
        with pytest.raises(ValueError):
            write_bench(payload, str(out))
        assert not out.exists()
