"""Tests for repro.platform: machine wiring, VM pinning, managers, and sim."""

import pytest

from repro.cat.cos import mask_way_count
from repro.core.states import WorkloadState
from repro.mem.address import MB
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager, SharedCacheManager, StaticCatManager
from repro.platform.sim import CloudSimulation
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mlr import MlrWorkload
from repro.workloads.spec import spec_workload


def small_machine(seed=7):
    return Machine(seed=seed, cycles_per_interval=500_000)


def make_vms(machine, *workloads, baseline=3):
    vms = [
        VirtualMachine(name=w.name, workload=w, baseline_ways=baseline)
        for w in workloads
    ]
    return pin_vms(vms, machine.spec)


class TestMachine:
    def test_defaults_to_paper_socket(self):
        m = Machine()
        assert m.spec.name == "Xeon E5-2697 v4"
        assert m.num_ways == 20

    def test_one_pmu_per_thread(self):
        m = small_machine()
        assert len(m.pmus) == m.spec.num_threads

    def test_effective_ways_follows_cat(self):
        m = small_machine()
        m.cat.set_cos_mask(1, 0b111)
        m.cat.associate_core(0, 1)
        assert m.effective_ways(0) == 3

    def test_scaled_frequency(self):
        m = Machine(cycles_per_interval=1_000_000, interval_s=0.5)
        assert m.scaled_frequency_hz == pytest.approx(2_000_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(cycles_per_interval=0)
        with pytest.raises(ValueError):
            Machine(interval_s=0.0)


class TestPinning:
    def test_dedicated_threads(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(4 * MB), LookbusyWorkload())
        used = [t for vm in vms for t in vm.vcpus]
        assert len(used) == len(set(used)) == 4

    def test_too_many_vms_rejected(self):
        machine = small_machine()
        workloads = [LookbusyWorkload(name=f"lb{i}") for i in range(19)]
        with pytest.raises(ValueError, match="threads"):
            make_vms(machine, *workloads)

    def test_busy_vcpus_respects_parallelism(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(4 * MB), LookbusyWorkload())
        assert len(vms[0].busy_vcpus) == 1  # single-threaded MLR
        assert len(vms[1].busy_vcpus) == 2  # lookbusy spins everything

    def test_baseline_validation(self):
        with pytest.raises(ValueError):
            VirtualMachine(name="x", workload=LookbusyWorkload(), baseline_ways=0)


class TestManagers:
    def test_static_manager_programs_baselines(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(4 * MB), LookbusyWorkload())
        StaticCatManager().setup(machine, vms)
        assert mask_way_count(machine.cat.effective_mask(vms[0].vcpus[0])) == 3
        assert not machine.cat.masks_overlap(1, 2)

    def test_static_overflow_rejected(self):
        machine = small_machine()
        vms = make_vms(
            machine, MlrWorkload(4 * MB), LookbusyWorkload(), baseline=11
        )
        with pytest.raises(ValueError, match="exceeds"):
            StaticCatManager().setup(machine, vms)

    def test_shared_manager_resets_cat(self):
        machine = small_machine()
        machine.cat.set_cos_mask(1, 0b1)
        vms = make_vms(machine, MlrWorkload(4 * MB))
        SharedCacheManager().setup(machine, vms)
        assert machine.cat.cos_mask(1) == (1 << 20) - 1

    def test_dcat_manager_tracks_states(self):
        machine = small_machine()
        vms = make_vms(machine, LookbusyWorkload())
        manager = DCatManager()
        sim = CloudSimulation(machine, vms, manager)
        sim.run(3.0)
        assert manager.state_of("lookbusy") is WorkloadState.DONOR
        assert manager.state_of("nonexistent") is None


class TestSimulation:
    def test_records_one_per_interval(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(4 * MB))
        sim = CloudSimulation(machine, vms, StaticCatManager())
        result = sim.run(5.0)
        assert len(result.timeline("mlr-4mb")) == 5

    def test_counter_identities_in_records(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(4 * MB))
        result = CloudSimulation(machine, vms, StaticCatManager()).run(4.0)
        rec = result.timeline("mlr-4mb")[-1]
        assert rec.l1_refs == pytest.approx(rec.instructions * 0.25, rel=0.02)
        assert rec.llc_misses <= rec.llc_refs <= rec.l1_refs
        assert rec.ipc == pytest.approx(rec.instructions / rec.cycles)

    def test_static_hit_rate_matches_analytic(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(4 * MB), baseline=4)
        result = CloudSimulation(machine, vms, StaticCatManager()).run(3.0)
        rec = result.timeline("mlr-4mb")[-1]
        from repro.cache.analytical import AccessPattern

        expected = machine.analytic.hit_rate(AccessPattern.RANDOM, 4 * MB, 4)
        assert rec.llc_hit_rate == pytest.approx(expected)

    def test_shared_mode_reports_fractional_ways(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(16 * MB), MlrWorkload(8 * MB))
        result = CloudSimulation(machine, vms, SharedCacheManager()).run(4.0)
        ways = result.final("mlr-16mb", "ways")
        assert 0 < ways < 20
        assert ways != int(ways) or True  # fractional shares allowed

    def test_run_to_completion_interpolates(self):
        machine = small_machine()
        vms = make_vms(machine, spec_workload("namd", instructions=200_000))
        sim = CloudSimulation(machine, vms, StaticCatManager())
        result = sim.run_until_finished(["namd"], max_duration_s=60.0)
        finish = result.completion_time("namd", "namd")
        assert finish is not None
        assert finish != round(finish)  # sub-interval resolution

    def test_same_seed_reproducible(self):
        def run():
            machine = small_machine(seed=99)
            vms = make_vms(machine, MlrWorkload(8 * MB))
            return CloudSimulation(machine, vms, DCatManager()).run(6.0)

        a, b = run(), run()
        assert a.series("mlr-8mb", "ipc") == b.series("mlr-8mb", "ipc")
        assert a.series("mlr-8mb", "ways") == b.series("mlr-8mb", "ways")

    def test_duplicate_vm_names_rejected(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(4 * MB))
        clone = VirtualMachine(
            name="mlr-4mb", workload=MlrWorkload(4 * MB), vcpus=(4, 5)
        )
        with pytest.raises(ValueError, match="unique"):
            CloudSimulation(machine, vms + [clone], StaticCatManager())

    def test_unpinned_vm_rejected(self):
        machine = small_machine()
        vm = VirtualMachine(name="x", workload=LookbusyWorkload())
        with pytest.raises(ValueError, match="vCPUs"):
            CloudSimulation(machine, [vm], StaticCatManager())

    def test_watch_unknown_vm_rejected(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(4 * MB))
        sim = CloudSimulation(machine, vms, StaticCatManager())
        with pytest.raises(ValueError, match="unknown"):
            sim.run_until_finished(["ghost"])

    def test_result_helpers(self):
        machine = small_machine()
        vms = make_vms(machine, MlrWorkload(4 * MB))
        result = CloudSimulation(machine, vms, StaticCatManager()).run(6.0)
        assert result.mean("mlr-4mb", "ipc") > 0
        assert result.steady_mean("mlr-4mb", "ways", 3) == 3.0
        with pytest.raises(ValueError):
            result.mean("ghost", "ipc")


class TestRunDuration:
    """run() must neither create nor destroy virtual time (no round() drift)."""

    def make_sim(self, interval_s=0.5):
        machine = Machine(
            seed=7, cycles_per_interval=500_000, interval_s=interval_s
        )
        vms = make_vms(machine, LookbusyWorkload(name="busy"))
        return CloudSimulation(machine, vms, StaticCatManager())

    def steps(self, sim):
        return len(sim.result.timeline("busy"))

    def test_whole_multiples_unchanged(self):
        sim = self.make_sim(interval_s=0.5)
        sim.run(4.0)
        assert self.steps(sim) == 8

    def test_partial_interval_accumulates_instead_of_rounding(self):
        # The old int(round()) ran 1.25 s as 2 steps and dropped the
        # remainder; a following 0.25 s then rounded to 0 forever.
        sim = self.make_sim(interval_s=0.5)
        sim.run(1.25)
        assert self.steps(sim) == 2
        sim.run(0.25)  # banked 0.25 + 0.25 = one whole interval
        assert self.steps(sim) == 3

    def test_many_fractional_runs_conserve_time(self):
        sim = self.make_sim(interval_s=0.5)
        for _ in range(10):
            sim.run(0.3)  # 3.0 s total = 6 intervals
        assert self.steps(sim) == 6

    def test_strict_accepts_multiples(self):
        sim = self.make_sim(interval_s=0.5)
        sim.run(2.0, strict=True)
        assert self.steps(sim) == 4

    def test_strict_rejects_non_multiples(self):
        sim = self.make_sim(interval_s=0.5)
        with pytest.raises(ValueError, match="whole number"):
            sim.run(1.25, strict=True)
        assert self.steps(sim) == 0

    def test_negative_duration_rejected(self):
        sim = self.make_sim()
        with pytest.raises(ValueError, match=">= 0"):
            sim.run(-1.0)
