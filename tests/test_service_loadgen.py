"""Load-generator tests: plan determinism, percentiles, bench schema.

The end-to-end test runs a short real loadtest (daemon + open-loop
driver + replay verification) so the whole acceptance harness behind
``dcat-experiment loadtest`` is exercised in-tree, just at a fraction
of the committed bench's duration.
"""

import json

import pytest

from repro.service.loadgen import (
    MIN_REQUESTS,
    SERVICE_BENCH_FORMAT,
    percentile,
    plan_requests,
    run_loadtest,
    validate_service_bench,
    write_service_bench,
)

CONFIG = {
    "fleet": {"machines": 2, "socket": "xeon_d", "seed": 7, "interval_s": 1.0},
    "manager": {"type": "dcat"},
    "placement": "least_loaded",
    "service": {"tick_interval_s": 0.02},
}


class TestPlan:
    def test_plan_is_a_pure_function_of_its_knobs(self):
        a = plan_requests(40, 3.0, seed=11)
        b = plan_requests(40, 3.0, seed=11)
        assert a == b
        c = plan_requests(40, 3.0, seed=12)
        assert a != c

    def test_plan_shape(self):
        plan = plan_requests(50, 4.0, seed=7)
        assert plan, "a 4s plan at 50 rps cannot be empty"
        offsets = [entry.offset_s for entry in plan]
        assert offsets == sorted(offsets)
        assert all(0 < t < 4.0 for t in offsets)
        assert len({entry.name for entry in plan}) == len(plan)
        assert all(entry.baseline_ways in (2, 3) for entry in plan)
        assert all(entry.hold_s > 0 for entry in plan)

    def test_plan_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            plan_requests(0, 5.0)
        with pytest.raises(ValueError):
            plan_requests(30, -1.0)


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_small_samples_and_empty(self):
        assert percentile([], 99) == 0.0
        assert percentile([3.0], 50) == 3.0
        assert percentile([1.0, 2.0], 99) == 2.0

    def test_order_independent(self):
        assert percentile([5, 1, 4, 2, 3], 90) == percentile([1, 2, 3, 4, 5], 90)


def _valid_payload():
    latency = {"count": 10, "p50_s": 0.001, "p90_s": 0.002, "p99_s": 0.003,
               "max_s": 0.004}
    return {
        "format": SERVICE_BENCH_FORMAT,
        "quick": True,
        "config": {"rps": 30.0, "duration_s": 5.0, "seed": 7,
                   "tick_interval_s": 0.05, "planned_tenants": 10},
        "requests": {"total": 20, "admitted": 10, "rejected": {},
                     "detached": 10, "already_gone": 0, "errors": 0},
        "latency_s": {"admit": dict(latency), "detach": dict(latency)},
        "invariants": {"violations": 0, "intervals_checked": 42},
        "determinism": {"journal_commands": 30, "replay_identical": True,
                        "snapshot_sha256": "0" * 64},
        "slo": {"p99_budget_s": 0.25, "passed": True},
    }


class TestBenchSchema:
    def test_valid_payload_passes(self):
        payload = _valid_payload()
        assert validate_service_bench(payload) is payload

    @pytest.mark.parametrize(
        "mutate,fragment",
        [
            (lambda p: p.update(format="dcat-bench/v1"), "format"),
            (lambda p: p.update(quick="yes"), "quick"),
            (lambda p: p.pop("invariants"), "invariants"),
            (lambda p: p["requests"].update(total=-1), "requests.total"),
            (lambda p: p["requests"].update(rejected=[]), "requests.rejected"),
            (lambda p: p["latency_s"]["admit"].update(p99_s=-0.1),
             "latency_s.admit.p99_s"),
            (lambda p: p["latency_s"]["admit"].update(p50_s=9.0),
             "p50_s exceeds p99_s"),
            (lambda p: p["invariants"].update(violations=True),
             "invariants.violations"),
            (lambda p: p["determinism"].update(snapshot_sha256="abc"),
             "snapshot_sha256"),
            (lambda p: p["determinism"].update(replay_identical="true"),
             "replay_identical"),
            (lambda p: p["slo"].update(p99_budget_s=0), "p99_budget_s"),
        ],
    )
    def test_broken_payloads_name_the_field(self, mutate, fragment):
        payload = _valid_payload()
        mutate(payload)
        with pytest.raises(ValueError, match=fragment.replace(".", r"\.")):
            validate_service_bench(payload)

    def test_writer_validates_before_writing(self, tmp_path):
        payload = _valid_payload()
        payload["slo"].pop("passed")
        target = tmp_path / "B.json"
        with pytest.raises(ValueError):
            write_service_bench(payload, str(target))
        assert not target.exists()

    def test_writer_round_trips(self, tmp_path):
        target = tmp_path / "B.json"
        write_service_bench(_valid_payload(), str(target))
        loaded = json.loads(target.read_text())
        validate_service_bench(loaded)


class TestRunLoadtest:
    def test_short_end_to_end_run(self, tmp_path):
        out = tmp_path / "BENCH_service.json"
        payload, failures = run_loadtest(
            CONFIG, out=str(out), quick=True, rps=25, duration_s=1.2, seed=3
        )
        assert failures == []
        assert payload["requests"]["errors"] == 0
        assert payload["requests"]["admitted"] > 0
        assert payload["invariants"]["violations"] == 0
        assert payload["determinism"]["replay_identical"] is True
        assert payload["slo"]["passed"] is True
        validate_service_bench(json.loads(out.read_text()))

    def test_quick_mode_waives_the_request_floor(self):
        # A tiny run in quick mode must not fail on volume alone.
        payload, failures = run_loadtest(
            CONFIG, out=None, quick=True, rps=10, duration_s=0.8, seed=5
        )
        assert payload["requests"]["total"] < MIN_REQUESTS
        assert not any("requests driven" in f for f in failures)

    def test_bad_config_raises_service_config_error(self):
        from repro.service.config import ServiceConfigError

        with pytest.raises(ServiceConfigError, match="tenants"):
            run_loadtest(dict(CONFIG, tenants=[]), out=None, quick=True)


def test_committed_bench_is_valid_and_passing():
    """The repo's committed BENCH_service.json must satisfy the schema,
    the request floor, and every acceptance assertion it recorded."""
    from pathlib import Path

    path = Path(__file__).parent.parent / "BENCH_service.json"
    payload = validate_service_bench(json.loads(path.read_text()))
    assert payload["quick"] is False
    assert payload["requests"]["total"] >= MIN_REQUESTS
    assert payload["requests"]["errors"] == 0
    assert payload["invariants"]["violations"] == 0
    assert payload["determinism"]["replay_identical"] is True
    assert payload["slo"]["passed"] is True
