"""Failure-injection and edge-condition tests across the full stack."""


from repro.core.config import DCatConfig
from repro.harness.scenarios import build_stage, run_scenario
from repro.mem.address import MB
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager, StaticCatManager
from repro.platform.sim import CloudSimulation
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.base import PhasedWorkload, idle_phase
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mlr import MlrWorkload, mlr_phase
from repro.workloads.spec import spec_workload


class TestWorkloadChurn:
    def test_vm_finishing_mid_run_releases_its_ways(self):
        """A run-to-completion tenant goes idle; dCat harvests its ways."""
        machine = Machine(seed=3, cycles_per_interval=500_000)
        vms = pin_vms(
            [
                VirtualMachine(
                    "short",
                    spec_workload("omnetpp", instructions=1_000_000),
                    baseline_ways=5,
                ),
                VirtualMachine(
                    "long",
                    MlrWorkload(16 * MB, start_delay_s=1.0, name="long"),
                    baseline_ways=5,
                ),
            ],
            machine.spec,
        )
        sim = CloudSimulation(machine, vms, DCatManager())
        result = sim.run(30.0)
        assert vms[0].workload.finished
        # The finished tenant sits at the minimum; the survivor harvested.
        assert result.final("short", "ways") == 1.0
        assert result.final("long", "ways") > 5.0

    def test_rapid_phase_flapping_never_breaks_invariants(self):
        """A tenant alternating phases every two intervals stays managed."""

        def factory(machine):
            phases = []
            for i in range(8):
                p = mlr_phase(4 * MB if i % 2 else 12 * MB, duration_s=2.0,
                              name=f"flap-{i % 2}")
                from dataclasses import replace

                p = replace(
                    p,
                    behavior=replace(
                        p.behavior, refs_per_instr=0.25 if i % 2 else 0.4
                    ),
                )
                phases.append(p)
            phases.append(idle_phase())
            workload = PhasedWorkload(name="flappy", phases=phases)
            return build_stage(machine, [workload], baseline_ways=3, n_lookbusy=4)

        result = run_scenario(factory, DCatManager(), duration_s=20.0, seed=3)
        ways = result.series("flappy", "ways")
        assert all(1 <= w <= 20 for w in ways)
        # Phase changes keep reclaiming it to baseline: it returns to 3
        # multiple times.
        assert ways.count(3.0) >= 3


class TestExtremeNoise:
    def test_controller_survives_loud_measurement_noise(self):
        machine = Machine(seed=3, noise_sigma=0.05)  # 10x the default
        vms = pin_vms(
            [
                VirtualMachine(
                    "t",
                    MlrWorkload(8 * MB, start_delay_s=1.0, name="t"),
                    baseline_ways=3,
                ),
                VirtualMachine("lb", LookbusyWorkload(name="lb"), baseline_ways=3),
            ],
            machine.spec,
        )
        result = CloudSimulation(machine, vms, DCatManager()).run(25.0)
        # Noise may wobble decisions; the allocation must stay sane and the
        # workload must still end at or above its baseline.
        ways = result.series("t", "ways")
        assert all(1 <= w <= 20 for w in ways)
        assert result.final("t", "ways") >= 3


class TestDegenerateConfigurations:
    def test_single_vm_machine(self):
        machine = Machine(seed=1, cycles_per_interval=500_000)
        vms = pin_vms(
            [VirtualMachine("only", MlrWorkload(8 * MB, name="only"), baseline_ways=3)],
            machine.spec,
        )
        result = CloudSimulation(machine, vms, DCatManager()).run(15.0)
        # With the whole socket to itself it converges at its preferred size.
        assert result.final("only", "ways") >= 7

    def test_all_idle_cluster(self):
        machine = Machine(seed=1, cycles_per_interval=500_000)
        vms = pin_vms(
            [
                VirtualMachine(
                    f"idle-{i}",
                    PhasedWorkload(name=f"idle-{i}", phases=[idle_phase()]),
                    baseline_ways=3,
                )
                for i in range(5)
            ],
            machine.spec,
        )
        result = CloudSimulation(machine, vms, DCatManager()).run(5.0)
        for i in range(5):
            assert result.final(f"idle-{i}", "ways") == 1.0

    def test_tiny_interval(self):
        machine = Machine(seed=1, interval_s=0.25, cycles_per_interval=250_000)
        vms = pin_vms(
            [VirtualMachine("t", MlrWorkload(8 * MB, name="t"), baseline_ways=3)],
            machine.spec,
        )
        config = DCatConfig(interval_s=0.25)
        result = CloudSimulation(machine, vms, DCatManager(config=config)).run(5.0)
        assert len(result.timeline("t")) == 20

    def test_baselines_exactly_filling_the_cache(self):
        machine = Machine(seed=1, cycles_per_interval=500_000)
        vms = pin_vms(
            [
                VirtualMachine(
                    f"w{i}",
                    MlrWorkload(8 * MB, name=f"w{i}"),
                    baseline_ways=4,
                )
                for i in range(5)  # 5 x 4 = all 20 ways
            ],
            machine.spec,
        )
        result = CloudSimulation(machine, vms, DCatManager()).run(10.0)
        total = sum(result.final(f"w{i}", "ways") for i in range(5))
        assert total <= 20


class TestStaticManagerEdges:
    def test_static_manager_is_truly_static(self):
        def factory(machine):
            return build_stage(
                machine,
                [MlrWorkload(16 * MB, start_delay_s=1.0, name="t")],
                baseline_ways=3,
                n_lookbusy=4,
            )

        result = run_scenario(factory, StaticCatManager(), duration_s=15.0, seed=3)
        assert set(result.series("t", "ways")) == {3.0}
