"""Tests for repro.mem.address: geometry math and address decomposition."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mem.address import KB, MB, CacheGeometry, is_power_of_two


class TestIsPowerOfTwo:
    def test_accepts_powers(self):
        for exp in range(20):
            assert is_power_of_two(1 << exp)

    def test_rejects_non_powers(self):
        for value in (0, -1, 3, 6, 12, 1000):
            assert not is_power_of_two(value)


class TestGeometryValidation:
    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="line_size"):
            CacheGeometry(line_size=48, num_sets=16, num_ways=4)

    def test_num_sets_must_be_positive(self):
        with pytest.raises(ValueError, match="num_sets"):
            CacheGeometry(line_size=64, num_sets=0, num_ways=4)

    def test_num_ways_must_be_positive(self):
        with pytest.raises(ValueError, match="num_ways"):
            CacheGeometry(line_size=64, num_sets=16, num_ways=0)

    def test_non_power_of_two_sets_allowed(self):
        geo = CacheGeometry(line_size=64, num_sets=36864, num_ways=20)
        assert geo.num_sets == 36864


class TestDerivedSizes:
    def test_capacity(self):
        geo = CacheGeometry(line_size=64, num_sets=1024, num_ways=16)
        assert geo.capacity_bytes == 1 * MB

    def test_way_bytes(self):
        geo = CacheGeometry(line_size=64, num_sets=1024, num_ways=16)
        assert geo.way_bytes == 64 * KB

    def test_ways_for_bytes_rounds_up(self):
        geo = CacheGeometry(line_size=64, num_sets=1024, num_ways=16)
        assert geo.ways_for_bytes(1) == 1
        assert geo.ways_for_bytes(64 * KB) == 1
        assert geo.ways_for_bytes(64 * KB + 1) == 2

    def test_ways_for_bytes_minimum_one(self):
        geo = CacheGeometry()
        assert geo.ways_for_bytes(0) == 1


class TestDecomposition:
    def setup_method(self):
        self.geo = CacheGeometry(line_size=64, num_sets=128, num_ways=8)

    def test_line_address_alignment(self):
        assert self.geo.line_address(0) == 0
        assert self.geo.line_address(63) == 0
        assert self.geo.line_address(64) == 64
        assert self.geo.line_address(130) == 128

    def test_set_index_wraps(self):
        line_span = 64 * 128
        assert self.geo.set_index(0) == 0
        assert self.geo.set_index(64) == 1
        assert self.geo.set_index(line_span) == 0

    def test_tag_increments_per_full_span(self):
        line_span = 64 * 128
        assert self.geo.tag(0) == 0
        assert self.geo.tag(line_span - 1) == 0
        assert self.geo.tag(line_span) == 1

    def test_line_id_round_trip(self):
        for paddr in (0, 64, 4096, 999936, 12345 * 64):
            s = self.geo.set_index(paddr)
            t = self.geo.tag(paddr)
            assert self.geo.line_id_of(s, t) == paddr // 64

    def test_vectorized_matches_scalar(self):
        paddrs = np.array([0, 64, 128, 8191, 65536, 10**9], dtype=np.int64)
        sets = self.geo.set_indices(paddrs)
        tags = self.geo.tags(paddrs)
        for i, p in enumerate(paddrs):
            assert sets[i] == self.geo.set_index(int(p))
            assert tags[i] == self.geo.tag(int(p))

    @given(st.integers(min_value=0, max_value=2**46))
    def test_decomposition_is_bijective(self, paddr):
        geo = CacheGeometry(line_size=64, num_sets=36864, num_ways=20)
        line_id = paddr >> geo.offset_bits
        assert geo.line_id_of(geo.set_index(paddr), geo.tag(paddr)) == line_id


class TestPaperMachines:
    def test_xeon_d_capacity(self):
        geo = CacheGeometry.xeon_d()
        assert geo.capacity_bytes == 12 * MB
        assert geo.num_ways == 12

    def test_xeon_e5_capacity(self):
        geo = CacheGeometry.xeon_e5()
        assert geo.capacity_bytes == 45 * MB
        assert geo.num_ways == 20

    def test_xeon_e5_way_size_matches_paper(self):
        # Paper: "The capacity of each cache way is 2.25 MB."
        geo = CacheGeometry.xeon_e5()
        assert geo.way_bytes == int(2.25 * MB)
