"""Tests for repro.mem.paging: page tables and translation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.address import MB
from repro.mem.paging import PAGE_2M, PAGE_4K, PageTable
from repro.mem.paging import OutOfPhysicalMemoryError


def small_table(page_size=PAGE_4K, seed=7):
    return PageTable(
        page_size=page_size, phys_bytes=64 * MB, rng=np.random.default_rng(seed)
    )


class TestValidation:
    def test_rejects_odd_page_size(self):
        with pytest.raises(ValueError, match="page_size"):
            PageTable(page_size=8192)

    def test_rejects_non_power_of_two_phys(self):
        with pytest.raises(ValueError, match="power of two"):
            PageTable(phys_bytes=3 * MB)

    def test_rejects_tiny_phys(self):
        with pytest.raises(ValueError, match="too small"):
            PageTable(phys_bytes=2 * MB)

    def test_rejects_empty_buffer(self):
        with pytest.raises(ValueError, match="positive"):
            small_table().map_buffer(0)


class TestMapping:
    def test_map_page_idempotent(self):
        table = small_table()
        frame_a = table.map_page(0x1000)
        frame_b = table.map_page(0x1000)
        assert frame_a == frame_b

    def test_distinct_pages_get_distinct_frames(self):
        table = small_table()
        frames = {table.map_page(i * PAGE_4K) for i in range(512)}
        assert len(frames) == 512

    def test_map_buffer_covers_all_pages(self):
        table = small_table()
        buf = table.map_buffer(10 * PAGE_4K + 1)
        # Translation of the final byte must not fault.
        assert table.translate(buf.vbase + buf.size - 1) >= 0

    def test_buffers_do_not_overlap_virtually(self):
        table = small_table()
        a = table.map_buffer(1 * MB)
        b = table.map_buffer(1 * MB)
        assert a.vend <= b.vbase or b.vend <= a.vbase

    def test_mapped_bytes_accounting(self):
        table = small_table()
        table.map_buffer(8 * PAGE_4K)
        assert table.mapped_bytes == 8 * PAGE_4K

    def test_frame_exhaustion_raises(self):
        table = PageTable(
            page_size=PAGE_2M, phys_bytes=8 * MB, rng=np.random.default_rng(1)
        )
        table.map_buffer(8 * MB)  # consumes all four 2 MB frames
        with pytest.raises(OutOfPhysicalMemoryError):
            table.map_buffer(2 * MB)


class TestTranslation:
    def test_offset_preserved_within_page(self):
        table = small_table()
        buf = table.map_buffer(PAGE_4K)
        base = table.translate(buf.vbase)
        assert table.translate(buf.vbase + 123) == base + 123

    def test_unmapped_translation_faults(self):
        table = small_table()
        with pytest.raises(KeyError):
            table.translate(0xDEAD000)

    def test_vectorized_matches_scalar(self):
        table = small_table()
        buf = table.map_buffer(64 * PAGE_4K)
        offsets = np.array([0, 5, PAGE_4K, 10 * PAGE_4K + 99, buf.size - 1])
        vec = table.translate_buffer(buf, offsets)
        for off, paddr in zip(offsets, vec):
            assert table.translate(buf.vbase + int(off)) == int(paddr)

    def test_hugepage_contiguity(self):
        table = small_table(page_size=PAGE_2M)
        buf = table.map_buffer(PAGE_2M)
        offsets = np.arange(0, PAGE_2M, 64, dtype=np.int64)
        paddrs = table.translate_buffer(buf, offsets)
        # One huge page is physically contiguous end to end.
        assert np.all(np.diff(paddrs) == 64)

    def test_4k_pages_scatter(self):
        table = small_table()
        buf = table.map_buffer(64 * PAGE_4K)
        lines = table.physical_lines(buf)
        gaps = np.diff(np.sort(lines))
        # With random frames some inter-page gaps must exceed a page.
        assert (gaps > PAGE_4K).any()

    def test_physical_lines_count(self):
        table = small_table()
        buf = table.map_buffer(10 * PAGE_4K)
        assert table.physical_lines(buf, line_size=64).size == 10 * PAGE_4K // 64


class TestDeterminism:
    def test_same_seed_same_layout(self):
        t1, t2 = small_table(seed=42), small_table(seed=42)
        b1, b2 = t1.map_buffer(1 * MB), t2.map_buffer(1 * MB)
        assert np.array_equal(t1.physical_lines(b1), t2.physical_lines(b2))

    def test_different_seed_different_layout(self):
        t1, t2 = small_table(seed=1), small_table(seed=2)
        b1, b2 = t1.map_buffer(1 * MB), t2.map_buffer(1 * MB)
        assert not np.array_equal(t1.physical_lines(b1), t2.physical_lines(b2))


@settings(max_examples=25, deadline=None)
@given(size=st.integers(min_value=1, max_value=4 * MB))
def test_every_line_translates_into_phys_space(size):
    table = PageTable(phys_bytes=128 * MB, rng=np.random.default_rng(3))
    buf = table.map_buffer(size)
    lines = table.physical_lines(buf)
    assert (lines >= 0).all()
    assert (lines < 128 * MB).all()
    assert lines.size == -(-size // 64)
