"""Tests for repro.cpu: core timing model and socket topology."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.coremodel import CoreTimingModel, MemoryBehavior
from repro.cpu.socket import SocketSpec
from repro.hwcounters.events import L1_CACHE_HITS, L1_CACHE_MISSES, LLC_MISSES, LLC_REFERENCES


def quiet_model(**kw):
    kw.setdefault("noise_sigma", 0.0)
    return CoreTimingModel(**kw)


MEMHEAVY = MemoryBehavior(refs_per_instr=0.25, l1_miss_ratio=1.0, base_cpi=0.5, mlp=1.5)


class TestBehaviorValidation:
    def test_rejects_bad_l1_ratio(self):
        with pytest.raises(ValueError):
            MemoryBehavior(l1_miss_ratio=1.5)

    def test_rejects_bad_mlp(self):
        with pytest.raises(ValueError):
            MemoryBehavior(mlp=0.5)

    def test_rejects_bad_duty(self):
        with pytest.raises(ValueError):
            MemoryBehavior(duty_cycle=-0.1)

    def test_rejects_zero_cpi(self):
        with pytest.raises(ValueError):
            MemoryBehavior(base_cpi=0.0)


class TestCpi:
    def test_cpu_bound_behavior_is_base_cpi(self):
        model = quiet_model()
        b = MemoryBehavior(refs_per_instr=0.1, l1_miss_ratio=0.0, base_cpi=0.6)
        assert model.cpi(b, llc_hit_rate=0.0) == pytest.approx(0.6)

    def test_cpi_decreases_with_hit_rate(self):
        model = quiet_model()
        cpis = [model.cpi(MEMHEAVY, h) for h in (0.0, 0.5, 0.9, 1.0)]
        assert cpis == sorted(cpis, reverse=True)

    def test_mlp_divides_the_stall(self):
        model = quiet_model()
        chained = MemoryBehavior(refs_per_instr=0.25, l1_miss_ratio=1.0, mlp=1.0)
        streaming = MemoryBehavior(refs_per_instr=0.25, l1_miss_ratio=1.0, mlp=8.0)
        assert model.cpi(chained, 0.0) > model.cpi(streaming, 0.0)

    def test_known_value(self):
        model = quiet_model(llc_latency=40.0)
        b = MemoryBehavior(refs_per_instr=0.25, l1_miss_ratio=1.0, base_cpi=0.5, mlp=1.0)
        # All LLC hits: cpi = 0.5 + 0.25 * 1.0 * 40 = 10.5
        assert model.cpi(b, 1.0) == pytest.approx(10.5)

    def test_invalid_hit_rate_rejected(self):
        with pytest.raises(ValueError):
            quiet_model().cpi(MEMHEAVY, 1.5)


class TestCounterIdentities:
    def test_counter_relations_hold(self):
        model = quiet_model()
        act = model.execute_interval(MEMHEAVY, llc_hit_rate=0.8)
        l1_ref = act.event_counts[L1_CACHE_HITS] + act.event_counts[L1_CACHE_MISSES]
        assert l1_ref == pytest.approx(act.instructions * 0.25, rel=0.01)
        assert act.event_counts[LLC_REFERENCES] == pytest.approx(l1_ref, rel=0.01)
        assert act.event_counts[LLC_MISSES] == pytest.approx(
            act.event_counts[LLC_REFERENCES] * 0.2, rel=0.02
        )
        assert act.ipc == pytest.approx(1.0 / model.cpi(MEMHEAVY, 0.8), rel=0.01)

    def test_duty_cycle_scales_cycles(self):
        model = quiet_model(cycles_per_interval=1_000_000)
        half = MemoryBehavior(refs_per_instr=0.1, duty_cycle=0.5)
        act = model.execute_interval(half, 0.0)
        assert act.cycles == 500_000

    def test_avg_latency_decreases_with_hit_rate(self):
        model = quiet_model()
        lat_low = model.execute_interval(MEMHEAVY, 0.1).avg_mem_latency_cycles
        lat_high = model.execute_interval(MEMHEAVY, 0.99).avg_mem_latency_cycles
        assert lat_high < lat_low

    def test_loaded_dram_raises_latency(self):
        model = quiet_model()
        idle = model.execute_interval(MEMHEAVY, 0.5)
        loaded = model.execute_interval(MEMHEAVY, 0.5, dram_latency=600.0)
        assert loaded.avg_mem_latency_cycles > idle.avg_mem_latency_cycles
        assert loaded.ipc < idle.ipc

    def test_miss_traffic_helper(self):
        model = quiet_model()
        act = model.execute_interval(MEMHEAVY, 0.0)
        traffic = model.miss_traffic_lines_per_cycle(act)
        assert traffic == pytest.approx(
            act.event_counts[LLC_MISSES] / act.cycles
        )


class TestNoise:
    def test_zero_noise_deterministic(self):
        a = quiet_model().execute_interval(MEMHEAVY, 0.5)
        b = quiet_model().execute_interval(MEMHEAVY, 0.5)
        assert a.instructions == b.instructions

    def test_noise_jitters_ipc(self):
        model = CoreTimingModel(noise_sigma=0.01, rng=np.random.default_rng(0))
        vals = {model.execute_interval(MEMHEAVY, 0.5).instructions for _ in range(8)}
        assert len(vals) > 1

    def test_noise_is_small(self):
        model = CoreTimingModel(noise_sigma=0.005, rng=np.random.default_rng(0))
        base = quiet_model().execute_interval(MEMHEAVY, 0.5).ipc
        samples = [model.execute_interval(MEMHEAVY, 0.5).ipc for _ in range(50)]
        assert all(abs(s / base - 1) < 0.05 for s in samples)


@settings(max_examples=40, deadline=None)
@given(
    hit=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    refs=st.floats(min_value=0.0, max_value=1.0),
    miss=st.floats(min_value=0.0, max_value=1.0),
)
def test_counters_never_negative(hit, refs, miss):
    model = quiet_model()
    b = MemoryBehavior(refs_per_instr=refs, l1_miss_ratio=miss)
    act = model.execute_interval(b, hit)
    assert act.instructions >= 0
    assert all(v >= 0 for v in act.event_counts.values())


class TestSocket:
    def test_paper_machine(self):
        spec = SocketSpec.xeon_e5_2697v4()
        assert spec.num_cores == 18
        assert spec.num_threads == 36
        assert spec.llc.num_ways == 20

    def test_thread_siblings(self):
        spec = SocketSpec.xeon_e5_2697v4()
        assert spec.thread_siblings(0) == (0, 18)
        assert spec.thread_siblings(18) == (0, 18)
        assert spec.core_of(19) == 1

    def test_bounds(self):
        spec = SocketSpec.xeon_d()
        with pytest.raises(ValueError):
            spec.thread_siblings(99)
        with pytest.raises(ValueError):
            spec.core_of(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SocketSpec("x", 0, 1, 1e9, SocketSpec.xeon_d().llc)
