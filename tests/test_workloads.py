"""Tests for repro.workloads: phases, microbenchmarks, SPEC proxies."""

import numpy as np
import pytest

from repro.cache.analytical import AccessPattern
from repro.mem.address import MB
from repro.workloads.base import (
    PhasedWorkload,
    idle_phase,
    l1_miss_ratio_for,
)
from repro.workloads.lookbusy import LookbusyWorkload, lookbusy_phase
from repro.workloads.mload import (
    MloadWorkload,
    generate_mload_offsets,
    mload_phase,
)
from repro.workloads.mlr import MlrWorkload, generate_mlr_offsets, mlr_phase
from repro.workloads.spec import (
    SPEC_PROFILES,
    spec_benchmark_names,
    spec_workload,
)


class TestL1MissRatio:
    def test_none_pattern(self):
        assert l1_miss_ratio_for(AccessPattern.NONE, 10 * MB) == 0.0

    def test_l1_resident(self):
        assert l1_miss_ratio_for(AccessPattern.RANDOM, 16 * 1024) == 0.0

    def test_sequential_spatial_locality(self):
        assert l1_miss_ratio_for(AccessPattern.SEQUENTIAL, 60 * MB) == pytest.approx(
            8 / 64
        )

    def test_random_large_wss_mostly_misses(self):
        ratio = l1_miss_ratio_for(AccessPattern.RANDOM, 32 * MB)
        assert ratio > 0.99


class TestPhase:
    def test_duration_validation(self):
        with pytest.raises(ValueError):
            mlr_phase(MB, duration_s=-1.0)

    def test_instruction_validation(self):
        with pytest.raises(ValueError):
            mlr_phase(MB, instructions=0)

    def test_footprint_exposed(self):
        fp = mlr_phase(8 * MB).footprint
        assert fp.pattern is AccessPattern.RANDOM
        assert fp.wss_bytes == 8 * MB


class TestPhasedWorkload:
    def two_phase(self):
        return PhasedWorkload(
            "w",
            phases=[
                mlr_phase(MB, duration_s=2.0, name="p1"),
                mlr_phase(2 * MB, instructions=1000, name="p2"),
            ],
        )

    def test_initial_phase(self):
        w = self.two_phase()
        assert w.current_phase().name == "p1"
        assert not w.finished

    def test_time_bounded_transition(self):
        w = self.two_phase()
        w.advance(2.0, 500)
        assert w.current_phase().name == "p2"

    def test_work_bounded_transition(self):
        w = self.two_phase()
        w.advance(2.0, 0)
        w.advance(1.0, 999)
        assert w.current_phase().name == "p2"
        w.advance(1.0, 1)
        assert w.finished

    def test_finished_workload_reports_none(self):
        w = self.two_phase()
        w.advance(2.0, 0)
        w.advance(1.0, 1000)
        assert w.current_phase() is None
        w.advance(1.0, 100)  # harmless after finish

    def test_loop(self):
        w = PhasedWorkload(
            "w", phases=[mlr_phase(MB, duration_s=1.0, name="p")], loop=True
        )
        for _ in range(5):
            w.advance(1.0, 10)
        assert not w.finished
        assert w.current_phase().name == "p"

    def test_reset(self):
        w = self.two_phase()
        w.advance(2.0, 0)
        w.reset()
        assert w.current_phase().name == "p1"

    def test_start_delay_inserts_idle(self):
        w = PhasedWorkload("w", [mlr_phase(MB)], start_delay_s=3.0)
        assert "idle" in w.current_phase().name
        w.advance(3.0, 10)
        assert w.current_phase().name.startswith("mlr")

    def test_remaining_instructions(self):
        w = PhasedWorkload("w", [mlr_phase(MB, instructions=1000)])
        assert w.remaining_instructions() == 1000
        w.advance(1.0, 300)
        assert w.remaining_instructions() == 700

    def test_phase_progress(self):
        w = PhasedWorkload("w", [mlr_phase(MB, duration_s=4.0)])
        w.advance(1.0, 0)
        assert w.phase_progress() == pytest.approx(0.25)

    def test_negative_progress_rejected(self):
        with pytest.raises(ValueError):
            self.two_phase().advance(-1.0, 0)

    def test_needs_phases(self):
        with pytest.raises(ValueError):
            PhasedWorkload("w", [])

    def test_idle_phase_is_quiet(self):
        p = idle_phase(duration_s=1.0)
        assert p.behavior.duty_cycle <= 0.05
        assert p.pattern is AccessPattern.NONE


class TestMicrobenchmarks:
    def test_mlr_is_random(self):
        p = mlr_phase(8 * MB)
        assert p.pattern is AccessPattern.RANDOM
        assert p.behavior.mlp < 2.0  # latency bound

    def test_mload_is_streaming(self):
        p = mload_phase(60 * MB)
        assert p.pattern is AccessPattern.SEQUENTIAL
        assert p.behavior.mlp >= 4.0
        assert p.behavior.l1_miss_ratio == pytest.approx(0.125)

    def test_same_refs_per_instr(self):
        """MLR and MLOAD share the refs/instr signature (both tight loops)."""
        assert (
            mlr_phase(8 * MB).behavior.refs_per_instr
            == mload_phase(60 * MB).behavior.refs_per_instr
        )

    def test_lookbusy_no_llc_traffic(self):
        p = lookbusy_phase()
        assert p.behavior.l1_miss_ratio == 0.0
        assert p.pattern is AccessPattern.NONE

    def test_lookbusy_utilization_validation(self):
        with pytest.raises(ValueError):
            lookbusy_phase(utilization=0.0)

    def test_workload_names(self):
        assert MlrWorkload(8 * MB).name == "mlr-8mb"
        assert MloadWorkload().name == "mload-60mb"
        assert LookbusyWorkload().parallelism > 1

    def test_mload_uses_both_vcpus(self):
        assert MloadWorkload().parallelism == 2


class TestOffsetGenerators:
    def test_mlr_offsets_within_bounds(self):
        offsets = generate_mlr_offsets(1 * MB, 1000, rng=np.random.default_rng(0))
        assert offsets.size == 1000
        assert (offsets >= 0).all()
        assert (offsets < 1 * MB).all()
        assert (offsets % 64 == 0).all()

    def test_mload_offsets_sequential_and_cyclic(self):
        offsets = generate_mload_offsets(64 * 10, 25, start=0)
        assert offsets[0] == 0
        assert offsets[1] == 64
        assert offsets[10] == 0  # wrapped after 10 lines

    def test_mload_resume(self):
        first = generate_mload_offsets(64 * 10, 5, start=0)
        second = generate_mload_offsets(64 * 10, 5, start=5)
        assert second[0] == 5 * 64
        assert not np.array_equal(first, second)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_mlr_offsets(MB, -1)


class TestSpecProxies:
    def test_twenty_benchmarks(self):
        assert len(spec_benchmark_names()) == 20

    def test_paper_winners_present(self):
        names = spec_benchmark_names()
        for required in ("omnetpp", "astar", "libquantum", "mcf"):
            assert required in names

    def test_streaming_benchmarks_sequential(self):
        for name in ("libquantum", "lbm", "milc", "bwaves", "leslie3d"):
            assert SPEC_PROFILES[name].pattern is AccessPattern.SEQUENTIAL

    def test_every_profile_builds_a_valid_phase(self):
        for name in spec_benchmark_names():
            phase = SPEC_PROFILES[name].phase()
            assert phase.instructions > 0
            assert phase.behavior.refs_per_instr > 0

    def test_workload_factory(self):
        w = spec_workload("omnetpp", instructions=1234)
        assert w.current_phase().instructions == 1234

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown SPEC"):
            spec_workload("doom3")

    def test_small_benchmarks_are_llc_quiet(self):
        for name in ("perlbench", "hmmer", "namd", "gobmk"):
            behavior = SPEC_PROFILES[name].phase().behavior
            assert behavior.l1_miss_ratio < 0.05
