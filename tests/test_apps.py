"""Tests for the application workloads and the closed-loop client model."""

import pytest

from repro.cache.analytical import AccessPattern
from repro.workloads.clients import AppMetrics, ClosedLoopClient
from repro.workloads.database import LruBufferPool, PostgresWorkload
from repro.workloads.kvstore import RedisWorkload
from repro.workloads.search import ElasticsearchWorkload


class TestClosedLoopClient:
    def test_single_client_no_queueing(self):
        client = ClosedLoopClient(concurrency=1, think_time_s=0.0)
        m = client.solve(service_time_s=0.001, servers=2)
        assert m.avg_latency_s == pytest.approx(0.001)
        assert m.throughput_ops == pytest.approx(1000.0)

    def test_saturation_bound(self):
        client = ClosedLoopClient(concurrency=1000, think_time_s=0.0)
        m = client.solve(service_time_s=0.001, servers=2)
        # Throughput cannot exceed servers / service_time.
        assert m.throughput_ops <= 2000.0 * 1.001
        assert m.utilization == pytest.approx(1.0, abs=0.01)

    def test_latency_grows_with_population(self):
        small = ClosedLoopClient(10, 0.0).solve(0.001, 2)
        large = ClosedLoopClient(100, 0.0).solve(0.001, 2)
        assert large.avg_latency_s > small.avg_latency_s

    def test_p99_at_least_average(self):
        m = ClosedLoopClient(50, 0.0001).solve(0.001, 2)
        assert m.p99_latency_s >= m.avg_latency_s

    def test_faster_service_more_throughput(self):
        client = ClosedLoopClient(concurrency=240, think_time_s=0.0002)
        fast = client.solve(0.0005, 2)
        slow = client.solve(0.001, 2)
        assert fast.throughput_ops > slow.throughput_ops
        assert fast.avg_latency_s < slow.avg_latency_s

    def test_think_time_caps_offered_load(self):
        client = ClosedLoopClient(concurrency=4, think_time_s=1.0)
        m = client.solve(0.001, 2)
        assert m.throughput_ops == pytest.approx(4.0, rel=0.01)
        assert m.utilization < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopClient(0, 0.0)
        with pytest.raises(ValueError):
            ClosedLoopClient(1, -1.0)
        with pytest.raises(ValueError):
            ClosedLoopClient(1, 0.0).solve(0.0, 1)
        with pytest.raises(ValueError):
            ClosedLoopClient(1, 0.0).solve(0.1, 0)

    def test_scaled(self):
        m = AppMetrics(100.0, 0.01, 0.02, 0.5)
        assert m.scaled(2.0).throughput_ops == 200.0
        assert m.scaled(2.0).avg_latency_s == 0.01


class TestLruBufferPool:
    def test_hit_after_insert(self):
        pool = LruBufferPool(4)
        assert not pool.access(1)
        assert pool.access(1)

    def test_lru_eviction_order(self):
        pool = LruBufferPool(2)
        pool.access(1)
        pool.access(2)
        pool.access(1)  # refresh 1
        pool.access(3)  # evicts 2
        assert pool.access(1)
        assert not pool.access(2)

    def test_hit_rate_accounting(self):
        pool = LruBufferPool(10)
        for page in (1, 2, 1, 2):
            pool.access(page)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_warm_hit_rate_bounded(self):
        pool = LruBufferPool(100)
        rate = pool.warm_hit_rate(table_pages=1000, zipf_s=0.9, samples=4000)
        assert 0.2 < rate < 0.95

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LruBufferPool(0)


class TestAppWorkloads:
    def test_redis_footprint(self):
        redis = RedisWorkload()
        phase = redis.current_phase()
        assert phase.pattern is AccessPattern.HOTCOLD
        assert phase.wss_bytes > 150 * (1 << 20)
        assert redis.client.concurrency == 240  # 8 threads x 30 pipeline

    def test_postgres_pool_resident(self):
        pg = PostgresWorkload()
        assert pg.pool_hit_rate == 1.0  # 4 GB pool holds 10 M tuples

    def test_postgres_small_pool_costs_instructions(self):
        small = PostgresWorkload(buffer_pool_pages=2_000)
        resident = PostgresWorkload()
        assert small.pool_hit_rate < 1.0
        assert small.instr_per_op > resident.instr_per_op

    def test_elasticsearch_footprint(self):
        es = ElasticsearchWorkload()
        phase = es.current_phase()
        assert phase.pattern is AccessPattern.HOTCOLD
        assert es.instr_per_op > PostgresWorkload().instr_per_op

    def test_app_metrics_respond_to_cpi(self):
        redis = RedisWorkload()
        fast = redis.app_metrics(cpi=2.0, frequency_hz=2.3e9)
        slow = redis.app_metrics(cpi=8.0, frequency_hz=2.3e9)
        assert fast.throughput_ops > slow.throughput_ops
        assert fast.avg_latency_s < slow.avg_latency_s

    def test_app_metrics_none_while_idle(self):
        redis = RedisWorkload(start_delay_s=5.0)
        assert redis.app_metrics(cpi=2.0, frequency_hz=2.3e9) is None

    def test_app_metrics_validation(self):
        redis = RedisWorkload()
        with pytest.raises(ValueError):
            redis.app_metrics(cpi=0.0, frequency_hz=1e9)

    def test_apps_parallel_across_vcpus(self):
        assert RedisWorkload().parallelism == 2
        assert PostgresWorkload().parallelism == 2
