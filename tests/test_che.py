"""Tests for repro.cache.che: the characteristic-time contention model."""

import pytest

from repro.cache.analytical import AccessPattern, AnalyticalCacheModel, Footprint
from repro.cache.che import CheContentionModel
from repro.cache.contention import CacheDemand, SharedCacheContentionModel
from repro.mem.address import MB, CacheGeometry


@pytest.fixture()
def che():
    return CheContentionModel(AnalyticalCacheModel(CacheGeometry.xeon_e5()))


def demand(pattern, wss_mb, rate, **kw):
    return CacheDemand(Footprint(pattern, int(wss_mb * MB), **kw), rate)


class TestSoloBehaviour:
    def test_empty(self, che):
        assert che.solve([]) == []

    def test_fitting_set_fully_resident(self, che):
        shares = che.solve([demand(AccessPattern.RANDOM, 8, 0.05)])
        assert shares[0].hit_rate > 0.95
        assert shares[0].effective_ways * 2.25 >= 7.0  # ~its whole 8 MB

    def test_oversized_set_partially_resident(self, che):
        shares = che.solve([demand(AccessPattern.RANDOM, 90, 0.05)])
        assert 0.3 < shares[0].hit_rate < 0.7
        assert shares[0].effective_ways <= 20.0 + 1e-6

    def test_zero_rate_means_nothing_resident(self, che):
        shares = che.solve([demand(AccessPattern.RANDOM, 8, 0.0)])
        assert shares[0].hit_rate == 0.0


class TestCapacityConservation:
    def test_total_occupancy_bounded(self, che):
        shares = che.solve(
            [
                demand(AccessPattern.RANDOM, 30, 0.05),
                demand(AccessPattern.RANDOM, 30, 0.05),
                demand(AccessPattern.SEQUENTIAL, 60, 0.05),
            ]
        )
        total = sum(s.effective_ways for s in shares)
        assert total <= 20.0 * 1.01


class TestProtectionSemantics:
    def test_hot_set_resists_streaming(self, che):
        """The defining difference vs the insertion model: a rapidly
        re-touched small set stays resident under streaming pressure."""
        victim = demand(AccessPattern.RANDOM, 2, 0.05)
        stream = demand(AccessPattern.SEQUENTIAL, 60, 0.05)
        solo = che.solve([victim])[0].hit_rate
        crowded = che.solve([victim, stream, stream])[0].hit_rate
        assert crowded > solo - 0.1  # barely dented

    def test_cold_large_set_yields_to_streams(self, che):
        victim = demand(AccessPattern.RANDOM, 40, 0.002)  # slow touch rate
        stream = demand(AccessPattern.SEQUENTIAL, 60, 0.1)
        solo = che.solve([victim])[0].hit_rate
        crowded = che.solve([victim, stream, stream])[0].hit_rate
        assert crowded < solo - 0.2

    def test_time_scale_shrinks_protection(self):
        base = CheContentionModel(AnalyticalCacheModel(CacheGeometry.xeon_e5()))
        harsh = CheContentionModel(
            AnalyticalCacheModel(CacheGeometry.xeon_e5()), time_scale=0.05
        )
        victim = demand(AccessPattern.RANDOM, 6, 0.02)
        stream = demand(AccessPattern.SEQUENTIAL, 60, 0.1)
        soft = base.solve([victim, stream, stream])[0].hit_rate
        hard = harsh.solve([victim, stream, stream])[0].hit_rate
        assert hard < soft


class TestPatternSpecifics:
    def test_zipf_head_survives(self, che):
        z = demand(AccessPattern.ZIPF, 90, 0.05, zipf_s=1.1)
        stream = demand(AccessPattern.SEQUENTIAL, 60, 0.1)
        share = che.solve([z, stream, stream])[0]
        # The hot head keeps a meaningful hit rate even when crowded.
        assert share.hit_rate > 0.2

    def test_hotcold_tiers(self, che):
        hc = demand(
            AccessPattern.HOTCOLD, 90, 0.05, hot_bytes=8 * MB, hot_fraction=0.8
        )
        share = che.solve([hc])[0]
        assert share.hit_rate > 0.7


class TestAgainstInsertionModel:
    def test_both_models_agree_when_everything_fits(self):
        geo = CacheGeometry.xeon_e5()
        analytic = AnalyticalCacheModel(geo)
        che = CheContentionModel(analytic)
        insertion = SharedCacheContentionModel(analytic)
        demands = [demand(AccessPattern.RANDOM, 6, 0.05)]
        h_che = che.solve(demands)[0].hit_rate
        h_ins = insertion.solve(demands)[0].hit_rate
        assert h_che == pytest.approx(h_ins, abs=0.05)

    def test_models_disagree_on_hot_victim_vs_streams(self):
        """The documented philosophical difference (see module docstring)."""
        geo = CacheGeometry.xeon_e5()
        analytic = AnalyticalCacheModel(geo)
        che = CheContentionModel(analytic)
        insertion = SharedCacheContentionModel(analytic)
        # A hot victim (rapid per-line re-touch): Che protects it almost
        # fully; the insertion model lets the streams crowd it.
        demands = [
            demand(AccessPattern.RANDOM, 6, 0.1),
            demand(AccessPattern.SEQUENTIAL, 60, 0.1),
            demand(AccessPattern.SEQUENTIAL, 60, 0.1),
        ]
        h_che = che.solve(demands)[0].hit_rate
        h_ins = insertion.solve(demands)[0].hit_rate
        assert h_che > 0.9
        assert h_ins < h_che - 0.15
