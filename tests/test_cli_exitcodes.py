"""CLI exit-code and error-path contract tests.

The driver scripts and CI treat ``dcat-experiment``'s exit status as an
API: 0 success, 1 a chaos run that broke its guarantees, 2 usage/input
errors.  These tests pin that contract, including the error messages'
field context, and the ``bench`` / ``--metrics`` flows.
"""

import json
from pathlib import Path

from repro.harness.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestRunExitCodes:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "nope" in err

    def test_known_experiment_exits_0(self, capsys):
        assert main(["run", "fig3"]) == 0
        assert "== fig3" in capsys.readouterr().out

    def test_metrics_writes_prom_and_json(self, tmp_path, capsys):
        out = tmp_path / "m.prom"
        assert main(["run", "fig3", "--metrics", str(out)]) == 0
        capsys.readouterr()
        assert out.exists()
        sibling = tmp_path / "m.prom.json"
        payload = json.loads(sibling.read_text())
        assert payload["format"] == "dcat-metrics/v1"

    def test_metrics_with_jobs_warns_and_runs_serial(self, tmp_path, capsys):
        out = tmp_path / "m.prom"
        assert main(["run", "fig3", "--jobs", "4", "--metrics", str(out)]) == 0
        assert "ignoring --jobs" in capsys.readouterr().err
        assert out.exists()

    def test_unwritable_metrics_path_exits_2(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "m.prom"
        assert main(["run", "fig3", "--metrics", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestFidelityExitCodes:
    def test_invalid_fidelity_exits_2_with_field_context(self, capsys):
        assert main(["run", "fig3", "--fidelity", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "--fidelity" in err
        assert "bogus" in err
        assert "analytical" in err  # the message lists the legal modes

    def test_invalid_fidelity_rejected_before_scenario_load(self, tmp_path, capsys):
        # Validation happens up front: no scenario file is even opened.
        absent = tmp_path / "never-read.json"
        assert main(["churn", str(absent), "--fidelity", "quantum"]) == 2
        err = capsys.readouterr().err
        assert "--fidelity" in err
        assert "quantum" in err

    def test_valid_fidelity_runs_clean(self, capsys):
        assert main(["run", "fig3", "--fidelity", "analytical"]) == 0
        assert "== fig3" in capsys.readouterr().out


class TestPolicyExitCodes:
    def test_invalid_policy_exits_2_with_field_context(self, capsys):
        assert main(["run", "fig3", "--policy", "banana"]) == 2
        err = capsys.readouterr().err
        assert "--policy" in err
        assert "banana" in err
        assert "max_fairness" in err  # the message lists the registry

    def test_invalid_policy_rejected_before_scenario_load(self, tmp_path, capsys):
        # Validation happens up front: no scenario file is even opened.
        for command in ("scenario", "churn", "chaos"):
            absent = tmp_path / "never-read.json"
            assert main([command, str(absent), "--policy", "bogus"]) == 2
            err = capsys.readouterr().err
            assert "--policy" in err
            assert "bogus" in err

    def test_policy_alias_runs_clean(self, capsys):
        assert main(["run", "fig3", "--policy", "lfoc"]) == 0
        assert "== fig3" in capsys.readouterr().out

    def test_churn_accepts_policy_override(self, capsys):
        code = main([
            "churn", f"{FIXTURES}/golden_churn_scenario.json",
            "--policy", "reserved_pooled",
        ])
        assert code == 0
        assert "== per-tenant SLO ==" in capsys.readouterr().out

    def test_churn_file_policy_field_rejected_when_unknown(self, tmp_path, capsys):
        scenario = json.loads(
            (FIXTURES / "golden_churn_scenario.json").read_text()
        )
        scenario["policy"] = "telepathy"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(scenario))
        assert main(["churn", str(path)]) == 2
        err = capsys.readouterr().err
        assert "policy" in err
        assert "telepathy" in err


class TestTournamentExitCodes:
    def test_unwritable_out_exits_2(self, tmp_path, capsys, monkeypatch):
        import repro.harness.cli as cli_mod
        from repro.harness.experiments import tournament as tournament_mod

        # Stub the sweep: this test pins the error path, not the race.
        fake = {"schema": tournament_mod.TOURNAMENT_SCHEMA}
        monkeypatch.setattr(
            tournament_mod,
            "build_tournament_report",
            lambda seed=1234, quick=False, registry=None, fleet_jobs=1: fake,
        )
        monkeypatch.setattr(
            tournament_mod, "validate_tournament_report", lambda payload: None
        )
        code = cli_mod.main([
            "tournament", "--quick",
            "--out", str(tmp_path / "no" / "such" / "t.json"),
        ])
        assert code == 2
        assert "cannot write tournament report" in capsys.readouterr().err


class TestChurnExitCodes:
    def test_invalid_field_exits_2_with_context(self, tmp_path, capsys):
        scenario = {
            "fleet": {"machines": 2},
            "duration_s": 5,
            "tenants": [
                {"name": "t", "baseline_ways": -3,
                 "workload": {"type": "redis"}}
            ],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(scenario))
        assert main(["churn", str(path)]) == 2
        err = capsys.readouterr().err
        assert "tenants[0].baseline_ways" in err

    def test_unknown_workload_type_names_the_field(self, tmp_path, capsys):
        scenario = {
            "duration_s": 5,
            "tenants": [{"name": "t", "workload": {"type": "quake"}}],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(scenario))
        assert main(["churn", str(path)]) == 2
        err = capsys.readouterr().err
        assert "tenants[0].workload.type" in err
        assert "quake" in err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["churn", str(tmp_path / "absent.json")]) == 2
        assert "neither a file nor valid JSON" in capsys.readouterr().err

    def test_good_scenario_exits_0(self, capsys):
        assert main(["churn", f"{FIXTURES}/golden_churn_scenario.json"]) == 0
        out = capsys.readouterr().out
        assert "== per-tenant SLO ==" in out

    def test_unwritable_metrics_path_exits_2(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "m.prom"
        code = main([
            "churn", f"{FIXTURES}/golden_churn_scenario.json",
            "--metrics", str(target),
        ])
        assert code == 2
        assert "cannot write" in capsys.readouterr().err


class TestChaosExitCodes:
    def test_clean_run_exits_0(self, capsys):
        assert main(["chaos", f"{FIXTURES}/golden_chaos_scenario.json"]) == 0
        assert "invariant violations: 0" in capsys.readouterr().out

    def test_crashed_unhardened_run_exits_1(self, tmp_path, capsys):
        scenario = json.loads(
            (FIXTURES / "golden_chaos_scenario.json").read_text()
        )
        scenario["manager"] = {"type": "dcat", "config": {"hardened": False}}
        scenario["faults"]["rules"][0]["probability"] = 1.0
        path = tmp_path / "unhardened.json"
        path.write_text(json.dumps(scenario))
        assert main(["chaos", str(path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["crashed"] is not None

    def test_malformed_fault_rule_exits_2(self, tmp_path, capsys):
        scenario = json.loads(
            (FIXTURES / "golden_chaos_scenario.json").read_text()
        )
        scenario["faults"]["rules"][0]["kind"] = "meteor_strike"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(scenario))
        assert main(["chaos", str(path)]) == 2
        assert "chaos scenario error" in capsys.readouterr().err

    def test_unwritable_trace_path_exits_2(self, tmp_path, capsys):
        code = main([
            "chaos", f"{FIXTURES}/golden_chaos_scenario.json",
            "--trace", str(tmp_path / "no" / "such" / "t.jsonl"),
        ])
        assert code == 2
        assert "cannot write" in capsys.readouterr().err


class TestBenchExitCodes:
    def test_quick_bench_writes_valid_payload(self, tmp_path, capsys):
        from repro.obs.bench import validate_bench_payload

        out = tmp_path / "BENCH.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert f"wrote {out}" in stdout
        payload = json.loads(out.read_text())
        validate_bench_payload(payload)
        assert payload["quick"] is True

    def test_unwritable_out_exits_2(self, tmp_path, capsys, monkeypatch):
        import repro.obs.bench as bench_mod

        # Stub the timing sweep: this test pins the error path, not perf.
        fake = {
            "format": bench_mod.BENCH_FORMAT,
            "quick": True,
            "benchmarks": [
                {"name": f"b{i}", "note": "n", "iterations": 1, "repeats": 1,
                 "best_s": 1e-6, "median_s": 1e-6, "mean_s": 1e-6}
                for i in range(bench_mod.MIN_BENCHMARKS)
            ],
        }
        monkeypatch.setattr(bench_mod, "run_bench", lambda quick=False: fake)
        code = main([
            "bench", "--out", str(tmp_path / "no" / "such" / "B.json")
        ])
        assert code == 2
        assert "cannot write bench payload" in capsys.readouterr().err


class TestServiceExitCodes:
    SERVICE = {
        "fleet": {"machines": 1, "socket": "xeon_d", "seed": 7},
        "manager": {"type": "dcat"},
        "service": {"tick_interval_s": 0.02},
    }

    def test_serve_missing_config_exits_2(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "absent.json")]) == 2
        assert "neither a file nor valid JSON" in capsys.readouterr().err

    def test_serve_batch_keys_rejected_before_listening(self, tmp_path, capsys):
        config = dict(self.SERVICE, tenants=[])
        path = tmp_path / "svc.json"
        path.write_text(json.dumps(config))
        assert main(["serve", str(path)]) == 2
        err = capsys.readouterr().err
        assert "tenants" in err
        assert "daemon owns" in err

    def test_serve_bad_tick_interval_exits_2(self, tmp_path, capsys):
        config = dict(self.SERVICE, service={"tick_interval_s": 0})
        path = tmp_path / "svc.json"
        path.write_text(json.dumps(config))
        assert main(["serve", str(path)]) == 2
        assert "tick_interval_s" in capsys.readouterr().err

    def test_loadtest_bad_config_exits_2(self, tmp_path, capsys):
        assert main(["loadtest", str(tmp_path / "absent.json")]) == 2
        assert "neither a file nor valid JSON" in capsys.readouterr().err

    def test_loadtest_unwritable_out_exits_2(self, tmp_path, capsys):
        path = tmp_path / "svc.json"
        path.write_text(json.dumps(self.SERVICE))
        code = main([
            "loadtest", str(path), "--quick",
            "--rps", "10", "--duration", "0.5",
            "--out", str(tmp_path / "no" / "such" / "B.json"),
        ])
        assert code == 2
        assert "cannot write" in capsys.readouterr().err

    def test_quick_loadtest_exits_0_and_writes_valid_bench(self, tmp_path, capsys):
        from repro.service.loadgen import validate_service_bench

        path = tmp_path / "svc.json"
        path.write_text(json.dumps(self.SERVICE))
        out = tmp_path / "BENCH_service.json"
        code = main([
            "loadtest", str(path), "--quick",
            "--rps", "15", "--duration", "1.0", "--out", str(out),
        ])
        assert code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = validate_service_bench(json.loads(out.read_text()))
        assert payload["quick"] is True


def test_list_prints_every_experiment(capsys):
    from repro.harness.registry import EXPERIMENTS

    assert main(["list"]) == 0
    printed = capsys.readouterr().out.split()
    assert printed == list(EXPERIMENTS)
