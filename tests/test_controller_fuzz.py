"""Property-based fuzzing of the controller's safety invariants.

Whatever counter streams the hardware feeds it — noisy, idle, phase-churny,
adversarial — after every control step the controller must uphold:

* every workload holds at least ``min_ways``;
* the masks programmed into CAT are contiguous and pairwise disjoint
  (dCat's isolation guarantee);
* allocations sum to at most the socket's ways;
* the plan equals what CAT actually has programmed (no controller/hardware
  divergence).
"""

from hypothesis import given, settings, strategies as st

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.cos import is_contiguous, mask_way_count
from repro.cat.pqos import PqosLibrary
from repro.core.config import AllocationPolicy, DCatConfig
from repro.core.controller import DCatController
from repro.hwcounters.events import (
    L1_CACHE_HITS,
    L1_CACHE_MISSES,
    LLC_MISSES,
    LLC_REFERENCES,
)
from repro.hwcounters.msr import CorePmu
from repro.hwcounters.perfmon import PerfMonitor

CYCLES = 1_000_000

# One interval of one workload's behaviour, as raw rate knobs.
interval_strategy = st.fixed_dictionaries(
    {
        "busy": st.floats(min_value=0.0, max_value=1.0),
        "ipc": st.floats(min_value=0.01, max_value=2.0),
        "refs_per_instr": st.sampled_from([0.05, 0.25, 0.35, 0.6]),
        "llc_intensity": st.floats(min_value=0.0, max_value=1.0),
        "miss_rate": st.floats(min_value=0.0, max_value=1.0),
    }
)


def build_rig(num_workloads, policy=AllocationPolicy.MAX_FAIRNESS):
    cat = CacheAllocationTechnology(num_ways=20, num_cores=2 * num_workloads)
    pqos = PqosLibrary(cat, way_size_bytes=2359296)
    pmus = {c: CorePmu() for c in range(2 * num_workloads)}
    controller = DCatController(
        pqos=pqos,
        perfmon=PerfMonitor(pmus),
        config=DCatConfig(policy=policy),
        nominal_cycles_per_core=CYCLES,
    )
    for i in range(num_workloads):
        controller.register_workload(f"w{i}", [2 * i, 2 * i + 1], baseline_ways=3)
    controller.initialize()
    return controller, cat, pmus


def feed(pmu, knobs):
    cycles = int(CYCLES * knobs["busy"])
    instructions = int(cycles * knobs["ipc"])
    l1_ref = int(instructions * knobs["refs_per_instr"])
    llc_ref = int(l1_ref * knobs["llc_intensity"])
    llc_miss = int(llc_ref * knobs["miss_rate"])
    pmu.advance(
        instructions,
        cycles,
        {
            L1_CACHE_HITS: max(l1_ref - llc_ref, 0),
            L1_CACHE_MISSES: llc_ref,
            LLC_REFERENCES: llc_ref,
            LLC_MISSES: llc_miss,
        },
    )


def check_invariants(controller, cat, num_workloads):
    masks = []
    total = 0
    for i in range(num_workloads):
        record = controller.records[f"w{i}"]
        mask = cat.cos_mask(record.cos_id)
        assert is_contiguous(mask), f"non-contiguous mask {mask:#x}"
        assert mask_way_count(mask) >= 1
        assert record.ways == mask_way_count(mask), "controller/CAT divergence"
        masks.append(mask)
        total += record.ways
    assert total <= 20, f"allocations sum to {total} > 20 ways"
    for i, a in enumerate(masks):
        for b in masks[i + 1 :]:
            assert a & b == 0, "overlapping tenant masks"


@settings(max_examples=30, deadline=None)
@given(
    script=st.lists(
        st.lists(interval_strategy, min_size=4, max_size=4),
        min_size=3,
        max_size=10,
    )
)
def test_invariants_hold_under_arbitrary_counter_streams(script):
    controller, cat, pmus = build_rig(num_workloads=4)
    for step_knobs in script:
        for i, knobs in enumerate(step_knobs):
            feed(pmus[2 * i], knobs)
            feed(pmus[2 * i + 1], knobs)
        controller.step()
        check_invariants(controller, cat, num_workloads=4)


@settings(max_examples=15, deadline=None)
@given(
    script=st.lists(
        st.lists(interval_strategy, min_size=6, max_size=6),
        min_size=3,
        max_size=8,
    )
)
def test_invariants_hold_under_max_performance_policy(script):
    controller, cat, pmus = build_rig(
        num_workloads=6, policy=AllocationPolicy.MAX_PERFORMANCE
    )
    for step_knobs in script:
        for i, knobs in enumerate(step_knobs):
            feed(pmus[2 * i], knobs)
            feed(pmus[2 * i + 1], knobs)
        controller.step()
        check_invariants(controller, cat, num_workloads=6)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_invariants_at_the_cos_limit(data):
    """Fourteen tenants on 20 ways: the tightest legal configuration."""
    n = 14
    cat = CacheAllocationTechnology(num_ways=20, num_cores=n)
    pqos = PqosLibrary(cat, way_size_bytes=2359296)
    pmus = {c: CorePmu() for c in range(n)}
    controller = DCatController(
        pqos=pqos,
        perfmon=PerfMonitor(pmus),
        config=DCatConfig(),
        nominal_cycles_per_core=CYCLES,
    )
    for i in range(n):
        controller.register_workload(f"w{i}", [i], baseline_ways=1)
    controller.initialize()
    for _ in range(4):
        for i in range(n):
            feed(pmus[i], data.draw(interval_strategy))
        controller.step()
        total = sum(controller.records[f"w{i}"].ways for i in range(n))
        assert total <= 20
        assert all(controller.records[f"w{i}"].ways >= 1 for i in range(n))
