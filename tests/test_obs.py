"""Unit tests for the metrics registry, stage profiler and exporters."""

import json

import pytest

from repro.engine.pipeline import (
    FunctionStage,
    StagedLoop,
    get_default_profiler,
    use_profiler,
)
from repro.obs.export import (
    json_sibling,
    registry_to_dict,
    render_prometheus,
    write_metrics,
)
from repro.obs.profiler import StageProfiler
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestRegistry:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        c = r.counter("dcat_test_total", "help")
        c.inc()
        c.inc(2.5)
        assert r.value("dcat_test_total") == 3.5

    def test_counter_rejects_negative(self):
        r = MetricsRegistry()
        with pytest.raises(MetricError):
            r.counter("dcat_test_total", "help").inc(-1)

    def test_gauge_moves_both_ways(self):
        r = MetricsRegistry()
        g = r.gauge("dcat_level", "help")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert r.value("dcat_level") == 8.0

    def test_labels_create_independent_children(self):
        r = MetricsRegistry()
        c = r.counter("dcat_events_total", "help", labels=("event",))
        c.labels(event="A").inc()
        c.labels(event="A").inc()
        c.labels(event="B").inc()
        assert r.value("dcat_events_total", event="A") == 2.0
        assert r.value("dcat_events_total", event="B") == 1.0
        assert r.value("dcat_events_total", event="C") == 0.0

    def test_wrong_label_set_rejected(self):
        r = MetricsRegistry()
        c = r.counter("dcat_events_total", "help", labels=("event",))
        with pytest.raises(MetricError):
            c.labels(kind="A")
        with pytest.raises(MetricError):
            c.labels()

    def test_registration_is_get_or_create(self):
        r = MetricsRegistry()
        a = r.counter("dcat_shared_total", "help", labels=("k",))
        b = r.counter("dcat_shared_total", "other help", labels=("k",))
        assert a is b
        with pytest.raises(MetricError):
            r.gauge("dcat_shared_total", "help", labels=("k",))
        with pytest.raises(MetricError):
            r.counter("dcat_shared_total", "help", labels=("other",))

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(MetricError):
            r.counter("0bad", "help")
        with pytest.raises(MetricError):
            r.counter("dcat_ok_total", "help", labels=("bad-label",))

    def test_histogram_buckets(self):
        h = Histogram((0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.cumulative() == [1, 2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)

    def test_histogram_boundary_lands_in_its_bucket(self):
        # Prometheus buckets are `le` (inclusive upper bounds).
        h = Histogram((1.0, 2.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_histogram_rejects_bad_boundaries(self):
        with pytest.raises(MetricError):
            Histogram(())
        with pytest.raises(MetricError):
            Histogram((1.0, 1.0))
        with pytest.raises(MetricError):
            Histogram((1.0, float("inf")))

    def test_default_buckets_strictly_increase(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(set(DEFAULT_TIME_BUCKETS))

    def test_child_reads_without_creating(self):
        r = MetricsRegistry()
        c = r.counter("dcat_events_total", "help", labels=("event",))
        c.labels(event="A").inc(2)
        assert c.child(event="A").value == 2.0
        # Absent children are reported as None, not materialized: exporting
        # must not grow zero-count series just because someone peeked.
        assert c.child(event="B") is None
        c.labels(event="A")  # re-fetch does not disturb anything
        assert [tuple(k) for k in c._children] == [("A",)]

    def test_child_validates_label_names(self):
        r = MetricsRegistry()
        c = r.counter("dcat_events_total", "help", labels=("event",))
        with pytest.raises(MetricError):
            c.child(kind="A")
        with pytest.raises(MetricError):
            c.child()

    def test_sum_value_reads_histogram_sum(self):
        r = MetricsRegistry()
        h = r.histogram(
            "dcat_stage_seconds", "help", labels=("loop", "stage"),
            buckets=(0.1, 1.0),
        )
        child = h.labels(loop="controller", stage="collect")
        child.observe(0.25)
        child.observe(0.5)
        assert r.sum_value(
            "dcat_stage_seconds", loop="controller", stage="collect"
        ) == pytest.approx(0.75)
        # Unset label combination: zero, and still not materialized.
        assert r.sum_value("dcat_stage_seconds", loop="x", stage="y") == 0.0

    def test_sum_value_rejects_non_histograms(self):
        r = MetricsRegistry()
        r.counter("dcat_events_total", "help").inc()
        with pytest.raises(MetricError):
            r.sum_value("dcat_events_total")


class TestProfilerHook:
    def test_no_default_profiler_outside_context(self):
        assert get_default_profiler() is None

    def test_loop_captures_profiler_at_construction(self):
        profiler = StageProfiler()
        with use_profiler(profiler):
            loop = StagedLoop(
                [FunctionStage("a", lambda ctx: None),
                 FunctionStage("b", lambda ctx: None)],
                name="demo",
            )
        assert get_default_profiler() is None
        for _ in range(3):
            loop.run(None)
        assert profiler.invocations("demo", "a") == 3
        assert profiler.invocations("demo", "b") == 3
        assert profiler.total_seconds("demo", "a") > 0.0

    def test_loop_without_profiler_records_nothing(self):
        profiler = StageProfiler()
        loop = StagedLoop([FunctionStage("a", lambda ctx: None)], name="demo")
        loop.run(None)
        assert profiler.invocations("demo", "a") == 0

    def test_spliced_stage_is_profiled(self):
        profiler = StageProfiler()
        with use_profiler(profiler):
            loop = StagedLoop([FunctionStage("a", lambda ctx: None)], name="demo")
        loop.insert_before("a", FunctionStage("pre", lambda ctx: None))
        loop.run(None)
        assert profiler.invocations("demo", "pre") == 1

    def test_use_profiler_restores_previous(self):
        outer = StageProfiler()
        inner = StageProfiler()
        with use_profiler(outer):
            with use_profiler(inner):
                assert get_default_profiler() is inner
            assert get_default_profiler() is outer
        assert get_default_profiler() is None


def _sample_registry():
    r = MetricsRegistry()
    c = r.counter("dcat_events_total", "Events by type.", labels=("event",))
    c.labels(event="A").inc(3)
    c.labels(event="B").inc()
    r.gauge("dcat_free_ways", "Free ways.").set(5)
    h = r.histogram("dcat_lat_seconds", "Latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return r


class TestExport:
    def test_prometheus_text_shape(self):
        text = render_prometheus(_sample_registry())
        lines = text.splitlines()
        assert "# TYPE dcat_events_total counter" in lines
        assert 'dcat_events_total{event="A"} 3' in lines
        assert 'dcat_events_total{event="B"} 1' in lines
        assert "dcat_free_ways 5" in lines
        assert 'dcat_lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'dcat_lat_seconds_bucket{le="1"} 2' in lines
        assert 'dcat_lat_seconds_bucket{le="+Inf"} 3' in lines
        assert "dcat_lat_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        r = MetricsRegistry()
        r.counter("dcat_x_total", "h", labels=("k",)).labels(k='a"b\\c\nd').inc()
        text = render_prometheus(r)
        assert 'k="a\\"b\\\\c\\nd"' in text

    def test_json_snapshot_round_trips(self):
        payload = registry_to_dict(_sample_registry())
        assert payload["format"] == "dcat-metrics/v1"
        by_name = {m["name"]: m for m in payload["metrics"]}
        events = by_name["dcat_events_total"]
        assert events["type"] == "counter"
        assert {"labels": {"event": "A"}, "value": 3.0} in events["samples"]
        hist = by_name["dcat_lat_seconds"]["samples"][0]
        assert hist["count"] == 3
        assert hist["buckets"][-1] == {"le": "+Inf", "count": 1}
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_write_metrics_emits_both_files(self, tmp_path):
        prom = str(tmp_path / "out.prom")
        sibling = write_metrics(_sample_registry(), prom)
        assert sibling == json_sibling(prom)
        text = (tmp_path / "out.prom").read_text()
        assert "dcat_events_total" in text
        loaded = json.loads((tmp_path / "out.prom.json").read_text())
        assert loaded["format"] == "dcat-metrics/v1"

    def test_deterministic_export_order(self):
        a = render_prometheus(_sample_registry())
        b = render_prometheus(_sample_registry())
        assert a == b
