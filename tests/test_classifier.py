"""Tests for repro.core.classifier: the Fig. 6 categorization rules."""


from repro.core.classifier import Decision, categorize
from repro.core.config import DCatConfig
from repro.core.phase import PhaseSignature
from repro.core.states import WorkloadState
from repro.core.stats import WorkloadRecord
from repro.hwcounters.perfmon import CounterSample


def record(
    state=WorkloadState.KEEPER,
    ways=3,
    prev_ways=None,
    baseline=3,
    idle=False,
    **extra,
):
    rec = WorkloadRecord(
        workload_id="w",
        cores=(0, 1),
        cos_id=1,
        baseline_ways=baseline,
        state=state,
        ways=ways,
        prev_ways=prev_ways if prev_ways is not None else ways,
    )
    rec.idle = idle
    rec.signature = PhaseSignature(bucket=5)
    for key, value in extra.items():
        setattr(rec, key, value)
    return rec


def sample(llc_ref=50_000, llc_miss=5_000, ret_ins=1_000_000, cycles=2_000_000):
    return CounterSample(
        l1_ref=250_000,
        llc_ref=llc_ref,
        llc_miss=llc_miss,
        ret_ins=ret_ins,
        cycles=cycles,
    )


CFG = DCatConfig()


def seed_table(rec, entries):
    """Fill the record's current-phase table with normalized IPCs."""
    table = rec.table.phase(rec.signature)
    table.baseline_ipc = 1.0
    table.entries.update(entries)
    return table


class TestDonorRules:
    def test_idle_is_immediate_donor(self):
        d = categorize(record(idle=True), sample(), CFG, pool_empty=False)
        assert d.state is WorkloadState.DONOR
        assert d.target_ways == CFG.min_ways

    def test_low_llc_refs_is_immediate_donor(self):
        d = categorize(record(), sample(llc_ref=100), CFG, pool_empty=False)
        assert d.state is WorkloadState.DONOR
        assert d.target_ways == 1

    def test_near_zero_misses_shrinks_gradually(self):
        d = categorize(record(ways=5), sample(llc_miss=10), CFG, pool_empty=False)
        assert d.state is WorkloadState.DONOR
        assert d.target_ways == 4  # one way per round

    def test_shrink_respects_floor(self):
        rec = record(ways=4, donor_floor_ways=4)
        d = categorize(rec, sample(llc_miss=10), CFG, pool_empty=False)
        assert d.state is WorkloadState.KEEPER
        assert d.target_ways == 4

    def test_shrink_stops_at_min(self):
        rec = record(ways=1)
        d = categorize(rec, sample(llc_miss=10), CFG, pool_empty=False)
        assert d.state is WorkloadState.KEEPER


class TestKeeperBand:
    def test_moderate_misses_hold(self):
        # Miss rate between the donor and grow thresholds: stable Keeper.
        d = categorize(record(ways=5), sample(llc_miss=500), CFG, pool_empty=False)
        assert d.state is WorkloadState.KEEPER
        assert d.target_ways == 5
        assert d.grow_request == 0

    def test_satisfied_receiver_becomes_keeper(self):
        rec = record(state=WorkloadState.RECEIVER, ways=8, prev_ways=7)
        d = categorize(rec, sample(llc_miss=500), CFG, pool_empty=False)
        assert d.state is WorkloadState.KEEPER


class TestGrowthRules:
    def test_starved_keeper_becomes_unknown(self):
        d = categorize(record(), sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.UNKNOWN
        assert d.grow_request == 1

    def test_growth_ceiling_blocks_regrow(self):
        rec = record(
            growth_ceiling_ways=5, ways=5, growth_ceiling_miss_rate=0.4
        )
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.KEEPER

    def test_growth_ceiling_reopens_when_misses_climb(self):
        # Growth stopped at 2% misses; the working set then grew and the
        # miss rate shot to 40%: the ceiling no longer applies.
        rec = record(
            growth_ceiling_ways=5, ways=5, growth_ceiling_miss_rate=0.02
        )
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.UNKNOWN

    def test_below_ceiling_may_regrow(self):
        rec = record(growth_ceiling_ways=7, ways=4)
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.UNKNOWN

    def test_unknown_promoted_to_receiver_on_gain(self):
        rec = record(state=WorkloadState.UNKNOWN, ways=4, prev_ways=3)
        rec.last_ipc = 0.45  # measured at 3 ways; this interval: 0.5 (+11%)
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.RECEIVER
        assert d.grow_request == 1

    def test_unknown_promotion_falls_back_to_table(self):
        rec = record(state=WorkloadState.UNKNOWN, ways=4, prev_ways=3)
        rec.last_ipc = 0.0  # no fresh measurement available
        seed_table(rec, {3: 1.0, 4: 1.10})  # +10% >= 5%
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.RECEIVER

    def test_unknown_with_subthreshold_cumulative_gain_keeps(self):
        rec = record(state=WorkloadState.UNKNOWN, ways=5, prev_ways=4)
        rec.last_ipc = 0.485  # +3.1% this grant: below ipc_imp_thr
        seed_table(rec, {3: 1.0, 4: 1.03, 5: 1.06})  # 3%/way cumulative
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.KEEPER

    def test_unknown_without_improvement_keeps_probing(self):
        rec = record(state=WorkloadState.UNKNOWN, ways=4, prev_ways=3)
        rec.last_ipc = 0.5  # identical to this interval: no gain
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.UNKNOWN
        assert d.grow_request == 1


class TestStreamingRules:
    def test_streaming_at_size_threshold(self):
        rec = record(state=WorkloadState.UNKNOWN, ways=9, prev_ways=8, baseline=3)
        rec.last_ipc = 0.5  # flat IPC despite the grant
        seed_table(rec, {3: 1.0, 9: 1.0})
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.STREAMING
        assert d.target_ways == 1

    def test_streaming_when_pool_exhausted(self):
        rec = record(
            state=WorkloadState.UNKNOWN,
            ways=6,
            prev_ways=5,
            baseline=3,
            unknown_grants=2,
        )
        rec.last_ipc = 0.5  # flat IPC despite the grant
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=True)
        assert d.state is WorkloadState.STREAMING

    def test_no_streaming_without_grant_evidence(self):
        rec = record(
            state=WorkloadState.UNKNOWN, ways=4, prev_ways=4, baseline=3,
            unknown_grants=0,
        )
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=True)
        assert d.state is WorkloadState.UNKNOWN

    def test_streaming_stays_until_phase_change(self):
        rec = record(state=WorkloadState.STREAMING, ways=1)
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.STREAMING
        assert d.target_ways == 1


class TestReceiverRules:
    def test_receiver_keeps_growing_on_gains(self):
        rec = record(state=WorkloadState.RECEIVER, ways=5, prev_ways=4)
        rec.last_ipc = 0.44  # this interval: 0.5 (+13.6%)
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.RECEIVER
        assert d.grow_request == 1

    def test_receiver_stops_when_grant_stops_paying(self):
        rec = record(state=WorkloadState.RECEIVER, ways=6, prev_ways=5)
        rec.last_ipc = 0.495  # this interval: 0.5 (+1%)
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.KEEPER

    def test_receiver_without_grant_keeps_requesting(self):
        rec = record(state=WorkloadState.RECEIVER, ways=5, prev_ways=5)
        d = categorize(rec, sample(llc_miss=20_000), CFG, pool_empty=False)
        assert d.state is WorkloadState.RECEIVER
        assert d.grow_request == 1


class TestDecisionShape:
    def test_decision_fields(self):
        d = Decision(WorkloadState.KEEPER, 4, grow_request=0)
        assert d.target_ways == 4
