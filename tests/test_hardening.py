"""Tests for the controller's robustness layer (DCatConfig.hardened).

Each test wires a :class:`DCatController` to hand-driven PMUs through the
:mod:`repro.faults` proxies (or small flaky doubles) and checks that the
hardening recovers — bounded retries, stale-sample fallback, quarantine,
verify-after-write — and that rollbacks leave no half-managed state when
the write path keeps failing.
"""

import pytest

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.cos import mask_way_count
from repro.cat.pqos import PqosError, PqosLibrary
from repro.core.config import DCatConfig
from repro.core.controller import DCatController
from repro.core.states import WorkloadState
from repro.engine.events import EventBus, FaultRecovered
from repro.faults.injectors import (
    FaultyPerfMonitor,
    FaultyPqosLibrary,
    _ArmedCounterFault,
)
from repro.faults.plan import FaultKind
from repro.hwcounters.events import (
    L1_CACHE_HITS,
    L1_CACHE_MISSES,
    LLC_MISSES,
    LLC_REFERENCES,
)
from repro.hwcounters.msr import CorePmu, CounterReadError
from repro.hwcounters.perfmon import PerfMonitor

CYCLES = 1_000_000


class FlakyAssocPqos:
    """Delegates to a real PqosLibrary, raising on chosen assoc cores."""

    def __init__(self, inner):
        self._inner = inner
        self.fail_assoc_cores = set()

    def cap_get(self):
        return self._inner.cap_get()

    def l3ca_set(self, entries):
        self._inner.l3ca_set(entries)

    def l3ca_get(self):
        return self._inner.l3ca_get()

    def alloc_assoc_set(self, core, cos_id):
        if core in self.fail_assoc_cores:
            raise PqosError(f"assoc write to core {core} failed")
        self._inner.alloc_assoc_set(core, cos_id)

    def alloc_assoc_get(self, core):
        return self._inner.alloc_assoc_get(core)

    def assoc_map(self):
        return self._inner.assoc_map()


class DroppingTablePqos:
    """Silently drops l3ca entries for chosen COS ids (write never lands)."""

    def __init__(self, inner):
        self._inner = inner
        self.drop_cos = set()
        self.drops_left = 0

    def cap_get(self):
        return self._inner.cap_get()

    def l3ca_set(self, entries):
        entries = list(entries)
        if self.drops_left > 0:
            kept = [e for e in entries if e.cos_id not in self.drop_cos]
            if len(kept) != len(entries):
                self.drops_left -= 1
                entries = kept
        self._inner.l3ca_set(entries)

    def l3ca_get(self):
        return self._inner.l3ca_get()

    def alloc_assoc_set(self, core, cos_id):
        self._inner.alloc_assoc_set(core, cos_id)

    def alloc_assoc_get(self, core):
        return self._inner.alloc_assoc_get(core)

    def assoc_map(self):
        return self._inner.assoc_map()


class Rig:
    """A hardened controller on hand-driven PMUs with fault proxies."""

    def __init__(self, num_cores=8, num_ways=20, config=None, pqos_wrapper=None):
        self.cat = CacheAllocationTechnology(num_ways=num_ways, num_cores=num_cores)
        inner_pqos = PqosLibrary(self.cat, way_size_bytes=2359296)
        self.pqos = pqos_wrapper(inner_pqos) if pqos_wrapper else inner_pqos
        self.pmus = {c: CorePmu() for c in range(num_cores)}
        self.perfmon = FaultyPerfMonitor(PerfMonitor(self.pmus))
        self.bus = EventBus()
        self.recovered = []
        self.bus.subscribe(self.recovered.append, FaultRecovered)
        self.controller = DCatController(
            pqos=self.pqos,
            perfmon=self.perfmon,
            config=config or DCatConfig(),
            nominal_cycles_per_core=CYCLES,
            bus=self.bus,
        )

    def feed(self, core, miss_rate=0.5, ipc=0.5, busy=1.0):
        cycles = int(CYCLES * busy)
        instructions = int(cycles * ipc)
        l1_ref = int(instructions * 0.25)
        llc_ref = int(instructions * 0.1)
        llc_miss = int(llc_ref * miss_rate)
        self.pmus[core].advance(
            instructions,
            cycles,
            {
                L1_CACHE_HITS: l1_ref - llc_ref,
                L1_CACHE_MISSES: llc_ref,
                LLC_REFERENCES: llc_ref,
                LLC_MISSES: llc_miss,
            },
        )

    def feed_all(self, cores, **kwargs):
        for core in cores:
            self.feed(core, **kwargs)

    def actions(self):
        return [e.action for e in self.recovered]

    def read_error(self, cores, budget):
        return _ArmedCounterFault(
            kind=FaultKind.COUNTER_READ_ERROR,
            cores=frozenset(cores),
            magnitude=1.0,
            budget=budget,
        )

    def saturated(self, cores):
        return _ArmedCounterFault(
            kind=FaultKind.SAMPLE_SATURATED,
            cores=frozenset(cores),
            magnitude=1.0,
            budget=1,
        )


def make_pair(**kwargs):
    rig = Rig(**kwargs)
    rig.controller.register_workload("a", [0, 1], baseline_ways=4)
    rig.controller.register_workload("b", [2, 3], baseline_ways=4)
    rig.controller.initialize()
    return rig


class TestSamplerHardening:
    def test_transient_read_error_retried(self):
        rig = make_pair()
        rig.feed_all([0, 1, 2, 3])
        rig.perfmon.arm([rig.read_error([0], budget=1)])
        result = rig.controller.step()
        assert "retry" in rig.actions()
        # the retried sample saw the real interval, not zeros
        assert result.statuses["a"].sample.cycles == 2 * CYCLES

    def test_persistent_read_error_falls_back_to_stale(self):
        rig = make_pair()
        rig.feed_all([0, 1, 2, 3])
        rig.controller.step()  # interval 1: clean, records last_sample
        rig.feed_all([0, 1, 2, 3])
        rig.perfmon.arm([rig.read_error([0], budget=10)])
        result = rig.controller.step()
        assert "stale_sample" in rig.actions()
        # the stale fallback replays the previous interval's sample
        assert result.statuses["a"].sample.cycles == 2 * CYCLES
        assert rig.controller.records["a"].erratic_streak == 1

    def test_implausible_sample_not_retried(self):
        rig = make_pair()
        rig.feed_all([0, 1, 2, 3])
        rig.perfmon.arm([rig.saturated([0, 1])])
        rig.controller.step()
        stale = [e for e in rig.recovered if e.action == "stale_sample"]
        assert [e.kind for e in stale] == ["implausible_sample"]
        assert stale[0].attempts == 1  # the deltas are gone; no retry

    def test_quarantine_engages_and_releases(self):
        config = DCatConfig(quarantine_after=3)
        rig = make_pair(config=config)
        for _ in range(3):
            rig.feed_all([0, 1, 2, 3])
            rig.perfmon.arm([rig.read_error([0], budget=10)])
            rig.controller.step()
        assert rig.controller.records["a"].quarantined
        assert "quarantine" in rig.actions()
        assert rig.controller.state_of("a") is WorkloadState.RECLAIM
        assert rig.controller.ways_of("a") == 4  # parked at its baseline
        # the faulted reads never consumed the PMU deltas, so the first
        # clean read returns the accumulated burst and is rejected as
        # implausible; the one after that is clean and releases quarantine
        rig.perfmon.arm([])
        for _ in range(2):
            rig.feed_all([0, 1, 2, 3])
            rig.controller.step()
        assert not rig.controller.records["a"].quarantined
        assert rig.controller.records["a"].erratic_streak == 0
        assert "quarantine_release" in rig.actions()

    def test_unhardened_controller_propagates_read_errors(self):
        rig = make_pair(config=DCatConfig(hardened=False))
        rig.feed_all([0, 1, 2, 3])
        rig.perfmon.arm([rig.read_error([0], budget=1)])
        with pytest.raises(CounterReadError):
            rig.controller.step()


class TestWritePathHardening:
    def test_l3ca_retry_within_budget(self):
        rig = make_pair(pqos_wrapper=FaultyPqosLibrary)
        rig.feed_all([0, 1, 2, 3])
        rig.pqos.arm(l3ca_failures=1, assoc_drops=0)
        rig.controller.step()
        assert "retry" in rig.actions()

    def test_l3ca_failure_beyond_budget_raises(self):
        rig = make_pair(pqos_wrapper=FaultyPqosLibrary)
        rig.feed_all([0, 1, 2, 3])
        rig.pqos.arm(l3ca_failures=10, assoc_drops=0)
        with pytest.raises(PqosError):
            rig.controller.step()

    def test_verify_after_write_reprograms_dropped_entries(self):
        rig = Rig(pqos_wrapper=DroppingTablePqos)
        rig.controller.register_workload("a", [0, 1], baseline_ways=4)
        rig.controller.register_workload("b", [2, 3], baseline_ways=4)
        rig.pqos.drop_cos = {rig.controller.records["a"].cos_id}
        rig.pqos.drops_left = 1
        rig.controller.initialize()
        assert "reprogram" in rig.actions()
        cos_a = rig.controller.records["a"].cos_id
        assert mask_way_count(rig.cat.cos_mask(cos_a)) == 4

    def test_dropped_assoc_write_rewritten(self):
        rig = Rig(pqos_wrapper=FaultyPqosLibrary)
        rig.pqos.arm(l3ca_failures=0, assoc_drops=1)
        rig.controller.register_workload("a", [0, 1], baseline_ways=4)
        assert "assoc_rewrite" in rig.actions()
        cos_a = rig.controller.records["a"].cos_id
        assert rig.cat.core_cos(0) == cos_a
        assert rig.cat.core_cos(1) == cos_a


class TestRollbacks:
    def test_register_rolls_back_on_assoc_failure(self):
        rig = Rig(pqos_wrapper=FlakyAssocPqos)
        rig.pqos.fail_assoc_cores = {1}
        with pytest.raises(PqosError):
            rig.controller.register_workload("a", [0, 1], baseline_ways=4)
        assert "a" not in rig.controller.records
        assert rig.cat.core_cos(0) == 0  # the first core was rolled back
        # the COS went back to the pool: the next registration reuses it
        rig.pqos.fail_assoc_cores = set()
        rec = rig.controller.register_workload("b", [2, 3], baseline_ways=4)
        assert rec.cos_id == 1

    def test_admit_rolls_back_on_persistent_write_failure(self):
        rig = make_pair(pqos_wrapper=FaultyPqosLibrary)
        before_masks = {
            wid: rig.controller.mask_of(wid) for wid in rig.controller.records
        }
        rig.pqos.arm(l3ca_failures=10, assoc_drops=0)
        with pytest.raises(PqosError):
            rig.controller.admit_workload("late", [4, 5], baseline_ways=4)
        rig.pqos.arm(l3ca_failures=0, assoc_drops=0)
        assert "late" not in rig.controller.records
        assert rig.cat.core_cos(4) == 0 and rig.cat.core_cos(5) == 0
        assert {
            wid: rig.controller.mask_of(wid) for wid in rig.controller.records
        } == before_masks
        # nothing leaked: the same admission succeeds once writes heal
        rec = rig.controller.admit_workload("late", [4, 5], baseline_ways=4)
        assert rec.ways == 4

    def test_admit_rollback_when_reservation_does_not_fit(self):
        rig = make_pair()
        with pytest.raises(ValueError, match="cannot admit"):
            rig.controller.admit_workload("huge", [4, 5], baseline_ways=16)
        assert "huge" not in rig.controller.records

    def test_deregister_completes_despite_persistent_write_failure(self):
        rig = make_pair(pqos_wrapper=FaultyPqosLibrary)
        cos_a = rig.controller.records["a"].cos_id
        rig.pqos.arm(l3ca_failures=10, assoc_drops=0)
        rig.controller.deregister_workload("a")  # must not raise
        rig.pqos.arm(l3ca_failures=0, assoc_drops=0)
        assert "a" not in rig.controller.records
        assert "deferred_reset" in rig.actions()
        assert rig.cat.core_cos(0) == 0  # cores fell back to the default
        # the freed COS is reusable; its stale mask is reprogrammed by the
        # next plan application before the newcomer runs on it
        rec = rig.controller.admit_workload("c", [0, 1], baseline_ways=4)
        assert rec.cos_id == cos_a
        assert mask_way_count(rig.cat.cos_mask(cos_a)) == 4

    def test_unhardened_deregister_propagates(self):
        rig = make_pair(
            config=DCatConfig(hardened=False), pqos_wrapper=FaultyPqosLibrary
        )
        rig.pqos.arm(l3ca_failures=10, assoc_drops=0)
        with pytest.raises(PqosError):
            rig.controller.deregister_workload("a")


class TestRecordsView:
    def test_records_is_read_only(self):
        rig = make_pair()
        with pytest.raises(TypeError):
            rig.controller.records["ghost"] = None
        with pytest.raises(TypeError):
            del rig.controller.records["a"]
        assert set(rig.controller.records) == {"a", "b"}
