"""End-to-end validation: the exact tag-array platform vs the fast model.

The reproduction's credibility rests on the fast analytical mode agreeing
with a real cache.  These tests run the *entire* stack — controller
included — in both modes and require matching trajectories.
"""

import pytest

from repro.mem.address import MB
from repro.platform.exact import ExactCloudSimulation
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager, SharedCacheManager, StaticCatManager
from repro.platform.sim import CloudSimulation
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mload import MloadWorkload
from repro.workloads.mlr import MlrWorkload


def stage(machine, target):
    vms = [VirtualMachine("target", target, baseline_ways=1)]
    vms += [
        VirtualMachine(f"lb{i}", LookbusyWorkload(name=f"lb{i}"), baseline_ways=1)
        for i in range(3)
    ]
    return pin_vms(vms, machine.spec)


def run_mode(exact, manager_factory, target_factory, duration=18.0, seed=5):
    machine = Machine(seed=seed)
    vms = stage(machine, target_factory())
    if exact:
        sim = ExactCloudSimulation(
            machine, vms, manager_factory(), accesses_per_interval=120_000
        )
    else:
        sim = CloudSimulation(machine, vms, manager_factory())
    return sim.run(duration)


class TestDcatTrajectoriesAgree:
    def test_mlr_growth_identical(self):
        def target():
            return MlrWorkload(2 * MB, start_delay_s=2.0, name="target")

        exact = run_mode(True, DCatManager, target)
        fast = run_mode(False, DCatManager, target)
        assert exact.series("target", "ways") == fast.series("target", "ways")

    def test_hit_rates_close(self):
        def target():
            return MlrWorkload(2 * MB, start_delay_s=2.0, name="target")

        exact = run_mode(True, DCatManager, target)
        fast = run_mode(False, DCatManager, target)
        e = exact.steady_mean("target", "llc_hit_rate", 5)
        f = fast.steady_mean("target", "llc_hit_rate", 5)
        assert e == pytest.approx(f, abs=0.03)


class TestStaticModeAgrees:
    def test_static_partition_hit_rate(self):
        def target():
            return MlrWorkload(2 * MB, name="target")

        exact = run_mode(True, StaticCatManager, target, duration=10.0)
        fast = run_mode(False, StaticCatManager, target, duration=10.0)
        # 2 MB in a single 2.25 MB way: conflict misses keep both below 1.
        e = exact.steady_mean("target", "llc_hit_rate", 4)
        f = fast.steady_mean("target", "llc_hit_rate", 4)
        assert e == pytest.approx(f, abs=0.05)
        assert e < 0.97


class TestSharedModeContention:
    def test_streaming_crowds_victim_on_real_cache(self):
        """The insertion-pressure phenomenon, reproduced on the tag array."""

        def build(with_noise):
            machine = Machine(seed=5)
            vms = [
                VirtualMachine(
                    "victim", MlrWorkload(8 * MB, name="victim"), baseline_ways=1
                )
            ]
            if with_noise:
                vms.append(
                    VirtualMachine(
                        "noise",
                        MloadWorkload(60 * MB, name="noise"),
                        baseline_ways=1,
                    )
                )
            pin_vms(vms, machine.spec)
            sim = ExactCloudSimulation(
                machine, vms, SharedCacheManager(), accesses_per_interval=150_000
            )
            return sim.run(12.0)

        solo = build(False).steady_mean("victim", "llc_hit_rate", 4)
        crowded = build(True).steady_mean("victim", "llc_hit_rate", 4)
        assert crowded < solo - 0.1

    def test_occupancy_reported_in_shared_mode(self):
        machine = Machine(seed=5)
        vms = pin_vms(
            [VirtualMachine("v", MlrWorkload(4 * MB, name="v"), baseline_ways=1)],
            machine.spec,
        )
        sim = ExactCloudSimulation(
            machine, vms, SharedCacheManager(), accesses_per_interval=100_000
        )
        res = sim.run(8.0)
        # Reported "ways" are occupancy-equivalents and grow as it warms.
        ways = res.series("v", "ways")
        assert ways[-1] > ways[1]
        assert 0 < ways[-1] <= 20.0


class TestExactValidation:
    def test_access_budget_validation(self):
        machine = Machine(seed=1)
        vms = pin_vms(
            [VirtualMachine("v", LookbusyWorkload(name="v"), baseline_ways=1)],
            machine.spec,
        )
        with pytest.raises(ValueError):
            ExactCloudSimulation(
                machine, vms, StaticCatManager(), accesses_per_interval=0
            )

    def test_idle_vms_drive_no_accesses(self):
        machine = Machine(seed=1)
        vms = pin_vms(
            [VirtualMachine("v", LookbusyWorkload(name="v"), baseline_ways=1)],
            machine.spec,
        )
        sim = ExactCloudSimulation(machine, vms, StaticCatManager())
        res = sim.run(3.0)
        assert sim.llc.stats.accesses == 0
        assert all(r.llc_hit_rate == 0.0 for r in res.timeline("v"))
