"""Tests for repro.core.controller: the five-step loop on a synthetic PMU.

These drive the controller directly against hand-fed PMUs (no platform
simulator), so each behaviour is pinned to exact counter inputs.
"""

import pytest

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.cos import is_contiguous, mask_way_count
from repro.cat.pqos import PqosLibrary
from repro.core.config import DCatConfig
from repro.core.controller import DCatController
from repro.core.states import WorkloadState
from repro.hwcounters.events import (
    L1_CACHE_HITS,
    L1_CACHE_MISSES,
    LLC_MISSES,
    LLC_REFERENCES,
)
from repro.hwcounters.msr import CorePmu
from repro.hwcounters.perfmon import PerfMonitor

CYCLES = 1_000_000


class Rig:
    """A controller wired to hand-driven PMUs over a 20-way CAT."""

    def __init__(self, num_cores=8, num_ways=20, config=None):
        self.cat = CacheAllocationTechnology(num_ways=num_ways, num_cores=num_cores)
        self.pqos = PqosLibrary(self.cat, way_size_bytes=2359296)
        self.pmus = {c: CorePmu() for c in range(num_cores)}
        self.flushes = []
        self.controller = DCatController(
            pqos=self.pqos,
            perfmon=PerfMonitor(self.pmus),
            config=config or DCatConfig(),
            nominal_cycles_per_core=CYCLES,
            flush_callback=self.flushes.append,
        )

    def feed(self, core, refs_per_instr=0.25, llc_refs_per_instr=0.1,
             miss_rate=0.5, ipc=0.5, busy=1.0):
        """Push one interval of synthetic activity into a core's PMU."""
        cycles = int(CYCLES * busy)
        instructions = int(cycles * ipc)
        l1_ref = int(instructions * refs_per_instr)
        llc_ref = int(instructions * llc_refs_per_instr)
        llc_miss = int(llc_ref * miss_rate)
        self.pmus[core].advance(
            instructions,
            cycles,
            {
                L1_CACHE_HITS: l1_ref - llc_ref,
                L1_CACHE_MISSES: llc_ref,
                LLC_REFERENCES: llc_ref,
                LLC_MISSES: llc_miss,
            },
        )

    def feed_idle(self, core):
        self.pmus[core].advance(100, 1000, {})


class TestRegistration:
    def test_assigns_sequential_cos(self):
        rig = Rig()
        a = rig.controller.register_workload("a", [0, 1], baseline_ways=3)
        b = rig.controller.register_workload("b", [2, 3], baseline_ways=3)
        assert (a.cos_id, b.cos_id) == (1, 2)
        assert rig.cat.core_cos(0) == 1
        assert rig.cat.core_cos(3) == 2

    def test_duplicate_rejected(self):
        rig = Rig()
        rig.controller.register_workload("a", [0], baseline_ways=3)
        with pytest.raises(ValueError, match="already registered"):
            rig.controller.register_workload("a", [1], baseline_ways=3)

    def test_cos_exhaustion(self):
        rig = Rig(num_cores=16, num_ways=20)
        for i in range(15):
            rig.controller.register_workload(f"w{i}", [i], baseline_ways=1)
        with pytest.raises(ValueError, match="cannot isolate"):
            rig.controller.register_workload("overflow", [15], baseline_ways=1)

    def test_initialize_programs_baselines(self):
        rig = Rig()
        rig.controller.register_workload("a", [0, 1], baseline_ways=5)
        rig.controller.register_workload("b", [2, 3], baseline_ways=7)
        rig.controller.initialize()
        assert mask_way_count(rig.cat.effective_mask(0)) == 5
        assert mask_way_count(rig.cat.effective_mask(2)) == 7
        assert not rig.cat.masks_overlap(1, 2)


class TestControlDynamics:
    def make_pair(self, config=None):
        rig = Rig(config=config)
        rig.controller.register_workload("hungry", [0, 1], baseline_ways=3)
        rig.controller.register_workload("quiet", [2, 3], baseline_ways=3)
        rig.controller.initialize()
        return rig

    def test_idle_workload_demoted_to_donor(self):
        rig = self.make_pair()
        for _ in range(2):
            rig.feed(0, miss_rate=0.5)
            rig.feed(1, miss_rate=0.5)
            rig.feed_idle(2)
            rig.feed_idle(3)
            rig.controller.step()
        assert rig.controller.state_of("quiet") is WorkloadState.DONOR
        assert rig.controller.ways_of("quiet") == 1

    def test_starved_workload_grows(self):
        rig = self.make_pair()
        ways_seen = []
        for _ in range(5):
            for core in (0, 1):
                rig.feed(core, miss_rate=0.5, ipc=0.2 + 0.1 * len(ways_seen))
            rig.feed_idle(2)
            rig.feed_idle(3)
            rig.controller.step()
            ways_seen.append(rig.controller.ways_of("hungry"))
        assert ways_seen[-1] > 3

    def test_masks_always_contiguous_and_disjoint(self):
        rig = self.make_pair()
        for step in range(8):
            for core in (0, 1):
                rig.feed(core, miss_rate=0.4, ipc=0.2 + 0.05 * step)
            rig.feed_idle(2)
            rig.feed_idle(3)
            rig.controller.step()
            m1 = rig.cat.cos_mask(1)
            m2 = rig.cat.cos_mask(2)
            assert is_contiguous(m1) and is_contiguous(m2)
            assert m1 & m2 == 0

    def test_phase_change_triggers_reclaim_to_baseline(self):
        rig = self.make_pair()
        # Grow the hungry workload beyond baseline first.
        for step in range(4):
            for core in (0, 1):
                rig.feed(core, refs_per_instr=0.25, miss_rate=0.5,
                         ipc=0.2 + 0.1 * step)
            rig.feed_idle(2)
            rig.feed_idle(3)
            rig.controller.step()
        assert rig.controller.ways_of("hungry") > 3
        # New phase: very different refs/instr.
        for core in (0, 1):
            rig.feed(core, refs_per_instr=0.6, miss_rate=0.5, ipc=0.2)
        rig.feed_idle(2)
        rig.feed_idle(3)
        result = rig.controller.step()
        assert result.statuses["hungry"].phase_changed
        assert rig.controller.ways_of("hungry") == 3  # back to baseline

    def test_flush_callback_on_moves(self):
        rig = self.make_pair()
        for step in range(4):
            for core in (0, 1):
                rig.feed(core, miss_rate=0.5, ipc=0.2 + 0.1 * step)
            rig.feed_idle(2)
            rig.feed_idle(3)
            rig.controller.step()
        # The donor shrank and the grower grew: some span moved and flushed.
        assert rig.flushes

    def test_statuses_expose_counters(self):
        rig = self.make_pair()
        rig.feed(0, ipc=0.5)
        rig.feed(1, ipc=0.5)
        rig.feed_idle(2)
        rig.feed_idle(3)
        result = rig.controller.step()
        status = result.statuses["hungry"]
        assert status.ipc == pytest.approx(0.5, rel=0.05)
        assert status.sample.cycles == 2 * CYCLES

    def test_history_accumulates(self):
        rig = self.make_pair()
        for _ in range(3):
            for core in range(4):
                rig.feed_idle(core)
            rig.controller.step()
        assert len(rig.controller.history) == 3
        assert rig.controller.history[-1].time_s == pytest.approx(2.0)


class TestPerformanceTableReuse:
    def test_reencountered_phase_jumps_to_preferred(self):
        rig = Rig()
        rig.controller.register_workload("w", [0], baseline_ways=3)
        rig.controller.register_workload("bg", [1], baseline_ways=3)
        rig.controller.initialize()

        def run_phase(intervals, ipc_for_ways):
            for _ in range(intervals):
                ways = rig.controller.ways_of("w")
                rig.feed(0, refs_per_instr=0.25, miss_rate=0.4,
                         ipc=ipc_for_ways(ways))
                rig.feed_idle(1)
                rig.controller.step()

        # First run: IPC rises with ways, saturating at 6.
        run_phase(8, lambda w: 0.2 + 0.08 * min(w, 6))
        learned = rig.controller.ways_of("w")
        assert learned > 3
        # Idle gap.
        for _ in range(3):
            rig.feed_idle(0)
            rig.feed_idle(1)
            rig.controller.step()
        assert rig.controller.ways_of("w") == 1
        # Restart the same phase: one step back to work...
        rig.feed(0, refs_per_instr=0.25, miss_rate=0.4, ipc=0.2)
        rig.feed_idle(1)
        rig.controller.step()
        # ...jumps straight to (near) the learned allocation, not baseline+1.
        assert rig.controller.ways_of("w") >= learned - 1

    def test_reuse_disabled_reclaims_to_baseline(self):
        config = DCatConfig(use_performance_table=False)
        rig = Rig(config=config)
        rig.controller.register_workload("w", [0], baseline_ways=3)
        rig.controller.initialize()
        for step in range(8):
            rig.feed(0, miss_rate=0.4, ipc=0.2 + 0.08 * step)
            rig.controller.step()
        for _ in range(3):
            rig.feed_idle(0)
            rig.controller.step()
        rig.feed(0, miss_rate=0.4, ipc=0.2)
        rig.controller.step()
        assert rig.controller.ways_of("w") == 3


class TestDeregistration:
    def test_deregister_releases_cores_and_mask(self):
        rig = Rig()
        rig.controller.register_workload("a", [0, 1], baseline_ways=3)
        rig.controller.register_workload("b", [2, 3], baseline_ways=3)
        rig.controller.initialize()
        rig.controller.deregister_workload("a")
        assert "a" not in rig.controller.records
        # Cores fall back to the unmanaged default class.
        assert rig.cat.core_cos(0) == 0
        assert rig.cat.core_cos(1) == 0
        # The released COS mask returns to the power-on full-cache default.
        assert rig.cat.cos_mask(1) == (1 << 20) - 1
        with pytest.raises(KeyError):
            rig.controller.mask_of("a")

    def test_unknown_workload_rejected(self):
        rig = Rig()
        with pytest.raises(ValueError, match="not registered"):
            rig.controller.deregister_workload("ghost")

    def test_cos_id_reused_not_collided(self):
        """Churn must never hand two live workloads the same COS."""
        rig = Rig()
        a = rig.controller.register_workload("a", [0], baseline_ways=3)
        b = rig.controller.register_workload("b", [1], baseline_ways=3)
        rig.controller.deregister_workload("a")
        # Under the old len()+1 scheme this would collide with b's COS 2.
        c = rig.controller.register_workload("c", [2], baseline_ways=3)
        d = rig.controller.register_workload("d", [3], baseline_ways=3)
        assert c.cos_id == a.cos_id  # lowest freed id is recycled
        live = [b.cos_id, c.cos_id, d.cos_id]
        assert len(set(live)) == len(live)

    def test_controller_runs_on_after_deregistration(self):
        rig = Rig()
        rig.controller.register_workload("a", [0, 1], baseline_ways=3)
        rig.controller.register_workload("b", [2, 3], baseline_ways=3)
        rig.controller.initialize()
        for _ in range(2):
            for core in range(4):
                rig.feed(core)
            rig.controller.step()
        rig.controller.deregister_workload("a")
        for _ in range(2):
            rig.feed(2)
            rig.feed(3)
            result = rig.controller.step()
        assert set(result.statuses) == {"b"}
        assert mask_way_count(rig.controller.mask_of("b")) >= 3

    def test_full_churn_cycle_reaches_cos_limit_again(self):
        rig = Rig(num_cores=16, num_ways=20)
        for i in range(15):
            rig.controller.register_workload(f"w{i}", [i], baseline_ways=1)
        for i in range(15):
            rig.controller.deregister_workload(f"w{i}")
        for i in range(15):
            rig.controller.register_workload(f"r{i}", [i], baseline_ways=1)
        with pytest.raises(ValueError, match="cannot isolate"):
            rig.controller.register_workload("overflow", [15], baseline_ways=1)
