"""Tests for repro.faults: plans, injection proxies, and chaos runs."""

import json

import pytest

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.pqos import PqosError, PqosL3Ca, PqosLibrary
from repro.faults.chaos import ChaosReport, run_chaos
from repro.faults.injectors import (
    FaultInjector,
    FaultyPerfMonitor,
    FaultyPqosLibrary,
    _ArmedCounterFault,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultPlanError, FaultRule
from repro.harness.scenario_file import ScenarioError
from repro.hwcounters.events import (
    L1_CACHE_HITS,
    L1_CACHE_MISSES,
    LLC_MISSES,
    LLC_REFERENCES,
)
from repro.hwcounters.msr import COUNTER_WIDTH_BITS, CorePmu, CounterReadError
from repro.hwcounters.perfmon import PerfMonitor


class TestFaultPlan:
    def test_null_plan_never_fires(self):
        plan = FaultPlan(seed=1, rules=())
        assert all(not plan.active(k) for k in range(50))

    def test_window_bounds_inclusive(self):
        rule = FaultRule(
            kind=FaultKind.L3CA_SET_FAIL, start_interval=3, end_interval=5
        )
        plan = FaultPlan(seed=0, rules=(rule,))
        fired = [k for k in range(10) if plan.active(k)]
        assert fired == [3, 4, 5]

    def test_probability_is_deterministic_and_order_independent(self):
        rules = (
            FaultRule(kind=FaultKind.COUNTER_NOISE, probability=0.3),
            FaultRule(kind=FaultKind.SAMPLE_ZEROED, probability=0.3),
        )
        plan = FaultPlan(seed=99, rules=rules)
        schedule = [tuple(r.kind for r in plan.active(k)) for k in range(200)]
        # identical on re-evaluation, and evaluating intervals backwards
        # does not change any per-interval outcome
        assert schedule == [
            tuple(r.kind for r in plan.active(k)) for k in range(200)
        ]
        backwards = {
            k: tuple(r.kind for r in plan.active(k))
            for k in reversed(range(200))
        }
        assert all(backwards[k] == schedule[k] for k in range(200))
        fired = sum(1 for kinds in schedule if kinds)
        assert 0 < fired < 200  # the probability actually thins the schedule

    def test_different_seeds_differ(self):
        rule = FaultRule(kind=FaultKind.COUNTER_NOISE, probability=0.3)
        a = FaultPlan(seed=1, rules=(rule,))
        b = FaultPlan(seed=2, rules=(rule,))
        assert [bool(a.active(k)) for k in range(100)] != [
            bool(b.active(k)) for k in range(100)
        ]

    def test_rule_validation(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultRule(kind=FaultKind.COUNTER_NOISE, probability=0.0)
        with pytest.raises(FaultPlanError, match="probability"):
            FaultRule(kind=FaultKind.COUNTER_NOISE, probability=1.5)
        with pytest.raises(FaultPlanError, match="start_interval"):
            FaultRule(kind=FaultKind.COUNTER_NOISE, start_interval=-1)
        with pytest.raises(FaultPlanError, match="end_interval"):
            FaultRule(
                kind=FaultKind.COUNTER_NOISE, start_interval=5, end_interval=4
            )
        with pytest.raises(FaultPlanError, match="magnitude"):
            FaultRule(kind=FaultKind.COUNTER_NOISE, magnitude=0)
        with pytest.raises(FaultPlanError, match="budget"):
            FaultRule(kind=FaultKind.COUNTER_NOISE, budget=0)

    def test_from_spec_round_trip(self):
        spec = {
            "seed": 7,
            "rules": [
                {"kind": "counter_read_error", "target": "a", "budget": 2},
                {"kind": "l3ca_set_fail", "probability": 0.5},
            ],
        }
        plan = FaultPlan.from_spec(spec)
        assert plan.seed == 7
        assert plan.rules[0].kind is FaultKind.COUNTER_READ_ERROR
        assert plan.rules[0].target == "a"
        assert plan.rules[0].budget == 2
        assert plan.rules[1].probability == 0.5

    def test_from_spec_names_bad_fields(self):
        with pytest.raises(FaultPlanError, match=r"rules\[0\].kind"):
            FaultPlan.from_spec({"rules": [{"kind": "nope"}]})
        with pytest.raises(FaultPlanError, match=r"rules\[1\]: unknown keys"):
            FaultPlan.from_spec(
                {"rules": [{"kind": "assoc_drop"}, {"kind": "assoc_drop", "x": 1}]}
            )
        with pytest.raises(FaultPlanError, match="unknown fault-plan keys"):
            FaultPlan.from_spec({"seed": 1, "extra": True})
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan.from_spec({"seed": "lots"})

    def test_load_json_string_and_dict(self):
        spec = {"seed": 3, "rules": [{"kind": "sample_zeroed"}]}
        assert FaultPlan.load(spec) == FaultPlan.load(json.dumps(spec))
        with pytest.raises(FaultPlanError, match="neither a file"):
            FaultPlan.load("no/such/file.json")


def _monitor(num_cores=4):
    pmus = {c: CorePmu() for c in range(num_cores)}
    return pmus, FaultyPerfMonitor(PerfMonitor(pmus))


def _feed(pmu, instructions=1000, cycles=2000, llc_ref=100, llc_miss=50):
    pmu.advance(
        instructions,
        cycles,
        {
            L1_CACHE_HITS: 150,
            L1_CACHE_MISSES: llc_ref,
            LLC_REFERENCES: llc_ref,
            LLC_MISSES: llc_miss,
        },
    )


def _armed(kind, cores, magnitude=2.0, budget=1):
    return _ArmedCounterFault(
        kind=kind, cores=frozenset(cores), magnitude=magnitude, budget=budget
    )


class TestFaultyPerfMonitor:
    def test_passthrough_when_disarmed(self):
        pmus, mon = _monitor()
        _feed(pmus[0])
        sample = mon.sample_cores([0])
        assert (sample.ret_ins, sample.cycles) == (1000, 2000)
        assert sample.llc_miss == 50

    def test_read_error_preserves_the_interval_delta(self):
        pmus, mon = _monitor()
        _feed(pmus[0])
        mon.arm([_armed(FaultKind.COUNTER_READ_ERROR, [0], budget=1)])
        with pytest.raises(CounterReadError):
            mon.sample_cores([0])
        # the budget is spent and the inner monitor was never touched, so
        # the retry observes the full interval
        sample = mon.sample_cores([0])
        assert (sample.ret_ins, sample.cycles) == (1000, 2000)

    def test_read_error_misses_other_cores(self):
        pmus, mon = _monitor()
        _feed(pmus[2])
        mon.arm([_armed(FaultKind.COUNTER_READ_ERROR, [0, 1])])
        assert mon.sample_cores([2]).ret_ins == 1000

    def test_noise_scales_cache_events_only(self):
        pmus, mon = _monitor()
        _feed(pmus[0])
        mon.arm([_armed(FaultKind.COUNTER_NOISE, [0], magnitude=3.0)])
        sample = mon.sample_cores([0])
        assert sample.llc_miss == 150 and sample.llc_ref == 300
        assert (sample.ret_ins, sample.cycles) == (1000, 2000)  # IPC intact

    def test_saturated_pegs_every_counter(self):
        pmus, mon = _monitor()
        _feed(pmus[0])
        mon.arm([_armed(FaultKind.SAMPLE_SATURATED, [0])])
        sample = mon.sample_cores([0])
        assert sample.cycles == (1 << COUNTER_WIDTH_BITS) - 1
        assert sample.ret_ins == sample.cycles

    def test_crash_reads_all_zero(self):
        pmus, mon = _monitor()
        _feed(pmus[0])
        mon.arm([_armed(FaultKind.WORKLOAD_CRASH, [0])])
        sample = mon.sample_cores([0])
        assert sample.cycles == 0 and sample.ret_ins == 0

    def test_hang_keeps_cycles_only(self):
        pmus, mon = _monitor()
        _feed(pmus[0])
        mon.arm([_armed(FaultKind.WORKLOAD_HANG, [0])])
        sample = mon.sample_cores([0])
        assert sample.cycles == 2000
        assert sample.ret_ins == 0 and sample.llc_ref == 0


class TestFaultyPqosLibrary:
    def make(self):
        cat = CacheAllocationTechnology(num_ways=20, num_cores=8)
        return cat, FaultyPqosLibrary(PqosLibrary(cat, way_size_bytes=2359296))

    def test_l3ca_failure_budget(self):
        cat, pqos = self.make()
        pqos.arm(l3ca_failures=1, assoc_drops=0)
        entries = [PqosL3Ca(cos_id=1, ways_mask=0b1111)]
        with pytest.raises(PqosError, match="injected"):
            pqos.l3ca_set(entries)
        pqos.l3ca_set(entries)  # budget spent: the retry lands
        assert cat.cos_mask(1) == 0b1111
        assert pqos.failed_writes == 1

    def test_assoc_drop_is_silent(self):
        cat, pqos = self.make()
        pqos.arm(l3ca_failures=0, assoc_drops=1)
        pqos.alloc_assoc_set(3, 2)  # silently lost
        assert pqos.alloc_assoc_get(3) == 0
        pqos.alloc_assoc_set(3, 2)
        assert pqos.alloc_assoc_get(3) == 2
        assert pqos.dropped_writes == 1

    def test_reads_never_perturbed(self):
        cat, pqos = self.make()
        pqos.arm(l3ca_failures=5, assoc_drops=5)
        assert pqos.l3ca_get()  # readback works while writes are failing
        assert pqos.cap_get().num_cos == cat.num_cos


CHAOS_SCENARIO = {
    "machine": {"socket": "xeon_e5", "seed": 7},
    "manager": {"type": "dcat"},
    "duration_s": 20,
    "vms": [
        {"name": "redis", "baseline_ways": 4, "workload": {"type": "redis"}},
        {
            "name": "noisy",
            "baseline_ways": 4,
            "workload": {"type": "mload", "wss_mb": 60},
        },
    ],
    "faults": {
        "seed": 7,
        "rules": [
            {"kind": "counter_read_error", "target": "redis", "probability": 0.2},
            {"kind": "l3ca_set_fail", "probability": 0.2},
            {"kind": "counter_noise", "magnitude": 3.0, "probability": 0.2},
        ],
    },
}


class TestRunChaos:
    def test_hardened_run_passes_and_is_deterministic(self):
        a = run_chaos(CHAOS_SCENARIO)
        b = run_chaos(CHAOS_SCENARIO)
        assert isinstance(a, ChaosReport)
        assert a.passed and a.invariant_violations == 0
        assert a.faulted_intervals > 0
        assert a.to_json() == b.to_json()
        assert a.render() == b.render()

    def test_unhardened_run_crashes_on_read_error(self):
        spec = dict(CHAOS_SCENARIO)
        spec["manager"] = {"type": "dcat", "config": {"hardened": False}}
        report = run_chaos(spec)
        assert report.crashed is not None
        assert not report.passed
        assert not report.hardened

    def test_trace_carries_fault_events(self, tmp_path):
        trace = tmp_path / "chaos.jsonl"
        run_chaos(CHAOS_SCENARIO, trace=str(trace))
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(e["event"] == "FaultInjected" for e in events)
        assert not any(e["event"] == "InvariantViolated" for e in events)

    def test_restarts_validated(self):
        spec = dict(CHAOS_SCENARIO)
        spec["restarts"] = [
            {"vm": "ghost", "detach_interval": 2, "attach_interval": 4}
        ]
        with pytest.raises(ScenarioError, match=r"restarts\[0\].vm"):
            run_chaos(spec)
        spec["restarts"] = [
            {"vm": "redis", "detach_interval": 5, "attach_interval": 5}
        ]
        with pytest.raises(ScenarioError, match="detach_interval"):
            run_chaos(spec)

    def test_non_dcat_manager_rejected(self):
        spec = dict(CHAOS_SCENARIO)
        spec["manager"] = {"type": "shared"}
        with pytest.raises(ScenarioError, match="dcat manager"):
            run_chaos(spec)

    def test_restart_exercises_admit_and_deregister(self):
        spec = dict(CHAOS_SCENARIO)
        spec["restarts"] = [
            {"vm": "noisy", "detach_interval": 5, "attach_interval": 8}
        ]
        report = run_chaos(spec)
        assert report.passed


class TestFaultInjectorInstall:
    def test_double_install_rejected(self):
        from repro.core.config import DCatConfig
        from repro.core.controller import DCatController

        cat = CacheAllocationTechnology(num_ways=20, num_cores=4)
        controller = DCatController(
            pqos=PqosLibrary(cat, way_size_bytes=2359296),
            perfmon=PerfMonitor({c: CorePmu() for c in range(4)}),
            config=DCatConfig(),
            nominal_cycles_per_core=1_000_000,
        )
        injector = FaultInjector(FaultPlan(seed=1))
        injector.install(controller)
        assert controller.pqos is injector.pqos
        assert controller.perfmon is injector.perfmon
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install(controller)
