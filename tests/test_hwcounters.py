"""Tests for repro.hwcounters: events, MSR file, PMU, and sampling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hwcounters.events import (
    L1_CACHE_HITS,
    L1_CACHE_MISSES,
    LLC_MISSES,
    LLC_REFERENCES,
    PerfEvent,
)
from repro.hwcounters.msr import (
    COUNTER_WIDTH_BITS,
    IA32_FIXED_CTR0,
    IA32_PERFEVTSEL0,
    IA32_PMC0,
    CorePmu,
    MsrFile,
)
from repro.hwcounters.perfmon import CounterSample, PerfMonitor


class TestEventEncodings:
    """Paper Table 2's encodings, verbatim."""

    def test_llc_misses(self):
        assert LLC_MISSES.event_select == 0x2E
        assert LLC_MISSES.umask == 0x41

    def test_llc_references(self):
        assert LLC_REFERENCES.event_select == 0x2E
        assert LLC_REFERENCES.umask == 0x4F

    def test_l1_events(self):
        assert L1_CACHE_MISSES.event_select == 0xD1
        assert L1_CACHE_MISSES.umask == 0x08
        assert L1_CACHE_HITS.umask == 0x01

    def test_evtsel_round_trip(self):
        value = LLC_MISSES.evtsel_value
        decoded = PerfEvent.from_evtsel("x", value)
        assert (decoded.event_select, decoded.umask) == (0x2E, 0x41)
        assert value & (1 << 22)  # EN bit set

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PerfEvent("bad", 0x100, 0)
        with pytest.raises(ValueError):
            PerfEvent("bad", 0, 0x1FF)


class TestMsrFile:
    def test_pmu_registers_preimplemented(self):
        msrs = MsrFile()
        assert msrs.rdmsr(IA32_PMC0) == 0
        assert msrs.rdmsr(IA32_FIXED_CTR0) == 0

    def test_unimplemented_read_raises(self):
        with pytest.raises(KeyError, match="unimplemented"):
            MsrFile().rdmsr(0x9999)

    def test_write_read_round_trip(self):
        msrs = MsrFile()
        msrs.wrmsr(IA32_PMC0, 0xDEADBEEF)
        assert msrs.rdmsr(IA32_PMC0) == 0xDEADBEEF

    def test_writes_truncate_to_64_bits(self):
        msrs = MsrFile()
        msrs.wrmsr(IA32_PMC0, 1 << 70)
        assert msrs.rdmsr(IA32_PMC0) == 0


class TestCorePmu:
    def test_fixed_counters_always_count(self):
        pmu = CorePmu()
        pmu.advance(instructions=100, cycles=200, event_counts={})
        assert pmu.msrs.rdmsr(IA32_FIXED_CTR0) == 100
        assert pmu.msrs.rdmsr(IA32_FIXED_CTR0 + 1) == 200

    def test_disabled_pmc_does_not_count(self):
        pmu = CorePmu()
        pmu.advance(10, 10, {LLC_MISSES: 5})
        assert pmu.msrs.rdmsr(IA32_PMC0) == 0

    def test_programmed_pmc_counts_matching_event(self):
        pmu = CorePmu()
        pmu.msrs.wrmsr(IA32_PERFEVTSEL0, LLC_MISSES.evtsel_value)
        pmu.advance(10, 10, {LLC_MISSES: 5, LLC_REFERENCES: 9})
        assert pmu.msrs.rdmsr(IA32_PMC0) == 5

    def test_counters_wrap_at_48_bits(self):
        pmu = CorePmu()
        near_max = (1 << COUNTER_WIDTH_BITS) - 3
        pmu.msrs.wrmsr(IA32_FIXED_CTR0, near_max)
        pmu.advance(instructions=10, cycles=0, event_counts={})
        assert pmu.msrs.rdmsr(IA32_FIXED_CTR0) == 7  # wrapped

    def test_negative_activity_rejected(self):
        with pytest.raises(ValueError):
            CorePmu().advance(-1, 0, {})


class TestCounterSample:
    def test_derived_metrics(self):
        s = CounterSample(l1_ref=1000, llc_ref=100, llc_miss=10, ret_ins=4000, cycles=8000)
        assert s.ipc == pytest.approx(0.5)
        assert s.llc_miss_rate == pytest.approx(0.1)
        assert s.mem_refs_per_instr == pytest.approx(0.25)
        assert s.llc_refs_per_instr == pytest.approx(0.025)

    def test_zero_denominators_are_safe(self):
        s = CounterSample()
        assert s.ipc == 0.0
        assert s.llc_miss_rate == 0.0
        assert s.mem_refs_per_instr == 0.0

    def test_aggregation_sums(self):
        a = CounterSample(l1_ref=1, llc_ref=2, llc_miss=3, ret_ins=4, cycles=5)
        b = CounterSample(l1_ref=10, llc_ref=20, llc_miss=30, ret_ins=40, cycles=50)
        total = CounterSample.aggregate([a, b])
        assert total.l1_ref == 11
        assert total.cycles == 55

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=5, max_size=5))
    def test_addition_commutes(self, vals):
        a = CounterSample(*vals)
        b = CounterSample(*reversed(vals))
        assert a + b == b + a


class TestPerfMonitor:
    def _pmu_set(self, n=2):
        return {i: CorePmu() for i in range(n)}

    def test_programs_all_four_events(self):
        pmus = self._pmu_set(1)
        PerfMonitor(pmus)
        programmed = {
            pmus[0].msrs.rdmsr(IA32_PERFEVTSEL0 + i) & 0xFFFF for i in range(4)
        }
        expected = {
            e.evtsel_value & 0xFFFF
            for e in (LLC_MISSES, LLC_REFERENCES, L1_CACHE_MISSES, L1_CACHE_HITS)
        }
        assert programmed == expected

    def test_sampling_returns_deltas(self):
        pmus = self._pmu_set(1)
        mon = PerfMonitor(pmus)
        pmus[0].advance(1000, 2000, {LLC_MISSES: 5, LLC_REFERENCES: 50,
                                     L1_CACHE_MISSES: 50, L1_CACHE_HITS: 200})
        s = mon.sample_core(0)
        assert s.ret_ins == 1000
        assert s.cycles == 2000
        assert s.llc_miss == 5
        assert s.llc_ref == 50
        assert s.l1_ref == 250  # hits + misses

    def test_second_sample_is_incremental(self):
        pmus = self._pmu_set(1)
        mon = PerfMonitor(pmus)
        pmus[0].advance(100, 100, {})
        mon.sample_core(0)
        pmus[0].advance(7, 9, {})
        s = mon.sample_core(0)
        assert s.ret_ins == 7
        assert s.cycles == 9

    def test_wraparound_handled(self):
        pmus = self._pmu_set(1)
        mon = PerfMonitor(pmus)
        near = (1 << COUNTER_WIDTH_BITS) - 5
        pmus[0].msrs.wrmsr(IA32_FIXED_CTR0, near)
        mon.sample_core(0)  # absorb the jump
        pmus[0].advance(instructions=10, cycles=0, event_counts={})
        s = mon.sample_core(0)
        assert s.ret_ins == 10  # despite the 48-bit wrap in between

    def test_multi_core_aggregation(self):
        pmus = self._pmu_set(2)
        mon = PerfMonitor(pmus)
        pmus[0].advance(10, 20, {})
        pmus[1].advance(30, 40, {})
        s = mon.sample_cores([0, 1])
        assert s.ret_ins == 40
        assert s.cycles == 60

    def test_requires_cores(self):
        with pytest.raises(ValueError):
            PerfMonitor({})
