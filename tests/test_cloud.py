"""Tests for repro.cloud: tenant lifecycle, placement, fleet churn, SLO.

The cloud layer is the paper's claimed setting (IaaS with tenants coming
and going); these tests pin its determinism contract, the admission and
placement decisions, mid-run attach/detach through the simulation, and the
churn-scenario file format with its field-contextual errors.
"""

import json

import pytest

from repro.cloud import (
    CloudFleet,
    ChurnScenarioError,
    FirstFitPolicy,
    FleetMachine,
    LeastLoadedPolicy,
    MixEntry,
    SensitivityAwarePolicy,
    SloAccountant,
    cache_sensitivity,
    load_churn_scenario,
    poisson_tenants,
    run_churn_scenario,
    scripted_tenants,
)
from repro.cloud.lifecycle import TenantSpec
from repro.cpu.socket import SocketSpec
from repro.engine.events import (
    EventBus,
    JsonlTraceWriter,
    TenantAdmitted,
    TenantDeparted,
    TenantPlaced,
    TenantRejected,
    WorkloadDeregistered,
    WorkloadRegistered,
    use_bus,
)
from repro.harness import cli
from repro.harness.scenario_file import build_workload
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager, SharedCacheManager, StaticCatManager
from repro.platform.sim import CloudSimulation
from repro.platform.vm import VirtualMachine


def make_machine(seed=7):
    return Machine(spec=SocketSpec.xeon_d(), seed=seed)


def make_fleet_machine(name="m0", seed=7):
    return FleetMachine(
        name=name, machine=make_machine(seed), manager=DCatManager()
    )


MIX = [
    MixEntry(workload={"type": "mlr", "wss_mb": 8}, baseline_ways=3),
    MixEntry(workload={"type": "lookbusy"}, baseline_ways=2, weight=0.5),
]


SCENARIO = {
    "fleet": {"machines": 2, "socket": "xeon_d", "seed": 7},
    "manager": {"type": "dcat"},
    "placement": "least_loaded",
    "duration_s": 10,
    "tenants": [
        {"name": "db", "arrival_s": 0, "baseline_ways": 4, "lifetime_s": 6,
         "workload": {"type": "postgres"}},
        {"name": "kv", "arrival_s": 2, "baseline_ways": 3,
         "workload": {"type": "redis"}},
    ],
}


class TestPoissonTenants:
    def test_same_seed_same_trace(self):
        a = poisson_tenants(rate_per_s=0.5, duration_s=40, mix=MIX, seed=11)
        b = poisson_tenants(rate_per_s=0.5, duration_s=40, mix=MIX, seed=11)
        assert a == b

    def test_different_seed_different_trace(self):
        a = poisson_tenants(rate_per_s=0.5, duration_s=40, mix=MIX, seed=11)
        b = poisson_tenants(rate_per_s=0.5, duration_s=40, mix=MIX, seed=12)
        assert a != b

    def test_sorted_unique_and_bounded(self):
        tenants = poisson_tenants(rate_per_s=0.5, duration_s=40, mix=MIX, seed=3)
        arrivals = [t.arrival_s for t in tenants]
        assert arrivals == sorted(arrivals)
        assert all(0 <= t.arrival_s < 40 for t in tenants)
        names = [t.name for t in tenants]
        assert len(set(names)) == len(names)

    def test_mix_fields_flow_through(self):
        tenants = poisson_tenants(rate_per_s=1.0, duration_s=30, mix=MIX, seed=3)
        assert tenants, "expected some arrivals at rate 1.0 over 30 s"
        assert {t.baseline_ways for t in tenants} <= {2, 3}
        assert all(t.lifetime_s > 0 for t in tenants)


class TestScriptedTenants:
    def test_sorts_by_arrival(self):
        late = TenantSpec("late", 9.0, 2, {"type": "lookbusy"})
        early = TenantSpec("early", 1.0, 2, {"type": "lookbusy"})
        assert [t.name for t in scripted_tenants([late, early])] == [
            "early", "late",
        ]

    def test_duplicate_names_rejected(self):
        a = TenantSpec("a", 0.0, 2, {"type": "lookbusy"})
        with pytest.raises(ValueError, match="duplicate"):
            scripted_tenants([a, a])

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="arrival_s"):
            TenantSpec("x", -1.0, 2, {"type": "lookbusy"})
        with pytest.raises(ValueError, match="baseline_ways"):
            TenantSpec("x", 0.0, 0, {"type": "lookbusy"})
        with pytest.raises(ValueError, match="lifetime_s"):
            TenantSpec("x", 0.0, 2, {"type": "lookbusy"}, lifetime_s=0.0)
        with pytest.raises(ValueError, match="'type'"):
            TenantSpec("x", 0.0, 2, {})


class TestPlacement:
    def _spec(self, name, workload, ways=3):
        return TenantSpec(name, 0.0, ways, workload)

    def _workload(self, spec, name="w"):
        return build_workload(spec["type"], name, dict(spec))

    def test_sensitivity_signal(self):
        fm = make_fleet_machine()
        sensitive = self._workload({"type": "mlr", "wss_mb": 8})
        insensitive = self._workload({"type": "lookbusy"})
        assert cache_sensitivity(sensitive, fm, 3) > 0.01
        assert cache_sensitivity(insensitive, fm, 3) <= 0.01

    def test_first_fit_takes_first_fitting(self):
        m0, m1 = make_fleet_machine("m0"), make_fleet_machine("m1", seed=8)
        spec = self._spec("t", {"type": "lookbusy"})
        chosen = FirstFitPolicy().place(spec, self._workload(spec.workload), [m0, m1])
        assert chosen is m0

    def test_first_fit_skips_full_machine(self):
        m0, m1 = make_fleet_machine("m0"), make_fleet_machine("m1", seed=8)
        big = self._spec("big", {"type": "lookbusy"}, ways=11)
        m0.admit(big, self._workload(big.workload, "big"), now=0.0)
        spec = self._spec("t", {"type": "lookbusy"}, ways=4)
        chosen = FirstFitPolicy().place(spec, self._workload(spec.workload), [m0, m1])
        assert chosen is m1

    def test_least_loaded_prefers_emptier_machine(self):
        m0, m1 = make_fleet_machine("m0"), make_fleet_machine("m1", seed=8)
        anchor = self._spec("anchor", {"type": "lookbusy"}, ways=5)
        m0.admit(anchor, self._workload(anchor.workload, "anchor"), now=0.0)
        spec = self._spec("t", {"type": "lookbusy"})
        chosen = LeastLoadedPolicy().place(spec, self._workload(spec.workload), [m0, m1])
        assert chosen is m1

    def test_sensitivity_aware_splits_by_curvature(self):
        m0, m1 = make_fleet_machine("m0"), make_fleet_machine("m1", seed=8)
        anchor = self._spec("anchor", {"type": "lookbusy"}, ways=5)
        m0.admit(anchor, self._workload(anchor.workload, "anchor"), now=0.0)
        policy = SensitivityAwarePolicy()
        cache_hungry = self._spec("hungry", {"type": "mlr", "wss_mb": 8})
        spinner = self._spec("spin", {"type": "lookbusy"})
        # The sensitive tenant gets the machine with the most headroom ...
        assert policy.place(
            cache_hungry, self._workload(cache_hungry.workload, "hungry"), [m0, m1]
        ) is m1
        # ... while the insensitive one is packed onto the loaded machine.
        assert policy.place(
            spinner, self._workload(spinner.workload, "spin"), [m0, m1]
        ) is m0

    def test_no_capacity_returns_none(self):
        m0 = make_fleet_machine("m0")
        big = self._spec("big", {"type": "lookbusy"}, ways=12)
        m0.admit(big, self._workload(big.workload, "big"), now=0.0)
        spec = self._spec("t", {"type": "lookbusy"})
        for policy in (FirstFitPolicy(), LeastLoadedPolicy(), SensitivityAwarePolicy()):
            assert policy.place(spec, self._workload(spec.workload), [m0]) is None

    def test_sensitivity_depends_on_host_geometry(self):
        # An 8 MB working set behind a 4-way reservation: starved on the
        # Xeon-D (4 x 1 MB ways) but already fully resident on the E5
        # (4 x 2.25 MB = 9 MB), so the same workload scores sensitive on
        # one host and insensitive on the other.
        d = make_fleet_machine("d")
        e5 = FleetMachine(
            name="e5",
            machine=Machine(spec=SocketSpec.xeon_e5_2697v4(), seed=7),
            manager=DCatManager(),
        )
        w = self._workload({"type": "mlr", "wss_mb": 8})
        assert cache_sensitivity(w, d, 4) > 0.01
        assert cache_sensitivity(w, e5, 4) <= 0.01

    def test_sensitivity_judged_against_would_be_placement(self):
        # Mixed-geometry fleet, Xeon-D listed first.  The headroom machine
        # (most free ways) is the E5, where the tenant is insensitive, so
        # the policy must pack it tightly instead of granting headroom —
        # judging sensitivity against the first machine in fleet order
        # (the D, where the tenant looks starved) would wrongly park it on
        # the E5's spare ways.
        d = make_fleet_machine("d")
        e5 = FleetMachine(
            name="e5",
            machine=Machine(spec=SocketSpec.xeon_e5_2697v4(), seed=7),
            manager=DCatManager(),
        )
        spec = self._spec("t", {"type": "mlr", "wss_mb": 8}, ways=4)
        policy = SensitivityAwarePolicy()
        chosen = policy.place(spec, self._workload(spec.workload), [d, e5])
        assert chosen is d  # packed: fewest free ways among fitting machines
        # D-only fleet: the would-be host is the D, where 4 MB of ways
        # cannot hold 8 MB, so the tenant is sensitive and keeps headroom.
        assert policy.place(spec, self._workload(spec.workload), [d]) is d


class TestFleetMachine:
    def test_admit_pins_lowest_threads_and_reserves(self):
        fm = make_fleet_machine()
        spec = TenantSpec("a", 0.0, 4, {"type": "lookbusy"})
        vm = fm.admit(spec, build_workload("lookbusy", "a", {"type": "lookbusy"}), 0.0)
        assert vm.vcpus == (0, 1)
        assert fm.reserved_ways == 4
        assert fm.free_ways == fm.machine.num_ways - 4

    def test_depart_returns_resources(self):
        fm = make_fleet_machine()
        spec = TenantSpec("a", 0.0, 4, {"type": "lookbusy"})
        fm.admit(spec, build_workload("lookbusy", "a", {"type": "lookbusy"}), 0.0)
        fm.depart("a")
        assert fm.reserved_ways == 0
        assert "a" not in fm.residents
        # The freed threads are reused by the next tenant.
        spec2 = TenantSpec("b", 0.0, 3, {"type": "lookbusy"})
        vm = fm.admit(spec2, build_workload("lookbusy", "b", {"type": "lookbusy"}), 1.0)
        assert vm.vcpus == (0, 1)

    def test_fits_rejects_way_overcommit(self):
        fm = make_fleet_machine()
        assert fm.fits(12)
        assert not fm.fits(13)
        spec = TenantSpec("a", 0.0, 10, {"type": "lookbusy"})
        fm.admit(spec, build_workload("lookbusy", "a", {"type": "lookbusy"}), 0.0)
        assert fm.fits(2)
        assert not fm.fits(3)

    def test_thread_slots_bound_admissions(self):
        fm = make_fleet_machine()
        # Xeon-D: 16 hardware threads / 2 vCPUs per VM = 8 slots.
        assert fm.free_thread_slots == 8
        for i in range(8):
            spec = TenantSpec(f"t{i}", 0.0, 1, {"type": "lookbusy"})
            fm.admit(spec, build_workload("lookbusy", f"t{i}", {"type": "lookbusy"}), 0.0)
        assert fm.free_thread_slots == 0
        assert not fm.fits(1)


class TestCloudFleetChurn:
    def test_scripted_churn_end_to_end(self):
        result = run_churn_scenario(SCENARIO)
        assert [p.reason for p in result.placements] == ["placed", "placed"]
        machines = {p.machine for p in result.placements}
        assert machines == {"m0", "m1"}  # least-loaded spreads the pair
        # db's 6 s lease expired mid-run; its timeline stops growing.
        db = result.tenants["db"]
        assert db.departed_s is not None
        assert db.departed_s <= 10.0
        assert result.tenants["kv"].departed_s is None
        assert set(result.summary) == {
            "tenants",
            "active_intervals",
            "violation_intervals",
            "violation_fraction",
            "mean_normalized_ipc",
        }
        assert result.summary["tenants"] == 2.0

    def test_rejection_when_fleet_full(self):
        scenario = dict(SCENARIO)
        scenario["fleet"] = {"machines": 1, "socket": "xeon_d", "seed": 7}
        scenario["tenants"] = [
            {"name": "a", "arrival_s": 0, "baseline_ways": 10,
             "workload": {"type": "lookbusy"}},
            {"name": "b", "arrival_s": 1, "baseline_ways": 10,
             "workload": {"type": "lookbusy"}},
        ]
        result = run_churn_scenario(scenario)
        assert [p.reason for p in result.placements] == ["placed", "no-ways"]
        assert result.rejected[0].tenant_id == "b"
        assert "b" not in result.tenants

    def test_departed_timelines_kept_reportable(self):
        result = run_churn_scenario(SCENARIO)
        db_machine = result.tenants["db"].machine
        timeline = result.machines[db_machine].timeline("db")
        assert timeline, "departed tenant's records must survive detach"
        assert timeline[-1].time_s < 10.0

    def test_same_scenario_same_result(self):
        a = run_churn_scenario(SCENARIO)
        b = run_churn_scenario(SCENARIO)
        assert a.placements == b.placements
        assert a.summary == b.summary
        for name in a.machines:
            assert a.machines[name].records == b.machines[name].records

    def test_fleet_interval_mismatch_rejected(self):
        m0 = make_fleet_machine("m0")
        m1 = FleetMachine(
            name="m1",
            machine=Machine(spec=SocketSpec.xeon_d(), seed=8, interval_s=0.5),
            manager=DCatManager(),
        )
        with pytest.raises(ValueError, match="interval_s"):
            CloudFleet([m0, m1], FirstFitPolicy(), [])


class TestLifecycleEventsOnBus:
    def _run_with_bus(self, scenario):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        # The bus must be the process default *before* construction so the
        # managers' controllers adopt it — exactly how --trace installs it.
        with use_bus(bus):
            fleet, duration = load_churn_scenario(scenario)
            fleet.run(duration)
        return seen

    def test_tenant_and_workload_events_emitted(self):
        seen = self._run_with_bus(SCENARIO)
        kinds = {type(e) for e in seen}
        assert {TenantPlaced, TenantAdmitted, TenantDeparted} <= kinds
        assert {WorkloadRegistered, WorkloadDeregistered} <= kinds
        placed = [e for e in seen if isinstance(e, TenantPlaced)]
        assert {e.tenant_id for e in placed} == {"db", "kv"}
        assert all(e.policy == "least_loaded" for e in placed)
        # Registration follows placement on the same machine's controller.
        registered = [e for e in seen if isinstance(e, WorkloadRegistered)]
        assert {e.workload_id for e in registered} == {"db", "kv"}
        departed = [e for e in seen if isinstance(e, TenantDeparted)]
        assert [e.tenant_id for e in departed] == ["db"]
        assert departed[0].reason == "lease-end"

    def test_rejection_event(self):
        scenario = dict(SCENARIO)
        scenario["fleet"] = {"machines": 1, "socket": "xeon_d", "seed": 7}
        scenario["tenants"] = [
            {"name": "a", "arrival_s": 0, "baseline_ways": 10,
             "workload": {"type": "lookbusy"}},
            {"name": "b", "arrival_s": 1, "baseline_ways": 10,
             "workload": {"type": "lookbusy"}},
        ]
        seen = self._run_with_bus(scenario)
        rejected = [e for e in seen if isinstance(e, TenantRejected)]
        assert [(e.tenant_id, e.reason) for e in rejected] == [("b", "no-ways")]

    def test_jsonl_trace_includes_lifecycle(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        with JsonlTraceWriter(str(path)) as writer:
            bus.subscribe(writer)
            with use_bus(bus):
                fleet, duration = load_churn_scenario(SCENARIO)
                fleet.run(duration)
        events = [json.loads(line)["event"] for line in path.read_text().splitlines()]
        for kind in (
            "TenantPlaced",
            "TenantAdmitted",
            "TenantDeparted",
            "WorkloadRegistered",
            "WorkloadDeregistered",
        ):
            assert kind in events


class TestSloAccounting:
    def test_violation_spans_merge(self):
        acct = SloAccountant(interval_s=1.0, tolerance=0.05)
        acct.admitted("t", "m0", 0.0)
        for t in range(3):
            acct.observe("t", float(t), ipc=0.5, entitled_ipc=1.0, active=True)
        acct.observe("t", 3.0, ipc=1.0, entitled_ipc=1.0, active=True)
        stats = acct.tenants["t"]
        assert stats.violation_intervals == 3
        assert stats.violation_spans == [(0.0, 3.0)]
        assert stats.active_intervals == 4

    def test_tolerance_absorbs_small_shortfall(self):
        acct = SloAccountant(interval_s=1.0, tolerance=0.05)
        acct.admitted("t", "m0", 0.0)
        acct.observe("t", 0.0, ipc=0.97, entitled_ipc=1.0, active=True)
        assert acct.tenants["t"].violation_intervals == 0

    def test_idle_intervals_not_counted(self):
        acct = SloAccountant(interval_s=1.0, tolerance=0.05)
        acct.admitted("t", "m0", 0.0)
        acct.observe("t", 0.0, ipc=0.0, entitled_ipc=1.0, active=False)
        stats = acct.tenants["t"]
        assert stats.active_intervals == 0
        assert stats.violation_intervals == 0

    def test_spans_merge_over_long_runs(self):
        """Span adjacency must be judged at interval scale, not epsilon.

        Past t ~ 1e7 with millisecond intervals, float64 cannot represent
        successive interval starts to 1e-9, so an absolute-epsilon merge
        test splits one contiguous violation into hundreds of spans.
        """
        t0 = 1.0e7
        interval = 1e-3
        acct = SloAccountant(interval_s=interval, tolerance=0.05)
        acct.admitted("t", "m0", t0)
        for i in range(300):
            # Accumulated the way a long simulation produces timestamps.
            acct.observe(
                "t", t0 + i * interval, ipc=0.5, entitled_ipc=1.0, active=True
            )
        stats = acct.tenants["t"]
        assert stats.violation_intervals == 300
        assert len(stats.violation_spans) == 1
        start, end = stats.violation_spans[0]
        assert start == t0
        assert end == pytest.approx(t0 + 300 * interval)

    def test_distinct_violations_stay_separate_spans(self):
        acct = SloAccountant(interval_s=1.0, tolerance=0.05)
        acct.admitted("t", "m0", 0.0)
        acct.observe("t", 0.0, ipc=0.5, entitled_ipc=1.0, active=True)
        acct.observe("t", 5.0, ipc=0.5, entitled_ipc=1.0, active=True)
        assert acct.tenants["t"].violation_spans == [(0.0, 1.0), (5.0, 6.0)]

    def test_fleet_summary_aggregates(self):
        acct = SloAccountant(interval_s=1.0, tolerance=0.0)
        acct.admitted("a", "m0", 0.0)
        acct.admitted("b", "m1", 0.0)
        acct.observe("a", 0.0, ipc=2.0, entitled_ipc=1.0, active=True)
        acct.observe("b", 0.0, ipc=0.5, entitled_ipc=1.0, active=True)
        summary = acct.fleet_summary()
        assert summary["tenants"] == 2.0
        assert summary["active_intervals"] == 2.0
        assert summary["violation_intervals"] == 1.0
        assert summary["violation_fraction"] == 0.5
        assert summary["mean_normalized_ipc"] == pytest.approx(1.25)


class TestSimAttachDetach:
    def _sim(self):
        machine = make_machine()
        vm = VirtualMachine(
            name="resident",
            workload=build_workload("lookbusy", "resident", {"type": "lookbusy"}),
            vcpus=(0, 1),
            baseline_ways=3,
        )
        sim = CloudSimulation(machine, [vm], DCatManager())
        return sim

    def _vm(self, name, vcpus):
        return VirtualMachine(
            name=name,
            workload=build_workload("lookbusy", name, {"type": "lookbusy"}),
            vcpus=vcpus,
            baseline_ways=3,
        )

    def test_attach_duplicate_name_rejected(self):
        sim = self._sim()
        with pytest.raises(ValueError, match="already attached"):
            sim.attach_vm(self._vm("resident", (2, 3)))

    def test_attach_overlapping_vcpus_rejected(self):
        sim = self._sim()
        with pytest.raises(ValueError, match="overlaps"):
            sim.attach_vm(self._vm("newcomer", (1, 2)))

    def test_attach_then_step_records(self):
        sim = self._sim()
        sim.attach_vm(self._vm("newcomer", (2, 3)))
        sim.step()
        assert len(sim.result.timeline("newcomer")) == 1

    def test_detach_keeps_timeline_and_frees_rmid(self):
        sim = self._sim()
        sim.attach_vm(self._vm("newcomer", (2, 3)))
        sim.step()
        sim.detach_vm("newcomer")
        assert sim.result.timeline("newcomer")
        assert all(vm.name != "newcomer" for vm in sim.vms)
        # The freed RMID (lowest) goes to the next arrival.
        sim.attach_vm(self._vm("third", (4, 5)))
        assert sim._rmid_of["third"] == 2

    def test_detach_unknown_rejected(self):
        sim = self._sim()
        with pytest.raises(ValueError, match="not attached"):
            sim.detach_vm("ghost")


class TestManagerChurnHooks:
    def test_shared_and_static_default_to_noop(self):
        vm = VirtualMachine(
            name="x",
            workload=build_workload("lookbusy", "x", {"type": "lookbusy"}),
            vcpus=(0, 1),
            baseline_ways=3,
        )
        for manager in (SharedCacheManager(), StaticCatManager()):
            manager.attach_vm(vm)
            manager.detach_vm("x")


class TestChurnScenarioValidation:
    def test_error_names_tenant_entry_and_field(self):
        scenario = dict(SCENARIO)
        scenario["tenants"] = [
            SCENARIO["tenants"][0],
            {"name": "bad", "workload": {"type": "nope"}},
        ]
        with pytest.raises(ChurnScenarioError, match=r"tenants\[1\]\.workload\.type"):
            load_churn_scenario(scenario)

    def test_error_names_mix_entry(self):
        scenario = dict(SCENARIO)
        scenario["poisson"] = {
            "rate_per_s": 0.5,
            "mix": [{"workload": {"type": "mlr", "wss_mb": 8}}, {"workload": {}}],
        }
        with pytest.raises(ChurnScenarioError, match=r"poisson\.mix\[1\]\.workload"):
            load_churn_scenario(scenario)

    def test_bad_placement_listed(self):
        scenario = dict(SCENARIO)
        scenario["placement"] = "random"
        with pytest.raises(ChurnScenarioError, match="placement.*'random'"):
            load_churn_scenario(scenario)

    def test_bad_socket(self):
        scenario = dict(SCENARIO)
        scenario["fleet"] = {"machines": 2, "socket": "epyc"}
        with pytest.raises(ChurnScenarioError, match="fleet.socket"):
            load_churn_scenario(scenario)

    def test_negative_arrival_field_context(self):
        scenario = dict(SCENARIO)
        scenario["tenants"] = [
            {"name": "a", "arrival_s": -2, "workload": {"type": "lookbusy"}},
        ]
        with pytest.raises(ChurnScenarioError, match=r"tenants\[0\]\.arrival_s"):
            load_churn_scenario(scenario)

    def test_duplicate_tenant_names(self):
        scenario = dict(SCENARIO)
        scenario["tenants"] = [
            {"name": "a", "workload": {"type": "lookbusy"}},
            {"name": "a", "workload": {"type": "lookbusy"}},
        ]
        with pytest.raises(ChurnScenarioError, match="duplicate"):
            load_churn_scenario(scenario)

    def test_empty_scenario(self):
        with pytest.raises(ChurnScenarioError, match="tenants"):
            load_churn_scenario({"fleet": {"machines": 1}})

    def test_garbage_source(self):
        with pytest.raises(ChurnScenarioError, match="neither a file nor valid JSON"):
            load_churn_scenario("definitely not json")


class TestExperimentDeterminism:
    def test_poisson_experiment_report_byte_identical(self):
        from repro.harness.experiments.cloud import run_cloud_churn_poisson
        from repro.harness.report import render_experiment

        a = render_experiment(run_cloud_churn_poisson(seed=77))
        b = render_experiment(run_cloud_churn_poisson(seed=77))
        assert a == b
        assert a != render_experiment(run_cloud_churn_poisson(seed=78))


class TestChurnCli:
    def test_cli_runs_file(self, tmp_path, capsys):
        path = tmp_path / "churn.json"
        path.write_text(json.dumps(SCENARIO))
        assert cli.main(["churn", str(path)]) == 0
        out = capsys.readouterr().out
        assert "admissions" in out
        assert "fleet" in out

    def test_cli_validation_error_exits_2(self, tmp_path, capsys):
        bad = dict(SCENARIO)
        bad["tenants"] = [{"name": "a", "workload": {"type": "nope"}}]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert cli.main(["churn", str(path)]) == 2
        err = capsys.readouterr().err
        assert "tenants[0].workload.type" in err


class TestChurnFaultInjection:
    def faulted(self, manager=None):
        scenario = dict(SCENARIO)
        if manager is not None:
            scenario["manager"] = manager
        scenario["faults"] = {
            "seed": 11,
            "rules": [
                {"kind": "counter_read_error", "probability": 0.2},
                {"kind": "l3ca_set_fail", "probability": 0.2},
            ],
        }
        return scenario

    def test_per_machine_plans_applied_and_deterministic(self):
        a = run_churn_scenario(self.faulted())
        b = run_churn_scenario(self.faulted())
        assert set(a.faults) == {"m0", "m1"}
        assert any(a.faults.values())  # something actually fired
        assert a.faults == b.faults
        assert a.summary == b.summary
        # per-machine derived seeds give the hosts independent schedules
        fleet, _ = load_churn_scenario(self.faulted())
        seeds = [m.injector.plan.seed for m in fleet.machines]
        assert len(set(seeds)) == len(seeds)

    def test_no_faults_section_means_empty_faults(self):
        result = run_churn_scenario(SCENARIO)
        assert result.faults == {}

    def test_bad_plan_names_field(self):
        scenario = self.faulted()
        scenario["faults"]["rules"][0]["kind"] = "nope"
        with pytest.raises(ChurnScenarioError, match=r"faults: rules\[0\]\.kind"):
            load_churn_scenario(scenario)

    def test_non_dcat_manager_rejected(self):
        scenario = self.faulted(manager={"type": "shared"})
        with pytest.raises(ChurnScenarioError, match="dcat manager"):
            load_churn_scenario(scenario)
