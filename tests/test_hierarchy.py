"""Tests for repro.cache.hierarchy: inclusive L1/L2/LLC composition."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HitLevel
from repro.mem.address import CacheGeometry


def make_hierarchy(num_cores=2, l2=False):
    llc = CacheGeometry(line_size=64, num_sets=64, num_ways=8)
    l1 = CacheGeometry(line_size=64, num_sets=4, num_ways=2)
    l2_geo = CacheGeometry(line_size=64, num_sets=16, num_ways=4) if l2 else None
    return CacheHierarchy(num_cores, llc, l1_geometry=l1, l2_geometry=l2_geo)


class TestAccessPath:
    def test_cold_access_goes_to_dram(self):
        h = make_hierarchy()
        assert h.access(0, 0) is HitLevel.DRAM

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        h.access(0, 0)
        assert h.access(0, 0) is HitLevel.L1

    def test_llc_serves_cross_core_sharing(self):
        h = make_hierarchy()
        h.access(0, 0)
        # Core 1 misses its private L1 but finds the line in the shared LLC.
        assert h.access(1, 0) is HitLevel.LLC

    def test_l1_capacity_spill_hits_llc(self):
        h = make_hierarchy()
        # 4 sets x 2 ways = 8 lines of L1; touch 16 distinct lines.
        for i in range(16):
            h.access(0, i * 64)
        assert h.access(0, 0) is HitLevel.LLC

    def test_stats_accumulate(self):
        h = make_hierarchy()
        h.access(0, 0)
        h.access(0, 0)
        h.access(0, 64)
        s = h.stats[0]
        assert s.l1_refs == 3
        assert s.l1_misses == 2
        assert s.llc_refs == 2
        assert s.llc_misses == 2

    def test_l2_level_reported(self):
        h = make_hierarchy(l2=True)
        for i in range(16):  # spill L1 (8 lines), stay within L2 (64 lines)
            h.access(0, i * 64)
        assert h.access(0, 0) is HitLevel.L2


class TestBatchAccess:
    def test_counts_cover_batch(self):
        h = make_hierarchy(l2=True)
        paddrs = [i * 64 for i in range(40)]
        counts = h.access_many(0, paddrs)
        assert sum(counts.values()) == len(paddrs)
        assert counts[HitLevel.DRAM] == 40  # all cold
        counts = h.access_many(0, paddrs)
        assert sum(counts.values()) == len(paddrs)
        assert counts[HitLevel.DRAM] == 0  # 40 lines fit in L2+LLC

    def test_batch_stats_match_scalar_path(self):
        a = make_hierarchy()
        b = make_hierarchy()
        paddrs = [(i * 7) % 50 * 64 for i in range(200)]
        a.access_many(0, paddrs)
        for p in paddrs:
            b.access(0, p)
        # Levels are batch-exact individually; with an LLC that holds the
        # whole working set no back-invalidation fires, so the per-core
        # counters must agree exactly.
        assert a.stats[0] == b.stats[0]

    def test_empty_batch(self):
        h = make_hierarchy()
        counts = h.access_many(0, [])
        assert all(v == 0 for v in counts.values())
        assert h.stats[0].l1_refs == 0

    def test_respects_way_mask(self):
        llc = CacheGeometry(line_size=64, num_sets=1, num_ways=4)
        h = CacheHierarchy(2, llc, l1_geometry=CacheGeometry(64, 1, 1))
        h.set_way_mask(0, 0b1100)
        h.set_way_mask(1, 0b0011)
        h.access(0, 0)
        h.access_many(1, [t * 64 for t in range(2, 40)])
        assert h.access(0, 0) in (HitLevel.L1, HitLevel.LLC)

    def test_inclusive_after_batches(self):
        llc = CacheGeometry(line_size=64, num_sets=2, num_ways=2)
        l1 = CacheGeometry(line_size=64, num_sets=2, num_ways=4)
        h = CacheHierarchy(2, llc, l1_geometry=l1)
        paddrs = [i * 64 for i in range(32)]
        for start in range(0, 32, 8):
            h.access_many(0, paddrs[start:start + 8])
            h.access_many(1, paddrs[::3])
            assert h.check_inclusive(paddrs)


class TestInclusivity:
    def test_llc_eviction_back_invalidates_l1(self):
        llc = CacheGeometry(line_size=64, num_sets=1, num_ways=2)
        l1 = CacheGeometry(line_size=64, num_sets=1, num_ways=4)
        h = CacheHierarchy(1, llc, l1_geometry=l1)
        span = 64  # one set: every line aliases
        h.access(0, 0 * span)
        h.access(0, 1 * span)
        # Third distinct line evicts line 0 from the 2-way LLC; inclusivity
        # demands it leaves the L1 too, even though the L1 had room.
        h.access(0, 2 * span)
        assert h.access(0, 0) is HitLevel.DRAM

    def test_inclusive_invariant_holds_under_traffic(self):
        h = make_hierarchy()
        paddrs = [i * 64 for i in range(300)]
        for p in paddrs:
            h.access(0, p)
            h.access(1, (p * 7) % (300 * 64) // 64 * 64)
        assert h.check_inclusive(paddrs)


class TestWayMasks:
    def test_mask_programming(self):
        h = make_hierarchy()
        h.set_way_mask(0, 0b0001)
        assert h.way_mask(0) == 0b0001

    def test_invalid_mask_rejected(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            h.set_way_mask(0, 0)

    def test_masked_core_cannot_evict_neighbor_lines(self):
        llc = CacheGeometry(line_size=64, num_sets=1, num_ways=4)
        h = CacheHierarchy(2, llc, l1_geometry=CacheGeometry(64, 1, 1))
        h.set_way_mask(0, 0b1100)
        h.set_way_mask(1, 0b0011)
        span = 64
        h.access(0, 0)
        # Core 1 thrashes its two ways with many lines.
        for tag in range(2, 40):
            h.access(1, tag * span)
        # Core 0's line survived in its protected ways.
        assert h.access(0, 0) in (HitLevel.L1, HitLevel.LLC)


class TestValidation:
    def test_needs_a_core(self):
        with pytest.raises(ValueError):
            CacheHierarchy(0, CacheGeometry())

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="line size"):
            CacheHierarchy(
                1,
                CacheGeometry(line_size=64),
                l1_geometry=CacheGeometry(line_size=128, num_sets=4, num_ways=2),
            )
