"""Tests for the sparkline renderer and experiment-wide rendering paths."""

from repro.harness.report import render_series, render_sparkline
from repro.harness.results import Series


class TestSparkline:
    def test_empty_series(self):
        assert "(empty)" in render_sparkline(Series("s", [], []))

    def test_flat_series_renders_full_level(self):
        text = render_sparkline(Series("s", [0.0, 1.0, 2.0], [5.0, 5.0, 5.0]))
        assert "@@@" in text
        assert "[5..5]" in text

    def test_range_annotated(self):
        text = render_sparkline(
            Series("s", list(map(float, range(10))), [float(i) for i in range(10)])
        )
        assert "[0..9]" in text

    def test_monotone_series_monotone_glyphs(self):
        levels = " .:-=+*#%@"
        text = render_sparkline(
            Series("s", list(map(float, range(10))), [float(i) for i in range(10)])
        )
        body = text.split("|")[1]
        ranks = [levels.index(c) for c in body]
        assert ranks == sorted(ranks)

    def test_subsampled_to_width(self):
        ys = [float(i % 7) for i in range(1000)]
        text = render_sparkline(Series("s", list(map(float, range(1000))), ys), width=40)
        body = text.split("|")[1]
        assert len(body) <= 70  # width plus stride rounding

    def test_long_series_gets_sparkline_in_render_series(self):
        s = Series("s", list(map(float, range(20))), [float(i) for i in range(20)])
        assert "|" in render_series(s)

    def test_short_series_skips_sparkline(self):
        s = Series("s", [0.0, 1.0], [1.0, 2.0])
        assert "|" not in render_series(s)
