"""Tests for repro.faults.invariants: the online allocation checker."""

import pytest

from repro.core.config import DCatConfig
from repro.engine.events import (
    AllocationPlanned,
    EventBus,
    FaultInjected,
    FaultRecovered,
    IntervalFinished,
    InvariantViolated,
    MasksProgrammed,
    SampleCollected,
    StateTransition,
    WorkloadDeregistered,
    WorkloadRegistered,
)
from repro.faults.invariants import InvariantChecker


def make_checker(total_ways=20, patience=2, bus=None):
    return InvariantChecker(
        total_ways=total_ways,
        config=DCatConfig(),
        bus=bus,
        patience=patience,
    )


def register(checker, wid, cos_id, baseline_ways):
    checker._on_event(
        WorkloadRegistered.fast(
            time_s=0.0, workload_id=wid, cos_id=cos_id, baseline_ways=baseline_ways
        )
    )


def sample(checker, wid, miss=0.1, idle=False):
    checker._on_event(
        SampleCollected.fast(
            time_s=0.0,
            source="controller",
            workload_id=wid,
            ipc=0.5,
            llc_miss_rate=miss,
            mem_refs_per_instr=0.1,
            instructions=1000,
            cycles=2000,
            idle=idle,
        )
    )


def interval(checker, plan, masks, free_ways, time_s=1.0):
    checker._on_event(
        AllocationPlanned.fast(time_s=time_s, plan=plan, free_ways=free_ways)
    )
    checker._on_event(
        MasksProgrammed.fast(time_s=time_s, masks=masks, moved=())
    )
    checker._on_event(
        IntervalFinished.fast(time_s=time_s, source="controller")
    )


class TestStructuralInvariants:
    def test_clean_interval_has_no_violations(self):
        checker = make_checker()
        register(checker, "a", 1, 4)
        register(checker, "b", 2, 4)
        interval(
            checker,
            plan={"a": 4, "b": 4},
            masks={"a": 0b1111, "b": 0b11110000},
            free_ways=12,
        )
        assert checker.violations == []
        assert checker.intervals_checked == 1

    def test_non_contiguous_mask(self):
        checker = make_checker()
        register(checker, "a", 1, 4)
        interval(checker, plan={"a": 4}, masks={"a": 0b1011001}, free_ways=16)
        assert any(v.invariant == "mask_contiguous" for v in checker.violations)

    def test_out_of_bounds_mask(self):
        checker = make_checker(total_ways=4)
        register(checker, "a", 1, 2)
        interval(checker, plan={"a": 2}, masks={"a": 0b110000}, free_ways=2)
        assert any(v.invariant == "mask_bounds" for v in checker.violations)

    def test_overlapping_masks(self):
        checker = make_checker()
        register(checker, "a", 1, 4)
        register(checker, "b", 2, 4)
        interval(
            checker,
            plan={"a": 4, "b": 4},
            masks={"a": 0b1111, "b": 0b111100},
            free_ways=12,
        )
        assert any(v.invariant == "mask_overlap" for v in checker.violations)

    def test_coverage_mask_plan_mismatch(self):
        checker = make_checker()
        register(checker, "a", 1, 4)
        interval(checker, plan={"a": 4}, masks={"a": 0b11111}, free_ways=16)
        assert any(v.invariant == "coverage" for v in checker.violations)

    def test_coverage_free_pool_accounting(self):
        checker = make_checker()
        register(checker, "a", 1, 4)
        interval(checker, plan={"a": 4}, masks={"a": 0b1111}, free_ways=3)
        assert any(v.invariant == "coverage" for v in checker.violations)

    def test_coverage_plan_names_mismatch(self):
        checker = make_checker()
        register(checker, "a", 1, 4)
        interval(
            checker,
            plan={"a": 4, "ghost": 2},
            masks={"a": 0b1111},
            free_ways=14,
        )
        assert any(v.invariant == "coverage" for v in checker.violations)

    def test_duplicate_cos(self):
        checker = make_checker()
        register(checker, "a", 1, 4)
        register(checker, "b", 1, 4)
        interval(
            checker,
            plan={"a": 4, "b": 4},
            masks={"a": 0b1111, "b": 0b11110000},
            free_ways=12,
        )
        assert any(v.invariant == "cos_pool" for v in checker.violations)


class TestBaselineGuarantee:
    def starve(self, checker, n, miss=0.5):
        for k in range(n):
            sample(checker, "a", miss=miss)
            interval(
                checker,
                plan={"a": 2},
                masks={"a": 0b11},
                free_ways=18,
                time_s=float(k),
            )

    def test_fires_only_past_patience(self):
        checker = make_checker(patience=2)
        register(checker, "a", 1, 4)
        self.starve(checker, 2)
        assert checker.violations == []
        self.starve(checker, 1)
        assert [v.invariant for v in checker.violations] == [
            "baseline_guarantee"
        ]
        # one violation per episode, not per interval
        self.starve(checker, 1)
        assert len(checker.violations) == 1

    def test_low_miss_rate_is_not_starvation(self):
        checker = make_checker(patience=1)
        register(checker, "a", 1, 4)
        self.starve(checker, 5, miss=0.0)
        assert checker.violations == []

    def test_idle_workload_exempt(self):
        checker = make_checker(patience=1)
        register(checker, "a", 1, 4)
        for k in range(5):
            sample(checker, "a", miss=0.5, idle=True)
            interval(
                checker, plan={"a": 2}, masks={"a": 0b11}, free_ways=18
            )
        assert checker.violations == []

    def test_donor_state_exempt(self):
        checker = make_checker(patience=1)
        register(checker, "a", 1, 4)
        checker._on_event(
            StateTransition.fast(
                time_s=0.0, workload_id="a", old_state="keeper", new_state="donor"
            )
        )
        self.starve(checker, 5)
        assert checker.violations == []

    def test_quarantined_workload_exempt(self):
        checker = make_checker(patience=1)
        register(checker, "a", 1, 4)
        checker._on_event(
            FaultRecovered.fast(
                time_s=0.0,
                kind="erratic_counters",
                target="a",
                action="quarantine",
                attempts=3,
            )
        )
        self.starve(checker, 5)
        assert checker.violations == []
        checker._on_event(
            FaultRecovered.fast(
                time_s=0.0,
                kind="erratic_counters",
                target="a",
                action="quarantine_release",
                attempts=1,
            )
        )
        self.starve(checker, 2)
        assert [v.invariant for v in checker.violations] == [
            "baseline_guarantee"
        ]

    def test_gap_closed_on_recovery_and_finalize(self):
        checker = make_checker(patience=5)
        register(checker, "a", 1, 4)
        self.starve(checker, 3)
        sample(checker, "a", miss=0.5)
        interval(checker, plan={"a": 4}, masks={"a": 0b1111}, free_ways=16)
        assert checker.guarantee_gaps == [3]
        self.starve(checker, 2)
        checker.finalize()
        assert checker.guarantee_gaps == [3, 2]

    def test_deregister_closes_open_gap(self):
        checker = make_checker(patience=5)
        register(checker, "a", 1, 4)
        self.starve(checker, 2)
        checker._on_event(
            WorkloadDeregistered.fast(time_s=9.0, workload_id="a", cos_id=1)
        )
        assert checker.guarantee_gaps == [2]
        checker.finalize()
        assert checker.guarantee_gaps == [2]


class TestRetentionAccounting:
    def test_retention_over_faulted_intervals_only(self):
        checker = make_checker(patience=1)
        register(checker, "a", 1, 4)
        # interval 0: faulted, guarantee held
        checker._on_event(
            FaultInjected.fast(
                time_s=0.0, kind="counter_noise", target="a", detail="x2"
            )
        )
        sample(checker, "a", miss=0.0)
        interval(checker, plan={"a": 4}, masks={"a": 0b1111}, free_ways=16)
        # interval 1: faulted, starved below baseline
        checker._on_event(
            FaultInjected.fast(
                time_s=1.0, kind="counter_noise", target="a", detail="x2"
            )
        )
        sample(checker, "a", miss=0.5)
        interval(checker, plan={"a": 2}, masks={"a": 0b11}, free_ways=18)
        # interval 2: clean, starved — must not count against retention
        sample(checker, "a", miss=0.5)
        interval(checker, plan={"a": 2}, masks={"a": 0b11}, free_ways=18)
        assert checker.faulted_intervals == 2
        assert checker.guarantee_retention == pytest.approx(0.5)

    def test_retention_is_one_without_faults(self):
        checker = make_checker()
        register(checker, "a", 1, 4)
        interval(checker, plan={"a": 4}, masks={"a": 0b1111}, free_ways=16)
        assert checker.guarantee_retention == 1.0


class TestBusIntegration:
    def test_violations_published_on_the_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, InvariantViolated)
        checker = make_checker(bus=bus)
        register(checker, "a", 1, 4)
        bus.emit(
            AllocationPlanned.fast(time_s=1.0, plan={"a": 4}, free_ways=16)
        )
        bus.emit(
            MasksProgrammed.fast(time_s=1.0, masks={"a": 0b1011001}, moved=())
        )
        bus.emit(IntervalFinished.fast(time_s=1.0, source="controller"))
        assert len(seen) == 1
        assert seen[0].invariant == "mask_contiguous"

    def test_double_attach_rejected(self):
        bus = EventBus()
        checker = make_checker(bus=bus)
        with pytest.raises(RuntimeError, match="already attached"):
            checker.attach(bus)

    def test_ignores_other_sources(self):
        checker = make_checker()
        register(checker, "a", 1, 4)
        checker._on_event(IntervalFinished.fast(time_s=1.0, source="machine"))
        assert checker.intervals_checked == 0

    def test_patience_validated(self):
        with pytest.raises(ValueError, match="patience"):
            make_checker(patience=0)
