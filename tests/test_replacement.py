"""Tests for repro.cache.replacement: LRU / PLRU / random policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.replacement import (
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
)


FULL_4 = 0b1111


class TestLru:
    def test_victim_is_least_recently_touched(self):
        lru = LruPolicy(num_sets=1, num_ways=4)
        for way in (0, 1, 2, 3):
            lru.touch(0, way)
        assert lru.victim(0, FULL_4) == 0
        lru.touch(0, 0)
        assert lru.victim(0, FULL_4) == 1

    def test_mask_restricts_victim(self):
        lru = LruPolicy(num_sets=1, num_ways=4)
        for way in (0, 1, 2, 3):
            lru.touch(0, way)
        # Way 0 is globally LRU but excluded by the mask.
        assert lru.victim(0, 0b1110) == 1

    def test_sets_are_independent(self):
        lru = LruPolicy(num_sets=2, num_ways=2)
        lru.touch(0, 1)
        lru.touch(1, 0)
        assert lru.victim(0, 0b11) == 0
        assert lru.victim(1, 0b11) == 1

    def test_reset_forgets(self):
        lru = LruPolicy(num_sets=1, num_ways=2)
        lru.touch(0, 1)
        lru.reset()
        # After reset all stamps equal; victim defaults to the lowest way.
        assert lru.victim(0, 0b11) == 0

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            LruPolicy(1, 4).victim(0, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=8, max_size=64))
    def test_matches_reference_lru(self, touches):
        """LruPolicy agrees with an order-list reference implementation."""
        lru = LruPolicy(num_sets=1, num_ways=8)
        order = list(range(8))  # front = least recent
        for way in touches:
            lru.touch(0, way)
            order.remove(way)
            order.append(way)
        assert lru.victim(0, (1 << 8) - 1) == order[0]


class TestTreePlru:
    def test_victim_avoids_recent_touch(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=4)
        plru.touch(0, 0)
        assert plru.victim(0, FULL_4) != 0

    def test_round_robin_like_filling(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=4)
        seen = set()
        for _ in range(4):
            victim = plru.victim(0, FULL_4)
            seen.add(victim)
            plru.touch(0, victim)
        assert seen == {0, 1, 2, 3}

    def test_mask_respected(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=8)
        for _ in range(32):
            assert plru.victim(0, 0b00001100) in (2, 3)

    def test_non_power_of_two_ways(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=20)
        victim = plru.victim(0, (1 << 20) - 1)
        assert 0 <= victim < 20

    def test_reset(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=4)
        plru.touch(0, 3)
        plru.reset()
        assert plru.victim(0, FULL_4) == 0


class TestRandom:
    def test_only_allowed_ways(self):
        policy = RandomPolicy(1, 8, rng=np.random.default_rng(0))
        for _ in range(64):
            assert policy.victim(0, 0b10100000) in (5, 7)

    def test_deterministic_with_seed(self):
        a = RandomPolicy(1, 8, rng=np.random.default_rng(5))
        b = RandomPolicy(1, 8, rng=np.random.default_rng(5))
        assert [a.victim(0, 255) for _ in range(16)] == [
            b.victim(0, 255) for _ in range(16)
        ]


class TestBatchContract:
    """The bulk-touch / run-protocol surface the batch cache path relies on."""

    def test_touch_many_matches_scalar_touches(self):
        a = LruPolicy(num_sets=4, num_ways=4)
        b = LruPolicy(num_sets=4, num_ways=4)
        sets = [0, 3, 0, 2, 0, 3]
        ways = [1, 2, 1, 0, 3, 2]  # includes duplicate (set, way) pairs
        for s, w in zip(sets, ways):
            a.touch(s, w)
        b.touch_many(sets, ways)
        assert np.array_equal(a._stamps, b._stamps)
        assert a._clock == b._clock
        # Victims agree afterwards too.
        for s in range(4):
            assert a.victim(s, FULL_4) == b.victim(s, FULL_4)

    def test_touch_many_at_positions_within_batch(self):
        a = LruPolicy(num_sets=2, num_ways=4)
        b = LruPolicy(num_sets=2, num_ways=4)
        for s, w in [(0, 2), (1, 1), (0, 0)]:
            a.touch(s, w)
        b.batch_begin(3)
        # Same accesses delivered out of temporal order, with positions.
        b.touch_many_at([0, 0, 1], [0, 2, 1], [2, 0, 1])
        b.batch_end(3)
        assert np.array_equal(a._stamps, b._stamps)
        assert a._clock == b._clock

    def test_stamp_run_state_contract(self):
        lru = LruPolicy(num_sets=1, num_ways=4)
        lru.touch(0, 0)
        lru.touch(0, 1)
        assert LruPolicy.stamp_run_state is True
        lru.batch_begin(2)
        assert lru.run_stamp_base == lru._clock == 2
        # Run state is the plain per-way stamp list the base class documents.
        ctx = lru.run_begin(0)
        assert ctx == [1, 2, 0, 0]
        # Inline touch semantics: ctx[way] = run_stamp_base + order + 1.
        ctx[2] = lru.run_stamp_base + 0 + 1
        lru.run_end(0, ctx)
        lru.batch_end(2)
        assert lru._clock == 4
        assert lru.victim(0, FULL_4) == 3  # only never-touched way left

    def test_invalidate_makes_way_oldest(self):
        lru = LruPolicy(num_sets=2, num_ways=4)
        for way in (0, 1, 2, 3):
            lru.touch(0, way)
        lru.invalidate(0, 3)
        assert lru._stamps[0, 3] == 0
        assert lru.victim(0, 0b1110) == 3  # beats way 1 despite the mask
        plru = TreePlruPolicy(num_sets=1, num_ways=4)
        for way in (0, 1, 2, 3):
            plru.touch(0, way)
        plru.invalidate(0, 2)
        assert plru._ages[0, 2] == 0
        # Tree bits survive invalidate (hardware keeps them); only the
        # masked fallback consults ages, so force it with a mask that
        # excludes the tree's choice.
        choice = plru.victim(0, FULL_4)
        mask = FULL_4 & ~(1 << choice)
        if (mask >> 2) & 1:
            assert plru.victim(0, mask) == 2

    def test_base_hooks_are_safe_defaults(self):
        policy = RandomPolicy(1, 4, rng=np.random.default_rng(3))
        policy.invalidate(0, 1)  # no state to drop; must not raise
        policy.touch_many([0, 0], [1, 2])
        policy.touch_many_at([0], [3], [0])
        policy.batch_begin(2)
        ctx = policy.run_begin(0)
        policy.run_touch(ctx, 1, 0)
        assert policy.run_victim(ctx, [2, 3], 0b1100) in (2, 3)
        policy.run_end(0, ctx)
        policy.batch_end(2)
        assert RandomPolicy.stamp_run_state is False

    def test_default_run_victim_consumes_rng_in_order(self):
        a = RandomPolicy(1, 8, rng=np.random.default_rng(11))
        b = RandomPolicy(1, 8, rng=np.random.default_rng(11))
        ctx = b.run_begin(0)
        scalar = [a.victim(0, 0b11110000) for _ in range(8)]
        run = [b.run_victim(ctx, [4, 5, 6, 7], 0b11110000) for _ in range(8)]
        assert scalar == run

    def test_plru_run_protocol_matches_scalar(self):
        a = TreePlruPolicy(num_sets=1, num_ways=8)
        b = TreePlruPolicy(num_sets=1, num_ways=8)
        touches = [0, 5, 3, 3, 7, 1, 6, 2, 4, 0]
        for way in touches:
            a.touch(0, way)
        victim_scalar = a.victim(0, 0b10101010)
        ctx = b.run_begin(0)
        for i, way in enumerate(touches):
            b.run_touch(ctx, way, i)
        assert b.run_victim(ctx, [1, 3, 5, 7], 0b10101010) == victim_scalar
        b.run_end(0, ctx)
        assert np.array_equal(a._bits, b._bits)
        assert np.array_equal(a._ages, b._ages)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls", [("lru", LruPolicy), ("plru", TreePlruPolicy), ("random", RandomPolicy)]
    )
    def test_by_name(self, name, cls):
        assert isinstance(make_policy(name, 4, 4), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown"):
            make_policy("mru", 4, 4)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LruPolicy(0, 4)
