"""Tests for repro.cache.replacement: LRU / PLRU / random policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.replacement import (
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
)


FULL_4 = 0b1111


class TestLru:
    def test_victim_is_least_recently_touched(self):
        lru = LruPolicy(num_sets=1, num_ways=4)
        for way in (0, 1, 2, 3):
            lru.touch(0, way)
        assert lru.victim(0, FULL_4) == 0
        lru.touch(0, 0)
        assert lru.victim(0, FULL_4) == 1

    def test_mask_restricts_victim(self):
        lru = LruPolicy(num_sets=1, num_ways=4)
        for way in (0, 1, 2, 3):
            lru.touch(0, way)
        # Way 0 is globally LRU but excluded by the mask.
        assert lru.victim(0, 0b1110) == 1

    def test_sets_are_independent(self):
        lru = LruPolicy(num_sets=2, num_ways=2)
        lru.touch(0, 1)
        lru.touch(1, 0)
        assert lru.victim(0, 0b11) == 0
        assert lru.victim(1, 0b11) == 1

    def test_reset_forgets(self):
        lru = LruPolicy(num_sets=1, num_ways=2)
        lru.touch(0, 1)
        lru.reset()
        # After reset all stamps equal; victim defaults to the lowest way.
        assert lru.victim(0, 0b11) == 0

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            LruPolicy(1, 4).victim(0, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=8, max_size=64))
    def test_matches_reference_lru(self, touches):
        """LruPolicy agrees with an order-list reference implementation."""
        lru = LruPolicy(num_sets=1, num_ways=8)
        order = list(range(8))  # front = least recent
        for way in touches:
            lru.touch(0, way)
            order.remove(way)
            order.append(way)
        assert lru.victim(0, (1 << 8) - 1) == order[0]


class TestTreePlru:
    def test_victim_avoids_recent_touch(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=4)
        plru.touch(0, 0)
        assert plru.victim(0, FULL_4) != 0

    def test_round_robin_like_filling(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=4)
        seen = set()
        for _ in range(4):
            victim = plru.victim(0, FULL_4)
            seen.add(victim)
            plru.touch(0, victim)
        assert seen == {0, 1, 2, 3}

    def test_mask_respected(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=8)
        for _ in range(32):
            assert plru.victim(0, 0b00001100) in (2, 3)

    def test_non_power_of_two_ways(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=20)
        victim = plru.victim(0, (1 << 20) - 1)
        assert 0 <= victim < 20

    def test_reset(self):
        plru = TreePlruPolicy(num_sets=1, num_ways=4)
        plru.touch(0, 3)
        plru.reset()
        assert plru.victim(0, FULL_4) == 0


class TestRandom:
    def test_only_allowed_ways(self):
        policy = RandomPolicy(1, 8, rng=np.random.default_rng(0))
        for _ in range(64):
            assert policy.victim(0, 0b10100000) in (5, 7)

    def test_deterministic_with_seed(self):
        a = RandomPolicy(1, 8, rng=np.random.default_rng(5))
        b = RandomPolicy(1, 8, rng=np.random.default_rng(5))
        assert [a.victim(0, 255) for _ in range(16)] == [
            b.victim(0, 255) for _ in range(16)
        ]


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls", [("lru", LruPolicy), ("plru", TreePlruPolicy), ("random", RandomPolicy)]
    )
    def test_by_name(self, name, cls):
        assert isinstance(make_policy(name, 4, 4), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown"):
            make_policy("mru", 4, 4)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LruPolicy(0, 4)
