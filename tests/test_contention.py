"""Tests for repro.cache.contention: shared-LLC capacity division."""

import pytest

from repro.cache.analytical import AccessPattern, AnalyticalCacheModel, Footprint
from repro.cache.contention import CacheDemand, SharedCacheContentionModel
from repro.mem.address import MB, CacheGeometry


@pytest.fixture()
def solver():
    return SharedCacheContentionModel(AnalyticalCacheModel(CacheGeometry.xeon_e5()))


def mload(ref_rate=0.048):
    return CacheDemand.of(AccessPattern.SEQUENTIAL, 60 * MB, ref_rate)


def mlr(wss_mb, ref_rate=0.03):
    return CacheDemand.of(AccessPattern.RANDOM, wss_mb * MB, ref_rate)


class TestConservation:
    def test_shares_never_exceed_capacity(self, solver):
        demands = [mlr(16), mload(), mload(), mlr(8)]
        shares = solver.solve(demands)
        assert sum(s.effective_ways for s in shares) <= 20.0 + 1e-6

    def test_share_capped_by_working_set(self, solver):
        shares = solver.solve([mlr(2)])
        # A 2 MB working set can never occupy more than ~0.9 ways.
        assert shares[0].effective_ways <= 2 * MB / (2.25 * MB) + 1e-6

    def test_empty_input(self, solver):
        assert solver.solve([]) == []


class TestSoloWorkloads:
    def test_fitting_workload_fully_hits(self, solver):
        shares = solver.solve([mlr(6)])
        assert shares[0].hit_rate == pytest.approx(1.0, abs=0.01)

    def test_oversized_random_gets_whole_cache(self, solver):
        shares = solver.solve([mlr(90)])
        assert shares[0].effective_ways == pytest.approx(20.0, rel=0.05)
        assert shares[0].hit_rate == pytest.approx(0.5, abs=0.05)

    def test_streaming_never_reuses(self, solver):
        shares = solver.solve([mload()])
        assert shares[0].hit_rate == 0.0


class TestInterference:
    def test_streaming_neighbors_crowd_the_victim(self, solver):
        alone = solver.solve([mlr(16)])[0]
        crowded = solver.solve([mlr(16), mload(), mload()])[0]
        assert crowded.hit_rate < alone.hit_rate - 0.2

    def test_more_pressure_less_share(self, solver):
        mild = solver.solve([mlr(16), mload(0.01)])[0]
        harsh = solver.solve([mlr(16), mload(0.2)])[0]
        assert harsh.effective_ways < mild.effective_ways

    def test_insertion_rate_drives_division(self, solver):
        heavy = CacheDemand.of(AccessPattern.RANDOM, 60 * MB, 0.10)
        light = CacheDemand.of(AccessPattern.RANDOM, 60 * MB, 0.01)
        shares = solver.solve([heavy, light])
        assert shares[0].effective_ways > shares[1].effective_ways


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            CacheDemand.of(AccessPattern.RANDOM, MB, -1.0)

    def test_damping_validated(self):
        with pytest.raises(ValueError):
            SharedCacheContentionModel(
                AnalyticalCacheModel(CacheGeometry.xeon_e5()), damping=0.0
            )

    def test_footprint_demand_construction(self):
        fp = Footprint(
            AccessPattern.HOTCOLD, 100 * MB, hot_bytes=8 * MB, hot_fraction=0.6
        )
        demand = CacheDemand(fp, 0.05)
        assert demand.footprint is fp


class TestDeterminism:
    def test_solver_is_deterministic(self, solver):
        demands = [mlr(16), mload(), mlr(4)]
        a = solver.solve(demands)
        b = solver.solve(demands)
        assert [s.effective_ways for s in a] == [s.effective_ways for s in b]
