"""Tests for COS-id pool behaviour under interleaved register/deregister churn.

The cloud layer attaches and detaches tenants mid-run, so the controller's
free-COS pool must hand out the lowest freed id first, leave survivors'
masks untouched, and reset released classes to the power-on full mask.
``admit_workload`` (mid-run registration) additionally must carve out the
newcomer's reservation from the free pool and incumbents' surplus only.
"""

import pytest

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.pqos import PqosLibrary
from repro.core.config import DCatConfig
from repro.core.controller import DCatController
from repro.engine.events import (
    EventBus,
    WorkloadDeregistered,
    WorkloadRegistered,
)
from repro.hwcounters.msr import CorePmu
from repro.hwcounters.perfmon import PerfMonitor

NUM_WAYS = 20
FULL_MASK = (1 << NUM_WAYS) - 1


def make_controller(num_cores=8, bus=None):
    cat = CacheAllocationTechnology(num_ways=NUM_WAYS, num_cores=num_cores)
    pqos = PqosLibrary(cat, way_size_bytes=2359296)
    controller = DCatController(
        pqos=pqos,
        perfmon=PerfMonitor({c: CorePmu() for c in range(num_cores)}),
        config=DCatConfig(),
        nominal_cycles_per_core=1_000_000,
        bus=bus,
    )
    return controller, pqos


def masks_by_cos(pqos):
    return {entry.cos_id: entry.ways_mask for entry in pqos.l3ca_get()}


class TestCosPoolChurn:
    def test_freed_ids_reused_lowest_first(self):
        controller, _ = make_controller()
        recs = {
            name: controller.register_workload(name, [i], baseline_ways=2)
            for i, name in enumerate(["a", "b", "c", "d"])
        }
        assert [recs[n].cos_id for n in "abcd"] == [1, 2, 3, 4]
        controller.deregister_workload("c")
        controller.deregister_workload("a")
        # Both 1 and 3 are free; the lowest must come back first.
        assert controller.register_workload("e", [0], baseline_ways=2).cos_id == 1
        assert controller.register_workload("f", [2], baseline_ways=2).cos_id == 3
        assert controller.register_workload("g", [4], baseline_ways=2).cos_id == 5

    def test_interleaved_churn_keeps_ids_dense(self):
        controller, _ = make_controller()
        for round_no in range(3):
            a = controller.register_workload(f"a{round_no}", [0], baseline_ways=2)
            b = controller.register_workload(f"b{round_no}", [1], baseline_ways=2)
            assert {a.cos_id, b.cos_id} == {1, 2}
            controller.deregister_workload(f"a{round_no}")
            controller.deregister_workload(f"b{round_no}")

    def test_survivor_masks_stable_across_deregister(self):
        controller, pqos = make_controller()
        controller.register_workload("a", [0, 1], baseline_ways=4)
        controller.register_workload("b", [2, 3], baseline_ways=5)
        controller.register_workload("c", [4, 5], baseline_ways=6)
        controller.initialize()
        before = masks_by_cos(pqos)
        b_cos = controller.records["b"].cos_id
        controller.deregister_workload("b")
        after = masks_by_cos(pqos)
        for name in ("a", "c"):
            cos = controller.records[name].cos_id
            assert after[cos] == before[cos], f"{name}'s mask moved"
        assert after[b_cos] == FULL_MASK

    def test_released_class_reset_to_full_mask(self):
        controller, pqos = make_controller()
        rec = controller.register_workload("a", [0], baseline_ways=3)
        controller.initialize()
        assert masks_by_cos(pqos)[rec.cos_id] != FULL_MASK
        controller.deregister_workload("a")
        assert masks_by_cos(pqos)[rec.cos_id] == FULL_MASK

    def test_cores_fall_back_to_cos0_on_deregister(self):
        controller, pqos = make_controller()
        controller.register_workload("a", [0, 1], baseline_ways=3)
        controller.deregister_workload("a")
        assert pqos.alloc_assoc_get(0) == 0
        assert pqos.alloc_assoc_get(1) == 0

    def test_exhaustion_then_release_recovers(self):
        controller, _ = make_controller(num_cores=16)
        max_workloads = 15  # COS0 is reserved for the unmanaged default
        for i in range(max_workloads):
            controller.register_workload(f"w{i}", [i], baseline_ways=1)
        with pytest.raises(ValueError, match="classes"):
            controller.register_workload("overflow", [15], baseline_ways=1)
        controller.deregister_workload("w7")
        rec = controller.register_workload("late", [15], baseline_ways=1)
        assert rec.cos_id == 8  # w7 had COS 8 (ids start at 1)


class TestLifecycleEvents:
    def test_register_and_deregister_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        controller, _ = make_controller(bus=bus)
        rec = controller.register_workload("a", [0], baseline_ways=3)
        controller.deregister_workload("a")
        registered = [e for e in seen if isinstance(e, WorkloadRegistered)]
        deregistered = [e for e in seen if isinstance(e, WorkloadDeregistered)]
        assert len(registered) == 1
        assert registered[0].workload_id == "a"
        assert registered[0].cos_id == rec.cos_id
        assert registered[0].baseline_ways == 3
        assert len(deregistered) == 1
        assert deregistered[0].cos_id == rec.cos_id


class TestAdmitWorkload:
    def test_admit_into_free_pool_leaves_incumbents_alone(self):
        controller, _ = make_controller()
        controller.register_workload("a", [0], baseline_ways=3)
        controller.initialize()
        controller.admit_workload("b", [1], baseline_ways=4)
        assert controller.records["a"].ways == 3
        assert controller.records["b"].ways == 4

    def test_admit_reclaims_surplus_largest_first(self):
        controller, _ = make_controller()
        controller.register_workload("a", [0], baseline_ways=3)
        controller.register_workload("b", [1], baseline_ways=3)
        controller.initialize()
        # Simulate growth: a harvested most of the free pool, b a little.
        controller.records["a"].ways = 12
        controller.records["b"].ways = 5
        controller.admit_workload("c", [2], baseline_ways=6)
        # Free pool had 3 ways; the missing 3 come from a (largest surplus).
        assert controller.records["a"].ways == 9
        assert controller.records["b"].ways == 5
        assert controller.records["c"].ways == 6

    def test_admit_never_cuts_below_baselines(self):
        controller, _ = make_controller()
        controller.register_workload("a", [0], baseline_ways=10)
        controller.register_workload("b", [1], baseline_ways=9)
        controller.initialize()
        with pytest.raises(ValueError, match="cannot admit"):
            controller.admit_workload("c", [2], baseline_ways=4)

    def test_failed_admit_rolls_back_registration(self):
        controller, _ = make_controller()
        controller.register_workload("a", [0], baseline_ways=10)
        controller.register_workload("b", [1], baseline_ways=9)
        controller.initialize()
        with pytest.raises(ValueError):
            controller.admit_workload("c", [2], baseline_ways=4)
        assert "c" not in controller.records
        # The rolled-back COS id is free again (lowest-first).
        assert controller.register_workload("d", [3], baseline_ways=1).cos_id == 3

    def test_admitted_masks_programmed_immediately(self):
        controller, pqos = make_controller()
        controller.register_workload("a", [0], baseline_ways=3)
        controller.initialize()
        rec = controller.admit_workload("b", [1], baseline_ways=4)
        mask = masks_by_cos(pqos)[rec.cos_id]
        assert bin(mask).count("1") == 4
        assert mask != FULL_MASK
