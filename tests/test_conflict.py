"""Tests for repro.cache.conflict: scatter math vs the exact cache model.

The closed-form conflict/hit-rate math is the foundation the fast platform
model rests on, so this file validates it against (a) first principles and
(b) the exact tag-array simulator running real page-table layouts.
"""

import numpy as np
import pytest

from repro.cache.conflict import (
    analyze_buffer_scatter,
    conflicted_set_fraction,
    lines_per_set,
    set_occupancy_histogram,
    simulated_scatter_hit_rate,
    uniform_irm_hit_rate,
)
from repro.cache.setassoc import SetAssociativeCache
from repro.mem.address import MB, CacheGeometry
from repro.mem.paging import PAGE_2M, PAGE_4K, PageTable
from repro.workloads.mlr import generate_mlr_offsets


class TestLinesPerSet:
    def test_counts_sum_to_total_lines(self):
        geo = CacheGeometry(line_size=64, num_sets=256, num_ways=8)
        table = PageTable(rng=np.random.default_rng(0))
        buf = table.map_buffer(1 * MB)
        per_set = lines_per_set(table.physical_lines(buf), geo)
        assert per_set.sum() == 1 * MB // 64

    def test_histogram_fractions_sum_to_one(self):
        geo = CacheGeometry(line_size=64, num_sets=256, num_ways=8)
        table = PageTable(rng=np.random.default_rng(1))
        buf = table.map_buffer(512 * 1024)
        hist = set_occupancy_histogram(lines_per_set(table.physical_lines(buf), geo))
        assert sum(hist.values()) == pytest.approx(1.0)


class TestIrmHitRate:
    def test_balanced_fit_hits_fully(self):
        per_set = np.full(16, 2, dtype=np.int64)
        assert uniform_irm_hit_rate(per_set, allocated_ways=2) == 1.0

    def test_overloaded_sets_hit_proportionally(self):
        per_set = np.array([4, 0, 0, 0], dtype=np.int64)
        # One set with 4 lines and 2 ways: hit rate 2/4 on all accesses.
        assert uniform_irm_hit_rate(per_set, 2) == pytest.approx(0.5)

    def test_mixed(self):
        per_set = np.array([1, 3], dtype=np.int64)
        # min(1,2) + min(3,2) over 4 lines = 3/4.
        assert uniform_irm_hit_rate(per_set, 2) == pytest.approx(0.75)

    def test_empty_scatter(self):
        assert uniform_irm_hit_rate(np.zeros(4, dtype=np.int64), 2) == 0.0

    def test_invalid_ways(self):
        with pytest.raises(ValueError):
            uniform_irm_hit_rate(np.ones(4, dtype=np.int64), 0)


class TestConflictedFraction:
    def test_no_conflicts(self):
        per_set = np.array([1, 2, 0], dtype=np.int64)
        assert conflicted_set_fraction(per_set, 2) == 0.0

    def test_half_conflicted(self):
        per_set = np.array([3, 1], dtype=np.int64)
        assert conflicted_set_fraction(per_set, 2) == pytest.approx(0.5)


class TestPaperFigure3:
    """The quantitative claims of paper Fig. 3."""

    def test_xeon_d_4k_conflict_fraction(self):
        # Paper: ~32.5% of sets get 3+ lines (2 MB WSS, 4 KB pages).
        scatter = analyze_buffer_scatter(
            2 * MB, CacheGeometry.xeon_d(), allocated_ways=2, page_size=PAGE_4K
        )
        frac3 = sum(v for k, v in scatter.histogram.items() if k >= 3)
        assert 0.25 < frac3 < 0.40

    def test_xeon_d_hugepage_perfect(self):
        # Paper: huge pages make the 2 MB working set conflict free.
        scatter = analyze_buffer_scatter(
            2 * MB, CacheGeometry.xeon_d(), allocated_ways=2, page_size=PAGE_2M
        )
        assert scatter.conflicted_fraction == 0.0
        assert scatter.irm_hit_rate == 1.0

    def test_xeon_e5_hugepage_still_conflicts(self):
        # Paper: ~11.2% of sets get 3 lines for 4.5 MB over 3 huge pages.
        scatter = analyze_buffer_scatter(
            int(4.5 * MB), CacheGeometry.xeon_e5(), allocated_ways=2, page_size=PAGE_2M, seed=3
        )
        frac3 = sum(v for k, v in scatter.histogram.items() if k >= 3)
        assert 0.0 < frac3 < 0.30
        assert scatter.irm_hit_rate < 1.0


class TestClosedFormAgainstExactCache:
    """The headline validation: formula == tag-array simulation."""

    @pytest.mark.parametrize("ways,page_size", [(2, PAGE_4K), (2, PAGE_2M), (4, PAGE_4K)])
    def test_irm_hit_rate_matches_simulation(self, ways, page_size):
        geo = CacheGeometry(line_size=64, num_sets=512, num_ways=8)
        table = PageTable(rng=np.random.default_rng(9), page_size=page_size)
        wss = 512 * 64 * ways  # sized to the allocation
        buf = table.map_buffer(wss)
        layout = table.physical_lines(buf)
        predicted = uniform_irm_hit_rate(lines_per_set(layout, geo), ways)

        cache = SetAssociativeCache(geo)
        mask = (1 << ways) - 1
        rng = np.random.default_rng(10)
        offsets = generate_mlr_offsets(wss, 60_000, rng=rng)
        paddrs = table.translate_buffer(buf, offsets)
        cache.access_many(paddrs[:30_000], mask=mask)
        hits = cache.access_many(paddrs[30_000:], mask=mask)
        measured = hits / 30_000
        assert measured == pytest.approx(predicted, abs=0.04)

    def test_scatter_helper_is_consistent(self):
        geo = CacheGeometry(line_size=64, num_sets=1024, num_ways=8)
        # 1 MB working set over a 4-way share of 64 KB/way: about a quarter
        # of the lines fit, so the IRM hit rate sits near 0.25.
        rate = simulated_scatter_hit_rate(
            1 * MB, geo, allocated_ways=4, samples=3, seed=5
        )
        assert 0.15 < rate < 0.35
