"""Tiered-fidelity cache substrates: contract, agreement, and the oracle.

Three claims pinned here:

1. **Agreement** — on stationary single-tenant stages the analytical and
   exact substrates report the same steady-state hit rate within a few
   percent, across seeds (the cross-validation the mixed oracle automates).
2. **Divergence detection** — a mixed run with a zero tolerance must
   report divergences: ``FidelityDivergence`` events on the bus, counted
   by :class:`~repro.obs.collectors.BusMetricsCollector`.
3. **Fidelity isolation** — with sampling disabled, a mixed run's event
   trace is byte-identical to a pure analytical run's: the oracle is
   observation-only and its absence leaves no fingerprint.

Plus the plumbing: ``build_substrate`` validation, the one-simulation
bind contract, exact-substrate COS recycling across churn, and the
``use_fidelity`` process-default slot.
"""

import io
from types import SimpleNamespace

import pytest

from repro.engine.events import (
    EventBus,
    FidelityDivergence,
    JsonlTraceWriter,
    RingBufferRecorder,
)
from repro.mem.address import MB
from repro.obs.collectors import BusMetricsCollector
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager, StaticCatManager
from repro.platform.sim import CloudSimulation
from repro.platform.substrate import (
    FIDELITIES,
    AnalyticalSubstrate,
    ExactSubstrate,
    MixedSubstrate,
    build_substrate,
    get_default_fidelity,
    set_default_fidelity,
    use_fidelity,
)
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mlr import MlrWorkload


def single_tenant_stage(machine, wss_bytes=2 * MB, start_delay_s=0.0):
    vms = [
        VirtualMachine(
            "target",
            MlrWorkload(wss_bytes, start_delay_s=start_delay_s, name="target"),
            baseline_ways=1,
        ),
        VirtualMachine("lb0", LookbusyWorkload(name="lb0"), baseline_ways=1),
    ]
    return pin_vms(vms, machine.spec)


class TestAnalyticalExactAgreement:
    """Seeded property: the two fidelities agree on stationary phases."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_steady_hit_rates_agree_single_tenant(self, seed):
        def run(substrate):
            machine = Machine(seed=seed)
            sim = CloudSimulation(
                machine,
                single_tenant_stage(machine),
                StaticCatManager(),
                substrate=substrate,
            )
            return sim.run(10.0)

        fast = run(AnalyticalSubstrate())
        exact = run(ExactSubstrate(accesses_per_interval=100_000, seed=seed))
        f = fast.steady_mean("target", "llc_hit_rate", 4)
        e = exact.steady_mean("target", "llc_hit_rate", 4)
        assert e == pytest.approx(f, abs=0.05)


class TestDivergenceDetection:
    def test_zero_tolerance_mixed_run_reports_divergence(self):
        """Analytical and measured hit rates never match to the last bit,
        so a zero-tolerance oracle sampling every interval must fire —
        on the bus, in the log, and in the metrics registry."""
        ring = RingBufferRecorder()
        collector = BusMetricsCollector()
        bus = EventBus()
        bus.subscribe(ring)
        bus.subscribe(collector.on_event)

        machine = Machine(seed=5)
        oracle = MixedSubstrate(
            sample_rate=1.0,
            tolerance=0.0,
            warmup_samples=0,
            accesses_per_interval=20_000,
        )
        sim = CloudSimulation(
            machine,
            single_tenant_stage(machine),
            DCatManager(),
            bus=bus,
            substrate=oracle,
        )
        sim.run(6.0)

        assert oracle.samples > 0
        assert oracle.divergences > 0
        assert len(oracle.divergence_log) == oracle.divergences

        events = ring.of_type(FidelityDivergence)
        assert len(events) == oracle.divergences
        first = events[0]
        assert first.workload_id == "target"
        assert first.tolerance == 0.0
        assert first.analytical != first.exact

        counted = collector.registry.value(
            "dcat_fidelity_divergences_total", workload="target"
        )
        assert counted == oracle.divergences

    def test_generous_tolerance_stays_silent(self):
        machine = Machine(seed=5)
        oracle = MixedSubstrate(
            sample_rate=1.0,
            tolerance=1.0,  # hit rates live in [0, 1]: nothing can diverge
            warmup_samples=0,
            accesses_per_interval=20_000,
        )
        sim = CloudSimulation(
            machine, single_tenant_stage(machine), DCatManager(), substrate=oracle
        )
        sim.run(6.0)
        assert oracle.samples > 0
        assert oracle.divergences == 0
        assert oracle.divergence_log == []


class TestMixedNoSamplingIsAnalytical:
    """sample_rate=0 must leave no fingerprint: byte-identical traces."""

    def _trace(self, substrate):
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        bus = EventBus()
        bus.subscribe(writer)
        machine = Machine(seed=9)
        sim = CloudSimulation(
            machine,
            single_tenant_stage(machine, start_delay_s=2.0),
            DCatManager(),
            bus=bus,
            substrate=substrate,
        )
        sim.run(8.0)
        writer.close()
        return buffer.getvalue()

    def test_traces_byte_identical(self):
        analytical = self._trace(AnalyticalSubstrate())
        mixed = self._trace(MixedSubstrate(sample_rate=0.0))
        assert analytical  # the run actually emitted events
        assert mixed == analytical

    def test_no_sampling_oracle_never_samples(self):
        machine = Machine(seed=9)
        oracle = MixedSubstrate(sample_rate=0.0)
        sim = CloudSimulation(
            machine, single_tenant_stage(machine), DCatManager(), substrate=oracle
        )
        sim.run(4.0)
        assert oracle.samples == 0
        assert oracle.divergences == 0


class TestBuildSubstrate:
    def test_builds_each_fidelity(self):
        assert isinstance(build_substrate("analytical"), AnalyticalSubstrate)
        assert isinstance(build_substrate("exact", seed=7), ExactSubstrate)
        mixed = build_substrate("mixed", sample_rate=0.5, tolerance=0.2)
        assert isinstance(mixed, MixedSubstrate)
        assert mixed.sample_rate == 0.5
        assert mixed.tolerance == 0.2

    def test_unknown_fidelity_names_the_choices(self):
        with pytest.raises(ValueError, match="unknown fidelity 'quantum'"):
            build_substrate("quantum")

    def test_analytical_accepts_no_options(self):
        with pytest.raises(ValueError, match="does not accept option"):
            build_substrate("analytical", seed=1)

    def test_exact_rejects_mixed_only_options(self):
        with pytest.raises(ValueError, match=r"\['sample_rate'\]"):
            build_substrate("exact", sample_rate=0.5)

    def test_mixed_validates_option_ranges(self):
        with pytest.raises(ValueError, match="sample_rate"):
            build_substrate("mixed", sample_rate=1.5)
        with pytest.raises(ValueError, match="tolerance"):
            build_substrate("mixed", tolerance=-0.1)
        with pytest.raises(ValueError, match="warmup_samples"):
            build_substrate("mixed", warmup_samples=-1)


class TestBindContract:
    @pytest.mark.parametrize(
        "factory", [AnalyticalSubstrate, ExactSubstrate, MixedSubstrate]
    )
    def test_substrates_bind_once(self, factory):
        substrate = factory()
        machine = Machine(seed=1)
        CloudSimulation(
            machine, single_tenant_stage(machine), StaticCatManager(),
            substrate=substrate,
        )
        other = Machine(seed=2)
        with pytest.raises(RuntimeError, match="already bound"):
            CloudSimulation(
                other, single_tenant_stage(other), StaticCatManager(),
                substrate=substrate,
            )

    def test_unbound_substrate_has_no_sim(self):
        with pytest.raises(AssertionError):
            AnalyticalSubstrate().sim


class TestExactCosRecycling:
    def test_departed_vm_cos_is_reused(self):
        machine = Machine(seed=1)
        substrate = ExactSubstrate()
        sim = CloudSimulation(
            machine, single_tenant_stage(machine), StaticCatManager(),
            substrate=substrate,
        )
        sim.run(1.0)
        recycled = substrate._cos_of["lb0"]
        sim.detach_vm("lb0")
        assert "lb0" not in substrate._cos_of
        assert recycled in substrate._free_cos
        # A later arrival picks the lowest free COS back up.
        lowest = min(substrate._free_cos)
        substrate.on_attach(SimpleNamespace(name="newcomer"))
        assert substrate._cos_of["newcomer"] == lowest

    def test_cos_exhaustion_is_an_error(self):
        machine = Machine(seed=1)
        substrate = ExactSubstrate()
        CloudSimulation(
            machine, single_tenant_stage(machine), StaticCatManager(),
            substrate=substrate,
        )
        substrate._free_cos.clear()
        with pytest.raises(ValueError, match="no free COS"):
            substrate.on_attach(SimpleNamespace(name="overflow"))


class TestDefaultFidelitySlot:
    def test_default_is_analytical(self):
        assert get_default_fidelity() == "analytical"

    def test_use_fidelity_scopes_the_default(self):
        machine = Machine(seed=1)
        with use_fidelity("exact"):
            assert get_default_fidelity() == "exact"
            sim = CloudSimulation(
                machine, single_tenant_stage(machine), StaticCatManager()
            )
            assert isinstance(sim.substrate, ExactSubstrate)
        assert get_default_fidelity() == "analytical"

    def test_set_default_fidelity_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            set_default_fidelity("bogus")
        assert get_default_fidelity() == "analytical"

    def test_none_restores_analytical(self):
        set_default_fidelity("mixed")
        try:
            assert get_default_fidelity() == "mixed"
        finally:
            set_default_fidelity(None)
        assert get_default_fidelity() == "analytical"

    def test_fidelity_order_is_cost_order(self):
        assert FIDELITIES == ("analytical", "mixed", "exact")
