"""Tests for repro.mem.dram: loaded-latency model."""

import pytest

from repro.mem.dram import DramModel


class TestUtilization:
    def test_zero_traffic(self):
        assert DramModel().utilization(0.0) == 0.0

    def test_clamps_to_one(self):
        model = DramModel(peak_lines_per_cycle=0.4)
        assert model.utilization(10.0) == 1.0

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            DramModel().utilization(-0.1)


class TestLoadedLatency:
    def test_idle_latency_at_zero_load(self):
        model = DramModel(idle_latency_cycles=200.0)
        assert model.loaded_latency(0.0) == pytest.approx(200.0)

    def test_monotonically_increasing(self):
        model = DramModel()
        lats = [model.loaded_latency(x) for x in (0.0, 0.1, 0.2, 0.3, 0.39)]
        assert lats == sorted(lats)

    def test_capped_at_max_inflation(self):
        model = DramModel(idle_latency_cycles=200.0, max_inflation=4.0)
        assert model.loaded_latency(100.0) == pytest.approx(800.0)

    def test_half_load_inflation(self):
        model = DramModel(idle_latency_cycles=100.0, peak_lines_per_cycle=1.0)
        assert model.loaded_latency(0.5) == pytest.approx(200.0)
