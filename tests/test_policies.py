"""The allocation-strategy registry and the three rival strategies.

The fuzz suite (``test_allocation_fuzz.py``) pins the §3.5 contract and
the legacy byte-identity; this file covers the registry surface (names,
aliases, normalization, the process-default slot), the declared-phase
hint types, and each rival strategy's characteristic behaviour on
hand-built inputs.
"""

import pytest

from repro.core.allocation import AllocationInput, base_plan, plan_allocation
from repro.core.config import AllocationPolicy, DCatConfig
from repro.core.grouping import curvature_score
from repro.core.hints import DeclaredPhase, DeclaredSchedule, PhaseHint
from repro.core.perftable import PhaseTable
from repro.core.policies import (
    AllocationStrategy,
    canonical_name,
    fit_to_budget,
    get_default_policy,
    get_strategy,
    normalize_policy,
    policy_name,
    protected_floors,
    register_strategy,
    set_default_policy,
    strategy_names,
    use_policy,
)
from repro.core.states import WorkloadState


def _inp(wid, state=WorkloadState.KEEPER, target=3, grow=0, baseline=3,
         reclaiming=False, table=None, hint=None):
    return AllocationInput(
        workload_id=wid,
        state=state,
        target_ways=target,
        grow_request=grow,
        baseline_ways=baseline,
        reclaiming=reclaiming,
        phase_table=table,
        hint=hint,
    )


def _table(entries, baseline=3):
    return PhaseTable(baseline_ways=baseline, baseline_ipc=1.0, entries=entries)


# -- registry ------------------------------------------------------------------


def test_registry_ships_five_strategies():
    assert strategy_names() == [
        "lfoc_clustering",
        "max_fairness",
        "max_performance",
        "phase_hint",
        "reserved_pooled",
    ]


@pytest.mark.parametrize(
    "spelling,expected",
    [
        ("max_fairness", "max_fairness"),
        ("fairness", "max_fairness"),
        ("Max-Performance", "max_performance"),
        ("  performance ", "max_performance"),
        ("LFOC", "lfoc_clustering"),
        ("phase hints", "phase_hint"),
        ("declared", "phase_hint"),
        ("memshare", "reserved_pooled"),
        ("harvest", "reserved_pooled"),
        (AllocationPolicy.MAX_FAIRNESS, "max_fairness"),
        (AllocationPolicy.MAX_PERFORMANCE, "max_performance"),
    ],
)
def test_canonical_name_accepts_every_spelling(spelling, expected):
    assert canonical_name(spelling) == expected


def test_canonical_name_rejects_unknown_listing_registry():
    with pytest.raises(ValueError) as excinfo:
        canonical_name("round_robin")
    message = str(excinfo.value)
    assert "round_robin" in message
    for name in strategy_names():
        assert name in message


def test_canonical_name_rejects_non_strings():
    with pytest.raises(ValueError, match="int"):
        canonical_name(7)


def test_normalize_policy_keeps_legacy_names_as_enum_members():
    assert normalize_policy("max_fairness") is AllocationPolicy.MAX_FAIRNESS
    assert normalize_policy("performance") is AllocationPolicy.MAX_PERFORMANCE
    assert normalize_policy("lfoc") == "lfoc_clustering"
    assert policy_name(AllocationPolicy.MAX_FAIRNESS) == "max_fairness"
    assert policy_name("phase_hint") == "phase_hint"


def test_config_normalizes_policy_spellings():
    assert DCatConfig(policy="Max-Performance").policy is (
        AllocationPolicy.MAX_PERFORMANCE
    )
    assert DCatConfig(policy="lfoc").policy == "lfoc_clustering"
    assert DCatConfig().policy is AllocationPolicy.MAX_FAIRNESS


def test_config_rejects_unknown_policy_listing_registry():
    with pytest.raises(ValueError, match="registered strategies"):
        DCatConfig(policy="banana")


def test_use_policy_slot_feeds_fresh_configs():
    assert get_default_policy() is AllocationPolicy.MAX_FAIRNESS
    with use_policy("reserved_pooled"):
        assert get_default_policy() == "reserved_pooled"
        assert DCatConfig().policy == "reserved_pooled"
        with use_policy("performance"):
            assert DCatConfig().policy is AllocationPolicy.MAX_PERFORMANCE
        assert get_default_policy() == "reserved_pooled"
    assert get_default_policy() is AllocationPolicy.MAX_FAIRNESS


def test_set_default_policy_none_restores_fairness():
    set_default_policy("lfoc")
    try:
        assert get_default_policy() == "lfoc_clustering"
    finally:
        set_default_policy(None)
    assert get_default_policy() is AllocationPolicy.MAX_FAIRNESS


def test_register_strategy_rejects_collisions():
    class Dupe(AllocationStrategy):
        name = "max_fairness"

        def plan(self, inputs, total_ways, config):  # pragma: no cover
            return {}

    class AliasThief(AllocationStrategy):
        name = "brand_new"
        aliases = ("lfoc",)

        def plan(self, inputs, total_ways, config):  # pragma: no cover
            return {}

    class BadName(AllocationStrategy):
        name = "Shouty"

        def plan(self, inputs, total_ways, config):  # pragma: no cover
            return {}

    with pytest.raises(ValueError, match="already registered"):
        register_strategy(Dupe())
    with pytest.raises(ValueError, match="alias"):
        register_strategy(AliasThief())
    with pytest.raises(ValueError, match="lowercase"):
        register_strategy(BadName())
    assert "brand_new" not in strategy_names()


# -- invariant helpers ---------------------------------------------------------


def test_protected_floors_entitlement():
    config = DCatConfig()
    inputs = [
        _inp("grower", target=6, baseline=3),       # entitled: target >= baseline
        _inp("shrinker", target=1, baseline=3),     # not entitled
        _inp("reclaimer", target=3, baseline=3, reclaiming=True),
    ]
    plan = {"grower": 6, "shrinker": 2, "reclaimer": 3}
    floors = protected_floors(plan, inputs, config)
    assert floors == {"grower": 3, "shrinker": 1, "reclaimer": 3}


def test_fit_to_budget_shares_shortage_round_robin():
    floors = {"a": 1, "b": 1, "c": 1}
    desires = {"a": 5, "b": 5, "c": 1}
    plan = fit_to_budget(floors, desires, total_ways=6)
    # Three spare ways, handed out one per round: a,b then a.
    assert plan == {"a": 3, "b": 2, "c": 1}
    assert sum(plan.values()) <= 6


def test_curvature_score_flat_and_steep():
    assert curvature_score(lambda w: 1.0, 2, 6) == 0.0
    assert curvature_score(lambda w: w / 4.0, 2, 6) == pytest.approx(0.25)
    assert curvature_score(lambda w: w, 6, 6) == 0.0  # degenerate range


# -- declared-phase hints ------------------------------------------------------


def test_declared_schedule_from_spec_and_active_at():
    schedule = DeclaredSchedule.from_spec(
        [
            {"start_s": 0, "preferred_ways": 3},
            {"start_s": 10, "preferred_ways": 6, "refs_per_instr": 0.4},
        ]
    )
    assert schedule.active_at(0.0).preferred_ways == 3
    assert schedule.active_at(9.9).preferred_ways == 3
    assert schedule.active_at(10.0).preferred_ways == 6
    assert schedule.active_at(-1.0) is None


@pytest.mark.parametrize(
    "spec,fragment",
    [
        ({"start_s": 0}, "declared_phases"),
        ([{"start_s": 0}], "preferred_ways"),
        ([{"start_s": 0, "preferred_ways": 0}], "preferred_ways"),
        ([{"start_s": -1, "preferred_ways": 2}], "start_s"),
        (
            [
                {"start_s": 5, "preferred_ways": 2},
                {"start_s": 5, "preferred_ways": 3},
            ],
            "start_s",
        ),
        ([{"start_s": 0, "preferred_ways": 2, "bogus": 1}], "bogus"),
    ],
)
def test_declared_schedule_rejects_bad_specs(spec, fragment):
    with pytest.raises(ValueError, match=fragment):
        DeclaredSchedule.from_spec(spec)


# -- rival strategy behaviour --------------------------------------------------


def test_lfoc_squeezes_flat_curves_toward_sensitive_tenants():
    config = DCatConfig(policy="lfoc_clustering")
    steep = _table({2: 0.6, 6: 1.4})     # 0.2 normIPC per way
    flat = _table({2: 1.0, 6: 1.02})     # 0.005 per way: squanderer
    inputs = [
        _inp("steep", target=4, baseline=3, table=steep),
        _inp("flat", target=1, baseline=3, table=flat),
        _inp("fresh", target=3, baseline=3),  # unknown curve: untouched
    ]
    total = 12
    base = base_plan(inputs, total, config)
    plan = plan_allocation(inputs, total, config)
    floors = protected_floors(base, inputs, config)
    assert plan["flat"] == floors["flat"]
    assert plan["fresh"] == base["fresh"]
    assert plan["steep"] > base["steep"]
    assert sum(plan.values()) <= total


def test_lfoc_without_sensitive_tenants_is_base_plan():
    config = DCatConfig(policy="lfoc")
    inputs = [_inp("a"), _inp("b", state=WorkloadState.STREAMING, target=1)]
    assert plan_allocation(inputs, 10, config) == base_plan(inputs, 10, config)


def _hint(preferred, declared_refs=None, measured=0.3, time_s=1.0):
    schedule = DeclaredSchedule(
        phases=(
            DeclaredPhase(
                start_s=0.0,
                preferred_ways=preferred,
                refs_per_instr=declared_refs,
            ),
        )
    )
    return PhaseHint(
        time_s=time_s, schedule=schedule, measured_refs_per_instr=measured
    )


def test_phase_hint_steers_trusted_workloads_to_preferred_ways():
    config = DCatConfig(policy="phase_hint")
    inputs = [
        _inp("hinted", target=3, baseline=3, hint=_hint(6)),
        _inp("plain", target=3, baseline=3),
    ]
    plan = plan_allocation(inputs, 12, config)
    assert plan["hinted"] == 6
    assert plan["plain"] >= 3


def test_phase_hint_distrusts_diverging_signatures():
    config = DCatConfig(policy="phase_hint")
    # Declared 0.4 refs/instr but measuring 0.04: 90% divergence > 30%.
    inputs = [
        _inp("liar", target=3, baseline=3, hint=_hint(8, 0.4, measured=0.04)),
        _inp("plain", target=3, baseline=3),
    ]
    total = 12
    assert plan_allocation(inputs, total, config) == (
        base_plan(inputs, total, config)
    )


def test_phase_hint_trusts_matching_signatures():
    config = DCatConfig(policy="hints")
    inputs = [
        _inp("honest", target=3, baseline=3, hint=_hint(7, 0.4, measured=0.38)),
    ]
    assert plan_allocation(inputs, 12, config)["honest"] == 7


def test_reserved_pooled_grants_pool_by_marginal_gain():
    config = DCatConfig(policy="reserved_pooled")
    hungry = _table({3: 1.0, 9: 2.2})    # 0.2 per extra way
    sated = _table({3: 1.0, 9: 1.06})    # 0.01 per extra way
    inputs = [
        _inp("hungry", target=3, baseline=3, table=hungry),
        _inp("sated", target=3, baseline=3, table=sated),
        _inp("idle", target=2, baseline=2),  # no table, no growth
    ]
    plan = plan_allocation(inputs, 14, config)
    assert plan["hungry"] > plan["sated"] >= 3
    assert plan["idle"] == 2
    assert sum(plan.values()) <= 14


def test_reserved_pooled_leaves_unwanted_ways_free():
    config = DCatConfig(policy="harvest")
    inputs = [_inp("a", target=2, baseline=2), _inp("b", target=2, baseline=2)]
    plan = plan_allocation(inputs, 16, config)
    # Nobody can benefit: the pooled region stays free.
    assert plan == {"a": 2, "b": 2}


def test_get_strategy_resolves_enum_and_aliases():
    assert get_strategy(AllocationPolicy.MAX_FAIRNESS).name == "max_fairness"
    assert get_strategy("memshare").name == "reserved_pooled"
