"""Tests for repro.cache.analytical: the fast hit-rate oracle.

Includes the model-vs-exact-scatter validation that justifies using the
closed forms inside the platform simulator.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.analytical import AccessPattern, AnalyticalCacheModel, Footprint
from repro.cache.conflict import simulated_scatter_hit_rate
from repro.mem.address import MB, CacheGeometry
from repro.mem.paging import PAGE_2M, PAGE_4K


@pytest.fixture(scope="module")
def e5_model():
    return AnalyticalCacheModel(CacheGeometry.xeon_e5())


class TestFootprintValidation:
    def test_hotcold_requires_parameters(self):
        with pytest.raises(ValueError, match="hot_bytes"):
            Footprint(AccessPattern.HOTCOLD, 10 * MB)

    def test_hot_fraction_range(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            Footprint(
                AccessPattern.HOTCOLD, 10 * MB, hot_bytes=MB, hot_fraction=1.5
            )

    def test_hot_cannot_exceed_wss(self):
        with pytest.raises(ValueError, match="hot_bytes"):
            Footprint(
                AccessPattern.HOTCOLD, MB, hot_bytes=2 * MB, hot_fraction=0.5
            )


class TestCurveShapes:
    @pytest.mark.parametrize(
        "pattern,kwargs",
        [
            (AccessPattern.RANDOM, {}),
            (AccessPattern.SEQUENTIAL, {}),
            (AccessPattern.ZIPF, {"zipf_s": 0.9}),
            (AccessPattern.HOTCOLD, {"hot_bytes": 4 * MB, "hot_fraction": 0.7}),
        ],
    )
    def test_monotone_in_ways(self, e5_model, pattern, kwargs):
        fp = Footprint(pattern, 16 * MB, **kwargs)
        curve = e5_model.way_curve_fp(fp)
        assert np.all(np.diff(curve) >= -1e-12)
        assert np.all((0.0 <= curve) & (curve <= 1.0))

    def test_zero_ways_zero_hits(self, e5_model):
        assert e5_model.hit_rate(AccessPattern.RANDOM, 8 * MB, 0.0) == 0.0

    def test_none_pattern_never_hits(self, e5_model):
        assert e5_model.hit_rate(AccessPattern.NONE, 8 * MB, 10) == 0.0

    def test_fractional_ways_interpolate(self, e5_model):
        h3 = e5_model.hit_rate(AccessPattern.RANDOM, 8 * MB, 3)
        h4 = e5_model.hit_rate(AccessPattern.RANDOM, 8 * MB, 4)
        h35 = e5_model.hit_rate(AccessPattern.RANDOM, 8 * MB, 3.5)
        assert h3 <= h35 <= h4

    def test_sequential_cliff(self, e5_model):
        # A 60 MB sweep oversubscribes the 45 MB cache: near-zero reuse
        # (only the scatter's luckier sets retain their lines).
        curve = e5_model.way_curve(AccessPattern.SEQUENTIAL, 60 * MB)
        assert curve[-1] < 0.15
        assert curve[10] < 0.02
        # A 2 MB sweep fits from the first ways.
        small = e5_model.way_curve(AccessPattern.SEQUENTIAL, 2 * MB)
        assert small[5] > 0.9

    def test_bigger_wss_lower_hit_rate(self, e5_model):
        h_small = e5_model.hit_rate(AccessPattern.RANDOM, 4 * MB, 4)
        h_large = e5_model.hit_rate(AccessPattern.RANDOM, 16 * MB, 4)
        assert h_small > h_large

    def test_hugepages_beat_4k_at_tight_allocations(self, e5_model):
        h_4k = e5_model.hit_rate(AccessPattern.RANDOM, int(4.5 * MB), 2)
        h_2m = e5_model.hit_rate(
            AccessPattern.RANDOM, int(4.5 * MB), 2, page_size=PAGE_2M
        )
        assert h_2m > h_4k

    def test_hotcold_knee_at_hot_tier(self, e5_model):
        fp = Footprint(
            AccessPattern.HOTCOLD, 128 * MB, hot_bytes=9 * MB, hot_fraction=0.7
        )
        curve = e5_model.way_curve_fp(fp)
        # Slope in the hot region (ways 1-4) dwarfs the cold-tail slope.
        hot_slope = curve[3] - curve[0]
        tail_slope = curve[15] - curve[12]
        assert hot_slope > 5 * tail_slope

    def test_marginal_gain(self, e5_model):
        gain = e5_model.marginal_gain(AccessPattern.RANDOM, 8 * MB, 4)
        assert gain > 0
        assert e5_model.marginal_gain(AccessPattern.RANDOM, 8 * MB, 20) == 0.0


class TestAgainstExactScatter:
    """The validation quoted in the module docstring."""

    @pytest.mark.parametrize(
        "wss_mb,ways,page",
        [
            (2, 2, PAGE_4K),
            (2, 2, PAGE_2M),
            (4.5, 2, PAGE_4K),
            (8, 4, PAGE_4K),
            (16, 8, PAGE_4K),
        ],
    )
    def test_random_pattern_accuracy(self, e5_model, wss_mb, ways, page):
        wss = int(wss_mb * MB)
        predicted = e5_model.hit_rate(AccessPattern.RANDOM, wss, ways, page_size=page)
        reference = simulated_scatter_hit_rate(
            wss, e5_model.geometry, ways, page_size=page, samples=3
        )
        assert predicted == pytest.approx(reference, abs=0.05)


class TestCapacityHitRate:
    def test_random_linear_in_capacity(self, e5_model):
        h = e5_model.capacity_hit_rate(AccessPattern.RANDOM, 45 * MB, 10.0)
        assert h == pytest.approx(10 / 20, abs=0.01)

    def test_capacity_exceeding_wss_saturates(self, e5_model):
        assert e5_model.capacity_hit_rate(AccessPattern.RANDOM, 2 * MB, 10.0) == 1.0

    def test_no_associativity_penalty(self, e5_model):
        """Shared-capacity hit rate >= the way-partitioned one."""
        for ways in (2, 4, 8):
            part = e5_model.hit_rate(AccessPattern.RANDOM, 9 * MB, ways)
            shared = e5_model.capacity_hit_rate(AccessPattern.RANDOM, 9 * MB, float(ways))
            assert shared >= part - 1e-9

    def test_hotcold_piecewise(self, e5_model):
        fp = Footprint(
            AccessPattern.HOTCOLD, 90 * MB, hot_bytes=9 * MB, hot_fraction=0.8
        )
        # 9 MB = 4 ways: the hot tier exactly resident -> hit = hot_fraction.
        assert e5_model.capacity_hit_rate_fp(fp, 4.0) == pytest.approx(0.8, abs=0.01)
        # Half the hot tier resident -> half the hot mass.
        assert e5_model.capacity_hit_rate_fp(fp, 2.0) == pytest.approx(0.4, abs=0.01)

    def test_zipf_concentrates(self, e5_model):
        skewed = e5_model.capacity_hit_rate(AccessPattern.ZIPF, 90 * MB, 2.0, zipf_s=1.1)
        flat = e5_model.capacity_hit_rate(AccessPattern.ZIPF, 90 * MB, 2.0, zipf_s=0.5)
        assert skewed > flat


class TestMemoization:
    def test_way_curve_cached(self, e5_model):
        a = e5_model.way_curve(AccessPattern.RANDOM, 8 * MB)
        b = e5_model.way_curve(AccessPattern.RANDOM, 8 * MB)
        assert a is b


@settings(max_examples=30, deadline=None)
@given(
    wss_mb=st.integers(min_value=1, max_value=64),
    ways=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
)
def test_hit_rate_always_in_unit_interval(wss_mb, ways):
    model = AnalyticalCacheModel(CacheGeometry.xeon_e5())
    for pattern in (AccessPattern.RANDOM, AccessPattern.SEQUENTIAL, AccessPattern.ZIPF):
        h = model.hit_rate(pattern, wss_mb * MB, ways)
        assert 0.0 <= h <= 1.0
