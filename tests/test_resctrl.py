"""Tests for repro.cat.resctrl: the in-memory resctrl filesystem."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.resctrl import (
    ResctrlError,
    ResctrlFilesystem,
    format_cpu_list,
    parse_cpu_list,
)


@pytest.fixture()
def fs():
    cat = CacheAllocationTechnology(num_ways=12, num_cores=8)
    return ResctrlFilesystem(cat, way_size_bytes=1 << 20), cat


class TestCpuLists:
    def test_parse_singletons(self):
        assert parse_cpu_list("0,2,5") == {0, 2, 5}

    def test_parse_ranges(self):
        assert parse_cpu_list("0-3,8") == {0, 1, 2, 3, 8}

    def test_parse_empty(self):
        assert parse_cpu_list("") == set()

    def test_parse_bad_range(self):
        with pytest.raises(ResctrlError):
            parse_cpu_list("5-2")

    def test_format(self):
        assert format_cpu_list({0, 1, 2, 5}) == "0-2,5"
        assert format_cpu_list(set()) == ""

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=64), max_size=20))
    def test_round_trip(self, cpus):
        assert parse_cpu_list(format_cpu_list(cpus)) == cpus


class TestGroups:
    def test_mkdir_allocates_closids(self, fs):
        filesystem, _ = fs
        g1 = filesystem.mkdir("tenant-a")
        g2 = filesystem.mkdir("tenant-b")
        assert g1.closid == 1
        assert g2.closid == 2
        assert filesystem.groups() == ["tenant-a", "tenant-b"]

    def test_duplicate_mkdir_fails(self, fs):
        filesystem, _ = fs
        filesystem.mkdir("x")
        with pytest.raises(ResctrlError, match="File exists"):
            filesystem.mkdir("x")

    def test_closid_exhaustion(self, fs):
        filesystem, _ = fs
        for i in range(15):  # CLOSID 0 is the root group
            filesystem.mkdir(f"g{i}")
        with pytest.raises(ResctrlError, match="No space"):
            filesystem.mkdir("one-too-many")

    def test_rmdir_returns_cpus_to_root(self, fs):
        filesystem, cat = fs
        filesystem.mkdir("g")
        filesystem.write("g/cpus_list", "2-3")
        filesystem.rmdir("g")
        assert cat.core_cos(2) == 0
        assert 2 in parse_cpu_list(filesystem.read("cpus_list"))

    def test_rmdir_root_forbidden(self, fs):
        filesystem, _ = fs
        with pytest.raises(ResctrlError, match="default group"):
            filesystem.rmdir("")

    def test_invalid_names(self, fs):
        filesystem, _ = fs
        with pytest.raises(ResctrlError):
            filesystem.mkdir("a/b")


class TestSchemata:
    def test_write_programs_cbm(self, fs):
        filesystem, cat = fs
        filesystem.mkdir("g")
        filesystem.write("g/schemata", "L3:0=3f")
        group_closid = 1
        assert cat.cos_mask(group_closid) == 0x3F

    def test_read_back(self, fs):
        filesystem, _ = fs
        filesystem.mkdir("g")
        filesystem.write("g/schemata", "L3:0=7")
        assert filesystem.read("g/schemata").strip() == "L3:0=7"

    def test_non_contiguous_rejected(self, fs):
        filesystem, _ = fs
        filesystem.mkdir("g")
        with pytest.raises(ResctrlError, match="Invalid argument"):
            filesystem.write("g/schemata", "L3:0=5")

    def test_empty_mask_rejected(self, fs):
        filesystem, _ = fs
        filesystem.mkdir("g")
        with pytest.raises(ResctrlError):
            filesystem.write("g/schemata", "L3:0=0")

    def test_unknown_resource_rejected(self, fs):
        filesystem, _ = fs
        filesystem.mkdir("g")
        with pytest.raises(ResctrlError, match="unsupported"):
            filesystem.write("g/schemata", "MB:0=50")

    def test_unknown_cache_id_rejected(self, fs):
        filesystem, _ = fs
        filesystem.mkdir("g")
        with pytest.raises(ResctrlError, match="unknown cache"):
            filesystem.write("g/schemata", "L3:1=3")


class TestCpusFile:
    def test_write_moves_cores(self, fs):
        filesystem, cat = fs
        filesystem.mkdir("g")
        filesystem.write("g/cpus_list", "0-1")
        assert cat.core_cos(0) == 1
        assert cat.core_cos(1) == 1

    def test_cores_leave_previous_group(self, fs):
        filesystem, cat = fs
        filesystem.mkdir("a")
        filesystem.mkdir("b")
        filesystem.write("a/cpus_list", "0-3")
        filesystem.write("b/cpus_list", "2-3")
        assert parse_cpu_list(filesystem.read("a/cpus_list")) == {0, 1}
        assert cat.core_cos(2) == 2

    def test_nonexistent_cpu_rejected(self, fs):
        filesystem, _ = fs
        filesystem.mkdir("g")
        with pytest.raises(ResctrlError, match="does not exist"):
            filesystem.write("g/cpus_list", "99")


class TestInfoAndSize:
    def test_info_files(self, fs):
        filesystem, _ = fs
        assert filesystem.read("info/L3/cbm_mask").strip() == "fff"
        assert filesystem.read("info/L3/min_cbm_bits").strip() == "1"
        assert filesystem.read("info/L3/num_closids").strip() == "16"

    def test_size_reflects_schemata(self, fs):
        filesystem, _ = fs
        filesystem.mkdir("g")
        filesystem.write("g/schemata", "L3:0=f")
        assert filesystem.read("g/size").strip() == f"L3:0={4 << 20}"

    def test_unknown_file(self, fs):
        filesystem, _ = fs
        with pytest.raises(ResctrlError, match="No such file"):
            filesystem.read("info/L3/nope")
        with pytest.raises(ResctrlError):
            filesystem.read("bogus_file")

    def test_write_readonly_file(self, fs):
        filesystem, _ = fs
        with pytest.raises(ResctrlError, match="Permission denied"):
            filesystem.write("size", "1")
