"""Tests for repro.core.states and repro.core.perftable."""

import pytest

from repro.core.perftable import PerformanceTable, PhaseTable
from repro.core.phase import PhaseSignature
from repro.core.states import ALLOWED_TRANSITIONS, WorkloadState, can_transition


class TestStateMachineStructure:
    def test_every_state_has_transitions(self):
        assert set(ALLOWED_TRANSITIONS) == set(WorkloadState)

    def test_self_loops_always_allowed(self):
        for state in WorkloadState:
            assert can_transition(state, state)

    def test_reclaim_reachable_from_everywhere(self):
        for state in WorkloadState:
            assert can_transition(state, WorkloadState.RECLAIM)

    def test_streaming_only_demotes(self):
        # Paper: streaming is a special Donor; it never becomes a Receiver
        # directly (only a phase change resets it).
        assert not can_transition(WorkloadState.STREAMING, WorkloadState.RECEIVER)
        assert not can_transition(WorkloadState.STREAMING, WorkloadState.UNKNOWN)
        assert can_transition(WorkloadState.STREAMING, WorkloadState.DONOR)

    def test_receiver_comes_only_from_unknown(self):
        sources = [
            s for s in WorkloadState if can_transition(s, WorkloadState.RECEIVER)
        ]
        assert set(sources) == {WorkloadState.UNKNOWN, WorkloadState.RECEIVER}

    def test_keeper_is_start_state_with_exits(self):
        assert can_transition(WorkloadState.KEEPER, WorkloadState.DONOR)
        assert can_transition(WorkloadState.KEEPER, WorkloadState.UNKNOWN)


class TestPhaseTable:
    def test_baseline_normalizes_to_one(self):
        table = PhaseTable(baseline_ways=3)
        table.record_baseline(2.0)
        assert table.normalized(3) == pytest.approx(1.0)

    def test_records_relative_to_baseline(self):
        table = PhaseTable(baseline_ways=3)
        table.record_baseline(2.0)
        table.record(5, 2.6)
        assert table.normalized(5) == pytest.approx(1.3)

    def test_records_before_baseline_dropped(self):
        table = PhaseTable(baseline_ways=3)
        table.record(5, 2.6)
        assert table.normalized(5) is None

    def test_ewma_smooths(self):
        table = PhaseTable(baseline_ways=3, ewma_alpha=0.5)
        table.record_baseline(2.0)
        table.record(5, 3.0)  # 1.5
        table.record(5, 2.0)  # toward 1.0: 1.5 + .5*(1.0-1.5) = 1.25
        assert table.normalized(5) == pytest.approx(1.25)

    def test_preferred_is_smallest_on_plateau(self):
        """Paper Table 1: 6 ways marked preferred when 6/7/8 all plateau."""
        table = PhaseTable(baseline_ways=3)
        table.baseline_ipc = 1.0
        for ways, norm in [(3, 1.0), (4, 1.15), (5, 1.25), (6, 1.3), (7, 1.3), (8, 1.3)]:
            table.entries[ways] = norm
        assert table.preferred_ways() == 6

    def test_preferred_none_when_empty(self):
        assert PhaseTable(baseline_ways=3).preferred_ways() is None

    def test_best_normalized(self):
        table = PhaseTable(baseline_ways=2)
        table.baseline_ipc = 1.0
        table.entries.update({2: 1.0, 4: 1.4})
        assert table.best_normalized() == pytest.approx(1.4)

    def test_nonpositive_ipc_ignored(self):
        table = PhaseTable(baseline_ways=3)
        table.record_baseline(0.0)
        assert table.baseline_ipc is None


class TestPerformanceTable:
    def sig(self, bucket=5):
        return PhaseSignature(bucket=bucket)

    def test_phase_created_on_demand(self):
        perf = PerformanceTable(baseline_ways=3)
        table = perf.phase(self.sig())
        assert table.baseline_ways == 3
        assert len(perf) == 1

    def test_same_signature_same_table(self):
        perf = PerformanceTable(baseline_ways=3)
        assert perf.phase(self.sig()) is perf.phase(self.sig())

    def test_known_phase_requires_baseline(self):
        perf = PerformanceTable(baseline_ways=3)
        sig = self.sig()
        perf.phase(sig)
        assert perf.known_phase(sig) is None
        perf.phase(sig).record_baseline(1.5)
        assert perf.known_phase(sig) is not None

    def test_invalidate(self):
        perf = PerformanceTable(baseline_ways=3)
        sig = self.sig()
        perf.phase(sig).record_baseline(1.0)
        perf.invalidate(sig)
        assert perf.known_phase(sig) is None

    def test_distinct_phases_isolated(self):
        perf = PerformanceTable(baseline_ways=3)
        perf.phase(self.sig(1)).record_baseline(1.0)
        assert perf.known_phase(self.sig(2)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PerformanceTable(baseline_ways=0)
