"""Tests for CMT/MBM monitoring, including the paper's footnote claim."""

import pytest

from repro.cat.cmt import CacheMonitoringTechnology
from repro.mem.address import MB
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager, StaticCatManager
from repro.platform.sim import CloudSimulation
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mload import MloadWorkload
from repro.workloads.mlr import MlrWorkload


class TestCmtDevice:
    def make(self):
        return CacheMonitoringTechnology(num_rmids=8, num_cores=4, upscale_bytes=1024)

    def test_default_rmid_zero(self):
        assert self.make().rmid_of(3) == 0

    def test_association(self):
        cmt = self.make()
        cmt.assoc_rmid(1, 5)
        assert cmt.rmid_of(1) == 5

    def test_bounds(self):
        cmt = self.make()
        with pytest.raises(ValueError):
            cmt.assoc_rmid(0, 8)
        with pytest.raises(ValueError):
            cmt.assoc_rmid(9, 0)
        with pytest.raises(ValueError):
            cmt.read(8)

    def test_occupancy_quantized_by_upscale(self):
        cmt = self.make()
        cmt.report_occupancy(2, 2500)
        assert cmt.read(2).occupancy_bytes == 2048  # 2 upscale units

    def test_traffic_accumulates(self):
        cmt = self.make()
        cmt.report_traffic(1, 1000)
        cmt.report_traffic(1, 500, local_bytes=400)
        reading = cmt.read(1)
        assert reading.total_bandwidth_bytes == 1500
        assert reading.local_bandwidth_bytes == 1400

    def test_read_core_follows_association(self):
        cmt = self.make()
        cmt.assoc_rmid(2, 3)
        cmt.report_occupancy(3, 4096)
        assert cmt.read_core(2).occupancy_bytes == 4096

    def test_validation(self):
        cmt = self.make()
        with pytest.raises(ValueError):
            cmt.report_occupancy(1, -1)
        with pytest.raises(ValueError):
            cmt.report_traffic(1, -1)
        with pytest.raises(ValueError):
            CacheMonitoringTechnology(num_rmids=0)


class TestPlatformIntegration:
    def run_pair(self):
        machine = Machine(seed=11, cycles_per_interval=500_000)
        vms = pin_vms(
            [
                VirtualMachine(
                    "mlr", MlrWorkload(8 * MB, name="mlr"), baseline_ways=4
                ),
                VirtualMachine(
                    "mload", MloadWorkload(60 * MB, name="mload"), baseline_ways=4
                ),
                VirtualMachine(
                    "idle", LookbusyWorkload(name="idle"), baseline_ways=4
                ),
            ],
            machine.spec,
        )
        sim = CloudSimulation(machine, vms, StaticCatManager())
        sim.run(6.0)
        return machine

    def test_occupancy_tracks_allocation(self):
        machine = self.run_pair()
        # MLR (8 MB WSS, 9 MB partition): occupancy ~ its working set.
        mlr = machine.cmt.read(1)
        assert mlr.occupancy_bytes == pytest.approx(8 * MB, rel=0.1)
        # lookbusy: no cache footprint at all.
        idle = machine.cmt.read(3)
        assert idle.occupancy_bytes == 0

    def test_mbm_separates_streaming_from_quiet(self):
        machine = self.run_pair()
        assert (
            machine.cmt.read(2).total_bandwidth_bytes
            > 10 * machine.cmt.read(1).total_bandwidth_bytes
        )

    def test_footnote_cmt_cannot_substitute_dcat(self):
        """Paper footnote: occupancy cannot reveal cache *benefit*.

        MLOAD (streaming, gains nothing from cache) and MLR (cache-loving)
        both fill whatever partition they are given — their CMT occupancy
        readings are indistinguishable, while their IPC response to cache
        differs completely.  That asymmetry is exactly why dCat reads IPC
        and miss rates instead of occupancy.
        """
        machine = Machine(seed=11, cycles_per_interval=500_000)
        vms = pin_vms(
            [
                VirtualMachine(
                    "mlr", MlrWorkload(20 * MB, name="mlr"), baseline_ways=4
                ),
                VirtualMachine(
                    "mload", MloadWorkload(60 * MB, name="mload"), baseline_ways=4
                ),
            ],
            machine.spec,
        )
        sim = CloudSimulation(machine, vms, StaticCatManager())
        result = sim.run(6.0)

        occ_mlr = machine.cmt.read(1).occupancy_bytes
        occ_mload = machine.cmt.read(2).occupancy_bytes
        # Occupancy: both pinned at their 9 MB partitions — identical.
        assert occ_mlr == pytest.approx(occ_mload, rel=0.05)
        # Benefit: completely different (established by the dCat run below).
        # The lead-in lets the platform (DRAM load feedback) settle before
        # the baseline IPC is measured, as in every paper scenario.
        dcat_machine = Machine(seed=11, cycles_per_interval=500_000)
        dcat_vms = pin_vms(
            [
                VirtualMachine(
                    "mlr",
                    MlrWorkload(20 * MB, start_delay_s=2.0, name="mlr"),
                    baseline_ways=4,
                ),
                VirtualMachine(
                    "mload",
                    MloadWorkload(60 * MB, start_delay_s=2.0, name="mload"),
                    baseline_ways=4,
                ),
            ],
            dcat_machine.spec,
        )
        dcat_result = CloudSimulation(dcat_machine, dcat_vms, DCatManager()).run(25.0)
        mlr_gain = dcat_result.steady_mean("mlr", "ipc", 4) / result.steady_mean(
            "mlr", "ipc", 4
        )
        mload_gain = dcat_result.steady_mean("mload", "ipc", 4) / result.steady_mean(
            "mload", "ipc", 4
        )
        assert mlr_gain > 1.2
        assert mload_gain == pytest.approx(1.0, abs=0.05)
