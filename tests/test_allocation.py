"""Tests for repro.core.allocation: pool arbitration and the way-split DP."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import (
    AllocationInput,
    optimize_way_split,
    plan_allocation,
)
from repro.core.config import AllocationPolicy, DCatConfig
from repro.core.perftable import PhaseTable
from repro.core.states import WorkloadState


CFG = DCatConfig()


def inp(wid, state=WorkloadState.KEEPER, target=3, grow=0, baseline=3,
        reclaiming=False, table=None):
    return AllocationInput(
        workload_id=wid,
        state=state,
        target_ways=target,
        grow_request=grow,
        baseline_ways=baseline,
        reclaiming=reclaiming,
        phase_table=table,
    )


def table_of(baseline, entries):
    t = PhaseTable(baseline_ways=baseline)
    t.baseline_ipc = 1.0
    t.entries.update(entries)
    return t


class TestBudget:
    def test_plan_fits_socket(self):
        plan = plan_allocation([inp("a", target=10), inp("b", target=15)], 20, CFG)
        assert sum(plan.values()) <= 20

    def test_everyone_gets_at_least_min(self):
        plan = plan_allocation(
            [inp(f"w{i}", target=1) for i in range(10)], 20, CFG
        )
        assert all(v >= 1 for v in plan.values())

    def test_too_many_workloads_rejected(self):
        with pytest.raises(ValueError, match="cannot each hold"):
            plan_allocation([inp(f"w{i}") for i in range(21)], 20, CFG)

    def test_oversubscribed_baselines_shaved(self):
        # 7 VMs x 3-way baselines on a 20-way cache (the paper's Fig. 15
        # stage is exactly this shape).
        inputs = [inp(f"w{i}", target=3, baseline=3) for i in range(7)]
        plan = plan_allocation(inputs, 20, CFG)
        assert sum(plan.values()) <= 20
        assert all(v >= 1 for v in plan.values())


class TestReclaimPriority:
    def test_reclaimer_kept_whole_others_shaved(self):
        inputs = [
            inp("reclaimer", target=6, baseline=6, reclaiming=True),
            inp("fat", target=12, baseline=3),
            inp("donor", target=2, baseline=3),
        ]
        plan = plan_allocation(inputs, 16, CFG)
        assert plan["reclaimer"] == 6
        assert plan["fat"] < 12  # surplus over baseline taken back
        assert sum(plan.values()) <= 16

    def test_largest_surplus_shaved_first(self):
        inputs = [
            inp("reclaimer", target=4, baseline=4, reclaiming=True),
            inp("big", target=10, baseline=3),
            inp("small", target=4, baseline=3),
        ]
        plan = plan_allocation(inputs, 16, CFG)
        assert plan["reclaimer"] == 4
        # "big" had the larger surplus; it loses the ways.
        assert plan["big"] == 8
        assert plan["small"] == 4


class TestGrants:
    def test_grow_requests_served_from_pool(self):
        inputs = [
            inp("grower", state=WorkloadState.RECEIVER, target=4, grow=1),
            inp("idle", state=WorkloadState.DONOR, target=1),
        ]
        plan = plan_allocation(inputs, 8, CFG)
        assert plan["grower"] == 5

    def test_unknown_served_before_receiver(self):
        # Only one free way; the Unknown must get it (paper §3.5).
        inputs = [
            inp("receiver", state=WorkloadState.RECEIVER, target=9, grow=1),
            inp("unknown", state=WorkloadState.UNKNOWN, target=10, grow=1),
        ]
        plan = plan_allocation(inputs, 20, CFG)
        assert plan["unknown"] == 11
        assert plan["receiver"] == 9

    def test_priority_disabled_merges_classes(self):
        config = DCatConfig(unknown_priority=False)
        inputs = [
            inp("a-receiver", state=WorkloadState.RECEIVER, target=9, grow=1),
            inp("z-unknown", state=WorkloadState.UNKNOWN, target=10, grow=1),
        ]
        plan = plan_allocation(inputs, 20, config)
        # Single merged class, served in name order: the receiver wins.
        assert plan["a-receiver"] == 10
        assert plan["z-unknown"] == 10

    def test_no_grant_without_free_ways(self):
        inputs = [
            inp("grower", state=WorkloadState.UNKNOWN, target=10, grow=1),
            inp("holder", target=10, baseline=10),
        ]
        plan = plan_allocation(inputs, 20, CFG)
        assert plan["grower"] == 10


class TestMaxPerformanceRebalance:
    def test_moves_way_toward_better_user(self):
        config = DCatConfig(policy=AllocationPolicy.MAX_PERFORMANCE)
        flat = table_of(3, {3: 1.0, 7: 1.05, 8: 1.05})
        steep = table_of(3, {3: 1.0, 7: 1.5, 8: 1.7})
        inputs = [
            inp("flat", state=WorkloadState.RECEIVER, target=8, grow=0, table=flat),
            inp("steep", state=WorkloadState.RECEIVER, target=8, grow=0, table=steep),
        ]
        plan = plan_allocation(inputs, 16, config)
        assert plan["steep"] == 9
        assert plan["flat"] == 7

    def test_moves_at_most_one_way_per_round(self):
        config = DCatConfig(policy=AllocationPolicy.MAX_PERFORMANCE)
        flat = table_of(3, {3: 1.0, 4: 1.0, 8: 1.0})
        steep = table_of(3, {3: 1.0, 8: 2.0, 12: 3.0})
        inputs = [
            inp("flat", state=WorkloadState.KEEPER, target=8, table=flat),
            inp("steep", state=WorkloadState.KEEPER, target=8, table=steep),
        ]
        plan = plan_allocation(inputs, 16, config)
        assert plan["flat"] == 7 and plan["steep"] == 9


class TestOptimizeWaySplit:
    def test_paper_worked_example(self):
        """§3.5: A and B share 8 ways; (A=3, B=5) maximizes the sum."""
        a = table_of(2, {2: 1.0, 3: 1.05, 4: 1.08, 5: 1.12})
        b = table_of(2, {2: 1.0, 3: 1.1, 4: 1.2, 5: 1.25})
        split = optimize_way_split(
            {"a": a, "b": b}, budget=8, baselines={"a": 2, "b": 2}
        )
        assert split == {"a": 3, "b": 5}

    def test_respects_baseline_floor(self):
        a = table_of(3, {3: 1.0, 6: 1.6})
        b = table_of(3, {3: 1.0, 6: 1.1})
        split = optimize_way_split({"a": a, "b": b}, 9, {"a": 3, "b": 3})
        assert split["b"] >= 3

    def test_infeasible_budget_returns_none(self):
        a = table_of(3, {3: 1.0})
        assert optimize_way_split({"a": a, "a2": a}, 4, {"a": 3, "a2": 3}) is None

    @settings(max_examples=25, deadline=None)
    @given(
        entries_a=st.dictionaries(
            st.integers(min_value=2, max_value=6),
            st.floats(min_value=0.5, max_value=3.0),
            min_size=2,
            max_size=5,
        ),
        entries_b=st.dictionaries(
            st.integers(min_value=2, max_value=6),
            st.floats(min_value=0.5, max_value=3.0),
            min_size=2,
            max_size=5,
        ),
        budget=st.integers(min_value=4, max_value=12),
    )
    def test_dp_matches_brute_force(self, entries_a, entries_b, budget):
        """The DP finds the true optimum over the candidate grid."""
        from repro.core.allocation import _table_options

        a = table_of(2, entries_a)
        b = table_of(2, entries_b)
        split = optimize_way_split({"a": a, "b": b}, budget, {"a": 2, "b": 2})

        # optimize_way_split defaults to treating every workload as still
        # growing, so mirror that with extend=1 here.
        opts_a = _table_options(a, 2, 1, extend=1)
        opts_b = _table_options(b, 2, 1, extend=1)
        feasible = [
            (na + nb, wa, wb)
            for wa, na in opts_a.items()
            for wb, nb in opts_b.items()
            if wa + wb <= budget
        ]
        if not feasible:
            assert split is None
            return
        best = max(v for v, _, _ in feasible)
        got = opts_a[split["a"]] + opts_b[split["b"]]
        assert got == pytest.approx(best)
