"""Tests for repro.harness: results containers, reporting, registry, CLI."""

import pytest

from repro.harness.registry import EXPERIMENTS, run_experiment
from repro.harness.report import (
    render_bars,
    render_experiment,
    render_series,
    render_table,
)
from repro.harness.results import (
    BarGroup,
    ExperimentResult,
    Series,
    TableResult,
    geomean,
)
from repro.harness.scenarios import build_stage, manager_factories, paper_machine


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [1.0], [1.0, 2.0])

    def test_lookup(self):
        s = Series("s", [1.0, 2.0], [10.0, 20.0])
        assert s.at(2.0) == 20.0
        assert s.final == 20.0
        assert s.peak == 20.0
        with pytest.raises(ValueError):
            s.at(9.0)


class TestBarGroup:
    def test_ratio(self):
        g = BarGroup("g", {"a": 2.0, "b": 4.0})
        assert g.ratio("b", "a") == 2.0
        assert g["a"] == 2.0

    def test_zero_denominator(self):
        g = BarGroup("g", {"a": 0.0, "b": 1.0})
        with pytest.raises(ZeroDivisionError):
            g.ratio("b", "a")


class TestTableResult:
    def test_row_arity_checked(self):
        t = TableResult(headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_and_lookup(self):
        t = TableResult(headers=["name", "value"])
        t.add_row("x", 1.0)
        t.add_row("y", 2.0)
        assert t.column("value") == [1.0, 2.0]
        assert t.lookup("name", "y", "value") == 2.0
        with pytest.raises(KeyError):
            t.lookup("name", "z", "value")


class TestExperimentResult:
    def test_typed_accessors(self):
        r = ExperimentResult("x", "t")
        r.add("s", Series("s", [1.0], [1.0]))
        r.add("b", BarGroup("b", {"k": 1.0}))
        assert r.series("s").name == "s"
        with pytest.raises(TypeError):
            r.table("s")

    def test_duplicate_artifact_rejected(self):
        r = ExperimentResult("x", "t")
        r.add("s", Series("s", [], []))
        with pytest.raises(ValueError):
            r.add("s", Series("s", [], []))


class TestRendering:
    def test_table(self):
        t = TableResult(headers=["name", "v"])
        t.add_row("row", 1.2345)
        text = render_table(t)
        assert "name" in text and "1.234" in text

    def test_bars(self):
        text = render_bars(BarGroup("g", {"aa": 2.0, "b": 1.0}))
        assert "#" in text and "aa" in text

    def test_empty_bars(self):
        assert "(empty)" in render_bars(BarGroup("g", {}))

    def test_series_subsamples(self):
        s = Series("s", list(map(float, range(1000))), [0.0] * 1000)
        text = render_series(s, max_points=10)
        assert text.count("(") <= 26

    def test_full_experiment(self):
        r = ExperimentResult("fig0", "demo")
        r.add("t", TableResult(headers=["h"]))
        r.note("a note")
        text = render_experiment(r)
        assert "fig0" in text and "a note" in text


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        for required in [
            "fig1", "fig2", "fig3", "fig5", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
            "tab1", "tab3", "tab4", "tab5", "tab6",
        ]:
            assert required in EXPERIMENTS

    def test_ablations_registered(self):
        assert any(k.startswith("ablation_") for k in EXPERIMENTS)

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_fast_experiment(self):
        result = run_experiment("fig3")
        assert result.experiment_id == "fig3"
        assert "summary" in result.artifacts


class TestScenarios:
    def test_build_stage_counts(self):
        from repro.workloads.mlr import MlrWorkload
        from repro.mem.address import MB

        machine = paper_machine()
        vms = build_stage(
            machine,
            [MlrWorkload(8 * MB, name="t")],
            baseline_ways=3,
            n_mload=2,
            n_lookbusy=2,
        )
        assert len(vms) == 5
        names = {vm.name for vm in vms}
        assert "t" in names
        assert sum("mload" in n for n in names) == 2

    def test_manager_factories(self):
        factories = manager_factories()
        assert set(factories) == {"shared", "static", "dcat"}
        assert factories["dcat"]().name == "dcat"


class TestCli:
    def test_list(self, capsys):
        from repro.harness.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig17" in out

    def test_unknown_experiment_exit_code(self, capsys):
        from repro.harness.cli import main

        assert main(["run", "fig99"]) == 2

    def test_run_renders(self, capsys):
        from repro.harness.cli import main

        assert main(["run", "fig3"]) == 0
        assert "fig3" in capsys.readouterr().out
