"""Tests for the JSON scenario-file runner and its CLI subcommand."""

import json

import pytest

from repro.core.config import AllocationPolicy
from repro.harness.scenario_file import (
    ScenarioError,
    load_scenario,
    run_scenario_file,
)


BASIC = {
    "machine": {"socket": "xeon_e5", "seed": 9},
    "manager": {"type": "dcat"},
    "duration_s": 8,
    "vms": [
        {"name": "hungry", "baseline_ways": 3,
         "workload": {"type": "mlr", "wss_mb": 8, "start_delay_s": 1}},
        {"name": "spin", "baseline_ways": 3, "workload": {"type": "lookbusy"}},
    ],
}


class TestLoading:
    def test_dict_source(self):
        machine, vms, manager, duration, fidelity = load_scenario(BASIC)
        assert machine.spec.name == "Xeon E5-2697 v4"
        assert [vm.name for vm in vms] == ["hungry", "spin"]
        assert manager.name == "dcat"
        assert duration == 8.0
        assert fidelity == {"mode": "analytical"}

    def test_json_string_source(self):
        machine, vms, *_ = load_scenario(json.dumps(BASIC))
        assert len(vms) == 2

    def test_file_source(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(BASIC))
        machine, vms, *_ = load_scenario(path)
        assert len(vms) == 2

    def test_garbage_source(self):
        with pytest.raises(ScenarioError, match="neither a file nor valid JSON"):
            load_scenario("not json and not a path")

    def test_vms_are_pinned(self):
        _, vms, *_ = load_scenario(BASIC)
        assert all(vm.vcpus for vm in vms)

    def test_all_workload_types_construct(self):
        data = dict(BASIC)
        data["vms"] = [
            {"name": "a", "workload": {"type": "mlr", "wss_mb": 4}},
            {"name": "b", "workload": {"type": "mload"}},
            {"name": "c", "workload": {"type": "lookbusy"}},
            {"name": "d", "workload": {"type": "spec", "benchmark": "omnetpp"}},
            {"name": "e", "workload": {"type": "redis"}},
            {"name": "f", "workload": {"type": "postgres"}},
            {"name": "g", "workload": {"type": "elasticsearch"}},
        ]
        _, vms, *_ = load_scenario(data)
        assert len(vms) == 7

    def test_policy_parsed(self):
        data = dict(BASIC)
        data["manager"] = {
            "type": "dcat", "config": {"policy": "max_performance"}
        }
        _, _, manager, *_ = load_scenario(data)
        assert manager.config.policy is AllocationPolicy.MAX_PERFORMANCE


class TestValidation:
    def test_missing_vms(self):
        with pytest.raises(ScenarioError, match="'vms'"):
            load_scenario({"duration_s": 5})

    def test_unknown_workload_type(self):
        data = dict(BASIC)
        data["vms"] = [{"name": "x", "workload": {"type": "doom"}}]
        with pytest.raises(ScenarioError, match="unknown workload type"):
            load_scenario(data)

    def test_workload_without_type(self):
        data = dict(BASIC)
        data["vms"] = [{"name": "x", "workload": {}}]
        with pytest.raises(ScenarioError, match="'type'"):
            load_scenario(data)

    def test_unknown_manager(self):
        data = dict(BASIC)
        data["manager"] = {"type": "magic"}
        with pytest.raises(ScenarioError, match="unknown manager"):
            load_scenario(data)

    def test_bad_dcat_config_key(self):
        data = dict(BASIC)
        data["manager"] = {"type": "dcat", "config": {"nonsense_knob": 1}}
        with pytest.raises(ScenarioError, match="bad dcat config"):
            load_scenario(data)

    def test_bad_policy(self):
        data = dict(BASIC)
        data["manager"] = {"type": "dcat", "config": {"policy": "max_chaos"}}
        with pytest.raises(ScenarioError, match="registered strategies"):
            load_scenario(data)

    def test_unknown_socket(self):
        data = dict(BASIC)
        data["machine"] = {"socket": "epyc"}
        with pytest.raises(ScenarioError, match="unknown socket"):
            load_scenario(data)

    def test_duplicate_names(self):
        data = dict(BASIC)
        data["vms"] = [
            {"name": "x", "workload": {"type": "lookbusy"}},
            {"name": "x", "workload": {"type": "lookbusy"}},
        ]
        with pytest.raises(ScenarioError, match="duplicate"):
            load_scenario(data)

    def test_spec_needs_benchmark(self):
        data = dict(BASIC)
        data["vms"] = [{"name": "x", "workload": {"type": "spec"}}]
        with pytest.raises(ScenarioError, match="benchmark"):
            load_scenario(data)

    def test_bad_duration(self):
        data = dict(BASIC)
        data["duration_s"] = 0
        with pytest.raises(ScenarioError, match="duration"):
            load_scenario(data)

    def test_unknown_fidelity(self):
        data = dict(BASIC)
        data["fidelity"] = "quantum"
        with pytest.raises(ScenarioError, match="fidelity.mode: unknown fidelity"):
            load_scenario(data)

    def test_fidelity_object_without_mode(self):
        data = dict(BASIC)
        data["fidelity"] = {"sample_rate": 0.5}
        with pytest.raises(ScenarioError, match="fidelity.mode: missing"):
            load_scenario(data)

    def test_fidelity_bad_option(self):
        data = dict(BASIC)
        data["fidelity"] = {"mode": "exact", "sample_rate": 0.5}
        with pytest.raises(ScenarioError, match="does not accept option"):
            load_scenario(data)

    def test_fidelity_conflicts_with_legacy_exact(self):
        data = dict(BASIC)
        data["exact"] = True
        data["fidelity"] = "analytical"
        with pytest.raises(ScenarioError, match="legacy 'exact'"):
            load_scenario(data)


class TestRunning:
    def test_end_to_end(self):
        result = run_scenario_file(BASIC)
        assert len(result.timeline("hungry")) == 8
        # dCat grew the hungry tenant beyond its baseline.
        assert result.final("hungry", "ways") > 3

    def test_exact_mode_flag(self):
        data = dict(BASIC)
        data["exact"] = True
        data["duration_s"] = 4
        data["vms"] = [
            {"name": "hungry", "baseline_ways": 3,
             "workload": {"type": "mlr", "wss_mb": 2}},
        ]
        assert load_scenario(data)[4] == {"mode": "exact"}
        result = run_scenario_file(data)
        assert len(result.timeline("hungry")) == 4

    def test_fidelity_string_field(self):
        data = dict(BASIC)
        data["fidelity"] = "mixed"
        assert load_scenario(data)[4] == {"mode": "mixed"}

    def test_fidelity_object_field(self):
        data = dict(BASIC)
        data["fidelity"] = {"mode": "mixed", "sample_rate": 0.5, "tolerance": 0.2}
        spec = load_scenario(data)[4]
        assert spec["mode"] == "mixed"
        assert spec["sample_rate"] == 0.5

    def test_fidelity_override_wins(self):
        data = dict(BASIC)
        data["duration_s"] = 2
        result = run_scenario_file(data, fidelity="analytical")
        assert len(result.timeline("hungry")) == 2

    def test_cli_scenario_subcommand(self, tmp_path, capsys):
        from repro.harness.cli import main

        path = tmp_path / "s.json"
        path.write_text(json.dumps(BASIC))
        assert main(["scenario", str(path), "--vm", "hungry"]) == 0
        out = capsys.readouterr().out
        assert "hungry" in out and "ways" in out

    def test_cli_scenario_error_exit_code(self, capsys):
        from repro.harness.cli import main

        assert main(["scenario", "{}"]) == 2
