"""The policy-tournament harness: metrics, Pareto math, schema, report.

The registry smoke sweep already runs the full ``--quick`` tournament;
these tests keep the pieces honest on hand-built inputs plus one tiny
end-to-end build (two policies, one short single-machine scenario) so
the real sweep/validate/render pipeline stays covered without another
multi-minute run.
"""

import pytest

from repro.harness.experiments import tournament
from repro.harness.experiments.tournament import (
    METRIC_KEYS,
    TOURNAMENT_SCHEMA,
    build_tournament_report,
    jain_fairness,
    pareto_frontier,
    render_tournament_markdown,
    tournament_scenario_names,
    validate_tournament_report,
)
from repro.obs.export import render_prometheus
from repro.obs.registry import MetricsRegistry


def test_jain_fairness_basics():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0.0, 0.0]) == 1.0
    assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)
    # Textbook case: one tenant hogging everything among n tends to 1/n.
    assert jain_fairness([1.0, 0.0001, 0.0001]) == pytest.approx(1 / 3, abs=0.01)


def test_pareto_frontier_marks_dominated_policies():
    aggregates = {
        "good": {
            "throughput": 2.0,
            "jain_fairness": 0.9,
            "slo_violation_s": 1.0,
            "realloc_churn": 10.0,
        },
        # Strictly worse than "good" on every axis.
        "dominated": {
            "throughput": 1.5,
            "jain_fairness": 0.8,
            "slo_violation_s": 2.0,
            "realloc_churn": 20.0,
        },
        # Trades throughput for fairness: incomparable, stays on frontier.
        "fair": {
            "throughput": 1.0,
            "jain_fairness": 0.99,
            "slo_violation_s": 1.0,
            "realloc_churn": 10.0,
        },
    }
    frontier = pareto_frontier(aggregates)
    assert frontier == {"good": True, "dominated": False, "fair": True}


def _tiny_payload():
    cells = []
    for policy in ("a", "b"):
        for scenario in ("s1",):
            for faults in ("off", "on"):
                cells.append(
                    {
                        "policy": policy,
                        "scenario": scenario,
                        "faults": faults,
                        "throughput": 1.0,
                        "jain_fairness": 0.9,
                        "slo_violation_s": 0.0,
                        "realloc_churn": 4.0,
                        "admitted": 3,
                        "rejected": 0,
                    }
                )
    summary = {
        p: {
            "throughput": 1.0,
            "jain_fairness": 0.9,
            "slo_violation_s": 0.0,
            "realloc_churn": 8.0,
            "pareto": True,
        }
        for p in ("a", "b")
    }
    return {
        "schema": TOURNAMENT_SCHEMA,
        "seed": 1,
        "quick": True,
        "policies": ["a", "b"],
        "scenarios": ["s1"],
        "fault_modes": ["off", "on"],
        "cells": cells,
        "summary": summary,
    }


def test_validate_accepts_well_formed_payload():
    validate_tournament_report(_tiny_payload())


@pytest.mark.parametrize(
    "mutate,fragment",
    [
        (lambda p: p.update(schema="dcat-tournament/v0"), "schema"),
        (lambda p: p.pop("summary"), "summary"),
        (lambda p: p["cells"].pop(), "missing combinations"),
        (
            lambda p: p["cells"].append(dict(p["cells"][0])),
            "duplicate",
        ),
        (
            lambda p: p["cells"][0].update(throughput="fast"),
            "throughput",
        ),
        (lambda p: p["cells"][0].update(admitted=-1), "admitted"),
        (lambda p: p["summary"]["a"].update(pareto="yes"), "pareto"),
        (lambda p: p["summary"].pop("b"), "one entry per policy"),
        (lambda p: p.update(policies=[]), "policies"),
    ],
)
def test_validate_rejects_malformed_payloads(mutate, fragment):
    payload = _tiny_payload()
    mutate(payload)
    with pytest.raises(ValueError, match=fragment):
        validate_tournament_report(payload)


def test_render_markdown_contains_every_cell_and_policy():
    text = render_tournament_markdown(_tiny_payload())
    assert "## Pareto summary" in text
    assert "## Cells" in text
    for needle in ("| a |", "| b |", "s1", "off", "on", "yes"):
        assert needle in text


def _one_machine_scenario(seed, faults, quick):
    scenario = {
        "fleet": {"machines": 1, "socket": "xeon_d", "seed": seed},
        "manager": {"type": "dcat"},
        "placement": "first_fit",
        "duration_s": 6,
        "slo": {"tolerance": 0.05},
        "tenants": [
            {
                "name": "anchor",
                "arrival_s": 0,
                "baseline_ways": 4,
                "lifetime_s": 5,
                "workload": {"type": "redis"},
            },
            {
                "name": "streamer",
                "arrival_s": 1,
                "baseline_ways": 3,
                "lifetime_s": 4,
                "workload": {"type": "mload", "wss_mb": 60},
            },
        ],
    }
    if faults:
        scenario["faults"] = {
            "seed": seed + 99,
            "rules": [{"kind": "counter_noise", "magnitude": 2.0, "probability": 0.1}],
        }
    return scenario


def test_build_tournament_report_end_to_end(monkeypatch):
    monkeypatch.setattr(
        tournament, "_SCENARIOS", {"tiny": _one_machine_scenario}
    )
    monkeypatch.setattr(
        tournament, "_QUICK_POLICIES", ("max_fairness", "reserved_pooled")
    )
    registry = MetricsRegistry()
    payload = build_tournament_report(seed=7, quick=True, registry=registry)
    validate_tournament_report(payload)
    assert payload["policies"] == ["max_fairness", "reserved_pooled"]
    assert payload["scenarios"] == ["tiny"]
    assert len(payload["cells"]) == 2 * 1 * 2
    # Determinism: the same seed rebuilds the identical payload.
    assert build_tournament_report(seed=7, quick=True) == payload
    # Per-cell metrics landed as labeled gauges.
    text = render_prometheus(registry)
    assert "dcat_tournament_metric" in text
    assert 'policy="reserved_pooled"' in text
    assert 'metric="realloc_churn"' in text


def test_scenario_names_are_sorted_and_stable():
    names = tournament_scenario_names()
    assert names == sorted(names)
    assert set(names) == {"steady_mix", "bursty_streamers"}
    assert set(METRIC_KEYS) == {
        "throughput",
        "jain_fairness",
        "slo_violation_s",
        "realloc_churn",
    }
