"""Tests for repro.cache.setassoc: the exact CAT-partitionable cache."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.replacement import LruPolicy, TreePlruPolicy, make_policy
from repro.cache.setassoc import SetAssociativeCache
from repro.mem.address import CacheGeometry


def tiny_cache(num_sets=4, num_ways=4, **kw):
    return SetAssociativeCache(
        CacheGeometry(line_size=64, num_sets=num_sets, num_ways=num_ways), **kw
    )


def addr(set_index, tag, geo):
    return (tag * geo.num_sets + set_index) * geo.line_size


class TestBasicAccess:
    def test_first_access_misses_then_hits(self):
        cache = tiny_cache()
        assert not cache.access(0).hit
        assert cache.access(0).hit

    def test_same_line_different_offset_hits(self):
        cache = tiny_cache()
        cache.access(0)
        assert cache.access(63).hit
        assert not cache.access(64).hit  # next line

    def test_stats_count(self):
        cache = tiny_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.accesses == 3
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_capacity_eviction(self):
        cache = tiny_cache(num_sets=1, num_ways=2)
        geo = cache.geometry
        for tag in range(3):
            cache.access(addr(0, tag, geo))
        # Tag 0 was LRU and must be gone.
        assert not cache.access(addr(0, 0, geo)).hit
        assert cache.stats.evictions >= 1

    def test_lru_order_respected(self):
        cache = tiny_cache(num_sets=1, num_ways=2)
        geo = cache.geometry
        cache.access(addr(0, 0, geo))
        cache.access(addr(0, 1, geo))
        cache.access(addr(0, 0, geo))  # refresh tag 0
        cache.access(addr(0, 2, geo))  # evicts tag 1
        assert cache.access(addr(0, 0, geo)).hit
        assert not cache.access(addr(0, 1, geo)).hit


class TestCatSemantics:
    def test_fill_restricted_to_mask(self):
        cache = tiny_cache(num_sets=1, num_ways=4)
        geo = cache.geometry
        for tag in range(8):
            result = cache.access(addr(0, tag, geo), mask=0b0011)
            assert result.way in (0, 1)

    def test_hit_allowed_outside_mask(self):
        """CAT restricts allocation, not lookup."""
        cache = tiny_cache(num_sets=1, num_ways=4)
        geo = cache.geometry
        # Fill way 3 under a mask containing only way 3.
        cache.access(addr(0, 9, geo), mask=0b1000)
        # A core restricted to ways 0-1 still hits on that line.
        assert cache.access(addr(0, 9, geo), mask=0b0011).hit

    def test_masked_workload_cannot_evict_other_ways(self):
        cache = tiny_cache(num_sets=1, num_ways=4)
        geo = cache.geometry
        cache.access(addr(0, 1, geo), mask=0b1100, cos=1)
        cache.access(addr(0, 2, geo), mask=0b1100, cos=1)
        # A heavy workload confined to ways 0-1 thrashes only those.
        for tag in range(10, 30):
            cache.access(addr(0, tag, geo), mask=0b0011, cos=2)
        assert cache.access(addr(0, 1, geo)).hit
        assert cache.access(addr(0, 2, geo)).hit

    def test_invalid_mask_rejected(self):
        cache = tiny_cache(num_ways=4)
        with pytest.raises(ValueError):
            cache.access(0, mask=0)
        with pytest.raises(ValueError):
            cache.access(0, mask=0b10000)

    def test_per_cos_accounting(self):
        cache = tiny_cache()
        cache.access(0, cos=3)
        cache.access(0, cos=3)
        cache.access(64, cos=5)
        assert cache.stats.per_cos_misses[3] == 1
        assert cache.stats.per_cos_hits[3] == 1
        assert cache.stats.per_cos_misses[5] == 1


class TestBatchAccess:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=15),
    )
    def test_access_many_equals_scalar_loop(self, line_ids, mask):
        geo = CacheGeometry(line_size=64, num_sets=4, num_ways=4)
        a = SetAssociativeCache(geo)
        b = SetAssociativeCache(geo)
        paddrs = np.array(line_ids, dtype=np.int64) * 64
        hits_batch = a.access_many(paddrs, mask=mask)
        hits_scalar = sum(b.access(int(p), mask=mask).hit for p in paddrs)
        assert hits_batch == hits_scalar
        assert np.array_equal(a._tags, b._tags)

    def test_batch_stats(self):
        cache = tiny_cache()
        paddrs = np.array([0, 0, 64, 64], dtype=np.int64)
        hits = cache.access_many(paddrs)
        assert hits == 2
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2

    def test_batch_no_zero_count_cos_keys(self):
        """An all-hit (or all-miss) batch must not plant 0-count COS keys,
        matching the scalar ``record`` semantics exactly."""
        cache = tiny_cache()
        paddrs = np.array([0, 64], dtype=np.int64)
        cache.access_many(paddrs, cos=2)  # all misses
        assert 2 not in cache.stats.per_cos_hits
        cache.access_many(paddrs, cos=2)  # all hits
        assert cache.stats.per_cos_misses[2] == 2
        assert cache.stats.per_cos_hits[2] == 2

    def test_access_many_flags_match_scalar_verdicts(self):
        geo = CacheGeometry(line_size=64, num_sets=4, num_ways=2)
        a = SetAssociativeCache(geo)
        b = SetAssociativeCache(geo)
        rng = np.random.default_rng(3)
        paddrs = rng.integers(0, 3 * geo.capacity_bytes, size=300, dtype=np.int64)
        flags = a.access_many_flags(paddrs)
        scalar = np.array([b.access(int(p)).hit for p in paddrs])
        assert np.array_equal(flags, scalar)


def _policy_state(policy):
    """Every array/cursor a policy owns, for bit-exact comparisons."""
    if isinstance(policy, LruPolicy):
        return (policy._stamps.copy(), policy._clock)
    if isinstance(policy, TreePlruPolicy):
        return (policy._bits.copy(), policy._ages.copy())
    return (policy._rng.bit_generator.state,)


def _assert_policy_state_equal(a, b):
    for x, y in zip(_policy_state(a), _policy_state(b)):
        if isinstance(x, np.ndarray):
            assert np.array_equal(x, y)
        else:
            assert x == y


_EQUIV_GEOMETRIES = [
    (64, 4, 4),
    (64, 16, 8),
    (64, 7, 3),  # non-power-of-two sets and ways
    (32, 8, 2),
    (64, 1, 4),  # single set: maximum conflict pressure
    (128, 32, 12),
]


class TestBatchEquivalence:
    """The tentpole acceptance property: ``access_many`` is bit-exact
    against a scalar ``access`` loop for every policy — per-access
    verdicts, stats, per-COS accounting, occupancy-by-COS, eviction
    callback order, tag/owner arrays and the policy's own state."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_batch_bit_exact_vs_scalar(self, data):
        policy_name = data.draw(
            st.sampled_from(("lru", "plru", "random")), label="policy"
        )
        line_size, num_sets, num_ways = data.draw(
            st.sampled_from(_EQUIV_GEOMETRIES), label="geometry"
        )
        geo = CacheGeometry(
            line_size=line_size, num_sets=num_sets, num_ways=num_ways
        )
        batch = SetAssociativeCache(
            geo, make_policy(policy_name, num_sets, num_ways,
                             rng=np.random.default_rng(11))
        )
        scalar = SetAssociativeCache(
            geo, make_policy(policy_name, num_sets, num_ways,
                             rng=np.random.default_rng(11))
        )
        ev_batch, ev_scalar = [], []
        if data.draw(st.booleans(), label="with_callback"):
            batch._eviction_callback = ev_batch.append
            scalar._eviction_callback = ev_scalar.append
        max_line = 2 * num_sets * num_ways  # ~2x capacity: plenty of misses
        for _ in range(data.draw(st.integers(1, 3), label="chunks")):
            line_ids = data.draw(
                st.lists(st.integers(0, max_line), min_size=0, max_size=150),
                label="lines",
            )
            mask = data.draw(
                st.integers(1, (1 << num_ways) - 1), label="mask"
            )
            cos = data.draw(st.integers(0, 3), label="cos")
            paddrs = np.array(line_ids, dtype=np.int64) * line_size
            flags = batch.access_many_flags(paddrs, mask=mask, cos=cos)
            verdicts = np.array(
                [scalar.access(int(p), mask=mask, cos=cos).hit for p in paddrs],
                dtype=bool,
            )
            assert np.array_equal(flags, verdicts)
        assert np.array_equal(batch._tags, scalar._tags)
        assert np.array_equal(batch._owner_cos, scalar._owner_cos)
        assert batch.occupancy_by_cos() == scalar.occupancy_by_cos()
        assert ev_batch == ev_scalar
        sb, ss = batch.stats, scalar.stats
        assert (sb.hits, sb.misses, sb.evictions) == (ss.hits, ss.misses, ss.evictions)
        assert sb.per_cos_hits == ss.per_cos_hits
        assert sb.per_cos_misses == ss.per_cos_misses
        _assert_policy_state_equal(batch._policy, scalar._policy)

    def test_access_many_ref_matches_access_many(self):
        geo = CacheGeometry(line_size=64, num_sets=8, num_ways=4)
        a = SetAssociativeCache(geo)
        b = SetAssociativeCache(geo)
        rng = np.random.default_rng(17)
        paddrs = rng.integers(0, 2 * geo.capacity_bytes, size=500, dtype=np.int64)
        assert a.access_many(paddrs, mask=0b0111) == b.access_many_ref(
            paddrs, mask=0b0111
        )
        assert np.array_equal(a._tags, b._tags)


class TestMaintenance:
    def test_flush_ways_drops_lines(self):
        cache = tiny_cache(num_sets=2, num_ways=2)
        geo = cache.geometry
        cache.access(addr(0, 0, geo), mask=0b01)
        cache.access(addr(1, 0, geo), mask=0b10)
        dropped = cache.flush_ways(0b01)
        assert dropped == 1
        assert not cache.access(addr(0, 0, geo)).hit  # flushed
        assert cache.access(addr(1, 0, geo)).hit  # way 1 untouched

    def test_flush_reports_all_valid_lines(self):
        cache = tiny_cache(num_sets=4, num_ways=1)
        geo = cache.geometry
        for s in range(4):
            cache.access(addr(s, 7, geo))
        assert cache.flush_ways(0b1) == 4

    def test_eviction_callback_invoked(self):
        evicted = []
        cache = SetAssociativeCache(
            CacheGeometry(line_size=64, num_sets=1, num_ways=1),
            eviction_callback=evicted.append,
        )
        geo = cache.geometry
        cache.access(addr(0, 0, geo))
        cache.access(addr(0, 1, geo))
        assert evicted == [geo.line_id_of(0, 0)]

    def test_occupancy_by_cos(self):
        cache = tiny_cache(num_sets=2, num_ways=2)
        geo = cache.geometry
        cache.access(addr(0, 0, geo), mask=0b01, cos=1)
        cache.access(addr(1, 0, geo), mask=0b10, cos=2)
        occ = cache.occupancy_by_cos()
        assert occ[1] == 1
        assert occ[2] == 1
        assert cache.resident_lines() == 2

    def test_contains_line(self):
        cache = tiny_cache()
        geo = cache.geometry
        cache.access(addr(2, 5, geo))
        assert cache.contains_line(geo.line_id_of(2, 5))
        assert not cache.contains_line(geo.line_id_of(2, 6))

    def test_flush_clears_replacement_recency(self):
        """Flushed ways must not keep stale stamps/ages (satellite fix)."""
        cache = tiny_cache(num_sets=1, num_ways=2)
        geo = cache.geometry
        cache.access(addr(0, 0, geo))  # way 0
        cache.access(addr(0, 1, geo))  # way 1
        cache.access(addr(0, 0, geo))  # way 0 is now the newest
        cache.flush_ways(0b01)
        policy = cache._policy
        assert policy._stamps[0, 0] == 0
        # Asked directly, the policy must now treat the flushed way as the
        # oldest, not trust the pre-flush stamp.
        assert policy.victim(0, 0b11) == 0

    def test_flush_clears_plru_ages(self):
        cache = tiny_cache(num_sets=1, num_ways=2, policy="plru")
        geo = cache.geometry
        cache.access(addr(0, 0, geo))
        cache.access(addr(0, 1, geo))
        cache.access(addr(0, 0, geo))
        assert cache._policy._ages[0, 0] == 255
        cache.flush_ways(0b01)
        assert cache._policy._ages[0, 0] == 0

    def test_invalidate_line(self):
        cache = tiny_cache(num_sets=2, num_ways=2)
        geo = cache.geometry
        cache.access(addr(0, 3, geo), cos=4)
        assert cache.invalidate_line(addr(0, 3, geo))
        assert not cache.invalidate_line(addr(0, 3, geo))  # already gone
        assert cache.lookup(addr(0, 3, geo)) is None
        assert cache.occupancy_by_cos() == {}
        assert cache._policy._stamps[0, 0] == 0
        # Silent: no stats moved, no eviction counted.
        assert cache.stats.evictions == 0
        assert cache.stats.accesses == 1


class TestSteadyStateHitRates:
    def test_working_set_fitting_in_allocation_hits(self):
        """A random working set within the masked capacity converges to ~100%."""
        geo = CacheGeometry(line_size=64, num_sets=64, num_ways=8)
        cache = SetAssociativeCache(geo)
        rng = np.random.default_rng(0)
        nlines = 64 * 4  # fits exactly in 4 ways if balanced
        # Sequential fill is perfectly balanced across sets.
        lines = np.arange(nlines, dtype=np.int64) * 64
        cache.access_many(lines, mask=0b1111)
        hits = cache.access_many(lines, mask=0b1111)
        assert hits == nlines

    def test_cyclic_thrash_yields_zero_reuse(self):
        """A cyclic sweep larger than the allocation never re-hits under LRU."""
        geo = CacheGeometry(line_size=64, num_sets=16, num_ways=4)
        cache = SetAssociativeCache(geo)
        lines = np.arange(16 * 2, dtype=np.int64) * 64  # 2x a 1-way allocation
        for _ in range(4):
            hits = cache.access_many(lines, mask=0b0001)
        assert hits == 0
