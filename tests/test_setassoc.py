"""Tests for repro.cache.setassoc: the exact CAT-partitionable cache."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.setassoc import SetAssociativeCache
from repro.mem.address import CacheGeometry


def tiny_cache(num_sets=4, num_ways=4, **kw):
    return SetAssociativeCache(
        CacheGeometry(line_size=64, num_sets=num_sets, num_ways=num_ways), **kw
    )


def addr(set_index, tag, geo):
    return (tag * geo.num_sets + set_index) * geo.line_size


class TestBasicAccess:
    def test_first_access_misses_then_hits(self):
        cache = tiny_cache()
        assert not cache.access(0).hit
        assert cache.access(0).hit

    def test_same_line_different_offset_hits(self):
        cache = tiny_cache()
        cache.access(0)
        assert cache.access(63).hit
        assert not cache.access(64).hit  # next line

    def test_stats_count(self):
        cache = tiny_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.accesses == 3
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_capacity_eviction(self):
        cache = tiny_cache(num_sets=1, num_ways=2)
        geo = cache.geometry
        for tag in range(3):
            cache.access(addr(0, tag, geo))
        # Tag 0 was LRU and must be gone.
        assert not cache.access(addr(0, 0, geo)).hit
        assert cache.stats.evictions >= 1

    def test_lru_order_respected(self):
        cache = tiny_cache(num_sets=1, num_ways=2)
        geo = cache.geometry
        cache.access(addr(0, 0, geo))
        cache.access(addr(0, 1, geo))
        cache.access(addr(0, 0, geo))  # refresh tag 0
        cache.access(addr(0, 2, geo))  # evicts tag 1
        assert cache.access(addr(0, 0, geo)).hit
        assert not cache.access(addr(0, 1, geo)).hit


class TestCatSemantics:
    def test_fill_restricted_to_mask(self):
        cache = tiny_cache(num_sets=1, num_ways=4)
        geo = cache.geometry
        for tag in range(8):
            result = cache.access(addr(0, tag, geo), mask=0b0011)
            assert result.way in (0, 1)

    def test_hit_allowed_outside_mask(self):
        """CAT restricts allocation, not lookup."""
        cache = tiny_cache(num_sets=1, num_ways=4)
        geo = cache.geometry
        # Fill way 3 under a mask containing only way 3.
        cache.access(addr(0, 9, geo), mask=0b1000)
        # A core restricted to ways 0-1 still hits on that line.
        assert cache.access(addr(0, 9, geo), mask=0b0011).hit

    def test_masked_workload_cannot_evict_other_ways(self):
        cache = tiny_cache(num_sets=1, num_ways=4)
        geo = cache.geometry
        cache.access(addr(0, 1, geo), mask=0b1100, cos=1)
        cache.access(addr(0, 2, geo), mask=0b1100, cos=1)
        # A heavy workload confined to ways 0-1 thrashes only those.
        for tag in range(10, 30):
            cache.access(addr(0, tag, geo), mask=0b0011, cos=2)
        assert cache.access(addr(0, 1, geo)).hit
        assert cache.access(addr(0, 2, geo)).hit

    def test_invalid_mask_rejected(self):
        cache = tiny_cache(num_ways=4)
        with pytest.raises(ValueError):
            cache.access(0, mask=0)
        with pytest.raises(ValueError):
            cache.access(0, mask=0b10000)

    def test_per_cos_accounting(self):
        cache = tiny_cache()
        cache.access(0, cos=3)
        cache.access(0, cos=3)
        cache.access(64, cos=5)
        assert cache.stats.per_cos_misses[3] == 1
        assert cache.stats.per_cos_hits[3] == 1
        assert cache.stats.per_cos_misses[5] == 1


class TestBatchAccess:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=15),
    )
    def test_access_many_equals_scalar_loop(self, line_ids, mask):
        geo = CacheGeometry(line_size=64, num_sets=4, num_ways=4)
        a = SetAssociativeCache(geo)
        b = SetAssociativeCache(geo)
        paddrs = np.array(line_ids, dtype=np.int64) * 64
        hits_batch = a.access_many(paddrs, mask=mask)
        hits_scalar = sum(b.access(int(p), mask=mask).hit for p in paddrs)
        assert hits_batch == hits_scalar
        assert np.array_equal(a._tags, b._tags)

    def test_batch_stats(self):
        cache = tiny_cache()
        paddrs = np.array([0, 0, 64, 64], dtype=np.int64)
        hits = cache.access_many(paddrs)
        assert hits == 2
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2


class TestMaintenance:
    def test_flush_ways_drops_lines(self):
        cache = tiny_cache(num_sets=2, num_ways=2)
        geo = cache.geometry
        cache.access(addr(0, 0, geo), mask=0b01)
        cache.access(addr(1, 0, geo), mask=0b10)
        dropped = cache.flush_ways(0b01)
        assert dropped == 1
        assert not cache.access(addr(0, 0, geo)).hit  # flushed
        assert cache.access(addr(1, 0, geo)).hit  # way 1 untouched

    def test_flush_reports_all_valid_lines(self):
        cache = tiny_cache(num_sets=4, num_ways=1)
        geo = cache.geometry
        for s in range(4):
            cache.access(addr(s, 7, geo))
        assert cache.flush_ways(0b1) == 4

    def test_eviction_callback_invoked(self):
        evicted = []
        cache = SetAssociativeCache(
            CacheGeometry(line_size=64, num_sets=1, num_ways=1),
            eviction_callback=evicted.append,
        )
        geo = cache.geometry
        cache.access(addr(0, 0, geo))
        cache.access(addr(0, 1, geo))
        assert evicted == [geo.line_id_of(0, 0)]

    def test_occupancy_by_cos(self):
        cache = tiny_cache(num_sets=2, num_ways=2)
        geo = cache.geometry
        cache.access(addr(0, 0, geo), mask=0b01, cos=1)
        cache.access(addr(1, 0, geo), mask=0b10, cos=2)
        occ = cache.occupancy_by_cos()
        assert occ[1] == 1
        assert occ[2] == 1
        assert cache.resident_lines() == 2

    def test_contains_line(self):
        cache = tiny_cache()
        geo = cache.geometry
        cache.access(addr(2, 5, geo))
        assert cache.contains_line(geo.line_id_of(2, 5))
        assert not cache.contains_line(geo.line_id_of(2, 6))


class TestSteadyStateHitRates:
    def test_working_set_fitting_in_allocation_hits(self):
        """A random working set within the masked capacity converges to ~100%."""
        geo = CacheGeometry(line_size=64, num_sets=64, num_ways=8)
        cache = SetAssociativeCache(geo)
        rng = np.random.default_rng(0)
        nlines = 64 * 4  # fits exactly in 4 ways if balanced
        # Sequential fill is perfectly balanced across sets.
        lines = np.arange(nlines, dtype=np.int64) * 64
        cache.access_many(lines, mask=0b1111)
        hits = cache.access_many(lines, mask=0b1111)
        assert hits == nlines

    def test_cyclic_thrash_yields_zero_reuse(self):
        """A cyclic sweep larger than the allocation never re-hits under LRU."""
        geo = CacheGeometry(line_size=64, num_sets=16, num_ways=4)
        cache = SetAssociativeCache(geo)
        lines = np.arange(16 * 2, dtype=np.int64) * 64  # 2x a 1-way allocation
        for _ in range(4):
            hits = cache.access_many(lines, mask=0b0001)
        assert hits == 0
