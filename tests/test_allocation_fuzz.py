"""Seeded property fuzz of the Allocate Cache step (paper §3.5).

Complements ``test_controller_fuzz.py``: that file drives the whole control
loop through a simulated substrate; this one hammers
:func:`repro.core.allocation.plan_allocation` directly with random way
counts, workload mixes and performance tables, and asserts the §3.5
contract for **every registered allocation strategy**:

* every workload holds at least ``min_ways`` and the plan fits the socket;
* packing the plan yields contiguous, pairwise-exclusive masks that —
  together with the free pool — cover the LLC exactly;
* when the baselines fit the cache, no workload asking for at least its
  baseline is ever planned below it (the reservation guarantee).

A golden pin also replays the pre-registry enum dispatch verbatim and
asserts the ``max_fairness`` / ``max_performance`` strategies remain
byte-identical to it on every fuzzed case.

``derandomize=True`` makes every run replay the same seeded case corpus, so
a failure here reproduces everywhere.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.cat.cos import is_contiguous, mask_way_count
from repro.cat.layout import pack_contiguous
from repro.core.allocation import (
    AllocationInput,
    _enforce_budget,
    _grant_order,
    _rebalance_max_performance,
    plan_allocation,
)
from repro.core.config import AllocationPolicy, DCatConfig
from repro.core.hints import DeclaredPhase, DeclaredSchedule, PhaseHint
from repro.core.perftable import PhaseTable
from repro.core.policies import strategy_names
from repro.core.states import WorkloadState

TOTAL_WAYS = st.integers(min_value=8, max_value=24)

_STATES = [
    WorkloadState.KEEPER,
    WorkloadState.DONOR,
    WorkloadState.RECEIVER,
    WorkloadState.UNKNOWN,
    WorkloadState.STREAMING,
    WorkloadState.RECLAIM,
]

workload_strategy = st.fixed_dictionaries(
    {
        "state": st.sampled_from(_STATES),
        "baseline": st.integers(min_value=1, max_value=4),
        "target": st.integers(min_value=1, max_value=24),
        "grow": st.integers(min_value=0, max_value=4),
        "table_entries": st.one_of(
            st.none(),
            st.dictionaries(
                st.integers(min_value=1, max_value=24),
                st.floats(min_value=0.2, max_value=3.0),
                min_size=1,
                max_size=6,
            ),
        ),
    }
)


def _build_inputs(specs, total_ways):
    """Turn raw strategy dicts into AllocationInputs the controller could emit."""
    inputs = []
    for i, spec in enumerate(specs):
        baseline = min(spec["baseline"], total_ways)
        reclaiming = spec["state"] is WorkloadState.RECLAIM
        # The controller's Reclaim decision always targets the baseline.
        target = baseline if reclaiming else min(spec["target"], total_ways)
        table = None
        if spec["table_entries"] is not None:
            table = PhaseTable(
                baseline_ways=baseline,
                baseline_ipc=1.0,
                entries=dict(spec["table_entries"]),
            )
        inputs.append(
            AllocationInput(
                workload_id=f"w{i}",
                state=spec["state"],
                target_ways=target,
                grow_request=spec["grow"],
                baseline_ways=baseline,
                reclaiming=reclaiming,
                phase_table=table,
            )
        )
    return inputs


def _check_plan(plan, inputs, total_ways, config):
    assert set(plan) == {inp.workload_id for inp in inputs}
    for inp in inputs:
        assert plan[inp.workload_id] >= config.min_ways, (
            f"{inp.workload_id} got {plan[inp.workload_id]} < min_ways"
        )
    assert sum(plan.values()) <= total_ways

    # Reservation guarantee: with feasible baselines, nobody asking for at
    # least its baseline lands below it.
    if sum(inp.baseline_ways for inp in inputs) <= total_ways:
        for inp in inputs:
            if inp.target_ways >= inp.baseline_ways:
                assert plan[inp.workload_id] >= inp.baseline_ways, (
                    f"{inp.workload_id}: planned {plan[inp.workload_id]} "
                    f"below baseline {inp.baseline_ways}"
                )

    # The plan must pack into legal CAT masks: contiguous, exclusive, and —
    # with the free pool — covering every way exactly once.
    layout = pack_contiguous(plan, total_ways)
    union = 0
    for wid, mask in layout.masks.items():
        assert is_contiguous(mask), f"{wid}: non-contiguous mask {mask:#x}"
        assert mask_way_count(mask) == plan[wid]
        assert mask & union == 0, f"{wid}: mask {mask:#x} overlaps"
        union |= mask
    assert union & layout.free_mask == 0
    assert union | layout.free_mask == (1 << total_ways) - 1, (
        "masks plus free pool do not cover the LLC"
    )


@pytest.mark.parametrize("policy", strategy_names())
@settings(max_examples=200, deadline=None, derandomize=True)
@given(
    total_ways=TOTAL_WAYS,
    specs=st.lists(workload_strategy, min_size=1, max_size=8),
)
def test_plan_allocation_contract(policy, total_ways, specs):
    config = DCatConfig(policy=policy)
    inputs = _build_inputs(specs, total_ways)
    if len(inputs) * config.min_ways > total_ways:
        with pytest.raises(ValueError):
            plan_allocation(inputs, total_ways, config)
        return
    plan = plan_allocation(inputs, total_ways, config)
    _check_plan(plan, inputs, total_ways, config)


def _legacy_plan_allocation(inputs, total_ways, config, policy):
    """The pre-registry §3.5 dispatch, replayed verbatim as a golden pin.

    Steps 1–3 inline (reclaim, donate, grant) followed by the enum branch
    on the policy — exactly the body ``plan_allocation`` had before the
    strategy registry existed.
    """
    if len(inputs) * config.min_ways > total_ways:
        raise ValueError("cannot fit minimums")
    plan = {
        inp.workload_id: max(config.min_ways, inp.target_ways) for inp in inputs
    }
    _enforce_budget(plan, inputs, total_ways, config)
    free = total_ways - sum(plan.values())
    for priority_states in _grant_order(config):
        for inp in sorted(inputs, key=lambda i: i.workload_id):
            if free <= 0:
                break
            if inp.state in priority_states and inp.grow_request > 0:
                grant = min(inp.grow_request, free)
                plan[inp.workload_id] += grant
                free -= grant
    if policy is AllocationPolicy.MAX_PERFORMANCE:
        _rebalance_max_performance(plan, inputs, total_ways, config)
    return plan


@pytest.mark.parametrize(
    "policy", [AllocationPolicy.MAX_FAIRNESS, AllocationPolicy.MAX_PERFORMANCE]
)
@settings(max_examples=200, deadline=None, derandomize=True)
@given(
    total_ways=TOTAL_WAYS,
    specs=st.lists(workload_strategy, min_size=1, max_size=8),
)
def test_legacy_policies_byte_identical(policy, total_ways, specs):
    """Registry dispatch reproduces the pre-refactor enum paths exactly."""
    config = DCatConfig(policy=policy)
    inputs = _build_inputs(specs, total_ways)
    if len(inputs) * config.min_ways > total_ways:
        return
    assert plan_allocation(inputs, total_ways, config) == (
        _legacy_plan_allocation(inputs, total_ways, config, policy)
    )


hint_strategy = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {
            "preferred": st.integers(min_value=1, max_value=24),
            "declared_refs": st.one_of(
                st.none(), st.floats(min_value=0.05, max_value=1.0)
            ),
            "measured_refs": st.floats(min_value=0.01, max_value=1.5),
        }
    ),
)


@settings(max_examples=200, deadline=None, derandomize=True)
@given(
    total_ways=TOTAL_WAYS,
    specs=st.lists(workload_strategy, min_size=1, max_size=8),
    hints=st.lists(hint_strategy, min_size=8, max_size=8),
)
def test_phase_hint_contract_with_hints(total_ways, specs, hints):
    """The hint-guided strategy keeps the §3.5 contract for any hint mix."""
    config = DCatConfig(policy="phase_hint")
    inputs = []
    for inp, hint in zip(_build_inputs(specs, total_ways), hints):
        if hint is not None:
            schedule = DeclaredSchedule(
                phases=(
                    DeclaredPhase(
                        start_s=0.0,
                        preferred_ways=hint["preferred"],
                        refs_per_instr=hint["declared_refs"],
                    ),
                )
            )
            inp = AllocationInput(
                workload_id=inp.workload_id,
                state=inp.state,
                target_ways=inp.target_ways,
                grow_request=inp.grow_request,
                baseline_ways=inp.baseline_ways,
                reclaiming=inp.reclaiming,
                phase_table=inp.phase_table,
                hint=PhaseHint(
                    time_s=1.0,
                    schedule=schedule,
                    measured_refs_per_instr=hint["measured_refs"],
                ),
            )
        inputs.append(inp)
    if len(inputs) * config.min_ways > total_ways:
        return
    plan = plan_allocation(inputs, total_ways, config)
    _check_plan(plan, inputs, total_ways, config)


@settings(max_examples=100, deadline=None, derandomize=True)
@given(
    total_ways=TOTAL_WAYS,
    specs=st.lists(workload_strategy, min_size=2, max_size=8),
)
def test_oversubscribed_baselines_still_fit_the_socket(total_ways, specs):
    """Even with baselines exceeding the cache, the plan legally packs."""
    config = DCatConfig()
    inputs = [
        AllocationInput(
            workload_id=inp.workload_id,
            state=inp.state,
            target_ways=max(inp.target_ways, inp.baseline_ways * 3),
            grow_request=inp.grow_request,
            baseline_ways=min(inp.baseline_ways * 3, total_ways),
            reclaiming=False,
            phase_table=inp.phase_table,
        )
        for inp in _build_inputs(specs, total_ways)
    ]
    if len(inputs) * config.min_ways > total_ways:
        return
    plan = plan_allocation(inputs, total_ways, config)
    for inp in inputs:
        assert plan[inp.workload_id] >= config.min_ways
    assert sum(plan.values()) <= total_ways
    layout = pack_contiguous(plan, total_ways)
    union = 0
    for mask in layout.masks.values():
        assert is_contiguous(mask)
        assert mask & union == 0
        union |= mask
