"""Class-of-service definitions and capacity-bitmask (CBM) validation.

Intel CAT exposes L3 partitioning as a small table of classes of service
(COS), each holding a capacity bitmask over the LLC's ways.  Hardware
enforces three rules which we reproduce exactly, because dCat's allocator
has to respect them:

* a CBM must have at least ``min_cbm_bits`` bits set (1 on the paper's
  parts — "Intel x86 does not allow to allocate 0 way");
* the set bits must be *contiguous*;
* there are at most 16 COS per L3 cache.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MAX_COS",
    "validate_cbm",
    "contiguous_mask",
    "mask_way_count",
    "mask_ways",
    "is_contiguous",
    "ClassOfService",
]

MAX_COS = 16


def mask_way_count(mask: int) -> int:
    """Number of ways enabled in a mask."""
    return bin(mask).count("1")


def mask_ways(mask: int) -> list:
    """Indices of the ways enabled in a mask, ascending."""
    ways = []
    w = 0
    while mask >> w:
        if (mask >> w) & 1:
            ways.append(w)
        w += 1
    return ways


def is_contiguous(mask: int) -> bool:
    """True if the set bits of ``mask`` form one contiguous run."""
    if mask <= 0:
        return False
    shifted = mask >> (mask & -mask).bit_length() - 1
    return (shifted & (shifted + 1)) == 0


def contiguous_mask(first_way: int, num_ways: int) -> int:
    """Build a contiguous mask of ``num_ways`` ways starting at ``first_way``."""
    if num_ways < 1:
        raise ValueError("a CBM must cover at least one way")
    if first_way < 0:
        raise ValueError("first_way must be non-negative")
    return ((1 << num_ways) - 1) << first_way


def validate_cbm(mask: int, num_ways: int, min_cbm_bits: int = 1) -> int:
    """Validate a capacity bitmask against hardware rules; returns the mask.

    Raises:
        ValueError: If the mask is empty, exceeds the cache's ways, has
            fewer than ``min_cbm_bits`` bits, or is non-contiguous.
    """
    if mask <= 0:
        raise ValueError("CBM must enable at least one way (0-way CBMs are illegal)")
    if mask >= (1 << num_ways) << 1 or mask > (1 << num_ways) - 1:
        raise ValueError(
            f"CBM {mask:#x} references ways beyond the cache's {num_ways}"
        )
    if mask_way_count(mask) < min_cbm_bits:
        raise ValueError(
            f"CBM {mask:#x} has fewer than min_cbm_bits={min_cbm_bits} bits"
        )
    if not is_contiguous(mask):
        raise ValueError(f"CBM {mask:#x} is not contiguous")
    return mask


@dataclass
class ClassOfService:
    """One COS entry: an id and its current capacity bitmask."""

    cos_id: int
    mask: int

    def __post_init__(self) -> None:
        if not 0 <= self.cos_id < MAX_COS:
            raise ValueError(f"cos_id must be in [0, {MAX_COS}), got {self.cos_id}")

    @property
    def way_count(self) -> int:
        return mask_way_count(self.mask)
