"""In-memory Linux ``resctrl`` filesystem frontend over the CAT device.

The paper's prototype predates mainline resctrl and drives CAT via pqos, but
a modern deployment of dCat would mount ``/sys/fs/resctrl`` and manage
control groups — the reproduction-band notes call this the natural control
path.  This module models the filesystem's contract precisely enough that a
controller written against it would port to the real thing:

* ``mkdir <group>`` allocates a CLOSID (fails with "no space" when the 16
  classes are exhausted);
* writing ``schemata`` lines like ``L3:0=3f`` programs the CBM (the kernel
  rejects empty or non-contiguous masks, as we do);
* writing ``cpus_list`` moves cores into the group (removing them from every
  other group, default group included);
* ``size`` reports the bytes of cache the schemata grants;
* ``info/L3/{cbm_mask,min_cbm_bits,num_closids}`` describe the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.cos import mask_way_count

__all__ = ["ResctrlError", "ResctrlGroup", "ResctrlFilesystem", "parse_cpu_list", "format_cpu_list"]


class ResctrlError(OSError):
    """Filesystem-style error (message mirrors kernel errno text)."""


def parse_cpu_list(text: str) -> Set[int]:
    """Parse a kernel cpu-list string ("0-3,8,10-11") into a set of ids."""
    cpus: Set[int] = set()
    text = text.strip()
    if not text:
        return cpus
    for part in text.split(","):
        part = part.strip()
        if "-" in part:
            lo_s, hi_s = part.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ResctrlError(f"invalid cpu range {part!r}")
            cpus.update(range(lo, hi + 1))
        else:
            cpus.add(int(part))
    return cpus


def format_cpu_list(cpus: Set[int]) -> str:
    """Format a set of cpu ids as a kernel cpu-list string."""
    if not cpus:
        return ""
    ordered = sorted(cpus)
    runs: List[List[int]] = [[ordered[0], ordered[0]]]
    for cpu in ordered[1:]:
        if cpu == runs[-1][1] + 1:
            runs[-1][1] = cpu
        else:
            runs.append([cpu, cpu])
    return ",".join(f"{lo}-{hi}" if hi > lo else f"{lo}" for lo, hi in runs)


@dataclass
class ResctrlGroup:
    """One control group: a CLOSID plus its member cpus."""

    name: str
    closid: int
    cpus: Set[int] = field(default_factory=set)


class ResctrlFilesystem:
    """The mounted filesystem: a root group plus named control groups.

    Args:
        cat: CAT device to program.
        way_size_bytes: Per-way capacity for the ``size`` file.
        cache_id: L3 cache id used in schemata lines (one-socket model: 0).
    """

    ROOT = ""

    def __init__(
        self,
        cat: CacheAllocationTechnology,
        way_size_bytes: int,
        cache_id: int = 0,
    ) -> None:
        self._cat = cat
        self._way_size = way_size_bytes
        self._cache_id = cache_id
        root = ResctrlGroup(
            name=self.ROOT, closid=0, cpus=set(range(cat.num_cores))
        )
        self._groups: Dict[str, ResctrlGroup] = {self.ROOT: root}

    # -- directory operations ----------------------------------------------

    def mkdir(self, name: str) -> ResctrlGroup:
        """Create a control group; allocates the lowest free CLOSID."""
        if not name or "/" in name:
            raise ResctrlError(f"invalid group name {name!r}")
        if name in self._groups:
            raise ResctrlError(f"mkdir: {name}: File exists")
        used = {g.closid for g in self._groups.values()}
        free = [c for c in range(self._cat.num_cos) if c not in used]
        if not free:
            raise ResctrlError("mkdir: No space left on device (out of CLOSIDs)")
        group = ResctrlGroup(name=name, closid=free[0])
        self._groups[name] = group
        return group

    def rmdir(self, name: str) -> None:
        """Remove a group; its cpus fall back to the default group."""
        if name == self.ROOT:
            raise ResctrlError("rmdir: cannot remove the default group")
        group = self._group(name)
        root = self._groups[self.ROOT]
        for cpu in group.cpus:
            root.cpus.add(cpu)
            self._cat.associate_core(cpu, root.closid)
        del self._groups[name]

    def groups(self) -> List[str]:
        """Names of all non-root groups (directory listing)."""
        return sorted(g for g in self._groups if g != self.ROOT)

    # -- file operations -------------------------------------------------------

    def write(self, path: str, data: str) -> None:
        """Write a control file (``<group>/schemata`` or ``<group>/cpus_list``)."""
        group_name, fname = self._split(path)
        group = self._group(group_name)
        if fname == "schemata":
            self._write_schemata(group, data)
        elif fname in ("cpus", "cpus_list"):
            self._write_cpus(group, data)
        else:
            raise ResctrlError(f"write: {path}: Permission denied")

    def read(self, path: str) -> str:
        """Read a control or info file."""
        if path.startswith("info/"):
            return self._read_info(path)
        group_name, fname = self._split(path)
        group = self._group(group_name)
        if fname == "schemata":
            mask = self._cat.cos_mask(group.closid)
            return f"L3:{self._cache_id}={mask:x}\n"
        if fname in ("cpus", "cpus_list"):
            return format_cpu_list(group.cpus) + "\n"
        if fname == "size":
            ways = mask_way_count(self._cat.cos_mask(group.closid))
            return f"L3:{self._cache_id}={ways * self._way_size}\n"
        raise ResctrlError(f"read: {path}: No such file")

    # -- internals -----------------------------------------------------------------

    def _split(self, path: str):
        path = path.strip("/")
        if "/" not in path:
            return self.ROOT, path
        group, fname = path.rsplit("/", 1)
        return group, fname

    def _group(self, name: str) -> ResctrlGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise ResctrlError(f"{name}: No such directory") from None

    def _write_schemata(self, group: ResctrlGroup, data: str) -> None:
        for line in data.strip().splitlines():
            line = line.strip()
            if not line:
                continue
            if not line.upper().startswith("L3:"):
                raise ResctrlError(f"schemata: unsupported resource in {line!r}")
            body = line[3:]
            for clause in body.split(";"):
                cache_s, mask_s = clause.split("=", 1)
                if int(cache_s) != self._cache_id:
                    raise ResctrlError(f"schemata: unknown cache id {cache_s}")
                try:
                    mask = int(mask_s, 16)
                    self._cat.set_cos_mask(group.closid, mask)
                except ValueError as exc:
                    raise ResctrlError(f"schemata: Invalid argument ({exc})") from None

    def _write_cpus(self, group: ResctrlGroup, data: str) -> None:
        cpus = parse_cpu_list(data)
        for cpu in cpus:
            if not 0 <= cpu < self._cat.num_cores:
                raise ResctrlError(f"cpus: cpu {cpu} does not exist")
        # The kernel moves cpus: remove from every other group first.
        for other in self._groups.values():
            if other is not group:
                other.cpus -= cpus
        group.cpus = set(cpus)
        for cpu in cpus:
            self._cat.associate_core(cpu, group.closid)

    def _read_info(self, path: str) -> str:
        full_mask = (1 << self._cat.num_ways) - 1
        files = {
            "info/L3/cbm_mask": f"{full_mask:x}\n",
            "info/L3/min_cbm_bits": f"{self._cat.min_cbm_bits}\n",
            "info/L3/num_closids": f"{self._cat.num_cos}\n",
        }
        try:
            return files[path]
        except KeyError:
            raise ResctrlError(f"read: {path}: No such file") from None
