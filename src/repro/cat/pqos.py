"""pqos-style library API over the CAT device.

The original dCat daemon links against Intel's ``pqos`` library.  This module
reproduces the slice of its API dCat uses — L3 CA mask programming and
core-to-COS association — plus the capability query, so the controller code
reads like the C program it reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.cos import mask_way_count, validate_cbm

__all__ = ["PqosError", "PqosCapability", "PqosL3Ca", "PqosLibrary"]


class PqosError(RuntimeError):
    """A pqos operation failed (the library-call analogue of PQOS_RETVAL_ERROR).

    The validated in-memory backend never raises this on well-formed input;
    it exists as the canonical error type for transient hardware-path
    failures, which :mod:`repro.faults` injects and the hardened controller
    retries against.
    """


@dataclass(frozen=True)
class PqosCapability:
    """What the platform's allocation hardware supports (pqos_cap_get)."""

    num_cos: int
    num_ways: int
    way_size_bytes: int
    min_cbm_bits: int


@dataclass(frozen=True)
class PqosL3Ca:
    """One L3 CA table entry, as pqos_l3ca_get returns it."""

    cos_id: int
    ways_mask: int

    @property
    def num_ways(self) -> int:
        return mask_way_count(self.ways_mask)


class PqosLibrary:
    """Thin, validated wrapper over :class:`CacheAllocationTechnology`.

    Args:
        cat: The CAT device to program.
        way_size_bytes: Per-way capacity, reported in capabilities (the
            paper's Xeon-E5 has 2.25 MB ways).
    """

    def __init__(self, cat: CacheAllocationTechnology, way_size_bytes: int) -> None:
        self._cat = cat
        self._way_size = way_size_bytes

    # -- capability --------------------------------------------------------

    def cap_get(self) -> PqosCapability:
        """Describe the allocation hardware (mirrors pqos_cap_get)."""
        return PqosCapability(
            num_cos=self._cat.num_cos,
            num_ways=self._cat.num_ways,
            way_size_bytes=self._way_size,
            min_cbm_bits=self._cat.min_cbm_bits,
        )

    # -- L3 CA -----------------------------------------------------------------

    def l3ca_set(self, entries: Iterable[PqosL3Ca]) -> None:
        """Program one or more COS masks (mirrors pqos_l3ca_set).

        The whole batch is validated before anything is written, so a bad
        entry can never leave the COS table partially programmed — either
        every entry lands or none does (the real library likewise validates
        the full request before touching IA32_L3_MASK_n).

        Raises:
            ValueError: If any entry's COS id or bitmask is invalid; no
                mask has been written when this raises.
        """
        batch = list(entries)
        num_cos = self._cat.num_cos
        for entry in batch:
            if not 0 <= entry.cos_id < num_cos:
                raise ValueError(
                    f"cos_id {entry.cos_id} out of range [0, {num_cos})"
                )
            validate_cbm(
                entry.ways_mask, self._cat.num_ways, self._cat.min_cbm_bits
            )
        for entry in batch:
            self._cat.set_cos_mask(entry.cos_id, entry.ways_mask)

    def l3ca_get(self) -> List[PqosL3Ca]:
        """Read back the full COS table (mirrors pqos_l3ca_get)."""
        return [
            PqosL3Ca(cos_id=i, ways_mask=self._cat.cos_mask(i))
            for i in range(self._cat.num_cos)
        ]

    # -- association ---------------------------------------------------------------

    def alloc_assoc_set(self, core: int, cos_id: int) -> None:
        """Associate a core with a COS (mirrors pqos_alloc_assoc_set)."""
        self._cat.associate_core(core, cos_id)

    def alloc_assoc_get(self, core: int) -> int:
        """Read a core's COS association (mirrors pqos_alloc_assoc_get)."""
        return self._cat.core_cos(core)

    def assoc_map(self) -> Dict[int, int]:
        """All core associations at once (convenience, not in real pqos)."""
        return {c: self._cat.core_cos(c) for c in range(self._cat.num_cores)}
