"""Intel Cache Monitoring Technology (CMT) and Memory Bandwidth Monitoring.

The paper's footnotes weigh CMT as an alternative to dCat's perf-counter
approach and reject it: CMT reports *LLC occupancy* per RMID (and MBM
reports memory bandwidth), but occupancy alone cannot say whether a
workload would *benefit* from more cache — a streaming workload holds
occupancy as high as a cache-loving one — and CMT "cannot integrate with
CAT to dynamically allocate cache".  We model it anyway: it completes the
RDT (Resource Director Technology) surface, it is useful for verifying that
allocations took effect, and the test suite uses it to demonstrate the
paper's footnote quantitatively.

Model: each core's IA32_PQR_ASSOC carries an RMID alongside its CLOS; the
platform reports per-RMID occupancy (scaled by the architectural upscale
factor from CPUID) and cumulative memory-traffic byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CmtReading", "CacheMonitoringTechnology"]


@dataclass(frozen=True)
class CmtReading:
    """One RMID's monitored state."""

    rmid: int
    occupancy_bytes: int
    total_bandwidth_bytes: int
    local_bandwidth_bytes: int


class CacheMonitoringTechnology:
    """RMID association plus occupancy/bandwidth event reporting.

    Args:
        num_rmids: Supported resource-monitoring IDs (CPUID.0xF reports
            e.g. 88-176 on Broadwell; we default to 64).
        num_cores: Cores on the socket.
        upscale_bytes: The CPUID "upscaling factor": occupancy counters
            tick in units of this many bytes.
    """

    def __init__(
        self, num_rmids: int = 64, num_cores: int = 36, upscale_bytes: int = 65536
    ) -> None:
        if num_rmids < 1 or num_cores < 1 or upscale_bytes < 1:
            raise ValueError("num_rmids, num_cores, upscale_bytes must be >= 1")
        self.num_rmids = num_rmids
        self.num_cores = num_cores
        self.upscale_bytes = upscale_bytes
        self._core_rmid: Dict[int, int] = {c: 0 for c in range(num_cores)}
        self._occupancy_units: Dict[int, int] = {}
        self._mbm_total: Dict[int, int] = {}
        self._mbm_local: Dict[int, int] = {}

    # -- association (the monitoring half of IA32_PQR_ASSOC) -----------------

    def assoc_rmid(self, core: int, rmid: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")
        if not 0 <= rmid < self.num_rmids:
            raise ValueError(f"rmid {rmid} out of range [0, {self.num_rmids})")
        self._core_rmid[core] = rmid

    def rmid_of(self, core: int) -> int:
        return self._core_rmid[core]

    # -- platform-side reporting ------------------------------------------------

    def report_occupancy(self, rmid: int, occupancy_bytes: int) -> None:
        """Set an RMID's current occupancy (platform/simulator side)."""
        self._check_rmid(rmid)
        if occupancy_bytes < 0:
            raise ValueError("occupancy cannot be negative")
        self._occupancy_units[rmid] = occupancy_bytes // self.upscale_bytes

    def report_traffic(
        self, rmid: int, total_bytes: int, local_bytes: int | None = None
    ) -> None:
        """Accumulate memory traffic attributed to an RMID (MBM counters)."""
        self._check_rmid(rmid)
        if total_bytes < 0:
            raise ValueError("traffic cannot be negative")
        self._mbm_total[rmid] = self._mbm_total.get(rmid, 0) + total_bytes
        local = total_bytes if local_bytes is None else local_bytes
        self._mbm_local[rmid] = self._mbm_local.get(rmid, 0) + local

    # -- controller-side reads (IA32_QM_EVTSEL / IA32_QM_CTR) --------------------

    def read(self, rmid: int) -> CmtReading:
        """Read an RMID's occupancy and cumulative bandwidth counters."""
        self._check_rmid(rmid)
        return CmtReading(
            rmid=rmid,
            occupancy_bytes=self._occupancy_units.get(rmid, 0) * self.upscale_bytes,
            total_bandwidth_bytes=self._mbm_total.get(rmid, 0),
            local_bandwidth_bytes=self._mbm_local.get(rmid, 0),
        )

    def read_core(self, core: int) -> CmtReading:
        """Read the RMID a core is currently associated with."""
        return self.read(self.rmid_of(core))

    def _check_rmid(self, rmid: int) -> None:
        if not 0 <= rmid < self.num_rmids:
            raise ValueError(f"rmid {rmid} out of range [0, {self.num_rmids})")
