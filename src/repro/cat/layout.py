"""Contiguous way-layout packing for CAT masks.

dCat decides *how many* ways each workload should own; real CAT additionally
requires each class's mask to be a *contiguous* bit run, and dCat's isolation
guarantee requires the runs not to overlap.  Turning a ``{workload: ways}``
plan into concrete masks is therefore a small packing problem, solved here
with a movement-minimizing heuristic: workloads keep their previous starting
position when possible, because every way that changes hands invalidates warm
lines (the paper flushes reassigned ways with a helper program).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.cat.cos import contiguous_mask, mask_way_count, mask_ways

__all__ = ["LayoutResult", "pack_contiguous"]


@dataclass
class LayoutResult:
    """Outcome of a packing round.

    Attributes:
        masks: Final contiguous, non-overlapping mask per workload.
        moved: Workloads whose span shifted (their old ways should be
            flushed to bound cross-tenant leakage).
        free_mask: Ways left unowned (the free pool).
    """

    masks: Dict[Hashable, int]
    moved: List[Hashable]
    free_mask: int

    def way_counts(self) -> Dict[Hashable, int]:
        return {k: mask_way_count(m) for k, m in self.masks.items()}


def pack_contiguous(
    way_counts: Mapping[Hashable, int],
    num_ways: int,
    previous: Optional[Mapping[Hashable, int]] = None,
) -> LayoutResult:
    """Pack per-workload way counts into contiguous, disjoint masks.

    Args:
        way_counts: Desired number of ways per workload (each >= 1).
        num_ways: Total ways on the socket.
        previous: Last round's masks, used to keep placements stable.

    Raises:
        ValueError: If the demands exceed ``num_ways`` or any count is < 1.

    The heuristic: order workloads by their previous starting way (new
    workloads go last, in deterministic key order) and lay the runs down
    left-to-right.  A workload whose size and neighborhood did not change
    lands exactly where it was, so steady-state rounds move nothing.
    """
    total = sum(way_counts.values())
    if total > num_ways:
        raise ValueError(f"demand of {total} ways exceeds socket's {num_ways}")
    for wid, count in way_counts.items():
        if count < 1:
            raise ValueError(f"workload {wid!r} assigned {count} ways (minimum is 1)")

    previous = previous or {}

    def sort_key(wid: Hashable) -> Tuple[int, str]:
        prev_mask = previous.get(wid)
        if prev_mask:
            return (mask_ways(prev_mask)[0], str(wid))
        return (num_ways, str(wid))  # new workloads pack at the end

    order = sorted(way_counts, key=sort_key)
    masks: Dict[Hashable, int] = {}
    moved: List[Hashable] = []
    cursor = 0
    for wid in order:
        count = way_counts[wid]
        mask = contiguous_mask(cursor, count)
        masks[wid] = mask
        if previous.get(wid) is not None and previous[wid] != mask:
            moved.append(wid)
        cursor += count

    used = 0
    for mask in masks.values():
        used |= mask
    free_mask = ((1 << num_ways) - 1) & ~used
    return LayoutResult(masks=masks, moved=moved, free_mask=free_mask)
