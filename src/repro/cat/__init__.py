"""Intel CAT analog: COS table, pqos-style API, resctrl frontend, layout."""

from repro.cat.cat import CacheAllocationTechnology
from repro.cat.cmt import CacheMonitoringTechnology, CmtReading
from repro.cat.cos import (
    MAX_COS,
    ClassOfService,
    contiguous_mask,
    is_contiguous,
    mask_way_count,
    mask_ways,
    validate_cbm,
)
from repro.cat.layout import LayoutResult, pack_contiguous
from repro.cat.pqos import PqosCapability, PqosL3Ca, PqosLibrary
from repro.cat.resctrl import (
    ResctrlError,
    ResctrlFilesystem,
    ResctrlGroup,
    format_cpu_list,
    parse_cpu_list,
)

__all__ = [
    "CacheAllocationTechnology",
    "CacheMonitoringTechnology",
    "CmtReading",
    "MAX_COS",
    "ClassOfService",
    "contiguous_mask",
    "is_contiguous",
    "mask_way_count",
    "mask_ways",
    "validate_cbm",
    "LayoutResult",
    "pack_contiguous",
    "PqosCapability",
    "PqosL3Ca",
    "PqosLibrary",
    "ResctrlError",
    "ResctrlFilesystem",
    "ResctrlGroup",
    "format_cpu_list",
    "parse_cpu_list",
]
