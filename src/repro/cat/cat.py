"""The CAT device model: COS table plus core-to-COS association.

This is the "hardware" side of cache allocation.  Controllers never touch it
directly — they go through :class:`repro.cat.pqos.PqosLibrary` or the
resctrl frontend, both of which program this device, mirroring how the real
dCat daemon drives MSR writes through the pqos library.

Observers (the platform simulator, an exact LLC model) subscribe to mask
changes so allocation updates take effect on the modeled cache immediately,
the way an IA32_L3_MASK_n write takes effect on real silicon.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cat.cos import MAX_COS, validate_cbm

__all__ = ["CacheAllocationTechnology"]

MaskListener = Callable[[int, int], None]  # (cos_id, new_mask)
AssocListener = Callable[[int, int], None]  # (core, cos_id)


class CacheAllocationTechnology:
    """CAT state for one L3 cache.

    Args:
        num_ways: LLC associativity (CBM width).
        num_cores: Cores on the socket (association table size).
        num_cos: Supported classes of service (16 on the paper's parts).
        min_cbm_bits: Minimum bits per CBM (1 on the paper's parts).
    """

    def __init__(
        self,
        num_ways: int,
        num_cores: int,
        num_cos: int = MAX_COS,
        min_cbm_bits: int = 1,
    ) -> None:
        if num_cos < 1 or num_cos > MAX_COS:
            raise ValueError(f"num_cos must be in [1, {MAX_COS}]")
        if num_ways < 1 or num_cores < 1:
            raise ValueError("need at least one way and one core")
        self.num_ways = num_ways
        self.num_cores = num_cores
        self.num_cos = num_cos
        self.min_cbm_bits = min_cbm_bits
        full = (1 << num_ways) - 1
        # Power-on state: every COS maps the full cache, every core in COS0.
        self._cos_masks: List[int] = [full] * num_cos
        self._core_cos: List[int] = [0] * num_cores
        self._mask_listeners: List[MaskListener] = []
        self._assoc_listeners: List[AssocListener] = []

    # -- observers ----------------------------------------------------------

    def on_mask_change(self, listener: MaskListener) -> None:
        """Subscribe to COS mask updates."""
        self._mask_listeners.append(listener)

    def on_assoc_change(self, listener: AssocListener) -> None:
        """Subscribe to core association updates."""
        self._assoc_listeners.append(listener)

    # -- programming ----------------------------------------------------------

    def set_cos_mask(self, cos_id: int, mask: int) -> None:
        """Program a COS capacity bitmask (validated against hardware rules)."""
        self._check_cos(cos_id)
        validate_cbm(mask, self.num_ways, self.min_cbm_bits)
        if self._cos_masks[cos_id] == mask:
            return
        self._cos_masks[cos_id] = mask
        for listener in self._mask_listeners:
            listener(cos_id, mask)

    def associate_core(self, core: int, cos_id: int) -> None:
        """Point a core's IA32_PQR_ASSOC at a COS."""
        self._check_core(core)
        self._check_cos(cos_id)
        if self._core_cos[core] == cos_id:
            return
        self._core_cos[core] = cos_id
        for listener in self._assoc_listeners:
            listener(core, cos_id)

    def reset(self) -> None:
        """Restore power-on state (all COS full-mask, all cores to COS0)."""
        full = (1 << self.num_ways) - 1
        for cos_id in range(self.num_cos):
            self.set_cos_mask(cos_id, full)
        for core in range(self.num_cores):
            self.associate_core(core, 0)

    # -- queries ----------------------------------------------------------------

    def cos_mask(self, cos_id: int) -> int:
        self._check_cos(cos_id)
        return self._cos_masks[cos_id]

    def core_cos(self, core: int) -> int:
        self._check_core(core)
        return self._core_cos[core]

    def effective_mask(self, core: int) -> int:
        """The way mask governing this core's LLC fills right now."""
        return self._cos_masks[self.core_cos(core)]

    def masks_overlap(self, cos_a: int, cos_b: int) -> bool:
        """True if two classes share any way (dCat avoids this by policy)."""
        return bool(self.cos_mask(cos_a) & self.cos_mask(cos_b))

    def snapshot(self) -> Dict[str, object]:
        """Debug/reporting snapshot of the full CAT state."""
        return {
            "cos_masks": list(self._cos_masks),
            "core_cos": list(self._core_cos),
        }

    # -- guards -----------------------------------------------------------------

    def _check_cos(self, cos_id: int) -> None:
        if not 0 <= cos_id < self.num_cos:
            raise ValueError(f"cos_id {cos_id} out of range [0, {self.num_cos})")

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range [0, {self.num_cores})")
