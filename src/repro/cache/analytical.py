"""Fast statistical LLC model used by the platform simulator.

The dCat controller never sees individual cache accesses — only per-interval
counter totals.  So the multi-tenant platform simulator does not need to walk
a tag array for every reference; it needs, per workload and interval, an
accurate *expected hit rate* given the workload's access pattern, working-set
size, page size, and current way allocation.  This module provides that as
closed-form math, derived from (and validated in the test suite against) the
exact :mod:`repro.cache.setassoc` model:

* ``RANDOM`` (MLR-style uniform pointer chasing): the scatter of lines over
  sets follows a binomial at page-group granularity; hit rate is
  ``E[min(k, ways)] / E[k]`` (see :mod:`repro.cache.conflict`).
* ``SEQUENTIAL`` (MLOAD-style cyclic streaming): under LRU a cyclic pattern
  either fits (every set's k <= ways -> ~100% hits after warm-up) or thrashes
  (0% reuse); per-set, hit mass comes only from non-conflicted sets.
* ``ZIPF`` (cloud-application style skewed reuse): the cache retains the
  hottest lines; hit rate is the popularity mass of the resident set, with
  conflict scatter discounting the *effective capacity* (conflicted sets
  waste slots, they do not destroy the head of the popularity curve).
* ``HOTCOLD`` (two-tier reuse): a fraction ``hot_fraction`` of references
  go to a ``hot_bytes`` hot set, the rest to the cold remainder — the
  piecewise-linear miss curve typical of servers with an index/hash core
  plus a long value tail (Redis, PostgreSQL, Elasticsearch).
* ``NONE`` (lookbusy): no LLC traffic at all.

All curves are memoized; the simulator asks for thousands of evaluations per
experiment and each unique configuration is computed once.
"""

from __future__ import annotations

import enum
import functools
import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from scipy import stats

from repro.mem.address import CacheGeometry
from repro.mem.paging import PAGE_4K

__all__ = ["AccessPattern", "Footprint", "AnalyticalCacheModel"]


class AccessPattern(enum.Enum):
    """Memory access pattern of a workload, as the cache model sees it."""

    RANDOM = "random"
    SEQUENTIAL = "sequential"
    ZIPF = "zipf"
    HOTCOLD = "hotcold"
    NONE = "none"


@dataclass(frozen=True)
class Footprint:
    """A workload phase's cache-relevant footprint.

    Attributes:
        pattern: Reuse structure.
        wss_bytes: Total working-set size.
        page_size: Backing page size (drives conflict scatter).
        zipf_s: Zipf exponent for ``ZIPF`` (None -> model default).
        hot_bytes: Hot-tier size for ``HOTCOLD``.
        hot_fraction: Fraction of references hitting the hot tier.
    """

    pattern: AccessPattern
    wss_bytes: int
    page_size: int = PAGE_4K
    zipf_s: float | None = None
    hot_bytes: int | None = None
    hot_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.pattern is AccessPattern.HOTCOLD:
            if not self.hot_bytes or self.hot_fraction is None:
                raise ValueError("HOTCOLD needs hot_bytes and hot_fraction")
            if not 0.0 < self.hot_fraction <= 1.0:
                raise ValueError("hot_fraction must be in (0, 1]")
            if self.hot_bytes > self.wss_bytes:
                raise ValueError("hot_bytes cannot exceed wss_bytes")


@functools.lru_cache(maxsize=4096)
def _scatter_min_expectation(
    n_full: int, p_full: float, p_rem: float, base: int, ways: int
) -> Tuple[float, float, float]:
    """Moments of the lines-per-set count k = base + Binom(n_full, p_full) + Bern(p_rem).

    A buffer of ``n_full`` whole pages plus a partial page scatters over the
    sets as follows: every whole page deposits a deterministic ``base`` share
    on all sets (pages larger than the set span blanket it) plus covers a
    ``p_full`` fraction of sets with one extra line; the partial page covers
    a ``p_rem`` fraction.  Treating page placements as independent, a set's
    line count is the sum above.

    Returns:
        ``(E[min(k, ways)], E[k * 1(k <= ways)], E[k])``.
    """
    if n_full <= 0 and p_rem <= 0.0 and base <= 0:
        return 0.0, 0.0, 0.0
    mean = n_full * max(p_full, 0.0)
    if n_full > 0 and p_full > 0.0:
        kmax = int(max(ways + 1, mean + 12 * math.sqrt(max(mean, 1.0)) + 12))
        kmax = min(kmax, n_full)
        ks = np.arange(0, kmax + 1)
        pmf = stats.binom(n_full, p_full).pmf(ks)
    else:
        ks = np.arange(0, 1)
        pmf = np.array([1.0])
    tail = max(0.0, 1.0 - float(pmf.sum()))
    # Convolve with the partial page's Bernoulli(p_rem).
    if p_rem > 0.0:
        ks_b = np.arange(0, ks[-1] + 2)
        pmf_b = np.zeros(ks_b.size)
        pmf_b[: pmf.size] += pmf * (1.0 - p_rem)
        pmf_b[1 : pmf.size + 1] += pmf * p_rem
        ks, pmf = ks_b, pmf_b
    counts = ks + base
    e_min = float((np.minimum(counts, ways) * pmf).sum()) + tail * ways
    e_fit = float((counts * (counts <= ways) * pmf).sum())
    e_k = base + mean + max(p_rem, 0.0)
    return e_min, e_fit, e_k


@dataclass(frozen=True)
class _CurveKey:
    pattern: AccessPattern
    wss_lines: int
    page_size: int
    zipf_s: float
    hot_lines: int = 0
    hot_fraction: float = 0.0


class AnalyticalCacheModel:
    """Expected-hit-rate oracle for one LLC geometry.

    Args:
        geometry: The LLC's geometry.
        zipf_s: Default Zipf skew for ``ZIPF`` workloads (0.99 is the YCSB
            default and a good fit for Redis/Postgres hot sets).
    """

    def __init__(self, geometry: CacheGeometry, zipf_s: float = 0.99) -> None:
        self.geometry = geometry
        self.zipf_s = zipf_s
        self._curves: Dict[_CurveKey, np.ndarray] = {}

    # -- public API -----------------------------------------------------------

    def _key_for(self, footprint: Footprint) -> _CurveKey:
        geo = self.geometry
        return _CurveKey(
            pattern=footprint.pattern,
            wss_lines=max(1, footprint.wss_bytes // geo.line_size),
            page_size=footprint.page_size,
            zipf_s=self.zipf_s if footprint.zipf_s is None else footprint.zipf_s,
            hot_lines=max(1, (footprint.hot_bytes or 0) // geo.line_size)
            if footprint.hot_bytes
            else 0,
            hot_fraction=footprint.hot_fraction or 0.0,
        )

    def hit_rate_fp(self, footprint: Footprint, ways: float) -> float:
        """Expected steady-state LLC hit rate under a CAT way allocation.

        ``ways`` may be fractional; the way curve is interpolated linearly.
        """
        if footprint.pattern is AccessPattern.NONE or footprint.wss_bytes <= 0:
            return 0.0
        curve = self.way_curve_fp(footprint)
        nways = self.geometry.num_ways
        w = float(np.clip(ways, 0.0, nways))
        # curve[i] is the hit rate with (i + 1) ways; 0 ways -> 0 hit rate.
        xs = np.arange(0, nways + 1, dtype=float)
        ys = np.concatenate([[0.0], curve])
        return float(np.interp(w, xs, ys))

    def way_curve_fp(self, footprint: Footprint) -> np.ndarray:
        """Hit rate for each allocation 1..num_ways (memoized)."""
        key = self._key_for(footprint)
        cached = self._curves.get(key)
        if cached is None:
            cached = self._compute_curve(key)
            self._curves[key] = cached
        return cached

    def capacity_hit_rate_fp(
        self, footprint: Footprint, capacity_ways: float
    ) -> float:
        """Hit rate for a *capacity* share of a fully shared cache.

        In an unpartitioned LLC a workload's occupancy is a capacity share,
        not a way-mask: its lines may sit in any of the cache's ways, so the
        associativity-conflict penalty of :meth:`hit_rate_fp` does not
        apply.  This is the model the shared-cache contention solver uses.
        """
        if footprint.pattern is AccessPattern.NONE or footprint.wss_bytes <= 0:
            return 0.0
        key = self._key_for(footprint)
        capacity_lines = max(0.0, capacity_ways) * self.geometry.num_sets
        return _resident_hit_rate(key, capacity_lines)

    # Legacy positional signatures, kept for the microbenchmark studies.

    def hit_rate(
        self,
        pattern: AccessPattern,
        wss_bytes: int,
        ways: float,
        page_size: int = PAGE_4K,
        zipf_s: float | None = None,
    ) -> float:
        """Positional convenience wrapper over :meth:`hit_rate_fp`."""
        return self.hit_rate_fp(
            Footprint(pattern, wss_bytes, page_size=page_size, zipf_s=zipf_s), ways
        )

    def way_curve(
        self,
        pattern: AccessPattern,
        wss_bytes: int,
        page_size: int = PAGE_4K,
        zipf_s: float | None = None,
    ) -> np.ndarray:
        """Positional convenience wrapper over :meth:`way_curve_fp`."""
        return self.way_curve_fp(
            Footprint(pattern, wss_bytes, page_size=page_size, zipf_s=zipf_s)
        )

    def capacity_hit_rate(
        self,
        pattern: AccessPattern,
        wss_bytes: int,
        capacity_ways: float,
        zipf_s: float | None = None,
    ) -> float:
        """Positional convenience wrapper over :meth:`capacity_hit_rate_fp`."""
        return self.capacity_hit_rate_fp(
            Footprint(pattern, wss_bytes, zipf_s=zipf_s), capacity_ways
        )

    def marginal_gain(
        self,
        pattern: AccessPattern,
        wss_bytes: int,
        ways: int,
        page_size: int = PAGE_4K,
    ) -> float:
        """Hit-rate improvement from one extra way (for diagnostics)."""
        curve = self.way_curve(pattern, wss_bytes, page_size)
        nways = self.geometry.num_ways
        if ways >= nways:
            return 0.0
        below = curve[ways - 1] if ways >= 1 else 0.0
        return float(curve[ways] - below)

    # -- curve construction -----------------------------------------------------

    def _compute_curve(self, key: _CurveKey) -> np.ndarray:
        geo = self.geometry
        nways = geo.num_ways
        ways_axis = np.arange(1, nways + 1)
        if key.pattern is AccessPattern.RANDOM:
            rates = [self._random_hit_rate(key, w) for w in ways_axis]
        elif key.pattern is AccessPattern.SEQUENTIAL:
            rates = [self._sequential_hit_rate(key, w) for w in ways_axis]
        elif key.pattern in (AccessPattern.ZIPF, AccessPattern.HOTCOLD):
            rates = [self._popularity_hit_rate(key, w) for w in ways_axis]
        else:
            rates = [0.0] * nways
        curve = np.clip(np.array(rates, dtype=float), 0.0, 1.0)
        # Hit rate must be non-decreasing in allocation; enforce monotonicity
        # against tiny numerical wobbles.
        return np.maximum.accumulate(curve)

    def _scatter_expectations(self, key: _CurveKey, ways: int) -> Tuple[float, float, float]:
        """(E[min(k, ways)], E[k*1(k<=ways)], E[k]) for the buffer's scatter."""
        geo = self.geometry
        lines_per_page = key.page_size // geo.line_size
        n_full, rem_lines = divmod(key.wss_lines, lines_per_page)
        # Each whole page blankets every set `base_full` times and covers a
        # further `p_full` fraction of sets once; similarly for the partial
        # page's remainder lines.
        base_full, extra_full = divmod(lines_per_page, geo.num_sets)
        base_rem, extra_rem = divmod(rem_lines, geo.num_sets)
        base = n_full * base_full + base_rem
        p_full = round(extra_full / geo.num_sets, 9)
        p_rem = round(extra_rem / geo.num_sets, 9)
        return _scatter_min_expectation(n_full, p_full, p_rem, base, ways)

    def _random_hit_rate(self, key: _CurveKey, ways: int) -> float:
        e_min, _, e_k = self._scatter_expectations(key, ways)
        if e_k <= 0:
            return 0.0
        return min(1.0, e_min / e_k)

    def _sequential_hit_rate(self, key: _CurveKey, ways: int) -> float:
        # Cyclic LRU: only sets whose line count fits contribute hits.
        _, e_fit, e_k = self._scatter_expectations(key, ways)
        if e_k <= 0:
            return 0.0
        return min(1.0, e_fit / e_k)

    def _popularity_hit_rate(self, key: _CurveKey, ways: int) -> float:
        """ZIPF / HOTCOLD hit rate under a way mask.

        The allocation's nominal capacity is discounted by the conflict
        scatter efficiency (a conflicted set wastes slots, so the cache
        effectively retains fewer of the hottest lines), then the
        popularity curve converts effective resident lines into hit rate.
        """
        capacity = ways * self.geometry.num_sets
        # Scatter efficiency of a buffer the size of the allocation itself.
        eff_key = _CurveKey(
            pattern=AccessPattern.RANDOM,
            wss_lines=max(1, int(min(capacity, key.wss_lines))),
            page_size=key.page_size,
            zipf_s=key.zipf_s,
        )
        efficiency = self._random_hit_rate(eff_key, ways)
        return _resident_hit_rate(key, capacity * efficiency)


def _resident_hit_rate(key: _CurveKey, capacity_lines: float) -> float:
    """Hit rate when the cache effectively retains ``capacity_lines`` lines.

    Shared-capacity form of every reuse pattern: RANDOM is linear, ZIPF is
    the popularity mass of the hottest resident lines, HOTCOLD is the
    piecewise-linear two-tier curve, SEQUENTIAL fits-or-thrashes.
    """
    n = key.wss_lines
    if n <= 0 or capacity_lines <= 0:
        return 0.0
    if key.pattern is AccessPattern.RANDOM:
        return min(1.0, capacity_lines / n)
    if key.pattern is AccessPattern.SEQUENTIAL:
        return 1.0 if n <= 0.95 * capacity_lines else 0.0
    if key.pattern is AccessPattern.HOTCOLD:
        hot = max(1, key.hot_lines)
        p = key.hot_fraction
        if capacity_lines >= n:
            return 1.0
        if capacity_lines <= hot:
            # LRU keeps hot lines preferentially: the resident share is hot.
            return p * capacity_lines / hot
        cold = max(1, n - hot)
        return p + (1.0 - p) * (capacity_lines - hot) / cold
    # ZIPF: popularity mass of the hottest resident lines.
    resident = max(1, min(int(capacity_lines), n))
    return _harmonic(resident, key.zipf_s) / _harmonic(n, key.zipf_s)


@functools.lru_cache(maxsize=8192)
def _harmonic(n: int, s: float) -> float:
    """Generalized harmonic number H(n, s), with an integral approximation.

    Exact summation below a cutoff; Euler–Maclaurin style integral tail above
    it (the workloads here have millions of lines, so a naive sum would
    dominate runtime).
    """
    if n <= 0:
        return 0.0
    cutoff = 100_000
    if n <= cutoff:
        ks = np.arange(1, n + 1, dtype=float)
        return float((ks ** -s).sum())
    head = _harmonic(cutoff, s)
    if abs(s - 1.0) < 1e-12:
        tail = math.log(n / cutoff)
    else:
        tail = (n ** (1 - s) - cutoff ** (1 - s)) / (1 - s)
    return head + tail
