"""Cache substrate: exact and analytical LLC models, conflicts, contention."""

from repro.cache.analytical import AccessPattern, AnalyticalCacheModel
from repro.cache.contention import (
    CacheDemand,
    ContentionShare,
    SharedCacheContentionModel,
)
from repro.cache.conflict import (
    ScatterSummary,
    analyze_buffer_scatter,
    conflicted_set_fraction,
    lines_per_set,
    set_occupancy_histogram,
    uniform_irm_hit_rate,
)
from repro.cache.hierarchy import CacheHierarchy, HierarchyStats, HitLevel
from repro.cache.replacement import (
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePlruPolicy,
    make_policy,
)
from repro.cache.setassoc import AccessResult, CacheStats, SetAssociativeCache

__all__ = [
    "AccessPattern",
    "AnalyticalCacheModel",
    "CacheDemand",
    "ContentionShare",
    "SharedCacheContentionModel",
    "ScatterSummary",
    "analyze_buffer_scatter",
    "conflicted_set_fraction",
    "lines_per_set",
    "set_occupancy_histogram",
    "uniform_irm_hit_rate",
    "CacheHierarchy",
    "HierarchyStats",
    "HitLevel",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "TreePlruPolicy",
    "make_policy",
    "AccessResult",
    "CacheStats",
    "SetAssociativeCache",
]
