"""Che's approximation: an alternative shared-LLC contention model.

The default contention model (:mod:`repro.cache.contention`) divides
capacity in proportion to *insertion rates* — the classic streaming-wins
behaviour the dCat paper measures on real Broadwell parts.  The cache
literature's other canonical model is **Che's approximation** (Che, Tung &
Wang, 2002): a shared LRU cache has one *characteristic time* ``T`` such
that a line survives iff it is re-referenced within ``T``; ``T`` solves

    sum_i  expected_resident_lines_i(T)  =  capacity.

Under Che, a small hot working set whose lines are re-touched every few
microseconds is immune to streaming pressure — *more* protective of victims
than the insertion model.  Real inclusive LLCs sit between the two (hot
lines resist eviction, but inclusive back-invalidation and non-ideal
replacement still bleed them), and the dCat paper's Figure 1 — a 6 MB
random working set visibly trashed by two streams — lands closer to the
insertion model, which is why that one is the default.  This module exists
so the choice is explicit and testable; the ablation bench
(``benchmarks/test_ablation_contention.py``) contrasts the two on the
paper's Figure 1 scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cache.analytical import AccessPattern, AnalyticalCacheModel
from repro.cache.contention import CacheDemand, ContentionShare

__all__ = ["CheContentionModel"]


def _residency(demand: CacheDemand, t: float, line_size: int) -> float:
    """Expected resident lines of one demand at characteristic time ``t``.

    Per-line reference processes are modeled as Poisson with the demand's
    per-line touch rate; a line is resident iff touched within ``t``
    (probability ``1 - exp(-rate * t)``).
    """
    fp = demand.footprint
    n = max(1, fp.wss_bytes // line_size)
    r = demand.ref_rate
    if r <= 0 or fp.pattern is AccessPattern.NONE:
        return 0.0
    if fp.pattern is AccessPattern.RANDOM:
        lam = r / n
        return n * -math.expm1(-lam * t)
    if fp.pattern is AccessPattern.SEQUENTIAL:
        # A cyclic sweep touches each line exactly once per n/r; lines
        # younger than t are resident.
        return min(float(n), r * t)
    if fp.pattern is AccessPattern.HOTCOLD:
        hot = max(1, (fp.hot_bytes or 0) // line_size)
        p = fp.hot_fraction or 0.0
        cold = max(1, n - hot)
        lam_hot = p * r / hot
        lam_cold = (1.0 - p) * r / cold
        return hot * -math.expm1(-lam_hot * t) + cold * -math.expm1(
            -lam_cold * t
        )
    # ZIPF: integrate over geometric rank buckets.
    s = fp.zipf_s if fp.zipf_s is not None else 0.99
    bounds = np.unique(np.geomspace(1, n + 1, num=129).astype(np.int64))
    ranks = (bounds[:-1] + bounds[1:] - 1) / 2.0
    widths = (bounds[1:] - bounds[:-1]).astype(float)
    weights = ranks ** -s
    total_weight = float((widths * weights).sum())
    lam = r * weights / total_weight
    return float((widths * -np.expm1(-lam * t)).sum())


def _hit_rate(demand: CacheDemand, t: float, line_size: int) -> float:
    """Hit probability of one access at characteristic time ``t``.

    Under the independent-reference model this is the reference-weighted
    residency probability.
    """
    fp = demand.footprint
    n = max(1, fp.wss_bytes // line_size)
    r = demand.ref_rate
    if r <= 0 or fp.pattern is AccessPattern.NONE:
        return 0.0
    if fp.pattern is AccessPattern.RANDOM:
        return -math.expm1(-(r / n) * t)
    if fp.pattern is AccessPattern.SEQUENTIAL:
        # Re-touch interval is exactly n/r: all hits or all misses.
        return 1.0 if t >= n / r else 0.0
    if fp.pattern is AccessPattern.HOTCOLD:
        hot = max(1, (fp.hot_bytes or 0) // line_size)
        p = fp.hot_fraction or 0.0
        cold = max(1, n - hot)
        return p * -math.expm1(-(p * r / hot) * t) + (1 - p) * -math.expm1(
            -((1 - p) * r / cold) * t
        )
    s = fp.zipf_s if fp.zipf_s is not None else 0.99
    bounds = np.unique(np.geomspace(1, n + 1, num=129).astype(np.int64))
    ranks = (bounds[:-1] + bounds[1:] - 1) / 2.0
    widths = (bounds[1:] - bounds[:-1]).astype(float)
    weights = ranks ** -s
    total_weight = float((widths * weights).sum())
    probs = widths * weights / total_weight  # reference mass per bucket
    lam = r * weights / total_weight
    return float((probs * -np.expm1(-lam * t)).sum())


@dataclass
class CheContentionModel:
    """Characteristic-time solver for a fully shared LRU cache.

    Drop-in alternative to
    :class:`~repro.cache.contention.SharedCacheContentionModel` (same
    ``solve`` signature and result type).

    Attributes:
        model: Analytical model (borrowed for its geometry).
        time_scale: Multiplier on the solved characteristic time — below
            1.0 emulates the less-than-ideal retention of real inclusive
            LLCs (back-invalidation, non-LRU replacement).
    """

    model: AnalyticalCacheModel
    time_scale: float = 1.0

    def solve(self, demands: Sequence[CacheDemand]) -> List[ContentionShare]:
        geo = self.model.geometry
        line_size = geo.line_size
        capacity = float(geo.num_sets * geo.num_ways)
        active = list(demands)
        if not active:
            return []

        def occupancy(t: float) -> float:
            return sum(_residency(d, t, line_size) for d in active)

        # Bisection on T: occupancy is monotone increasing in T.
        lo, hi = 0.0, 1.0
        while occupancy(hi) < capacity and hi < 1e18:
            hi *= 4.0
        if occupancy(hi) < capacity:
            # The demands cannot fill the cache: everything resident.
            t = hi
        else:
            for _ in range(80):
                mid = (lo + hi) / 2.0
                if occupancy(mid) < capacity:
                    lo = mid
                else:
                    hi = mid
            t = (lo + hi) / 2.0
        t *= self.time_scale

        shares: List[ContentionShare] = []
        for d in active:
            resident = _residency(d, t, line_size)
            shares.append(
                ContentionShare(
                    demand=d,
                    effective_ways=resident / max(1, geo.num_sets),
                    hit_rate=_hit_rate(d, t, line_size),
                )
            )
        return shares
