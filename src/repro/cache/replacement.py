"""Replacement policies for the set-associative cache model.

Policies are deliberately CAT-aware: Intel CAT restricts which ways a core
may *fill into*, so victim selection must be constrained to an allowed-way
bitmask.  A policy therefore answers one question — "given this set and this
allowed mask, which way do I evict?" — and receives touch notifications to
maintain recency state.

All per-set state is stored in flat numpy arrays sized ``num_sets x
num_ways`` so a cache with tens of thousands of sets stays cheap to build.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "TreePlruPolicy",
    "RandomPolicy",
    "make_policy",
]


def _mask_ways(mask: int, num_ways: int) -> np.ndarray:
    """Return the way indices enabled in ``mask`` as an int array."""
    ways = np.nonzero([(mask >> w) & 1 for w in range(num_ways)])[0]
    if ways.size == 0:
        raise ValueError("allowed-way mask must enable at least one way")
    return ways


class ReplacementPolicy(abc.ABC):
    """Abstract victim-selection policy over a fixed geometry."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets < 1 or num_ways < 1:
            raise ValueError("geometry must have at least one set and one way")
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abc.abstractmethod
    def touch(self, set_index: int, way: int) -> None:
        """Record a hit (or fill) of ``way`` in ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int, allowed_mask: int) -> int:
        """Pick the way to evict in ``set_index`` among ``allowed_mask`` ways."""

    def reset(self) -> None:
        """Forget all recency state (used when ways are flushed)."""


class LruPolicy(ReplacementPolicy):
    """True least-recently-used via per-way timestamps.

    A global monotonically increasing counter stamps every touch; the victim
    is the allowed way with the smallest stamp.  Exact LRU is what the
    analytical model assumes, so the exact simulator defaults to it.
    """

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._stamps = np.zeros((num_sets, num_ways), dtype=np.int64)
        self._clock = 0

    def touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index, way] = self._clock

    def victim(self, set_index: int, allowed_mask: int) -> int:
        ways = _mask_ways(allowed_mask, self.num_ways)
        stamps = self._stamps[set_index, ways]
        return int(ways[int(np.argmin(stamps))])

    def reset(self) -> None:
        self._stamps.fill(0)
        self._clock = 0


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the policy real Intel LLC slices approximate.

    Maintains a binary decision tree of ``num_ways - 1`` bits per set
    (rounded up to the next power-of-two way count).  Victim selection walks
    the tree away from recent accesses; when the tree's choice is not in the
    allowed mask, we fall back to the least-recently *touched* allowed way
    using coarse 8-bit age counters, which is close to how hardware handles
    CAT-masked fills.
    """

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._tree_ways = 1
        while self._tree_ways < num_ways:
            self._tree_ways *= 2
        self._bits = np.zeros((num_sets, max(self._tree_ways - 1, 1)), dtype=np.uint8)
        self._ages = np.zeros((num_sets, num_ways), dtype=np.uint8)

    def touch(self, set_index: int, way: int) -> None:
        # Walk root->leaf, pointing each node away from this way.
        node = 0
        lo, hi = 0, self._tree_ways
        bits = self._bits[set_index]
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits[node] = 1  # point away: next victim search goes right
                node = 2 * node + 1
                hi = mid
            else:
                bits[node] = 0
                node = 2 * node + 2
                lo = mid
        ages = self._ages[set_index]
        ages[ages > 0] -= 1
        ages[way] = 255

    def victim(self, set_index: int, allowed_mask: int) -> int:
        bits = self._bits[set_index]
        node = 0
        lo, hi = 0, self._tree_ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bits[node]:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        choice = lo
        if choice < self.num_ways and (allowed_mask >> choice) & 1:
            return choice
        ways = _mask_ways(allowed_mask, self.num_ways)
        ages = self._ages[set_index, ways]
        return int(ways[int(np.argmin(ages))])

    def reset(self) -> None:
        self._bits.fill(0)
        self._ages.fill(0)


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim among allowed ways (baseline for ablations)."""

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_sets, num_ways)
        self._rng = rng if rng is not None else np.random.default_rng(7)

    def touch(self, set_index: int, way: int) -> None:  # noqa: D102 - stateless
        pass

    def victim(self, set_index: int, allowed_mask: int) -> int:
        ways = _mask_ways(allowed_mask, self.num_ways)
        return int(self._rng.choice(ways))


def make_policy(
    name: str,
    num_sets: int,
    num_ways: int,
    rng: Optional[np.random.Generator] = None,
) -> ReplacementPolicy:
    """Factory for replacement policies by name (``lru``/``plru``/``random``)."""
    if name == "lru":
        return LruPolicy(num_sets, num_ways)
    if name == "plru":
        return TreePlruPolicy(num_sets, num_ways)
    if name == "random":
        return RandomPolicy(num_sets, num_ways, rng=rng)
    raise ValueError(f"unknown replacement policy {name!r}")
