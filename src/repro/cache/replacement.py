"""Replacement policies for the set-associative cache model.

Policies are deliberately CAT-aware: Intel CAT restricts which ways a core
may *fill into*, so victim selection must be constrained to an allowed-way
bitmask.  A policy therefore answers one question — "given this set and this
allowed mask, which way do I evict?" — and receives touch notifications to
maintain recency state.

All per-set state is stored in flat numpy arrays sized ``num_sets x
num_ways`` so a cache with tens of thousands of sets stays cheap to build.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "TreePlruPolicy",
    "RandomPolicy",
    "make_policy",
]


def _mask_ways(mask: int, num_ways: int) -> np.ndarray:
    """Return the way indices enabled in ``mask`` as an int array."""
    ways = np.nonzero([(mask >> w) & 1 for w in range(num_ways)])[0]
    if ways.size == 0:
        raise ValueError("allowed-way mask must enable at least one way")
    return ways


class ReplacementPolicy(abc.ABC):
    """Abstract victim-selection policy over a fixed geometry.

    Beyond the scalar ``touch``/``victim`` pair, policies expose a *batch
    contract* used by :meth:`SetAssociativeCache.access_many`:

    * :meth:`invalidate` — a line was dropped (flush or back-invalidation);
      forget its recency so a refilled set evicts in the right order.
    * :meth:`touch_many` — bulk equivalent of a ``touch`` loop.
    * The *run protocol* (``batch_begin`` / ``run_begin`` / ``run_touch`` /
      ``run_victim`` / ``run_end`` / ``batch_end``): the cache opens one run
      per set it visits in a batch, feeds touches and victim requests through
      run-local state, and the policy writes its arrays back once per set
      instead of once per access.  ``order`` is the access's position in the
      batch, so order-stamped state (LRU) stays bit-identical to the scalar
      path.  The default implementations delegate to the scalar methods in
      temporal order, which is correct for any policy; LRU and PLRU override
      them with list-based run state updated in bulk.
    * ``supports_bulk_touch`` — True when ``touch_many_at`` applied *after* a
      batch reproduces the scalar state for hit-only sets; the cache then
      skips run state entirely for sets whose whole batch slice hits.
    """

    #: Whether hit-only touches may be deferred and applied in bulk at batch
    #: end (True for order-stamped LRU and stateless-touch policies).
    supports_bulk_touch = False

    #: Whether the run state is a plain per-way stamp list (larger = more
    #: recent) whose touch semantics are ``ctx[way] = run_stamp_base + order
    #: + 1`` and whose victim is the minimum-stamp allowed way.  The batch
    #: pipeline inlines both operations for such policies instead of paying
    #: a Python call per access; ``run_stamp_base`` is published by
    #: :meth:`batch_begin`.
    stamp_run_state = False
    run_stamp_base = 0

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets < 1 or num_ways < 1:
            raise ValueError("geometry must have at least one set and one way")
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abc.abstractmethod
    def touch(self, set_index: int, way: int) -> None:
        """Record a hit (or fill) of ``way`` in ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int, allowed_mask: int) -> int:
        """Pick the way to evict in ``set_index`` among ``allowed_mask`` ways."""

    def reset(self) -> None:
        """Forget all recency state (used when ways are flushed)."""

    # -- batch contract ------------------------------------------------------

    def invalidate(self, set_index: int, way: int) -> None:
        """Forget the recency of one dropped line (flush / back-invalidate)."""

    def touch_many(self, set_indices, ways) -> None:
        """Bulk touch, equivalent to a scalar ``touch`` loop in order."""
        for s, w in zip(set_indices, ways):
            self.touch(int(s), int(w))

    def touch_many_at(self, set_indices, ways, orders) -> None:
        """Bulk touch with explicit batch positions (``orders`` ascending).

        Called by the batch pipeline for hit-only sets when
        ``supports_bulk_touch`` is set; inputs arrive in temporal order, so
        the default loop is exact for order-insensitive policies.
        """
        self.touch_many(set_indices, ways)

    def batch_begin(self, count: int) -> None:
        """A batch of ``count`` accesses is starting."""

    def batch_end(self, count: int) -> None:
        """The batch announced by :meth:`batch_begin` is complete."""

    def run_begin(self, set_index: int) -> object:
        """Open run-local state for one set of the current batch."""
        return set_index

    def run_touch(self, ctx: object, way: int, order: int) -> None:
        """Record a touch through run state (``order`` = batch position)."""
        self.touch(ctx, way)  # default ctx is the set index

    def run_victim(self, ctx: object, allowed_ways, allowed_mask: int) -> int:
        """Pick a victim through run state (``allowed_ways`` ascending)."""
        return self.victim(ctx, allowed_mask)

    def run_end(self, set_index: int, ctx: object) -> None:
        """Write run-local state back to the policy arrays."""


class LruPolicy(ReplacementPolicy):
    """True least-recently-used via per-way timestamps.

    A global monotonically increasing counter stamps every touch; the victim
    is the allowed way with the smallest stamp.  Exact LRU is what the
    analytical model assumes, so the exact simulator defaults to it.
    """

    supports_bulk_touch = True
    stamp_run_state = True

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._stamps = np.zeros((num_sets, num_ways), dtype=np.int64)
        self._clock = 0
        self._batch_base = 0

    def touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index, way] = self._clock

    def victim(self, set_index: int, allowed_mask: int) -> int:
        ways = _mask_ways(allowed_mask, self.num_ways)
        stamps = self._stamps[set_index, ways]
        return int(ways[int(np.argmin(stamps))])

    def reset(self) -> None:
        self._stamps.fill(0)
        self._clock = 0

    # -- batch contract ------------------------------------------------------

    def invalidate(self, set_index: int, way: int) -> None:
        self._stamps[set_index, way] = 0

    def touch_many(self, set_indices, ways) -> None:
        sets = np.asarray(set_indices, dtype=np.int64)
        if sets.size == 0:
            return
        stamps = self._clock + 1 + np.arange(sets.size, dtype=np.int64)
        # Duplicate (set, way) pairs: the scalar loop's last touch wins, and
        # stamps strictly increase, so an unbuffered max reproduces it.
        np.maximum.at(
            self._stamps, (sets, np.asarray(ways, dtype=np.int64)), stamps
        )
        self._clock += int(sets.size)

    def touch_many_at(self, set_indices, ways, orders) -> None:
        sets = np.asarray(set_indices, dtype=np.int64)
        if sets.size == 0:
            return
        stamps = self._batch_base + 1 + np.asarray(orders, dtype=np.int64)
        np.maximum.at(
            self._stamps, (sets, np.asarray(ways, dtype=np.int64)), stamps
        )

    def batch_begin(self, count: int) -> None:
        self._batch_base = self._clock
        self.run_stamp_base = self._clock

    def batch_end(self, count: int) -> None:
        # One touch per access in both paths: the scalar loop would have
        # advanced the clock exactly ``count`` times.
        self._clock += count

    def run_begin(self, set_index: int):
        return self._stamps[set_index].tolist()

    def run_touch(self, ctx, way: int, order: int) -> None:
        ctx[way] = self._batch_base + order + 1

    def run_victim(self, ctx, allowed_ways, allowed_mask: int) -> int:
        return min(allowed_ways, key=ctx.__getitem__)

    def run_end(self, set_index: int, ctx) -> None:
        self._stamps[set_index] = ctx


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the policy real Intel LLC slices approximate.

    Maintains a binary decision tree of ``num_ways - 1`` bits per set
    (rounded up to the next power-of-two way count).  Victim selection walks
    the tree away from recent accesses; when the tree's choice is not in the
    allowed mask, we fall back to the least-recently *touched* allowed way
    using coarse 8-bit age counters, which is close to how hardware handles
    CAT-masked fills.
    """

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._tree_ways = 1
        while self._tree_ways < num_ways:
            self._tree_ways *= 2
        self._bits = np.zeros((num_sets, max(self._tree_ways - 1, 1)), dtype=np.uint8)
        self._ages = np.zeros((num_sets, num_ways), dtype=np.uint8)

    def touch(self, set_index: int, way: int) -> None:
        # Walk root->leaf, pointing each node away from this way.
        node = 0
        lo, hi = 0, self._tree_ways
        bits = self._bits[set_index]
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits[node] = 1  # point away: next victim search goes right
                node = 2 * node + 1
                hi = mid
            else:
                bits[node] = 0
                node = 2 * node + 2
                lo = mid
        ages = self._ages[set_index]
        ages[ages > 0] -= 1
        ages[way] = 255

    def victim(self, set_index: int, allowed_mask: int) -> int:
        bits = self._bits[set_index]
        node = 0
        lo, hi = 0, self._tree_ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bits[node]:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        choice = lo
        if choice < self.num_ways and (allowed_mask >> choice) & 1:
            return choice
        ways = _mask_ways(allowed_mask, self.num_ways)
        ages = self._ages[set_index, ways]
        return int(ways[int(np.argmin(ages))])

    def reset(self) -> None:
        self._bits.fill(0)
        self._ages.fill(0)

    # -- batch contract ------------------------------------------------------

    def invalidate(self, set_index: int, way: int) -> None:
        # Tree bits stay (hardware keeps them); the age makes the way oldest.
        self._ages[set_index, way] = 0

    def run_begin(self, set_index: int):
        return (self._bits[set_index].tolist(), self._ages[set_index].tolist())

    def run_touch(self, ctx, way: int, order: int) -> None:
        bits, ages = ctx
        node = 0
        lo, hi = 0, self._tree_ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits[node] = 1
                node = 2 * node + 1
                hi = mid
            else:
                bits[node] = 0
                node = 2 * node + 2
                lo = mid
        for i, age in enumerate(ages):
            if age:
                ages[i] = age - 1
        ages[way] = 255

    def run_victim(self, ctx, allowed_ways, allowed_mask: int) -> int:
        bits, ages = ctx
        node = 0
        lo, hi = 0, self._tree_ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bits[node]:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        choice = lo
        if choice < self.num_ways and (allowed_mask >> choice) & 1:
            return choice
        return min(allowed_ways, key=ages.__getitem__)

    def run_end(self, set_index: int, ctx) -> None:
        bits, ages = ctx
        self._bits[set_index] = bits
        self._ages[set_index] = ages


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim among allowed ways (baseline for ablations).

    Batch note: touches are stateless, so bulk touch is a no-op, while
    victims keep going through the scalar :meth:`victim` (the default run
    protocol) so the RNG is consumed in exactly the scalar path's order.
    """

    supports_bulk_touch = True

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_sets, num_ways)
        self._rng = rng if rng is not None else np.random.default_rng(7)

    def touch(self, set_index: int, way: int) -> None:  # noqa: D102 - stateless
        pass

    def touch_many(self, set_indices, ways) -> None:  # noqa: D102 - stateless
        pass

    def touch_many_at(self, set_indices, ways, orders) -> None:  # noqa: D102
        pass

    def victim(self, set_index: int, allowed_mask: int) -> int:
        ways = _mask_ways(allowed_mask, self.num_ways)
        return int(self._rng.choice(ways))


def make_policy(
    name: str,
    num_sets: int,
    num_ways: int,
    rng: Optional[np.random.Generator] = None,
) -> ReplacementPolicy:
    """Factory for replacement policies by name (``lru``/``plru``/``random``)."""
    if name == "lru":
        return LruPolicy(num_sets, num_ways)
    if name == "plru":
        return TreePlruPolicy(num_sets, num_ways)
    if name == "random":
        return RandomPolicy(num_sets, num_ways, rng=rng)
    raise ValueError(f"unknown replacement policy {name!r}")
