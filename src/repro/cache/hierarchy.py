"""Inclusive L1/L2/LLC cache hierarchy built from exact cache models.

Intel's pre-Skylake server parts (both paper machines are Broadwell) use an
*inclusive* LLC: every line resident in an inner cache is also resident in
the LLC, and evicting a line from the LLC back-invalidates it from all inner
caches.  That inclusivity is what makes LLC interference so painful — a noisy
neighbor evicting your LLC lines also rips them out of your private L1/L2 —
and is why the paper's Figure 1 victim slows down even though its hot data
"should" fit in private caches.

The hierarchy here wires per-core private L1s (and optional L2s) over one
shared :class:`SetAssociativeCache` LLC, with the LLC's eviction callback
performing the back-invalidation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.mem.address import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache

__all__ = ["HitLevel", "HierarchyStats", "CacheHierarchy"]


class HitLevel(enum.Enum):
    """Cache level that served an access."""

    L1 = "l1"
    L2 = "l2"
    LLC = "llc"
    DRAM = "dram"


@dataclass
class HierarchyStats:
    """Per-core counters in the shape the perf-event substrate exposes."""

    l1_refs: int = 0
    l1_misses: int = 0
    llc_refs: int = 0
    llc_misses: int = 0

    def reset(self) -> None:
        self.l1_refs = 0
        self.l1_misses = 0
        self.llc_refs = 0
        self.llc_misses = 0


class CacheHierarchy:
    """Multi-core inclusive hierarchy with a CAT-partitionable LLC.

    Args:
        num_cores: Number of cores (each gets a private L1, optional L2).
        llc_geometry: Shared LLC geometry.
        l1_geometry: Private L1 geometry (defaults to 32 KB 8-way).
        l2_geometry: Optional private L2 geometry; None disables L2.
    """

    def __init__(
        self,
        num_cores: int,
        llc_geometry: CacheGeometry,
        l1_geometry: Optional[CacheGeometry] = None,
        l2_geometry: Optional[CacheGeometry] = None,
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        if l1_geometry is None:
            l1_geometry = CacheGeometry(line_size=llc_geometry.line_size, num_sets=64, num_ways=8)
        if l1_geometry.line_size != llc_geometry.line_size or (
            l2_geometry is not None and l2_geometry.line_size != llc_geometry.line_size
        ):
            raise ValueError("all levels must share one line size")
        self.num_cores = num_cores
        self.llc = SetAssociativeCache(
            llc_geometry, eviction_callback=self._back_invalidate
        )
        self.l1s: List[SetAssociativeCache] = [
            SetAssociativeCache(l1_geometry) for _ in range(num_cores)
        ]
        self.l2s: Optional[List[SetAssociativeCache]] = (
            [SetAssociativeCache(l2_geometry) for _ in range(num_cores)]
            if l2_geometry is not None
            else None
        )
        self.stats: List[HierarchyStats] = [HierarchyStats() for _ in range(num_cores)]
        self._masks: Dict[int, int] = {
            core: self.llc.full_mask for core in range(num_cores)
        }

    # -- CAT control -----------------------------------------------------------

    def set_way_mask(self, core: int, mask: int) -> None:
        """Restrict which LLC ways ``core`` may fill into."""
        self.llc.validate_mask(mask)
        self._masks[core] = mask

    def way_mask(self, core: int) -> int:
        return self._masks[core]

    # -- access path -----------------------------------------------------------

    def access(self, core: int, paddr: int) -> HitLevel:
        """One memory reference by ``core``; returns the serving level.

        Maintains inclusivity: a fill at any inner level implies an LLC
        access (and fill on LLC miss), and LLC evictions back-invalidate.
        """
        stats = self.stats[core]
        stats.l1_refs += 1
        l1 = self.l1s[core]
        if l1.access(paddr).hit:
            return HitLevel.L1
        stats.l1_misses += 1

        if self.l2s is not None:
            l2_hit = self.l2s[core].access(paddr).hit
        else:
            l2_hit = False
        if l2_hit:
            # Inclusive: a real L2 hit does not reach the LLC pipeline, but
            # the line is guaranteed resident there already.
            return HitLevel.L2

        stats.llc_refs += 1
        result = self.llc.access(paddr, mask=self._masks[core], cos=core)
        if result.hit:
            return HitLevel.LLC
        stats.llc_misses += 1
        return HitLevel.DRAM

    def access_many(self, core: int, paddrs) -> Dict[HitLevel, int]:
        """Batched memory references by ``core``; returns counts per level.

        Level-batched: the whole batch runs through the L1, its misses run
        through the L2, and the remainder through the LLC (under ``core``'s
        way mask), each level using the exact batch pipeline.  Each level's
        verdicts are bit-exact against a scalar loop over that level; the
        only divergence from :meth:`access` is that LLC back-invalidations
        apply after the batch instead of interleaved with it, so an inner
        hit late in the batch may be served by a line the scalar path would
        already have ripped out.  Inclusivity still holds at every batch
        boundary because the deferred back-invalidations are applied last.
        Use :meth:`access` when exact interleaving matters.
        """
        paddrs = np.asarray(paddrs)
        n = int(paddrs.size)
        counts = {level: 0 for level in HitLevel}
        if n == 0:
            return counts
        stats = self.stats[core]
        stats.l1_refs += n
        l1_flags = self.l1s[core].access_many_flags(paddrs)
        miss1 = paddrs[~l1_flags]
        counts[HitLevel.L1] = n - int(miss1.size)
        stats.l1_misses += int(miss1.size)
        if self.l2s is not None:
            l2_flags = self.l2s[core].access_many_flags(miss1)
            miss2 = miss1[~l2_flags]
            counts[HitLevel.L2] = int(miss1.size) - int(miss2.size)
        else:
            miss2 = miss1
        stats.llc_refs += int(miss2.size)
        llc_flags = self.llc.access_many_flags(
            miss2, mask=self._masks[core], cos=core
        )
        llc_hits = int(np.count_nonzero(llc_flags))
        counts[HitLevel.LLC] = llc_hits
        counts[HitLevel.DRAM] = int(miss2.size) - llc_hits
        stats.llc_misses += counts[HitLevel.DRAM]
        return counts

    # -- inclusivity -------------------------------------------------------------

    def _back_invalidate(self, line_id: int) -> None:
        """Drop an LLC-evicted line from every inner cache (inclusive LLC).

        Goes through :meth:`SetAssociativeCache.invalidate_line` so the
        inner caches' owner tracking and replacement recency are cleared
        too, not just the tag — a back-invalidated way must become the
        set's next victim, not keep its stale recency.
        """
        geo = self.llc.geometry
        paddr = line_id << geo.offset_bits
        for cache_list in ([self.l1s] if self.l2s is None else [self.l1s, self.l2s]):
            for inner in cache_list:
                inner.invalidate_line(paddr)

    def check_inclusive(self, sample_paddrs) -> bool:
        """True if every sampled inner-resident line is also LLC-resident."""
        for paddr in sample_paddrs:
            line_id = paddr >> self.llc.geometry.offset_bits
            inner_resident = any(l1.lookup(paddr) is not None for l1 in self.l1s)
            if self.l2s is not None:
                inner_resident = inner_resident or any(
                    l2.lookup(paddr) is not None for l2 in self.l2s
                )
            if inner_resident and not self.llc.contains_line(line_id):
                return False
        return True
