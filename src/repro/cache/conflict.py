"""Conflict-miss analysis: how buffer lines scatter across cache sets.

Paper Figures 2 and 3 show that a CAT allocation sized exactly to a working
set still misses, because virtual-to-physical mapping scatters the buffer's
lines unevenly over cache sets: some sets receive more lines than the
allocated associativity and thrash.  This module provides

* exact scatter computation from a concrete physical layout (numpy bincount
  over set indices), and
* the closed-form steady-state hit rate of uniform-random (IRM) accesses
  over that scatter under LRU,

plus an analytic binomial approximation used by the fast cache model so the
platform simulator never needs a concrete layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from numpy.random import default_rng

from repro.mem.address import CacheGeometry
from repro.mem.paging import PAGE_4K, PageTable

__all__ = [
    "lines_per_set",
    "set_occupancy_histogram",
    "uniform_irm_hit_rate",
    "conflicted_set_fraction",
    "simulated_scatter_hit_rate",
    "ScatterSummary",
    "analyze_buffer_scatter",
]


def lines_per_set(phys_line_addrs: np.ndarray, geometry: CacheGeometry) -> np.ndarray:
    """Count how many of the given physical lines map to each cache set.

    Args:
        phys_line_addrs: Physical byte addresses of the buffer's lines (one
            per line, e.g. from :meth:`PageTable.physical_lines`).
        geometry: The cache whose sets we are scattering into.

    Returns:
        int64 array of length ``geometry.num_sets``.
    """
    sets = geometry.set_indices(phys_line_addrs.astype(np.int64))
    return np.bincount(sets, minlength=geometry.num_sets).astype(np.int64)


def set_occupancy_histogram(per_set: np.ndarray) -> Dict[int, float]:
    """Fraction of sets receiving exactly k lines, for each observed k.

    This is the paper's Figure 3 series.
    """
    total = per_set.size
    ks, counts = np.unique(per_set, return_counts=True)
    return {int(k): float(c) / total for k, c in zip(ks, counts)}


def uniform_irm_hit_rate(per_set: np.ndarray, allocated_ways: int) -> float:
    """Steady-state LRU hit rate of uniform random accesses over a scatter.

    For a set holding ``k`` of the buffer's lines with ``a`` allocated ways:
    if ``k <= a`` every access to that set hits after warm-up; otherwise the
    cache holds ``a`` of the ``k`` equally likely lines, so an access hits
    with probability ``a / k`` (exact for the independent-reference model —
    any demand-fill policy keeps some ``a``-subset resident and accesses are
    uniform).  Accesses land on a set in proportion to its line count, hence

        hit_rate = sum_s min(k_s, a) / L
    """
    if allocated_ways < 1:
        raise ValueError("allocated_ways must be >= 1")
    total_lines = int(per_set.sum())
    if total_lines == 0:
        return 0.0
    resident = np.minimum(per_set, allocated_ways).sum()
    return float(resident) / total_lines


def conflicted_set_fraction(per_set: np.ndarray, allocated_ways: int) -> float:
    """Fraction of *occupied* sets holding more lines than the allocated ways."""
    occupied = per_set > 0
    if not occupied.any():
        return 0.0
    return float(np.count_nonzero(per_set > allocated_ways)) / int(occupied.sum())


def simulated_scatter_hit_rate(
    wss_bytes: int,
    geometry: CacheGeometry,
    allocated_ways: int,
    page_size: int = PAGE_4K,
    phys_bytes: int = 8 << 30,
    seed: int = 1,
    samples: int = 5,
) -> float:
    """Expected IRM hit rate for a random physical layout, without a cache sim.

    Draws ``samples`` independent page-table layouts, computes each exact
    scatter and closed-form hit rate, and averages.  This is the reference
    the fast analytical model is validated against, and is itself orders of
    magnitude faster than running the tag-array simulator to steady state.
    """
    rates = []
    for i in range(samples):
        table = PageTable(
            page_size=page_size, phys_bytes=phys_bytes, rng=default_rng(seed + i)
        )
        buf = table.map_buffer(wss_bytes)
        layout = table.physical_lines(buf, line_size=geometry.line_size)
        per_set = lines_per_set(layout, geometry)
        rates.append(uniform_irm_hit_rate(per_set, allocated_ways))
    return float(np.mean(rates))


@dataclass
class ScatterSummary:
    """Summary of one buffer's set scatter (one bar group of paper Fig. 3)."""

    wss_bytes: int
    page_size: int
    allocated_ways: int
    histogram: Dict[int, float]
    conflicted_fraction: float
    irm_hit_rate: float

    @property
    def fraction_ge(self) -> Dict[int, float]:
        """Cumulative tail: fraction of sets with >= k lines."""
        out: Dict[int, float] = {}
        running = 0.0
        for k in sorted(self.histogram, reverse=True):
            running += self.histogram[k]
            out[k] = running
        return out


def analyze_buffer_scatter(
    wss_bytes: int,
    geometry: CacheGeometry,
    allocated_ways: int,
    page_size: int = PAGE_4K,
    seed: int = 1,
) -> ScatterSummary:
    """Map a buffer, compute its scatter and conflict statistics.

    Reproduces one configuration of the paper's Figure 3 (e.g. Xeon-D, 2 MB
    working set, 2 ways, 4 KB pages -> ~32.5% of sets with 3+ lines).
    """
    table = PageTable(page_size=page_size, rng=default_rng(seed))
    buf = table.map_buffer(wss_bytes)
    layout = table.physical_lines(buf, line_size=geometry.line_size)
    per_set = lines_per_set(layout, geometry)
    return ScatterSummary(
        wss_bytes=wss_bytes,
        page_size=page_size,
        allocated_ways=allocated_ways,
        histogram=set_occupancy_histogram(per_set),
        conflicted_fraction=conflicted_set_fraction(per_set, allocated_ways),
        irm_hit_rate=uniform_irm_hit_rate(per_set, allocated_ways),
    )
