"""Shared-cache (no CAT) contention model.

When the LLC is fully shared, co-runners compete for capacity through the
replacement policy: a workload's steady-state occupancy grows with its
*insertion rate* (misses per unit time), which is exactly why a streaming
noisy neighbor — near-100% miss rate at enormous reference rates — crowds a
well-behaved workload out of the cache (paper Figure 1).

We use the classic characteristic-time approximation for a globally-LRU
shared cache: every inserted line survives roughly one common characteristic
time T, so occupancy_i ~ insertion_rate_i * T, i.e. capacity splits in
proportion to insertion rates, capped at each workload's working-set size.
Insertion rates themselves depend on the resulting hit rates, so we solve
the circular dependency with a damped fixed-point iteration (it converges in
a few dozen rounds for every configuration in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cache.analytical import AccessPattern, AnalyticalCacheModel, Footprint
from repro.mem.paging import PAGE_4K

__all__ = ["CacheDemand", "ContentionShare", "SharedCacheContentionModel"]


@dataclass(frozen=True)
class CacheDemand:
    """One workload's demand on the shared LLC.

    Attributes:
        footprint: The workload's cache footprint (pattern, sizes, skew).
        ref_rate: LLC references per unit time (relative scale is all that
            matters: shares depend on ratios of insertion rates).
    """

    footprint: Footprint
    ref_rate: float

    def __post_init__(self) -> None:
        if self.ref_rate < 0:
            raise ValueError("ref_rate cannot be negative")

    @classmethod
    def of(
        cls,
        pattern: AccessPattern,
        wss_bytes: int,
        ref_rate: float,
        page_size: int = PAGE_4K,
    ) -> "CacheDemand":
        """Convenience constructor from bare pattern parameters."""
        return cls(
            footprint=Footprint(
                pattern=pattern, wss_bytes=wss_bytes, page_size=page_size
            ),
            ref_rate=ref_rate,
        )


@dataclass
class ContentionShare:
    """Resolved share for one workload under shared-cache contention."""

    demand: CacheDemand
    effective_ways: float
    hit_rate: float

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate


class SharedCacheContentionModel:
    """Fixed-point solver for shared-LLC capacity division.

    Args:
        model: Analytical hit-rate oracle for the LLC geometry.
        iterations: Fixed-point rounds (damped; 40 is comfortably enough).
        damping: Fraction of each update applied per round.
    """

    def __init__(
        self,
        model: AnalyticalCacheModel,
        iterations: int = 40,
        damping: float = 0.5,
    ) -> None:
        if not 0 < damping <= 1:
            raise ValueError("damping must be in (0, 1]")
        self.model = model
        self.iterations = iterations
        self.damping = damping

    def solve(self, demands: Sequence[CacheDemand]) -> List[ContentionShare]:
        """Resolve steady-state shares and hit rates for the co-runners."""
        geo = self.model.geometry
        total_ways = float(geo.num_ways)
        active = [d for d in demands]
        if not active:
            return []

        wss_ways = np.array(
            [max(d.footprint.wss_bytes / geo.way_bytes, 1e-6) for d in active],
            dtype=float,
        )
        ref_rates = np.array([max(d.ref_rate, 0.0) for d in active], dtype=float)

        # A workload never benefits from (and never occupies) more capacity
        # than its working set.
        caps = np.minimum(wss_ways, total_ways)

        # Initial guess: proportional to working sets.
        shares = self._cap_redistribute(
            caps * 0 + total_ways / len(active), caps, total_ways
        )

        for _ in range(self.iterations):
            hit_rates = np.array(
                [
                    self.model.capacity_hit_rate_fp(d.footprint, shares[i])
                    for i, d in enumerate(active)
                ]
            )
            insert_rates = ref_rates * (1.0 - hit_rates)
            total_insert = insert_rates.sum()
            if total_insert <= 1e-12:
                # Everything fits: give each workload its working set.
                target = self._cap_redistribute(caps.copy(), caps, total_ways)
            else:
                target = self._cap_redistribute(
                    total_ways * insert_rates / total_insert, caps, total_ways
                )
            shares = (1 - self.damping) * shares + self.damping * target

        result = []
        for i, d in enumerate(active):
            hr = self.model.capacity_hit_rate_fp(d.footprint, shares[i])
            result.append(
                ContentionShare(demand=d, effective_ways=float(shares[i]), hit_rate=hr)
            )
        return result

    @staticmethod
    def _cap_redistribute(
        shares: np.ndarray, caps: np.ndarray, total: float
    ) -> np.ndarray:
        """Clamp shares to per-workload caps, redistributing freed capacity.

        Capacity released by capped workloads flows to uncapped ones in
        proportion to their current share; if everyone is capped the cache
        simply runs below full occupancy (real LRU behaves the same: unused
        capacity holds dead lines).
        """
        shares = np.minimum(shares, caps)
        for _ in range(len(shares)):
            used = shares.sum()
            slack = total - used
            if slack <= 1e-9:
                break
            room = caps - shares
            open_idx = room > 1e-9
            if not open_idx.any():
                break
            weights = np.where(open_idx, np.maximum(shares, 1e-6), 0.0)
            add = slack * weights / weights.sum()
            shares = np.minimum(shares + add, caps)
        return shares
