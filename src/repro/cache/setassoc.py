"""Exact set-associative, inclusive, CAT-partitionable cache model.

This is the high-fidelity LLC model: every access walks a real tag array
with per-set replacement state, and fills are constrained to the accessing
class-of-service's way mask exactly as Intel CAT constrains them.  It is
used for the conflict-miss studies (paper Figs. 2-3), for validating the
fast analytical model, and inside the full hierarchy when exactness matters
more than speed.

CAT semantics reproduced here (per Intel SDM / the CAT HPCA'16 paper):

* A way mask restricts *allocation* (fills), not *lookup*: a core may hit on
  a line in any way, including ways outside its mask.
* Victims are chosen only among the masked ways, so a workload can never
  evict lines from ways it does not own.
* Masks may overlap between classes (dCat chooses not to overlap them, but
  the hardware allows it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.mem.address import CacheGeometry
from repro.cache.replacement import ReplacementPolicy, make_policy

__all__ = ["AccessResult", "CacheStats", "SetAssociativeCache"]


@dataclass
class AccessResult:
    """Outcome of a single cache access."""

    hit: bool
    set_index: int
    way: int
    evicted_line: Optional[int] = None  # physical line id dropped, if any


@dataclass
class CacheStats:
    """Cumulative hit/miss counters, optionally tracked per COS."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    per_cos_hits: Dict[int, int] = field(default_factory=dict)
    per_cos_misses: Dict[int, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def record(self, cos: int, hit: bool) -> None:
        if hit:
            self.hits += 1
            self.per_cos_hits[cos] = self.per_cos_hits.get(cos, 0) + 1
        else:
            self.misses += 1
            self.per_cos_misses[cos] = self.per_cos_misses.get(cos, 0) + 1

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.per_cos_hits.clear()
        self.per_cos_misses.clear()


class SetAssociativeCache:
    """Tag-array cache with way-mask-constrained fills.

    Args:
        geometry: Cache geometry (sets, ways, line size).
        policy: Replacement policy name (``lru``, ``plru``, ``random``) or a
            prebuilt :class:`ReplacementPolicy`.
        eviction_callback: Invoked with the physical line id of every line
            dropped from the cache — the hierarchy uses this for inclusive
            back-invalidation of inner caches.
    """

    INVALID_TAG = -1

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: str | ReplacementPolicy = "lru",
        eviction_callback: Optional[Callable[[int], None]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.geometry = geometry
        nsets, nways = geometry.num_sets, geometry.num_ways
        self._tags = np.full((nsets, nways), self.INVALID_TAG, dtype=np.int64)
        self._owner_cos = np.full((nsets, nways), -1, dtype=np.int16)
        if isinstance(policy, ReplacementPolicy):
            self._policy = policy
        else:
            self._policy = make_policy(policy, nsets, nways, rng=rng)
        self.stats = CacheStats()
        self._eviction_callback = eviction_callback
        self._full_mask = (1 << nways) - 1
        self._allowed_cache: Dict[int, tuple] = {}

    # -- mask helpers ---------------------------------------------------------

    def validate_mask(self, mask: int) -> int:
        """Clamp-and-check an allocation mask; returns it unchanged if valid."""
        if mask <= 0 or mask > self._full_mask:
            raise ValueError(
                f"way mask {mask:#x} out of range for {self.geometry.num_ways} ways"
            )
        return mask

    @property
    def full_mask(self) -> int:
        """Mask enabling every way."""
        return self._full_mask

    # -- core access path ------------------------------------------------------

    def lookup(self, paddr: int) -> Optional[int]:
        """Return the way holding ``paddr``'s line, or None (no side effects)."""
        geo = self.geometry
        set_index = geo.set_index(paddr)
        tag = geo.tag(paddr)
        ways = np.nonzero(self._tags[set_index] == tag)[0]
        return int(ways[0]) if ways.size else None

    def access(self, paddr: int, mask: Optional[int] = None, cos: int = 0) -> AccessResult:
        """Perform one access (lookup + fill on miss) under a way mask.

        Args:
            paddr: Physical byte address.
            mask: Allocation mask for fills; defaults to all ways (no CAT).
            cos: Class-of-service id, used only for accounting.
        """
        geo = self.geometry
        fill_mask = self._full_mask if mask is None else self.validate_mask(mask)
        set_index = geo.set_index(paddr)
        tag = geo.tag(paddr)
        row = self._tags[set_index]

        hit_ways = np.nonzero(row == tag)[0]
        if hit_ways.size:
            way = int(hit_ways[0])
            self._policy.touch(set_index, way)
            self.stats.record(cos, hit=True)
            return AccessResult(hit=True, set_index=set_index, way=way)

        # Miss: fill into an invalid allowed way if one exists, else evict.
        evicted_line: Optional[int] = None
        invalid_allowed = [
            w
            for w in range(geo.num_ways)
            if (fill_mask >> w) & 1 and row[w] == self.INVALID_TAG
        ]
        if invalid_allowed:
            way = invalid_allowed[0]
        else:
            way = self._policy.victim(set_index, fill_mask)
            old_tag = int(row[way])
            if old_tag != self.INVALID_TAG:
                evicted_line = geo.line_id_of(set_index, old_tag)
                self.stats.evictions += 1
                if self._eviction_callback is not None:
                    self._eviction_callback(evicted_line)
        row[way] = tag
        self._owner_cos[set_index, way] = cos
        self._policy.touch(set_index, way)
        self.stats.record(cos, hit=False)
        return AccessResult(
            hit=False, set_index=set_index, way=way, evicted_line=evicted_line
        )

    def access_many(
        self, paddrs: np.ndarray, mask: Optional[int] = None, cos: int = 0
    ) -> int:
        """Run a batch of accesses; returns the number of hits.

        This is the hot path for the exact-model experiments.  The batch is
        decomposed once (vectorized set/tag extraction plus one gather of all
        touched tag rows), accesses whose sets see no conflicting activity are
        resolved entirely in numpy, and only the sets with at least one miss
        fall back to a sequential per-set loop over Python-native row state.
        The result is bit-exact against the :meth:`access_many_ref` scalar
        reference for every policy: same hits, evictions, per-COS stats,
        occupancy and replacement state.

        Eviction callbacks fire *after* the whole batch's state is applied,
        in access order (the scalar path fires them mid-access); callbacks
        must not mutate this cache, which the hierarchy's back-invalidation
        — the only in-tree callback — never does.
        """
        hits, _ = self._access_batch(paddrs, mask, cos, want_flags=False)
        return hits

    def access_many_flags(
        self, paddrs: np.ndarray, mask: Optional[int] = None, cos: int = 0
    ) -> np.ndarray:
        """Like :meth:`access_many` but returns the per-access hit flags.

        The hierarchy's batch path uses the flags to route each level's
        misses into the next level.
        """
        _, flags = self._access_batch(paddrs, mask, cos, want_flags=True)
        return flags

    def access_many_ref(
        self, paddrs: np.ndarray, mask: Optional[int] = None, cos: int = 0
    ) -> int:
        """Scalar reference for :meth:`access_many` (one :meth:`access` per
        address); the equivalence oracle for the batch pipeline and the
        baseline leg of the ``setassoc_access_scalar`` benchmark."""
        hits = 0
        for paddr in paddrs:
            if self.access(int(paddr), mask=mask, cos=cos).hit:
                hits += 1
        return hits

    def _allowed_ways(self, fill_mask: int) -> tuple:
        """The mask's way indices, ascending (memoized per mask)."""
        ways = self._allowed_cache.get(fill_mask)
        if ways is None:
            ways = tuple(
                w for w in range(self.geometry.num_ways) if (fill_mask >> w) & 1
            )
            self._allowed_cache[fill_mask] = ways
        return ways

    def _access_batch(
        self, paddrs: np.ndarray, mask: Optional[int], cos: int, want_flags: bool
    ):
        fill_mask = self._full_mask if mask is None else self.validate_mask(mask)
        paddrs = np.asarray(paddrs)
        n = int(paddrs.size)
        if n == 0:
            return 0, np.zeros(0, dtype=bool)
        geo = self.geometry
        num_sets = geo.num_sets
        invalid = self.INVALID_TAG
        tag_array = self._tags
        policy = self._policy

        # Decompose the whole batch once, then detect hits against a snapshot
        # of every touched row.  A snapshot verdict is exact for any set whose
        # batch slice is hit-only (its row never changes mid-batch); sets with
        # at least one snapshot miss replay sequentially below.
        sets_arr = geo.set_indices(paddrs)
        tags_arr = geo.tags(paddrs)
        eq = tag_array[sets_arr] == tags_arr[:, None]
        snap_hit = eq.any(axis=1)
        snap_way = eq.argmax(axis=1)  # first matching way, as in the scalar path

        if policy.supports_bulk_touch:
            if snap_hit.all():
                slow_idx = None  # pure-touch batch, no per-set state needed
            else:
                miss_table = np.zeros(num_sets, dtype=bool)
                miss_table[sets_arr[~snap_hit]] = True
                slow_mask = miss_table[sets_arr]
                slow_idx = np.flatnonzero(slow_mask)
        else:
            # Policies without deferrable touches (PLRU's aging) replay every
            # access so their state stays bit-exact.
            slow_mask = np.ones(n, dtype=bool)
            slow_idx = np.arange(n)

        flags = snap_hit if want_flags else None
        hits = 0
        evictions: list = []  # line ids, in access order (callback only)
        stats_evictions = 0
        fill_sets: list = []
        fill_ways: list = []
        policy.batch_begin(n)
        if slow_idx is None:
            hits = n
            policy.touch_many_at(sets_arr, snap_way, np.arange(n))
        else:
            if int(slow_idx.size) < n:
                clean_mask = ~slow_mask
                hits += int(np.count_nonzero(clean_mask))
                policy.touch_many_at(
                    sets_arr[clean_mask],
                    snap_way[clean_mask],
                    np.flatnonzero(clean_mask),
                )
            if want_flags:
                flags = snap_hit.copy()  # slow verdicts overwritten below
            allowed = self._allowed_ways(fill_mask)
            evict_append = evictions.append
            fills_append = fill_sets.append
            fillw_append = fill_ways.append
            if policy.stamp_run_state:
                # Inlined fast path for stamp-list run state (LRU).  Two
                # facts make it exact.  First, the stamp of access ``i`` is
                # always ``base + i + 1`` (one touch per access, hit or
                # miss), so cross-set ordering is irrelevant and the slow
                # accesses can be regrouped by set; eviction order is
                # restored afterwards from (position, line) pairs when a
                # callback needs it.  Second, within one set the LRU order
                # of the allowed ways is their last-touch order, so an
                # insertion-ordered dict — seeded ascending by batch-start
                # stamp (stable sort: stamp ties break toward the lower
                # way, as argmin does) and rotated to the back on every
                # touch of an allowed way — yields each victim as its first
                # key with no scanning.
                base1 = policy.run_stamp_base + 1
                allowed_set = frozenset(allowed)
                has_cb = self._eviction_callback is not None
                evict_count = 0
                grouped = slow_idx[np.argsort(sets_arr[slow_idx], kind="stable")]
                g_pos = grouped.tolist()
                g_sets = sets_arr[grouped].tolist()
                g_tags = tags_arr[grouped].tolist()
                ev_pairs: list = []
                ev_append = ev_pairs.append
                run_begin = policy.run_begin
                run_end = policy.run_end
                nslow = len(g_pos)
                lo = 0
                while lo < nslow:
                    s = g_sets[lo]
                    hi = lo + 1
                    while hi < nslow and g_sets[hi] == s:
                        hi += 1
                    row = tag_array[s].tolist()
                    way_of = {}
                    for w in range(len(row) - 1, -1, -1):
                        rt = row[w]
                        if rt != invalid:
                            way_of[rt] = w
                    way_get = way_of.get
                    free = [w for w in allowed if row[w] == invalid]
                    nfree = len(free)
                    pos = 0
                    ctx = run_begin(s)
                    rec = dict.fromkeys(sorted(allowed, key=ctx.__getitem__))
                    rec_pop = rec.pop
                    for i, t in zip(g_pos[lo:hi], g_tags[lo:hi]):
                        w = way_get(t)
                        if w is not None:
                            ctx[w] = base1 + i
                            if w in allowed_set:
                                rec_pop(w, None)
                                rec[w] = None
                            hits += 1
                            if want_flags:
                                flags[i] = True
                            continue
                        if want_flags:
                            flags[i] = False
                        if pos < nfree:
                            w = free[pos]
                            pos += 1
                            rec_pop(w, None)
                        else:
                            w = next(iter(rec))
                            del rec[w]
                            old = row[w]
                            # No free allowed way remains: the victim held
                            # a line.
                            evict_count += 1
                            if has_cb:
                                ev_append((i, old * num_sets + s))
                            del way_of[old]
                        row[w] = t
                        way_of[t] = w
                        ctx[w] = base1 + i
                        rec[w] = None
                        fills_append(s)
                        fillw_append(w)
                    # Every miss set takes at least one fill (the first
                    # occurrence of a snapshot-missing tag cannot hit), so
                    # the row is always dirty here.
                    tag_array[s] = row
                    run_end(s, ctx)
                    lo = hi
                if ev_pairs:
                    ev_pairs.sort()
                    evictions = [line for _, line in ev_pairs]
                else:
                    evictions = []
                stats_evictions = evict_count
            else:
                run_touch = policy.run_touch
                run_victim = policy.run_victim
                states: Dict[int, list] = {}
                states_get = states.get
                # Per-set state: [row, tag->way, free allowed ways, next
                # free, policy run ctx, row dirty].
                for i, s, t in zip(
                    slow_idx.tolist(),
                    sets_arr[slow_idx].tolist(),
                    tags_arr[slow_idx].tolist(),
                ):
                    st = states_get(s)
                    if st is None:
                        row = tag_array[s].tolist()
                        way_of = {}
                        for w in range(len(row) - 1, -1, -1):
                            rt = row[w]
                            if rt != invalid:
                                way_of[rt] = w
                        free = [w for w in allowed if row[w] == invalid]
                        st = [row, way_of, free, 0, policy.run_begin(s), False]
                        states[s] = st
                    way_of = st[1]
                    w = way_of.get(t)
                    if w is not None:
                        run_touch(st[4], w, i)
                        hits += 1
                        if want_flags:
                            flags[i] = True
                        continue
                    if want_flags:
                        flags[i] = False
                    row = st[0]
                    pos = st[3]
                    free = st[2]
                    if pos < len(free):
                        w = free[pos]
                        st[3] = pos + 1
                    else:
                        w = run_victim(st[4], allowed, fill_mask)
                        old = row[w]
                        # No free allowed way remains, so the victim held a
                        # line.
                        evict_append(old * num_sets + s)
                        del way_of[old]
                    row[w] = t
                    way_of[t] = w
                    st[5] = True
                    fills_append(s)
                    fillw_append(w)
                    run_touch(st[4], w, i)
                for s, st in states.items():
                    if st[5]:
                        tag_array[s] = st[0]
                    policy.run_end(s, st[4])
                stats_evictions = len(evictions)
        policy.batch_end(n)

        if fill_sets:
            self._owner_cos[fill_sets, fill_ways] = cos
        stats = self.stats
        misses = n - hits
        stats.hits += hits
        stats.misses += misses
        if hits:
            stats.per_cos_hits[cos] = stats.per_cos_hits.get(cos, 0) + hits
        if misses:
            stats.per_cos_misses[cos] = stats.per_cos_misses.get(cos, 0) + misses
        if stats_evictions:
            stats.evictions += stats_evictions
            callback = self._eviction_callback
            if callback is not None:
                for line_id in evictions:
                    callback(line_id)
        return hits, flags

    # -- maintenance ----------------------------------------------------------

    def flush_ways(self, mask: int) -> int:
        """Invalidate every line in the masked ways; returns lines dropped.

        Models the paper's user-level "cache-way flush" helper used after an
        allocation change (Intel has no per-way flush instruction).  Every
        dropped line is also reported to the replacement policy's
        ``invalidate`` hook so a flushed-then-refilled set evicts in true
        recency order instead of trusting stale stamps/ages.
        """
        self.validate_mask(mask)
        dropped = 0
        geo = self.geometry
        for way in range(geo.num_ways):
            if not (mask >> way) & 1:
                continue
            col = self._tags[:, way]
            valid = np.nonzero(col != self.INVALID_TAG)[0]
            for s in valid.tolist():
                self._policy.invalidate(s, way)
                if self._eviction_callback is not None:
                    self._eviction_callback(geo.line_id_of(s, int(col[s])))
            dropped += int(valid.size)
            col.fill(self.INVALID_TAG)
            self._owner_cos[:, way].fill(-1)
        return dropped

    def invalidate_line(self, paddr: int) -> bool:
        """Silently drop the line holding ``paddr``; True if it was resident.

        This is the inclusive back-invalidation primitive: no eviction
        callback fires and no stats move, but the owner tracking and the
        replacement policy's recency state are both cleared so the inner
        cache does not later evict in stale order.
        """
        geo = self.geometry
        set_index = geo.set_index(paddr)
        ways = np.nonzero(self._tags[set_index] == geo.tag(paddr))[0]
        if not ways.size:
            return False
        way = int(ways[0])
        self._tags[set_index, way] = self.INVALID_TAG
        self._owner_cos[set_index, way] = -1
        self._policy.invalidate(set_index, way)
        return True

    def occupancy_by_cos(self) -> Dict[int, int]:
        """Lines currently resident, keyed by the COS that filled them.

        This is the same signal Intel CMT (Cache Monitoring Technology)
        reports as LLC occupancy.
        """
        valid = self._tags != self.INVALID_TAG
        out: Dict[int, int] = {}
        cos_values, counts = np.unique(self._owner_cos[valid], return_counts=True)
        for cos, count in zip(cos_values, counts):
            out[int(cos)] = int(count)
        return out

    def resident_lines(self) -> int:
        """Total valid lines in the cache."""
        return int(np.count_nonzero(self._tags != self.INVALID_TAG))

    def contains_line(self, line_id: int) -> bool:
        """True if the physical line id is resident (for inclusivity checks)."""
        geo = self.geometry
        set_index = line_id % geo.num_sets
        tag = line_id // geo.num_sets
        return bool(np.any(self._tags[set_index] == tag))
