"""Exact set-associative, inclusive, CAT-partitionable cache model.

This is the high-fidelity LLC model: every access walks a real tag array
with per-set replacement state, and fills are constrained to the accessing
class-of-service's way mask exactly as Intel CAT constrains them.  It is
used for the conflict-miss studies (paper Figs. 2-3), for validating the
fast analytical model, and inside the full hierarchy when exactness matters
more than speed.

CAT semantics reproduced here (per Intel SDM / the CAT HPCA'16 paper):

* A way mask restricts *allocation* (fills), not *lookup*: a core may hit on
  a line in any way, including ways outside its mask.
* Victims are chosen only among the masked ways, so a workload can never
  evict lines from ways it does not own.
* Masks may overlap between classes (dCat chooses not to overlap them, but
  the hardware allows it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.mem.address import CacheGeometry
from repro.cache.replacement import ReplacementPolicy, make_policy

__all__ = ["AccessResult", "CacheStats", "SetAssociativeCache"]


@dataclass
class AccessResult:
    """Outcome of a single cache access."""

    hit: bool
    set_index: int
    way: int
    evicted_line: Optional[int] = None  # physical line id dropped, if any


@dataclass
class CacheStats:
    """Cumulative hit/miss counters, optionally tracked per COS."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    per_cos_hits: Dict[int, int] = field(default_factory=dict)
    per_cos_misses: Dict[int, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def record(self, cos: int, hit: bool) -> None:
        if hit:
            self.hits += 1
            self.per_cos_hits[cos] = self.per_cos_hits.get(cos, 0) + 1
        else:
            self.misses += 1
            self.per_cos_misses[cos] = self.per_cos_misses.get(cos, 0) + 1

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.per_cos_hits.clear()
        self.per_cos_misses.clear()


class SetAssociativeCache:
    """Tag-array cache with way-mask-constrained fills.

    Args:
        geometry: Cache geometry (sets, ways, line size).
        policy: Replacement policy name (``lru``, ``plru``, ``random``) or a
            prebuilt :class:`ReplacementPolicy`.
        eviction_callback: Invoked with the physical line id of every line
            dropped from the cache — the hierarchy uses this for inclusive
            back-invalidation of inner caches.
    """

    INVALID_TAG = -1

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: str | ReplacementPolicy = "lru",
        eviction_callback: Optional[Callable[[int], None]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.geometry = geometry
        nsets, nways = geometry.num_sets, geometry.num_ways
        self._tags = np.full((nsets, nways), self.INVALID_TAG, dtype=np.int64)
        self._owner_cos = np.full((nsets, nways), -1, dtype=np.int16)
        if isinstance(policy, ReplacementPolicy):
            self._policy = policy
        else:
            self._policy = make_policy(policy, nsets, nways, rng=rng)
        self.stats = CacheStats()
        self._eviction_callback = eviction_callback
        self._full_mask = (1 << nways) - 1

    # -- mask helpers ---------------------------------------------------------

    def validate_mask(self, mask: int) -> int:
        """Clamp-and-check an allocation mask; returns it unchanged if valid."""
        if mask <= 0 or mask > self._full_mask:
            raise ValueError(
                f"way mask {mask:#x} out of range for {self.geometry.num_ways} ways"
            )
        return mask

    @property
    def full_mask(self) -> int:
        """Mask enabling every way."""
        return self._full_mask

    # -- core access path ------------------------------------------------------

    def lookup(self, paddr: int) -> Optional[int]:
        """Return the way holding ``paddr``'s line, or None (no side effects)."""
        geo = self.geometry
        set_index = geo.set_index(paddr)
        tag = geo.tag(paddr)
        ways = np.nonzero(self._tags[set_index] == tag)[0]
        return int(ways[0]) if ways.size else None

    def access(self, paddr: int, mask: Optional[int] = None, cos: int = 0) -> AccessResult:
        """Perform one access (lookup + fill on miss) under a way mask.

        Args:
            paddr: Physical byte address.
            mask: Allocation mask for fills; defaults to all ways (no CAT).
            cos: Class-of-service id, used only for accounting.
        """
        geo = self.geometry
        fill_mask = self._full_mask if mask is None else self.validate_mask(mask)
        set_index = geo.set_index(paddr)
        tag = geo.tag(paddr)
        row = self._tags[set_index]

        hit_ways = np.nonzero(row == tag)[0]
        if hit_ways.size:
            way = int(hit_ways[0])
            self._policy.touch(set_index, way)
            self.stats.record(cos, hit=True)
            return AccessResult(hit=True, set_index=set_index, way=way)

        # Miss: fill into an invalid allowed way if one exists, else evict.
        evicted_line: Optional[int] = None
        invalid_allowed = [
            w
            for w in range(geo.num_ways)
            if (fill_mask >> w) & 1 and row[w] == self.INVALID_TAG
        ]
        if invalid_allowed:
            way = invalid_allowed[0]
        else:
            way = self._policy.victim(set_index, fill_mask)
            old_tag = int(row[way])
            if old_tag != self.INVALID_TAG:
                evicted_line = geo.line_id_of(set_index, old_tag)
                self.stats.evictions += 1
                if self._eviction_callback is not None:
                    self._eviction_callback(evicted_line)
        row[way] = tag
        self._owner_cos[set_index, way] = cos
        self._policy.touch(set_index, way)
        self.stats.record(cos, hit=False)
        return AccessResult(
            hit=False, set_index=set_index, way=way, evicted_line=evicted_line
        )

    def access_many(
        self, paddrs: np.ndarray, mask: Optional[int] = None, cos: int = 0
    ) -> int:
        """Run a batch of accesses; returns the number of hits.

        This is the hot path for the exact-model experiments.  It iterates in
        Python (LRU is inherently sequential) but avoids per-access object
        construction.
        """
        geo = self.geometry
        fill_mask = self._full_mask if mask is None else self.validate_mask(mask)
        set_indices = geo.set_indices(paddrs)
        tags = geo.tags(paddrs)
        tag_array = self._tags
        policy = self._policy
        hits = 0
        nways = geo.num_ways
        allowed = [w for w in range(nways) if (fill_mask >> w) & 1]
        for i in range(len(paddrs)):
            s = int(set_indices[i])
            t = int(tags[i])
            row = tag_array[s]
            way = -1
            for w in range(nways):
                if row[w] == t:
                    way = w
                    break
            if way >= 0:
                policy.touch(s, way)
                hits += 1
                continue
            fill_way = -1
            for w in allowed:
                if row[w] == self.INVALID_TAG:
                    fill_way = w
                    break
            if fill_way < 0:
                fill_way = policy.victim(s, fill_mask)
                old_tag = int(row[fill_way])
                if old_tag != self.INVALID_TAG:
                    self.stats.evictions += 1
                    if self._eviction_callback is not None:
                        self._eviction_callback(geo.line_id_of(s, old_tag))
            row[fill_way] = t
            self._owner_cos[s, fill_way] = cos
            policy.touch(s, fill_way)
        misses = len(paddrs) - hits
        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.per_cos_hits[cos] = self.stats.per_cos_hits.get(cos, 0) + hits
        self.stats.per_cos_misses[cos] = self.stats.per_cos_misses.get(cos, 0) + misses
        return hits

    # -- maintenance ----------------------------------------------------------

    def flush_ways(self, mask: int) -> int:
        """Invalidate every line in the masked ways; returns lines dropped.

        Models the paper's user-level "cache-way flush" helper used after an
        allocation change (Intel has no per-way flush instruction).
        """
        self.validate_mask(mask)
        dropped = 0
        geo = self.geometry
        for way in range(geo.num_ways):
            if not (mask >> way) & 1:
                continue
            col = self._tags[:, way]
            valid = np.nonzero(col != self.INVALID_TAG)[0]
            if self._eviction_callback is not None:
                for s in valid:
                    self._eviction_callback(geo.line_id_of(int(s), int(col[s])))
            dropped += int(valid.size)
            col.fill(self.INVALID_TAG)
            self._owner_cos[:, way].fill(-1)
        return dropped

    def occupancy_by_cos(self) -> Dict[int, int]:
        """Lines currently resident, keyed by the COS that filled them.

        This is the same signal Intel CMT (Cache Monitoring Technology)
        reports as LLC occupancy.
        """
        valid = self._tags != self.INVALID_TAG
        out: Dict[int, int] = {}
        cos_values, counts = np.unique(self._owner_cos[valid], return_counts=True)
        for cos, count in zip(cos_values, counts):
            out[int(cos)] = int(count)
        return out

    def resident_lines(self) -> int:
        """Total valid lines in the cache."""
        return int(np.count_nonzero(self._tags != self.INVALID_TAG))

    def contains_line(self, line_id: int) -> bool:
        """True if the physical line id is resident (for inclusivity checks)."""
        geo = self.geometry
        set_index = line_id % geo.num_sets
        tag = line_id // geo.num_sets
        return bool(np.any(self._tags[set_index] == tag))
