"""Placement policies: which machine gets an arriving tenant.

A policy sees the arriving tenant (spec plus its already-built workload)
and the fleet's machines, and returns the chosen machine or ``None`` when
nothing fits (the fleet then rejects the tenant).  Three policies are
provided:

* :class:`FirstFitPolicy` — the first machine whose reserved-way, vCPU and
  COS budgets all fit; the classic baseline.
* :class:`LeastLoadedPolicy` — the fitting machine with the lowest
  reserved-way utilization, spreading reservations evenly.
* :class:`SensitivityAwarePolicy` — LFOC-style: estimate how much the
  tenant's hit rate would improve beyond its reservation (the curvature of
  its hit-rate-vs-ways curve, the same quantity dCat's performance tables
  learn online) and route cache-sensitive tenants to the machine with the
  most spare ways while packing insensitive ones tightly, keeping headroom
  for the tenants that can use it.

Every policy is deterministic: ties break on fleet order.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cache.analytical import AccessPattern
from repro.cloud.lifecycle import TenantSpec
from repro.core.grouping import curvature_score
from repro.workloads.base import PhasedWorkload, Workload

if TYPE_CHECKING:  # placement sees machines; fleet imports placement
    from repro.cloud.fleet import FleetMachine

__all__ = [
    "PlacementPolicy",
    "FirstFitPolicy",
    "LeastLoadedPolicy",
    "SensitivityAwarePolicy",
    "cache_sensitivity",
    "build_policy",
    "policy_names",
]


def cache_sensitivity(
    workload: Workload, machine: "FleetMachine", baseline_ways: int
) -> float:
    """Mean per-way hit-rate gain beyond the reservation (curve curvature).

    Evaluates the analytical LLC model on the workload's largest-footprint
    phase at ``baseline_ways`` and at the full LLC; the slope between the
    two — :func:`repro.core.grouping.curvature_score`, the same figure the
    LFOC allocation strategy computes from learned performance tables — is
    how much each extra way is worth.  A streaming scan or a working set
    that already fits in the reservation scores ~0, exactly the tenants
    LFOC packs tightly.
    """
    if isinstance(workload, PhasedWorkload):
        phases = workload.peek_phases()
    else:
        phase = workload.current_phase()
        phases = [phase] if phase is not None else []
    candidates = [
        p for p in phases if p.pattern is not AccessPattern.NONE and p.wss_bytes > 0
    ]
    if not candidates:
        return 0.0
    phase = max(candidates, key=lambda p: p.wss_bytes)
    analytic = machine.machine.analytic
    total = machine.machine.num_ways
    ways = min(baseline_ways, total)
    return curvature_score(
        lambda w: analytic.hit_rate_fp(phase.footprint, w), ways, total
    )


class PlacementPolicy(abc.ABC):
    """Chooses a machine for an arriving tenant (or ``None`` to reject)."""

    name: str = "policy"

    @abc.abstractmethod
    def place(
        self,
        tenant: TenantSpec,
        workload: Workload,
        machines: Sequence["FleetMachine"],
    ) -> Optional["FleetMachine"]:
        """The machine that should host ``tenant``, or ``None``."""

    @staticmethod
    def _fitting(
        tenant: TenantSpec, machines: Sequence["FleetMachine"]
    ) -> Sequence["FleetMachine"]:
        return [m for m in machines if m.fits(tenant.baseline_ways)]


class FirstFitPolicy(PlacementPolicy):
    """First machine (in fleet order) with room for the reservation."""

    name = "first_fit"

    def place(self, tenant, workload, machines):
        fitting = self._fitting(tenant, machines)
        return fitting[0] if fitting else None


class LeastLoadedPolicy(PlacementPolicy):
    """Fitting machine with the lowest reserved-way utilization."""

    name = "least_loaded"

    def place(self, tenant, workload, machines):
        fitting = self._fitting(tenant, machines)
        if not fitting:
            return None
        return min(
            fitting, key=lambda m: (m.reserved_ways / m.machine.num_ways,)
        )


class SensitivityAwarePolicy(PlacementPolicy):
    """Give cache-sensitive tenants headroom; pack insensitive ones tight.

    Args:
        threshold: Per-way hit-rate gain above which a tenant counts as
            cache-sensitive (defaults to 1% per way).
    """

    name = "sensitivity"

    def __init__(self, threshold: float = 0.01) -> None:
        if threshold < 0:
            raise ValueError("threshold cannot be negative")
        self.threshold = threshold

    def place(self, tenant, workload, machines):
        fitting = self._fitting(tenant, machines)
        if not fitting:
            return None
        # Sensitivity depends on the host geometry (total ways, way size),
        # so judge it against the would-be placement — the machine with the
        # most spare reserved ways — not against whichever machine happens
        # to be first in fleet order.
        headroom = max(fitting, key=lambda m: (m.free_ways, -machines.index(m)))
        if cache_sensitivity(workload, headroom, tenant.baseline_ways) >= self.threshold:
            # Most spare reserved ways first: room to grow beyond baseline.
            return headroom
        # Insensitive: fill the fullest machine that still fits.
        return min(fitting, key=lambda m: (m.free_ways, machines.index(m)))


_POLICIES = {
    FirstFitPolicy.name: FirstFitPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    SensitivityAwarePolicy.name: SensitivityAwarePolicy,
}


def policy_names() -> Sequence[str]:
    """The placement policy names churn scenarios accept."""
    return sorted(_POLICIES)


def build_policy(name: str) -> PlacementPolicy:
    """Instantiate a policy by name (``first_fit``/``least_loaded``/``sensitivity``).

    Raises:
        ValueError: For an unknown name.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; use one of {sorted(_POLICIES)}"
        ) from None
    return cls()
