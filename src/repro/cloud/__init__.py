"""The tenant-churn cloud layer: fleets, admission, placement, SLOs.

``repro.cloud`` turns the single-machine, fixed-VM simulation into the
paper's actual setting — performance-sensitive IaaS, where tenants arrive,
run, and depart while every machine's cache manager defends baselines:

* :mod:`repro.cloud.lifecycle` — tenant specs and arrival streams
  (seeded Poisson or scripted traces);
* :mod:`repro.cloud.placement` — admission-time placement policies
  (first-fit, least-loaded, sensitivity-aware);
* :mod:`repro.cloud.fleet` — :class:`~repro.cloud.fleet.CloudFleet`, the
  multi-machine driver with attach/detach churn and per-tenant SLO
  accounting (:mod:`repro.cloud.slo`);
* :mod:`repro.cloud.scenario` — declarative churn-scenario files.
"""

from repro.cloud.fleet import (
    CloudFleet,
    FleetMachine,
    FleetResult,
    PlacementRecord,
    entitled_ipc,
)
from repro.cloud.lifecycle import MixEntry, TenantSpec, poisson_tenants, scripted_tenants
from repro.cloud.placement import (
    FirstFitPolicy,
    LeastLoadedPolicy,
    PlacementPolicy,
    SensitivityAwarePolicy,
    build_policy,
    cache_sensitivity,
)
from repro.cloud.scenario import (
    ChurnScenarioError,
    load_churn_scenario,
    run_churn_scenario,
)
from repro.cloud.slo import SloAccountant, TenantSloStats

__all__ = [
    "CloudFleet",
    "FleetMachine",
    "FleetResult",
    "PlacementRecord",
    "entitled_ipc",
    "MixEntry",
    "TenantSpec",
    "poisson_tenants",
    "scripted_tenants",
    "PlacementPolicy",
    "FirstFitPolicy",
    "LeastLoadedPolicy",
    "SensitivityAwarePolicy",
    "build_policy",
    "cache_sensitivity",
    "ChurnScenarioError",
    "load_churn_scenario",
    "run_churn_scenario",
    "SloAccountant",
    "TenantSloStats",
]
