"""Declarative churn scenarios: a fleet plus a tenant lifecycle stream.

The cloud-layer counterpart of :mod:`repro.harness.scenario_file`: one JSON
document describes the fleet (how many machines, which socket, seeds), the
management regime, the placement policy, and the tenant stream — scripted
entries, a Poisson stream, or both.  Workload descriptions use exactly the
same ``{"type": ...}`` vocabulary as plain scenario files.

Example::

    {
      "fleet": {"machines": 2, "socket": "xeon_d", "seed": 7},
      "manager": {"type": "dcat"},
      "placement": "sensitivity",
      "duration_s": 30,
      "tenants": [
        {"name": "db", "arrival_s": 0, "baseline_ways": 4,
         "lifetime_s": 20, "workload": {"type": "postgres"}}
      ],
      "poisson": {
        "rate_per_s": 0.25, "seed": 42,
        "mix": [
          {"weight": 2, "baseline_ways": 3, "mean_lifetime_s": 10,
           "workload": {"type": "mlr", "wss_mb": 8}},
          {"weight": 1, "baseline_ways": 3, "mean_lifetime_s": 10,
           "workload": {"type": "mload", "wss_mb": 60}}
        ]
      }
    }

An optional top-level ``"faults"`` section (a
:class:`~repro.faults.plan.FaultPlan` spec) turns on fault injection for
the whole fleet: each machine gets the same rules under a seed derived
from the plan seed and the machine name, so schedules differ per host but
the run stays deterministic.  Requires a ``dcat`` manager.

An optional top-level ``"policy"`` string picks the allocation strategy
for every machine's dcat manager (any name from
:func:`repro.core.policies.strategy_names`); the CLI's ``--policy``
overrides it.

Run from the CLI with ``dcat-experiment churn path/to/file.json``.  Every
validation error names the offending field with its entry context (e.g.
``tenants[2].baseline_ways``) and exits with status 2, like plain scenario
errors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cloud.fleet import CloudFleet, FleetMachine, FleetResult
from repro.cloud.lifecycle import MixEntry, TenantSpec, poisson_tenants
from repro.cloud.placement import build_policy, policy_names
from repro.engine.runner import derive_seed
from repro.harness.scenario_file import (
    ScenarioError,
    build_manager,
    build_workload,
    parse_fidelity,
    substrate_from_spec,
    workload_kinds,
)
from repro.platform.machine import Machine

__all__ = [
    "ChurnScenarioError",
    "build_fleet_machines",
    "load_churn_scenario",
    "run_churn_scenario",
]

_SOCKETS = {"xeon_e5", "xeon_d"}


class ChurnScenarioError(ScenarioError):
    """A churn-scenario file is malformed; the message carries the field
    path (e.g. ``tenants[2].workload.type``) so the entry is findable."""


def _require_mapping(value: Any, ctx: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise ChurnScenarioError(f"{ctx}: expected an object, got {type(value).__name__}")
    return value


def _get_number(
    obj: Dict[str, Any],
    ctx: str,
    key: str,
    default: Optional[float] = None,
    positive: bool = False,
    required: bool = False,
) -> Optional[float]:
    if key not in obj:
        if required:
            raise ChurnScenarioError(f"{ctx}.{key}: missing required field")
        return default
    value = obj[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ChurnScenarioError(f"{ctx}.{key}: expected a number, got {value!r}")
    if positive and value <= 0:
        raise ChurnScenarioError(f"{ctx}.{key}: must be positive, got {value!r}")
    return float(value)


def _get_int(
    obj: Dict[str, Any],
    ctx: str,
    key: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
    required: bool = False,
) -> Optional[int]:
    if key not in obj:
        if required:
            raise ChurnScenarioError(f"{ctx}.{key}: missing required field")
        return default
    value = obj[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ChurnScenarioError(f"{ctx}.{key}: expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ChurnScenarioError(f"{ctx}.{key}: must be >= {minimum}, got {value}")
    return value


def _checked_workload(obj: Dict[str, Any], ctx: str, name: str) -> Dict[str, Any]:
    """Validate a workload spec eagerly (by building it once)."""
    spec = _require_mapping(obj.get("workload"), f"{ctx}.workload")
    kind = spec.get("type")
    if kind not in workload_kinds():
        raise ChurnScenarioError(
            f"{ctx}.workload.type: unknown workload type {kind!r}; "
            f"use one of {workload_kinds()}"
        )
    try:
        build_workload(kind, name, dict(spec))
    except ScenarioError as exc:
        raise ChurnScenarioError(f"{ctx}.workload: {exc}") from None
    except (TypeError, ValueError) as exc:
        raise ChurnScenarioError(f"{ctx}.workload: {exc}") from None
    return dict(spec)


def _parse_tenants(entries: Any) -> List[TenantSpec]:
    if not isinstance(entries, list):
        raise ChurnScenarioError("tenants: expected a list")
    tenants: List[TenantSpec] = []
    for i, raw in enumerate(entries):
        ctx = f"tenants[{i}]"
        entry = _require_mapping(raw, ctx)
        name = entry.get("name", f"tenant-{i}")
        if not isinstance(name, str) or not name:
            raise ChurnScenarioError(f"{ctx}.name: expected a non-empty string")
        arrival = _get_number(entry, ctx, "arrival_s", default=0.0)
        if arrival < 0:
            raise ChurnScenarioError(f"{ctx}.arrival_s: must be >= 0, got {arrival}")
        lifetime = _get_number(entry, ctx, "lifetime_s", default=None, positive=True)
        baseline = _get_int(entry, ctx, "baseline_ways", default=3, minimum=1)
        workload = _checked_workload(entry, ctx, name)
        tenants.append(
            TenantSpec(
                name=name,
                arrival_s=arrival,
                baseline_ways=baseline,
                workload=workload,
                lifetime_s=lifetime,
            )
        )
    return tenants


def _parse_poisson(spec: Any, duration_s: float) -> List[TenantSpec]:
    ctx = "poisson"
    obj = _require_mapping(spec, ctx)
    rate = _get_number(obj, ctx, "rate_per_s", positive=True, required=True)
    seed = _get_int(obj, ctx, "seed", default=1234)
    prefix = obj.get("name_prefix", "tenant")
    if not isinstance(prefix, str) or not prefix:
        raise ChurnScenarioError(f"{ctx}.name_prefix: expected a non-empty string")
    raw_mix = obj.get("mix")
    if not isinstance(raw_mix, list) or not raw_mix:
        raise ChurnScenarioError(f"{ctx}.mix: expected a non-empty list")
    mix: List[MixEntry] = []
    for i, raw in enumerate(raw_mix):
        entry_ctx = f"{ctx}.mix[{i}]"
        entry = _require_mapping(raw, entry_ctx)
        weight = _get_number(entry, entry_ctx, "weight", default=1.0, positive=True)
        baseline = _get_int(entry, entry_ctx, "baseline_ways", default=3, minimum=1)
        lifetime = _get_number(
            entry, entry_ctx, "mean_lifetime_s", default=12.0, positive=True
        )
        workload = _checked_workload(entry, entry_ctx, f"{prefix}-mix{i}")
        mix.append(
            MixEntry(
                workload=workload,
                baseline_ways=baseline,
                weight=weight,
                mean_lifetime_s=lifetime,
            )
        )
    return poisson_tenants(
        rate_per_s=rate,
        duration_s=duration_s,
        mix=mix,
        seed=seed,
        name_prefix=prefix,
    )


def build_fleet_machines(
    data: Dict[str, Any],
    fidelity: Optional[str] = None,
    machine_bus: Optional[Callable[[str], Any]] = None,
    policy: Optional[str] = None,
    only: Optional[Sequence[str]] = None,
) -> Tuple[List[FleetMachine], str, float]:
    """Build the machines a scenario's shared fleet vocabulary describes.

    Parses the ``fleet`` / ``manager`` / ``placement`` / ``slo`` /
    ``faults`` / ``fidelity`` / ``policy`` sections — the vocabulary churn
    scenarios and service configs share — and constructs one
    :class:`FleetMachine` per host with derived per-machine seeds.

    Args:
        data: The scenario document (already a mapping).
        fidelity: Optional CLI override for the file's ``fidelity``.
        machine_bus: Optional factory giving each machine its own event
            bus (the service uses per-machine buses so invariant
            checkers never conflate controllers); ``None`` leaves the
            process-default bus.
        policy: Optional CLI override for the allocation policy; wins
            over the file's top-level ``policy`` field, which in turn
            wins over the manager config's own ``policy``.
        only: When given, build only the named machines (a process-pool
            worker's shard); every section is still validated, so
            ``only=()`` validates the whole document while building
            nothing.

    Returns:
        ``(machines, placement_name, slo_tolerance)``.
    """
    fleet_spec = _require_mapping(data.get("fleet", {}), "fleet")
    n_machines = _get_int(fleet_spec, "fleet", "machines", default=2, minimum=1)
    socket = fleet_spec.get("socket", "xeon_d")
    if socket not in _SOCKETS:
        raise ChurnScenarioError(
            f"fleet.socket: unknown socket {socket!r}; use one of {sorted(_SOCKETS)}"
        )
    seed = _get_int(fleet_spec, "fleet", "seed", default=1234)
    interval_s = _get_number(fleet_spec, "fleet", "interval_s", default=1.0, positive=True)
    vcpus_per_vm = _get_int(fleet_spec, "fleet", "vcpus_per_vm", default=2, minimum=1)

    placement = data.get("placement", "first_fit")
    if isinstance(placement, dict):
        placement = placement.get("policy", "first_fit")
    if not isinstance(placement, str) or placement not in policy_names():
        raise ChurnScenarioError(
            f"placement: unknown policy {placement!r}; use one of {policy_names()}"
        )

    slo_spec = _require_mapping(data.get("slo", {}), "slo")
    tolerance = _get_number(slo_spec, "slo", "tolerance", default=0.05)
    if not 0.0 <= tolerance < 1.0:
        raise ChurnScenarioError(
            f"slo.tolerance: must be within [0, 1), got {tolerance}"
        )

    fleet_plan = None
    if "faults" in data:
        # Imported lazily: fault injection is opt-in per scenario.
        from repro.faults.plan import FaultPlan, FaultPlanError

        try:
            fleet_plan = FaultPlan.from_spec(
                _require_mapping(data["faults"], "faults")
            )
        except FaultPlanError as exc:
            raise ChurnScenarioError(f"faults: {exc}") from None

    try:
        if fidelity is not None:
            fidelity_spec = parse_fidelity({"fidelity": fidelity}, ctx="--fidelity")
        else:
            fidelity_spec = parse_fidelity(data)
    except ChurnScenarioError:
        raise
    except ScenarioError as exc:
        raise ChurnScenarioError(str(exc)) from None

    alloc_policy = policy
    if alloc_policy is None and "policy" in data:
        file_policy = data["policy"]
        if not isinstance(file_policy, str):
            raise ChurnScenarioError(
                f"policy: expected a string, got {type(file_policy).__name__}"
            )
        alloc_policy = file_policy
    if alloc_policy is not None:
        from repro.core.policies import canonical_name

        try:
            canonical_name(alloc_policy)
        except ValueError as exc:
            raise ChurnScenarioError(f"policy: {exc}") from None

    manager_spec = _require_mapping(
        data.get("manager", {"type": "dcat"}), "manager"
    )
    # Validate the manager spec up front (not per machine) so a sharded
    # build with an empty `only` still rejects a malformed document.
    try:
        build_manager(dict(manager_spec), policy=alloc_policy)
    except ScenarioError as exc:
        raise ChurnScenarioError(f"manager: {exc}") from None
    from repro.harness.scenario_file import _SOCKETS as SOCKET_FACTORIES

    only_set = None if only is None else set(only)
    machines: List[FleetMachine] = []
    for i in range(n_machines):
        name = f"m{i}"
        if only_set is not None and name not in only_set:
            continue
        machine = Machine(
            spec=SOCKET_FACTORIES[socket](),
            seed=derive_seed(seed, name),
            interval_s=interval_s,
        )
        try:
            manager = build_manager(dict(manager_spec), policy=alloc_policy)
        except ScenarioError as exc:
            raise ChurnScenarioError(f"manager: {exc}") from None
        machine_plan = None
        if fleet_plan is not None:
            from repro.faults.plan import FaultPlan

            machine_plan = FaultPlan(
                seed=derive_seed(fleet_plan.seed, name),
                rules=fleet_plan.rules,
            )
        machine_fidelity = dict(fidelity_spec)
        if machine_fidelity["mode"] != "analytical":
            # Per-host substrate seed: streams differ per machine, runs
            # stay deterministic.
            base = int(machine_fidelity.get("seed", 2024))
            machine_fidelity["seed"] = derive_seed(base, name)
        try:
            fleet_machine = FleetMachine(
                name=name,
                machine=machine,
                manager=manager,
                bus=machine_bus(name) if machine_bus is not None else None,
                vcpus_per_vm=vcpus_per_vm,
                fault_plan=machine_plan,
                substrate=substrate_from_spec(machine_fidelity),
            )
        except ValueError as exc:
            raise ChurnScenarioError(f"faults: {exc}") from None
        machines.append(fleet_machine)
    return machines, placement, tolerance


def load_churn_scenario(
    source: Union[str, Path, Dict[str, Any]],
    fidelity: Optional[str] = None,
    policy: Optional[str] = None,
    fleet_jobs: int = 1,
) -> Tuple[CloudFleet, float]:
    """Parse a churn scenario (dict, JSON string, or file path).

    A top-level ``fidelity`` field (string or ``{"mode": ..., **options}``
    object, see :func:`repro.harness.scenario_file.parse_fidelity`) selects
    the cache substrate for every machine; each host gets its own substrate
    instance under a seed derived from the substrate seed and the machine
    name, so exact tag-array streams differ per host but the run stays
    deterministic.  The ``fidelity`` argument (the CLI's ``--fidelity``)
    overrides the file's field, and the ``policy`` argument (the CLI's
    ``--policy``) likewise overrides the file's top-level ``policy`` and
    the manager config's ``policy``.

    ``fleet_jobs > 1`` builds a
    :class:`~repro.cloud.executor.ParallelCloudFleet` that shards the
    machines across that many worker processes; results and event streams
    are byte-identical to the serial fleet.  Call ``fleet.close()`` (or
    run via :func:`run_churn_scenario`) to release the workers.

    Returns:
        ``(fleet, duration_s)`` — a ready-to-run :class:`CloudFleet`.

    Raises:
        ChurnScenarioError: On any malformed field, naming field and entry.
    """
    if isinstance(source, dict):
        data = source
    else:
        path = Path(source)
        try:
            is_file = path.exists()
        except OSError:
            is_file = False
        if is_file:
            data = json.loads(path.read_text())
        else:
            try:
                data = json.loads(str(source))
            except json.JSONDecodeError:
                raise ChurnScenarioError(
                    f"churn scenario {source!r} is neither a file nor valid JSON"
                ) from None
    data = _require_mapping(data, "scenario")

    if fleet_jobs < 1:
        raise ChurnScenarioError(f"fleet_jobs: must be >= 1, got {fleet_jobs}")

    duration_s = _get_number(data, "scenario", "duration_s", default=30.0, positive=True)
    fleet_spec = _require_mapping(data.get("fleet", {}), "fleet")
    interval_s = _get_number(
        fleet_spec, "fleet", "interval_s", default=1.0, positive=True
    )
    steps_exact = duration_s / interval_s
    if abs(steps_exact - round(steps_exact)) > 1e-9 * max(1.0, abs(steps_exact)):
        raise ChurnScenarioError(
            f"scenario.duration_s: {duration_s} is not a whole number of "
            f"fleet.interval_s={interval_s} intervals (the fleet only "
            f"moves in whole intervals; it no longer rounds silently)"
        )

    tenants = _parse_tenants(data.get("tenants", []))
    if "poisson" in data:
        tenants = tenants + _parse_poisson(data["poisson"], duration_s)
    if not tenants:
        raise ChurnScenarioError(
            "scenario: needs a non-empty 'tenants' list and/or a 'poisson' stream"
        )
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ChurnScenarioError(f"tenants: duplicate tenant names {dupes}")

    if fleet_jobs > 1:
        # Imported lazily: the executor imports this module for its
        # worker-side shard builds.
        from repro.cloud.executor import ParallelCloudFleet

        parallel = ParallelCloudFleet(
            data,
            jobs=fleet_jobs,
            tenants=tenants,
            fidelity=fidelity,
            policy=policy,
        )
        return parallel, duration_s

    machines, placement, tolerance = build_fleet_machines(
        data, fidelity=fidelity, policy=policy
    )

    fleet = CloudFleet(
        machines=machines,
        policy=build_policy(placement),
        tenants=tenants,
        slo_tolerance=tolerance,
    )
    return fleet, duration_s


def run_churn_scenario(
    source: Union[str, Path, Dict[str, Any]],
    metrics: Optional[str] = None,
    trace: Optional[str] = None,
    fidelity: Optional[str] = None,
    policy: Optional[str] = None,
    fleet_jobs: int = 1,
) -> FleetResult:
    """Load and run a churn scenario end to end.

    Args:
        source: Scenario dict, JSON string, or file path.
        metrics: Optional path for a telemetry snapshot (Prometheus text
            plus a ``.json`` sibling): per-stage timings across every
            machine's loops, tenant lifecycle counters and per-tenant SLO
            ledgers.  The returned result is identical either way.
        trace: Optional path for a JSONL event trace of the fleet run
            (includes any ``FidelityDivergence`` stream from mixed mode).
        fidelity: Optional fidelity override (``--fidelity``); wins over
            the scenario file's own ``fidelity`` field.
        policy: Optional allocation-policy override (``--policy``); wins
            over the scenario file's ``policy`` fields.
        fleet_jobs: Worker processes for the fleet executor (``1`` runs
            serially); any value yields byte-identical results and traces.
    """
    if metrics is None and trace is None:
        fleet, duration_s = load_churn_scenario(
            source, fidelity=fidelity, policy=policy, fleet_jobs=fleet_jobs
        )
        try:
            return fleet.run(duration_s)
        finally:
            fleet.close()

    from contextlib import ExitStack

    from repro.engine.events import EventBus, JsonlTraceWriter, use_bus
    from repro.engine.pipeline import use_profiler
    from repro.obs.collectors import BusMetricsCollector, record_slo_stats
    from repro.obs.export import write_metrics
    from repro.obs.profiler import StageProfiler

    bus = EventBus()
    profiler: Optional[StageProfiler] = None
    if metrics is not None:
        profiler = StageProfiler()
        BusMetricsCollector(registry=profiler.registry, bus=bus)
    with ExitStack() as stack:
        if trace is not None:
            writer = stack.enter_context(JsonlTraceWriter(trace))
            bus.subscribe(writer)
        stack.enter_context(use_bus(bus))
        if profiler is not None:
            stack.enter_context(use_profiler(profiler))
        fleet, duration_s = load_churn_scenario(
            source, fidelity=fidelity, policy=policy, fleet_jobs=fleet_jobs
        )
        try:
            result = fleet.run(duration_s)
        finally:
            fleet.close()
    if profiler is not None and metrics is not None:
        record_slo_stats(profiler.registry, result.tenants)
        write_metrics(profiler.registry, metrics)
    return result
