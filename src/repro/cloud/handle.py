"""A serialized command interface around :class:`~repro.cloud.fleet.CloudFleet`.

The HTTP daemon (:mod:`repro.service`) mutates a fleet from an asyncio
event loop — concurrent requests, a background clock — while the
simulation itself is single-threaded and deterministic.  The
:class:`FleetHandle` is the bridge: every mutation (``admit``,
``detach``, ``tick``) is a synchronous critical section applied in one
total order, and every applied command is appended to a **journal**.
Replaying the journal against a freshly built, identically seeded fleet
reproduces the run byte-for-byte: :meth:`snapshot_json` of the live
handle and of the replayed handle compare equal.  That is the service's
determinism contract — async ingress decides only the *order* commands
enter the journal, never what any command does.

Reads (:meth:`tenant_stats`, :meth:`fleet_state`, :meth:`snapshot`) are
not journaled; they never mutate and so cannot perturb a replay.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Union

from repro.cloud.admission import RejectReason
from repro.cloud.fleet import CloudFleet
from repro.cloud.lifecycle import TenantSpec
from repro.errors import UnknownTenantError

__all__ = [
    "CommandRecord",
    "AdmitOutcome",
    "FleetHandle",
    "replay_journal",
]

#: Ops a journal may contain; anything else is a corrupt journal.
_OPS = ("admit", "detach", "tick")


@dataclass(frozen=True)
class CommandRecord:
    """One applied mutation: its sequence number, op, and JSON-ready args."""

    seq: int
    op: str
    args: Dict[str, Any]

    def payload(self) -> Dict[str, Any]:
        return {"seq": self.seq, "op": self.op, "args": dict(self.args)}


@dataclass(frozen=True)
class AdmitOutcome:
    """What one admission command decided.

    ``cos_id`` is the class of service the host's controller assigned
    (``None`` for non-dcat managers or rejected tenants).
    """

    admitted: bool
    tenant_id: str
    machine: Optional[str]
    reason: str
    baseline_ways: int
    cos_id: Optional[int] = None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "tenant_id": self.tenant_id,
            "admitted": self.admitted,
            "reason": self.reason,
            "baseline_ways": self.baseline_ways,
        }
        if self.machine is not None:
            body["machine"] = self.machine
        if self.cos_id is not None:
            body["cos_id"] = self.cos_id
        return body


class FleetHandle:
    """Owns a fleet; applies admit/detach/tick commands in one total order.

    The handle itself is not thread-safe — the daemon guarantees
    serialization by funnelling every mutation through one asyncio queue
    consumed by a single worker.  What the handle guarantees is that the
    *same command sequence* (the journal) always produces the same fleet,
    so the worker's applied order is the whole story.
    """

    def __init__(self, fleet: CloudFleet) -> None:
        self.fleet = fleet
        self.journal: List[CommandRecord] = []
        self.ticks = 0

    # -- mutations (journaled) --------------------------------------------

    def admit(
        self,
        name: str,
        baseline_ways: int,
        workload: Mapping[str, Any],
        lifetime_s: Optional[float] = None,
    ) -> AdmitOutcome:
        """Admit one tenant now (or reject it), journaling the command.

        Raises:
            ValueError: On an invalid spec (bad ways/lifetime/workload);
                invalid commands never reach the fleet or the journal.
        """
        spec = TenantSpec(
            name=name,
            arrival_s=self.fleet.now,
            baseline_ways=baseline_ways,
            workload=dict(workload),
            lifetime_s=lifetime_s,
        )
        spec.build_workload()  # validate eagerly: journal only sane commands
        if name in self.fleet.accountant.tenants:
            # The SLO ledger is forever (departed tenants keep theirs), so
            # ids are single-use.  Decided before the fleet is touched and
            # re-decided identically on replay from the replayed ledger.
            return AdmitOutcome(
                admitted=False,
                tenant_id=name,
                machine=None,
                reason=RejectReason.DUPLICATE_TENANT.value,
                baseline_ways=baseline_ways,
            )
        self._journal(
            "admit",
            {
                "name": name,
                "baseline_ways": baseline_ways,
                "workload": dict(workload),
                "lifetime_s": lifetime_s,
            },
        )
        record = self.fleet.admit_tenant(spec)
        if record.machine is None:
            return AdmitOutcome(
                admitted=False,
                tenant_id=name,
                machine=None,
                reason=record.reason,
                baseline_ways=baseline_ways,
            )
        return AdmitOutcome(
            admitted=True,
            tenant_id=name,
            machine=record.machine,
            reason=record.reason,
            baseline_ways=baseline_ways,
            cos_id=self.fleet.tenant_cos(name),
        )

    def detach(self, tenant_id: str) -> Dict[str, Any]:
        """Detach one resident tenant, journaling the command.

        Raises:
            UnknownTenantError: If the tenant is not resident (the command
                is not journaled — it would not mutate anything).
        """
        machine = self.fleet.machine_of(tenant_id)
        if machine is None:
            raise UnknownTenantError(
                f"tenant {tenant_id!r} is not resident in the fleet"
            )
        self._journal("detach", {"tenant_id": tenant_id})
        self.fleet.depart_tenant(tenant_id, reason="detached")
        return {
            "tenant_id": tenant_id,
            "machine": machine.name,
            "reason": "detached",
        }

    def tick(self) -> float:
        """Advance the whole fleet one interval; returns the new clock."""
        self._journal("tick", {})
        self.fleet.step()
        self.ticks += 1
        return self.fleet.now

    def _journal(self, op: str, args: Dict[str, Any]) -> None:
        self.journal.append(
            CommandRecord(seq=len(self.journal), op=op, args=args)
        )

    # -- replay ------------------------------------------------------------

    def apply(self, record: Union[CommandRecord, Mapping[str, Any]]) -> Any:
        """Apply one journaled command (replay path).

        Dispatches to the same :meth:`admit`/:meth:`detach`/:meth:`tick`
        the live daemon uses, so the command re-journals itself and the
        replayed handle's journal matches the source journal.
        """
        if isinstance(record, CommandRecord):
            op, args = record.op, record.args
        else:
            op, args = record["op"], record["args"]
        if op == "admit":
            return self.admit(
                name=args["name"],
                baseline_ways=args["baseline_ways"],
                workload=args["workload"],
                lifetime_s=args.get("lifetime_s"),
            )
        if op == "detach":
            return self.detach(args["tenant_id"])
        if op == "tick":
            return self.tick()
        raise ValueError(f"unknown journal op {op!r}; expected one of {_OPS}")

    def journal_payload(self) -> List[Dict[str, Any]]:
        """The journal as JSON-ready dicts (the ``GET /v1/trace`` body)."""
        return [record.payload() for record in self.journal]

    # -- reads (not journaled) ---------------------------------------------

    def tenant_stats(self, tenant_id: str) -> Dict[str, Any]:
        """One tenant's SLO ledger as a JSON-ready dict.

        Raises:
            UnknownTenantError: If no ledger exists (never admitted).
        """
        stats = self.fleet.accountant.tenants.get(tenant_id)
        if stats is None:
            raise UnknownTenantError(f"tenant {tenant_id!r} has no SLO ledger")
        return {
            "tenant_id": stats.tenant_id,
            "machine": stats.machine,
            "admitted_s": stats.admitted_s,
            "departed_s": stats.departed_s,
            "resident": self.fleet.machine_of(tenant_id) is not None,
            "active_intervals": stats.active_intervals,
            "violation_intervals": stats.violation_intervals,
            "violation_fraction": stats.violation_fraction,
            "mean_normalized_ipc": stats.mean_normalized_ipc,
            "violation_spans": [list(span) for span in stats.violation_spans],
        }

    def fleet_state(self) -> Dict[str, Any]:
        """Machine occupancy and controller state populations."""
        populations = self.fleet.state_populations()
        machines = []
        for machine in self.fleet.machines:
            entry: Dict[str, Any] = {
                "name": machine.name,
                "residents": sorted(machine.residents),
                "reserved_ways": machine.reserved_ways,
                "free_ways": machine.free_ways,
                "free_thread_slots": machine.free_thread_slots,
            }
            states = populations.get(machine.name)
            if states is not None:
                entry["states"] = states
            machines.append(entry)
        return {
            "now": self.fleet.now,
            "ticks": self.ticks,
            "policy": self.fleet.policy.name,
            "machines": machines,
            "summary": self.fleet.accountant.fleet_summary(),
        }

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything determinism-relevant the run produced, canonically.

        Pure simulation state: per-machine per-tenant interval timelines,
        the placement log, SLO ledgers and the fleet clock.  Deliberately
        excludes wall-clock data (request latencies live only in loadgen
        reports), so online and replayed runs can compare equal.
        """
        results = self.fleet.machine_results()
        machines: Dict[str, Any] = {}
        for machine in self.fleet.machines:
            result = results[machine.name]
            timelines: Dict[str, Any] = {}
            for tid in sorted(result.records):
                timelines[tid] = [
                    [
                        rec.time_s,
                        rec.phase_name,
                        rec.ways,
                        rec.llc_hit_rate,
                        rec.ipc,
                        rec.instructions,
                        rec.cycles,
                        rec.state.value if rec.state is not None else None,
                    ]
                    for rec in result.records[tid]
                ]
            machines[machine.name] = timelines
        return {
            "now": self.fleet.now,
            "ticks": self.ticks,
            "placements": [
                [p.time_s, p.tenant_id, p.machine, p.reason]
                for p in self.fleet.placements
            ],
            "tenants": {
                tid: self.tenant_stats(tid)
                for tid in sorted(self.fleet.accountant.tenants)
            },
            "machines": machines,
        }

    def snapshot_json(self) -> bytes:
        """The canonical snapshot encoding byte-identity is judged on."""
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def snapshot_digest(self) -> str:
        return hashlib.sha256(self.snapshot_json()).hexdigest()


def replay_journal(
    build_fleet: Callable[[], CloudFleet],
    journal: Iterable[Union[CommandRecord, Mapping[str, Any]]],
) -> FleetHandle:
    """Rebuild a fleet and drive it through a recorded journal.

    ``build_fleet`` must construct the fleet exactly as the original was
    built (same machine seeds, manager, placement policy, substrate) —
    the service config's builder is deterministic, so calling it twice
    yields interchangeable fleets.  Returns the replayed handle; compare
    :meth:`FleetHandle.snapshot_json` against the original's for the
    byte-identity check.
    """
    handle = FleetHandle(build_fleet())
    for record in journal:
        handle.apply(record)
    return handle
