"""Tenant lifecycle: who arrives, when, and for how long.

dCat's setting is IaaS — tenants come and go while the controller defends
baselines — so the cloud layer is driven by a stream of
:class:`TenantSpec` entries ordered by arrival time.  Two generators
produce such streams:

* :func:`poisson_tenants` — open-loop Poisson arrivals with exponential
  lifetimes drawn from a seeded :class:`random.Random`, so the same seed
  always yields the same tenant trace (the determinism contract every
  experiment relies on);
* :func:`scripted_tenants` — explicit entries, typically parsed from a
  churn-scenario file (see :mod:`repro.cloud.scenario`).

A tenant's workload is described in the same declarative ``{"type": ...}``
shape scenario files use (:func:`repro.harness.scenario_file.build_workload`),
so one vocabulary covers fixed-VM scenarios and churn traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence

from repro.workloads.base import Workload

__all__ = ["TenantSpec", "MixEntry", "poisson_tenants", "scripted_tenants"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's lifecycle entry.

    Attributes:
        name: Unique tenant id (becomes the VM / workload id everywhere).
        arrival_s: Virtual time at which the tenant asks for admission.
        baseline_ways: Contracted LLC ways (the reservation admission
            control and SLO accounting are defined against).
        workload: Scenario-file style workload description
            (``{"type": "mlr", "wss_mb": 8, ...}``).
        lifetime_s: Lease length; the tenant departs ``lifetime_s`` after
            admission.  ``None`` means it stays until its workload finishes
            (or the simulation ends).
    """

    name: str
    arrival_s: float
    baseline_ways: int
    workload: Mapping[str, Any] = field(default_factory=dict)
    lifetime_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(f"tenant {self.name!r}: arrival_s must be >= 0")
        if self.baseline_ways < 1:
            raise ValueError(f"tenant {self.name!r}: baseline_ways must be >= 1")
        if self.lifetime_s is not None and self.lifetime_s <= 0:
            raise ValueError(f"tenant {self.name!r}: lifetime_s must be positive")
        if "type" not in self.workload:
            raise ValueError(f"tenant {self.name!r}: workload needs a 'type'")

    def build_workload(self) -> Workload:
        """Instantiate the tenant's workload (fresh on every call)."""
        from repro.harness.scenario_file import build_workload

        spec = dict(self.workload)
        return build_workload(spec["type"], self.name, spec)


@dataclass(frozen=True)
class MixEntry:
    """One option of a Poisson stream's workload mix.

    Attributes:
        workload: Scenario-file style workload description.
        baseline_ways: Reservation tenants drawn from this entry request.
        weight: Relative draw probability within the mix.
        mean_lifetime_s: Mean of the exponential lease length; ``None``
            means tenants from this entry run until their workload finishes.
    """

    workload: Mapping[str, Any]
    baseline_ways: int = 3
    weight: float = 1.0
    mean_lifetime_s: Optional[float] = 12.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("mix entry weight must be positive")
        if self.baseline_ways < 1:
            raise ValueError("mix entry baseline_ways must be >= 1")
        if self.mean_lifetime_s is not None and self.mean_lifetime_s <= 0:
            raise ValueError("mix entry mean_lifetime_s must be positive")
        if "type" not in self.workload:
            raise ValueError("mix entry workload needs a 'type'")


def poisson_tenants(
    rate_per_s: float,
    duration_s: float,
    mix: Sequence[MixEntry],
    seed: int = 1234,
    name_prefix: str = "tenant",
) -> List[TenantSpec]:
    """A Poisson arrival stream over ``[0, duration_s)``.

    Inter-arrival gaps are exponential with mean ``1 / rate_per_s``; each
    arrival draws a :class:`MixEntry` weighted by ``weight`` and, when the
    entry has a mean lifetime, an exponential lease.  Everything comes from
    one ``random.Random(seed)``, so the stream is a pure function of its
    arguments.

    Raises:
        ValueError: For a non-positive rate/duration or an empty mix.
    """
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if not mix:
        raise ValueError("the workload mix cannot be empty")
    rng = random.Random(seed)
    total_weight = sum(entry.weight for entry in mix)
    tenants: List[TenantSpec] = []
    t = rng.expovariate(rate_per_s)
    index = 0
    while t < duration_s:
        pick = rng.random() * total_weight
        cursor = 0.0
        chosen = mix[-1]
        for entry in mix:
            cursor += entry.weight
            if pick < cursor:
                chosen = entry
                break
        lifetime = (
            rng.expovariate(1.0 / chosen.mean_lifetime_s)
            if chosen.mean_lifetime_s is not None
            else None
        )
        tenants.append(
            TenantSpec(
                name=f"{name_prefix}-{index}",
                arrival_s=t,
                baseline_ways=chosen.baseline_ways,
                workload=dict(chosen.workload),
                lifetime_s=lifetime,
            )
        )
        index += 1
        t += rng.expovariate(rate_per_s)
    return tenants


def scripted_tenants(entries: Sequence[TenantSpec]) -> List[TenantSpec]:
    """Validate and order an explicit tenant trace by (arrival, name).

    Raises:
        ValueError: On duplicate tenant names.
    """
    names = [t.name for t in entries]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate tenant names: {dupes}")
    return sorted(entries, key=lambda t: (t.arrival_s, t.name))
