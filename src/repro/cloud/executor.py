"""The process-pool fleet executor: 1k machines without 1k× the wall clock.

:class:`ParallelCloudFleet` shards a churn scenario's machines across
persistent worker processes.  Each worker rebuilds its shard from the same
scenario document with the same crc32-derived per-machine seeds
(:func:`repro.engine.runner.derive_seed` via
:func:`~repro.cloud.scenario.build_fleet_machines`), so a machine's
simulation is bit-identical wherever it runs — the discipline
``run_experiments --jobs`` established, applied one layer down.

The parent keeps a **mirror** of every machine: a real
:class:`~repro.cloud.fleet.FleetMachine` with a shared-cache manager and
no fault injectors, built from a transformed copy of the scenario.  The
mirror tracks exactly the state global decisions read — thread slots,
COS capacity, reserved ways, resident specs, workload phase schedules —
so placement policies, admission control, and SLO accounting run in the
parent unchanged, while the worker's replica does the actual simulation.
Mirror workloads never advance and mirror sims never step.

Determinism contract (the serial fleet is the spec):

* every lifecycle op dispatches to the owning worker immediately, and the
  worker's control-plane events are re-emitted on the parent bus between
  the parent's own ``TenantPlaced``/``TenantAdmitted`` (or before
  ``TenantDeparted``) — the exact slots the serial fleet fills;
* one ``step`` barrier per fleet interval; per-machine interval events
  are re-emitted in fleet order, then observations are folded into the
  parent's :class:`~repro.cloud.slo.SloAccountant` in fleet order, so
  ``SloViolated`` lands after all interval events, as in serial;
* workers compute entitled IPC per machine *before* stepping it (the
  serial snapshot point); entitlements only read that machine's state,
  so per-shard computation equals the serial global snapshot;
* events cross the pipe as pickled :class:`~repro.engine.events.Event`
  dataclasses — exact float and tuple round-trip, no re-parsing.

The result: JSONL traces, placements, SLO ledgers, and
:class:`~repro.cloud.fleet.FleetResult` are byte-identical for any
``--fleet-jobs`` value.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cloud.fleet import CloudFleet, FleetMachine, entitled_ipc
from repro.cloud.lifecycle import TenantSpec
from repro.cloud.placement import build_policy
from repro.engine.events import NULL_BUS, Event, EventBus, set_default_bus
from repro.platform.sim import SimulationResult

__all__ = ["ParallelCloudFleet"]


class _WorkerFailure:
    """An exception crossing the pipe; the parent re-raises it."""

    def __init__(self, message: str) -> None:
        self.message = message


class _SliceRecorder:
    """Collects events between :meth:`take` calls (one op's slice)."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def take(self) -> List[Event]:
        taken, self.events = self.events, []
        return taken


def _controller_cos(machine: FleetMachine, tenant_id: str) -> Optional[int]:
    controller = getattr(machine.sim.manager, "controller", None)
    if controller is None:
        return None
    record = controller.records.get(tenant_id)
    return record.cos_id if record is not None else None


def _worker_main(
    conn,
    data: Dict[str, Any],
    shard: Sequence[str],
    fidelity: Optional[str],
    policy: Optional[str],
    capture: bool,
    checkers: bool,
) -> None:
    """One worker: build the shard, then serve commands until ``stop``.

    The first act is dropping any fork-inherited default bus — a parent
    trace writer must see each event exactly once, re-emitted by the
    parent, never directly from a worker.  Every machine gets an explicit
    bus: a captured one when the parent traces, the null bus otherwise.
    """
    set_default_bus(None)
    from repro.cloud.scenario import build_fleet_machines

    recorder = _SliceRecorder() if capture else None
    buses: Dict[str, EventBus] = {}

    def machine_bus(name: str) -> EventBus:
        mbus = EventBus()
        if recorder is not None:
            mbus.subscribe(recorder)
        buses[name] = mbus
        return mbus

    factory = machine_bus if (capture or checkers) else (lambda name: NULL_BUS)
    machines, _, _ = build_fleet_machines(
        data, fidelity=fidelity, machine_bus=factory, policy=policy, only=shard
    )
    by_name = {m.name: m for m in machines}
    checker_objs = {}
    if checkers:
        from repro.faults.invariants import InvariantChecker

        for machine in machines:
            controller = getattr(machine.sim.manager, "controller", None)
            if controller is not None:
                checker_objs[machine.name] = InvariantChecker(
                    total_ways=controller.total_ways,
                    config=controller.config,
                    bus=buses[machine.name],
                )

    def take_events() -> List[Event]:
        return recorder.take() if recorder is not None else []

    # The construction slice: controller initialization emits events
    # (e.g. MasksProgrammed) while the shard is built; ship them so the
    # parent can re-emit them in fleet order before any lifecycle op.
    conn.send(take_events())

    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        try:
            cmd = msg[0]
            if cmd == "stop":
                conn.send(None)
                break
            elif cmd == "admit":
                _, tick, name, spec, now = msg
                machine = by_name[name]
                machine.catch_up(tick)
                machine.admit(spec, spec.build_workload(), now)
                conn.send((take_events(), _controller_cos(machine, spec.name)))
            elif cmd == "depart":
                _, tick, name, tenant_id = msg
                by_name[name].depart(tenant_id)
                conn.send(take_events())
            elif cmd == "step":
                _, tick = msg
                out = []
                for machine in machines:
                    if not machine.should_step:
                        continue
                    machine.catch_up(tick)
                    # Entitlements from the phase about to execute, under
                    # the pre-step DRAM latency — the serial snapshot.
                    dram = machine.sim.dram_latency_cycles
                    entitlements = {
                        tid: entitled_ipc(
                            machine.machine, res.vm, dram_latency_cycles=dram
                        )
                        for tid, res in machine.residents.items()
                    }
                    machine.sim.step()
                    events = take_events()
                    obs = []
                    for tid in machine.residents:
                        timeline = machine.sim.result.records[tid]
                        if not timeline:
                            continue
                        rec = timeline[-1]
                        active = (
                            rec.phase_name is not None
                            and "idle" not in rec.phase_name
                        )
                        obs.append(
                            (tid, rec.ipc, entitlements.get(tid), active)
                        )
                    finished = [
                        tid
                        for tid, res in machine.residents.items()
                        if res.vm.workload.finished
                    ]
                    out.append((machine.name, events, obs, finished))
                conn.send(out)
            elif cmd == "result":
                _, tick = msg
                payload = {}
                for machine in machines:
                    machine.catch_up(tick)
                    faults = (
                        machine.injector.faults_by_kind()
                        if machine.injector is not None
                        else None
                    )
                    payload[machine.name] = (machine.sim.result, faults)
                conn.send(payload)
            elif cmd == "states":
                payload = {}
                for machine in machines:
                    controller = getattr(
                        machine.sim.manager, "controller", None
                    )
                    if controller is None:
                        payload[machine.name] = None
                        continue
                    counts: Dict[str, int] = {}
                    for rec in controller.records.values():
                        key = rec.state.value
                        counts[key] = counts.get(key, 0) + 1
                    payload[machine.name] = dict(sorted(counts.items()))
                conn.send(payload)
            elif cmd == "checker_stats":
                violations = sum(
                    len(c.violations) for c in checker_objs.values()
                )
                intervals = sum(
                    c.intervals_checked for c in checker_objs.values()
                )
                conn.send((violations, intervals))
            else:
                conn.send(_WorkerFailure(f"unknown command {cmd!r}"))
        except Exception:
            conn.send(_WorkerFailure(traceback.format_exc()))
    conn.close()


class ParallelCloudFleet(CloudFleet):
    """A :class:`CloudFleet` whose machines simulate in worker processes.

    Drop-in for the serial fleet: same constructor vocabulary (via a
    scenario document), same ``run``/``step``/``admit_tenant``/
    ``depart_tenant``/result surface, byte-identical outputs.  Call
    :meth:`close` when done (``run_churn_scenario`` and the service
    daemon do) to release the workers.

    Args:
        data: The churn-scenario/service-config document (the fleet
            vocabulary sections; ``tenants``/``poisson`` are ignored here
            — pass the parsed stream via ``tenants``).
        jobs: Worker processes (capped at the machine count).
        tenants: The scripted lifecycle stream (empty for the service).
        fidelity: Optional fidelity override, forwarded to workers.
        policy: Optional allocation-policy override, forwarded to workers.
        bus: Event bus for lifecycle events (defaults to the process
            default; when it is active, workers capture and ship their
            event streams for in-order re-emission).
        checkers: Build an :class:`~repro.faults.invariants.InvariantChecker`
            per dcat machine inside the workers (the service's watchdogs);
            query the fold with :meth:`checker_stats`.
    """

    def __init__(
        self,
        data: Dict[str, Any],
        jobs: int,
        tenants: Sequence[TenantSpec],
        fidelity: Optional[str] = None,
        policy: Optional[str] = None,
        bus: Optional[EventBus] = None,
        checkers: bool = False,
    ) -> None:
        from repro.cloud.scenario import build_fleet_machines

        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        # Validate the full document once, building zero machines.
        _, placement, tolerance = build_fleet_machines(
            data, fidelity=fidelity, policy=policy, only=()
        )
        mirror_data = dict(data)
        mirror_data["manager"] = {"type": "shared"}
        mirror_data.pop("faults", None)
        mirror_data.pop("fidelity", None)
        mirror_data.pop("policy", None)
        mirrors, _, _ = build_fleet_machines(
            mirror_data,
            fidelity="analytical",
            machine_bus=lambda name: NULL_BUS,
        )
        super().__init__(
            machines=mirrors,
            policy=build_policy(placement),
            tenants=tenants,
            bus=bus,
            slo_tolerance=tolerance,
        )
        self._has_faults = "faults" in data
        self._capture = self.bus.active
        self._order = {m.name: i for i, m in enumerate(mirrors)}
        self._finished: set = set()
        self._cos_cache: Dict[str, int] = {}
        self._results_cache: Optional[
            Tuple[int, Dict[str, SimulationResult], Dict[str, Dict[str, int]]]
        ] = None
        self._workers: List[Tuple[Any, Any]] = []
        self._worker_of: Dict[str, Any] = {}
        self._spawn(data, jobs, fidelity, policy, checkers)
        for machine in mirrors:
            self._instrument(machine)

    # -- worker plumbing ---------------------------------------------------

    def _spawn(
        self,
        data: Dict[str, Any],
        jobs: int,
        fidelity: Optional[str],
        policy: Optional[str],
        checkers: bool,
    ) -> None:
        names = [m.name for m in self.machines]
        jobs = min(jobs, len(names))
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        base, extra = divmod(len(names), jobs)
        start = 0
        for w in range(jobs):
            size = base + (1 if w < extra else 0)
            shard = tuple(names[start : start + size])
            start += size
            if not shard:
                continue
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    data,
                    shard,
                    fidelity,
                    policy,
                    self._capture,
                    checkers,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._workers.append((proc, parent_conn))
            for name in shard:
                self._worker_of[name] = parent_conn
        # Shards are contiguous and built in fleet order, so draining the
        # construction slices worker by worker re-emits machine-build
        # events exactly as the serial fleet's constructor would.
        for _, conn in self._workers:
            self._emit_events(self._checked(conn.recv()))

    def _instrument(self, machine: FleetMachine) -> None:
        """Forward a mirror's churn ops to its worker's replica.

        The base class's ``admit_tenant``/``depart_tenant`` call
        ``machine.admit``/``machine.depart`` between their lifecycle-event
        emissions; forwarding from inside those calls re-emits the
        worker's control-plane events in exactly the serial slots.
        ``catch_up`` becomes a no-op — the worker replica catches up on
        dispatch, and the mirror's sim (with VMs attached) must never
        skip.
        """
        mirror_admit = machine.admit
        mirror_depart = machine.depart

        def admit(spec, workload, now):
            vm = mirror_admit(spec, workload, now)
            events, cos_id = self._ask(
                machine.name, ("admit", self._tick, machine.name, spec, now)
            )
            self._emit_events(events)
            if cos_id is not None:
                self._cos_cache[spec.name] = cos_id
            self._results_cache = None
            return vm

        def depart(tenant_id):
            resident = mirror_depart(tenant_id)
            events = self._ask(
                machine.name, ("depart", self._tick, machine.name, tenant_id)
            )
            self._emit_events(events)
            self._cos_cache.pop(tenant_id, None)
            self._results_cache = None
            return resident

        machine.admit = admit
        machine.depart = depart
        machine.catch_up = lambda fleet_tick: None

    def _ask(self, machine_name: str, msg: Tuple) -> Any:
        conn = self._worker_of[machine_name]
        conn.send(msg)
        return self._checked(conn.recv())

    def _broadcast(self, msg: Tuple) -> List[Any]:
        for _, conn in self._workers:
            conn.send(msg)
        return [self._checked(conn.recv()) for _, conn in self._workers]

    @staticmethod
    def _checked(reply: Any) -> Any:
        if isinstance(reply, _WorkerFailure):
            raise RuntimeError(f"fleet worker failed:\n{reply.message}")
        return reply

    def _emit_events(self, events: Sequence[Event]) -> None:
        if events and self.bus.active:
            for event in events:
                self.bus.emit(event)

    # -- overridden fleet machinery ----------------------------------------

    def step(self) -> None:
        """One fleet interval, with the simulation barrier in the workers."""
        now = self._time_s
        self._process_departures(now)
        self._process_arrivals(now)
        self._results_cache = None
        merged: Dict[str, Tuple] = {}
        for reply in self._broadcast(("step", self._tick)):
            for name, events, obs, finished in reply:
                merged[name] = (events, obs, finished)
        order = sorted(merged, key=self._order.__getitem__)
        for name in order:
            self._emit_events(merged[name][0])
        finished_now: set = set()
        for name in order:
            _, obs, finished = merged[name]
            for tid, ipc, entitled, active in obs:
                self.accountant.observe(
                    tid, now, ipc=ipc, entitled_ipc=entitled, active=active
                )
            finished_now.update(finished)
        self._finished = finished_now
        self._tick += 1

    def _due_departures(self, machine: FleetMachine, now: float):
        """Worker-reported completions stand in for ``workload.finished``
        (mirror workloads never advance); same priority as serial."""
        due = []
        for tid, res in machine.residents.items():
            if tid in self._finished:
                due.append((tid, "finished"))
            elif res.lease_end_s <= now:
                due.append((tid, "lease-end"))
        return due

    def _fleet_quiescent(self) -> bool:
        # Mirrors carry no injectors: with a fault plan in play every
        # host steps every interval, so the clock never bulk-skips.
        return not self._has_faults and super()._fleet_quiescent()

    # -- overridden state hooks --------------------------------------------

    def _collect_results(
        self,
    ) -> Tuple[Dict[str, SimulationResult], Dict[str, Dict[str, int]]]:
        if (
            self._results_cache is not None
            and self._results_cache[0] == self._tick
        ):
            return self._results_cache[1], self._results_cache[2]
        merged: Dict[str, Tuple] = {}
        for reply in self._broadcast(("result", self._tick)):
            merged.update(reply)
        results: Dict[str, SimulationResult] = {}
        faults: Dict[str, Dict[str, int]] = {}
        for machine in self.machines:
            sim_result, machine_faults = merged[machine.name]
            results[machine.name] = sim_result
            if machine_faults is not None:
                faults[machine.name] = machine_faults
        self._results_cache = (self._tick, results, faults)
        return results, faults

    def machine_results(self) -> Dict[str, SimulationResult]:
        return self._collect_results()[0]

    def fault_counts(self) -> Dict[str, Dict[str, int]]:
        return self._collect_results()[1]

    def tenant_cos(self, tenant_id: str) -> Optional[int]:
        return self._cos_cache.get(tenant_id)

    def state_populations(self) -> Dict[str, Optional[Dict[str, int]]]:
        merged: Dict[str, Optional[Dict[str, int]]] = {}
        for reply in self._broadcast(("states",)):
            merged.update(reply)
        return {m.name: merged[m.name] for m in self.machines}

    def checker_stats(self) -> Tuple[int, int]:
        violations = 0
        intervals = 0
        for reply in self._broadcast(("checker_stats",)):
            violations += reply[0]
            intervals += reply[1]
        return (violations, intervals)

    def close(self) -> None:
        """Stop and reap the worker processes (idempotent)."""
        workers, self._workers = self._workers, []
        self._worker_of = {}
        for _, conn in workers:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc, conn in workers:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=10)
