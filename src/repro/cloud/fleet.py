"""A fleet of machines under tenant churn.

The tentpole of the cloud layer: :class:`CloudFleet` drives N
:class:`FleetMachine` hosts — each one a full
:class:`~repro.platform.sim.CloudSimulation` with its own cache manager —
through a tenant lifecycle stream.  One fleet interval is:

1. **depart** — tenants whose lease expired or whose workload finished are
   detached from their machine (COS, RMID and vCPUs return to the pools);
2. **admit** — arrivals due this interval are placed by the configured
   :class:`~repro.cloud.placement.PlacementPolicy`; admission control
   rejects tenants no machine can host (reserved ways, vCPU slots, or COS
   classes exhausted);
3. **step** — every machine advances one simulation interval;
4. **account** — each resident tenant's measured IPC is compared against
   its entitlement (deterministic IPC at its reserved ways) by the
   :class:`~repro.cloud.slo.SloAccountant`.

Lifecycle decisions publish ``TenantAdmitted`` / ``TenantPlaced`` /
``TenantRejected`` / ``TenantDeparted`` on the event bus, so the JSONL
trace and metrics sinks see fleet churn exactly like any other layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cache.analytical import AccessPattern
from repro.cloud.admission import classify_rejection
from repro.cloud.lifecycle import TenantSpec, scripted_tenants
from repro.cloud.placement import PlacementPolicy
from repro.cloud.slo import SloAccountant, TenantSloStats
from repro.engine.events import (
    EventBus,
    TenantAdmitted,
    TenantDeparted,
    TenantPlaced,
    TenantRejected,
    get_default_bus,
)
from repro.errors import UnknownTenantError
from repro.platform.machine import Machine
from repro.platform.managers import CacheManager
from repro.platform.sim import CloudSimulation, SimulationResult
from repro.platform.vm import VirtualMachine

__all__ = [
    "ResidentTenant",
    "FleetMachine",
    "PlacementRecord",
    "FleetResult",
    "CloudFleet",
    "entitled_ipc",
]


def entitled_ipc(
    machine: Machine,
    vm: VirtualMachine,
    dram_latency_cycles: Optional[float] = None,
) -> Optional[float]:
    """The IPC the tenant's reservation alone entitles it to, this phase.

    Deterministic (noise-free): the analytical hit rate of the current
    phase at ``baseline_ways``, through the core model's CPI.  Passing the
    machine's *loaded* DRAM latency keeps the entitlement cache-side — a
    tenant slowed only by fleet-wide memory-bandwidth load is not having
    its cache contract violated.  ``None`` once the workload has finished.
    """
    phase = vm.workload.current_phase()
    if phase is None:
        return None
    hit = 0.0
    if (
        phase.pattern is not AccessPattern.NONE
        and phase.wss_bytes > 0
        and phase.behavior.l1_miss_ratio > 0
    ):
        ways = min(vm.baseline_ways, machine.num_ways)
        hit = machine.analytic.hit_rate_fp(phase.footprint, ways)
    cpi = machine.core_models[vm.vcpus[0]].cpi(
        phase.behavior, hit, dram_latency=dram_latency_cycles
    )
    return 1.0 / cpi


@dataclass
class ResidentTenant:
    """A tenant currently hosted on one machine."""

    spec: TenantSpec
    vm: VirtualMachine
    admitted_s: float

    @property
    def lease_end_s(self) -> float:
        if self.spec.lifetime_s is None:
            return float("inf")
        return self.admitted_s + self.spec.lifetime_s


class FleetMachine:
    """One host of the fleet: a machine, its manager, and resource pools.

    Tracks the three admission budgets — hardware-thread slots, allocatable
    COS classes, and reserved LLC ways — and performs attach/detach against
    its :class:`~repro.platform.sim.CloudSimulation`.

    Args:
        name: Fleet-unique machine name.
        machine: The simulated host.
        manager: Its cache-management regime (one instance per machine).
        bus: Event bus handed to the simulation.
        vcpus_per_vm: Dedicated hardware threads per tenant (paper: 2).
        fault_plan: Optional :class:`~repro.faults.plan.FaultPlan` to
            inject on this host's control loop (dcat managers only); give
            each machine its own derived seed so schedules differ.
        substrate: Optional :class:`~repro.platform.substrate.CacheSubstrate`
            for this host's simulation (one instance per machine); defaults
            to the process default fidelity.
    """

    def __init__(
        self,
        name: str,
        machine: Machine,
        manager: CacheManager,
        bus: Optional[EventBus] = None,
        vcpus_per_vm: int = 2,
        fault_plan=None,
        substrate=None,
    ) -> None:
        if vcpus_per_vm < 1:
            raise ValueError("vcpus_per_vm must be >= 1")
        self.name = name
        self.machine = machine
        self.vcpus_per_vm = vcpus_per_vm
        self.sim = CloudSimulation(machine, [], manager, bus=bus, substrate=substrate)
        self.injector = None
        if fault_plan is not None:
            # Imported lazily: fault injection is opt-in per scenario.
            from repro.faults.injectors import FaultInjector

            controller = getattr(manager, "controller", None)
            if controller is None:
                raise ValueError(
                    f"machine {name!r}: fault injection requires a dcat "
                    f"manager (other regimes have no control loop to fault)"
                )
            self.injector = FaultInjector(fault_plan).install(controller)
        self.residents: Dict[str, ResidentTenant] = {}
        self.reserved_ways = 0
        self._free_threads: List[int] = list(range(machine.spec.num_threads))
        # COS0 is the unmanaged default; the rest are allocatable tenants.
        self._cos_capacity = machine.pqos.cap_get().num_cos - 1

    # -- capacity ----------------------------------------------------------

    @property
    def free_ways(self) -> int:
        """Reserved-way headroom (not the controller's live free pool)."""
        return self.machine.num_ways - self.reserved_ways

    @property
    def free_thread_slots(self) -> int:
        return len(self._free_threads) // self.vcpus_per_vm

    def fits(self, baseline_ways: int) -> bool:
        """Whether one more tenant with this reservation can be hosted."""
        return (
            len(self._free_threads) >= self.vcpus_per_vm
            and len(self.residents) < self._cos_capacity
            and self.reserved_ways + baseline_ways <= self.machine.num_ways
        )

    # -- churn -------------------------------------------------------------

    def admit(self, spec: TenantSpec, workload, now: float) -> VirtualMachine:
        """Attach a tenant: pin the lowest free threads and register it."""
        if not self.fits(spec.baseline_ways):
            raise ValueError(f"machine {self.name!r} cannot host {spec.name!r}")
        vcpus = tuple(self._free_threads[: self.vcpus_per_vm])
        vm = VirtualMachine(
            name=spec.name,
            workload=workload,
            vcpus=vcpus,
            baseline_ways=spec.baseline_ways,
        )
        self.sim.attach_vm(vm)
        del self._free_threads[: self.vcpus_per_vm]
        self.reserved_ways += spec.baseline_ways
        self.residents[spec.name] = ResidentTenant(
            spec=spec, vm=vm, admitted_s=now
        )
        return vm

    def depart(self, tenant_id: str) -> ResidentTenant:
        """Detach a tenant and return its pooled resources.

        Raises:
            UnknownTenantError: If no such tenant is resident here.
        """
        if tenant_id not in self.residents:
            raise UnknownTenantError(
                f"tenant {tenant_id!r} is not resident on machine {self.name!r}"
            )
        resident = self.residents.pop(tenant_id)
        self.sim.detach_vm(tenant_id)
        self._free_threads.extend(resident.vm.vcpus)
        self._free_threads.sort()
        self.reserved_ways -= resident.spec.baseline_ways
        return resident


@dataclass(frozen=True)
class PlacementRecord:
    """One admission decision (kept in arrival order)."""

    time_s: float
    tenant_id: str
    machine: Optional[str]  # None => rejected
    reason: str  # "placed" or why the tenant was rejected


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    interval_s: float
    machines: Dict[str, SimulationResult] = field(default_factory=dict)
    tenants: Dict[str, TenantSloStats] = field(default_factory=dict)
    placements: List[PlacementRecord] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    #: Applied fault counts per machine, keyed by fault kind — empty
    #: unless the fleet ran with per-machine fault plans.
    faults: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def admitted(self) -> List[PlacementRecord]:
        return [p for p in self.placements if p.machine is not None]

    @property
    def rejected(self) -> List[PlacementRecord]:
        return [p for p in self.placements if p.machine is None]


class CloudFleet:
    """Drives a machine fleet through a tenant lifecycle stream.

    Args:
        machines: The hosts (names must be unique; equal intervals).
        policy: Placement policy for arrivals.
        tenants: The lifecycle stream (any order; sorted internally).
        bus: Event bus for tenant lifecycle events (defaults to the
            process default bus, so ``--trace`` captures fleet churn).
        slo_tolerance: Relative shortfall tolerated before an interval
            counts as an SLO violation.
    """

    def __init__(
        self,
        machines: Sequence[FleetMachine],
        policy: PlacementPolicy,
        tenants: Sequence[TenantSpec],
        bus: Optional[EventBus] = None,
        slo_tolerance: float = 0.05,
    ) -> None:
        if not machines:
            raise ValueError("a fleet needs at least one machine")
        names = [m.name for m in machines]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate machine names: {names}")
        intervals = {m.machine.interval_s for m in machines}
        if len(intervals) != 1:
            raise ValueError("all fleet machines must share one interval_s")
        self.machines = list(machines)
        self.policy = policy
        self.bus = bus if bus is not None else get_default_bus()
        self.interval_s = machines[0].machine.interval_s
        self._pending = scripted_tenants(tenants)
        self._next_arrival = 0
        self._time_s = 0.0
        self.accountant = SloAccountant(
            self.interval_s, tolerance=slo_tolerance, bus=self.bus
        )
        self.placements: List[PlacementRecord] = []

    @property
    def now(self) -> float:
        return self._time_s

    # -- main loop ---------------------------------------------------------

    def run(self, duration_s: float) -> FleetResult:
        """Advance the whole fleet by ``duration_s`` of virtual time."""
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        steps = int(round(duration_s / self.interval_s))
        for _ in range(steps):
            self.step()
        return self.result()

    def step(self) -> None:
        """One fleet interval: depart, admit, simulate, account."""
        now = self._time_s
        self._process_departures(now)
        self._process_arrivals(now)
        entitlements = self._snapshot_entitlements()
        for machine in self.machines:
            machine.sim.step()
        self._account(now, entitlements)
        self._time_s += self.interval_s

    def result(self) -> FleetResult:
        return FleetResult(
            interval_s=self.interval_s,
            machines={m.name: m.sim.result for m in self.machines},
            tenants=dict(self.accountant.tenants),
            placements=list(self.placements),
            summary=self.accountant.fleet_summary(),
            faults={
                m.name: m.injector.faults_by_kind()
                for m in self.machines
                if m.injector is not None
            },
        )

    # -- tenant lifecycle (public: scripted streams and the service both
    #    funnel through these two, so online and replayed admissions are
    #    the same code path) -------------------------------------------------

    def machine_of(self, tenant_id: str) -> Optional[FleetMachine]:
        """The machine currently hosting ``tenant_id`` (``None`` if absent)."""
        for machine in self.machines:
            if tenant_id in machine.residents:
                return machine
        return None

    def admit_tenant(self, spec: TenantSpec, now: Optional[float] = None) -> PlacementRecord:
        """Place and (maybe) admit one tenant at ``now``.

        The single admission path: batch arrival streams and the service
        daemon both call it, so placement, SLO ledger creation, event
        emission order, and the placement log are identical however the
        tenant arrived.  Returns the :class:`PlacementRecord`; a rejected
        tenant gets ``machine=None`` and a structured
        :class:`~repro.cloud.admission.RejectReason` value as ``reason``.
        """
        if now is None:
            now = self._time_s
        bus = self.bus
        workload = spec.build_workload()
        chosen = self.policy.place(spec, workload, self.machines)
        if chosen is None:
            reason = classify_rejection(self.machines, spec.baseline_ways).value
            record = PlacementRecord(
                time_s=now,
                tenant_id=spec.name,
                machine=None,
                reason=reason,
            )
            self.placements.append(record)
            if bus.active:
                bus.emit(
                    TenantRejected.fast(
                        time_s=now, tenant_id=spec.name, reason=reason
                    )
                )
            return record
        if bus.active:
            bus.emit(
                TenantPlaced.fast(
                    time_s=now,
                    tenant_id=spec.name,
                    machine=chosen.name,
                    policy=self.policy.name,
                )
            )
        chosen.admit(spec, workload, now)
        self.accountant.admitted(spec.name, chosen.name, now)
        record = PlacementRecord(
            time_s=now,
            tenant_id=spec.name,
            machine=chosen.name,
            reason="placed",
        )
        self.placements.append(record)
        if bus.active:
            bus.emit(
                TenantAdmitted.fast(
                    time_s=now,
                    tenant_id=spec.name,
                    machine=chosen.name,
                    baseline_ways=spec.baseline_ways,
                )
            )
        return record

    def depart_tenant(
        self,
        tenant_id: str,
        now: Optional[float] = None,
        reason: Optional[str] = None,
    ) -> ResidentTenant:
        """Detach one resident tenant at ``now`` and settle its ledger.

        ``reason`` defaults to ``"finished"``/``"lease-end"`` from the
        workload's state; the service passes ``"detached"`` for
        API-requested departures.

        Raises:
            UnknownTenantError: If the tenant is not resident anywhere.
        """
        if now is None:
            now = self._time_s
        machine = self.machine_of(tenant_id)
        if machine is None:
            raise UnknownTenantError(
                f"tenant {tenant_id!r} is not resident in the fleet"
            )
        resident = machine.depart(tenant_id)
        if reason is None:
            reason = (
                "finished" if resident.vm.workload.finished else "lease-end"
            )
        self.accountant.departed(tenant_id, now)
        if self.bus.active:
            self.bus.emit(
                TenantDeparted.fast(
                    time_s=now,
                    tenant_id=tenant_id,
                    machine=machine.name,
                    reason=reason,
                )
            )
        return resident

    # -- interval stages -----------------------------------------------------

    def _process_departures(self, now: float) -> None:
        for machine in self.machines:
            due = [
                tid
                for tid, res in machine.residents.items()
                if res.lease_end_s <= now or res.vm.workload.finished
            ]
            for tid in due:
                self.depart_tenant(tid, now)

    def _process_arrivals(self, now: float) -> None:
        while (
            self._next_arrival < len(self._pending)
            and self._pending[self._next_arrival].arrival_s <= now
        ):
            spec = self._pending[self._next_arrival]
            self._next_arrival += 1
            self.admit_tenant(spec, now)

    def _snapshot_entitlements(self) -> Dict[str, Optional[float]]:
        """Entitled IPC per resident, from the phase about to execute."""
        entitlements: Dict[str, Optional[float]] = {}
        for machine in self.machines:
            dram_latency = machine.sim.dram_latency_cycles
            for tid, resident in machine.residents.items():
                entitlements[tid] = entitled_ipc(
                    machine.machine, resident.vm, dram_latency_cycles=dram_latency
                )
        return entitlements

    def _account(
        self, now: float, entitlements: Dict[str, Optional[float]]
    ) -> None:
        for machine in self.machines:
            for tid in machine.residents:
                timeline = machine.sim.result.records[tid]
                if not timeline:
                    continue
                record = timeline[-1]
                active = (
                    record.phase_name is not None
                    and "idle" not in record.phase_name
                )
                self.accountant.observe(
                    tid,
                    now,
                    ipc=record.ipc,
                    entitled_ipc=entitlements.get(tid),
                    active=active,
                )
