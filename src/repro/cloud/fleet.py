"""A fleet of machines under tenant churn.

The tentpole of the cloud layer: :class:`CloudFleet` drives N
:class:`FleetMachine` hosts — each one a full
:class:`~repro.platform.sim.CloudSimulation` with its own cache manager —
through a tenant lifecycle stream.  One fleet interval is:

1. **depart** — tenants whose lease expired or whose workload finished are
   detached from their machine (COS, RMID and vCPUs return to the pools);
2. **admit** — arrivals due this interval are placed by the configured
   :class:`~repro.cloud.placement.PlacementPolicy`; admission control
   rejects tenants no machine can host (reserved ways, vCPU slots, or COS
   classes exhausted);
3. **step** — every machine advances one simulation interval;
4. **account** — each resident tenant's measured IPC is compared against
   its entitlement (deterministic IPC at its reserved ways) by the
   :class:`~repro.cloud.slo.SloAccountant`.

Lifecycle decisions publish ``TenantAdmitted`` / ``TenantPlaced`` /
``TenantRejected`` / ``TenantDeparted`` on the event bus, so the JSONL
trace and metrics sinks see fleet churn exactly like any other layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cache.analytical import AccessPattern
from repro.cloud.admission import classify_rejection
from repro.cloud.lifecycle import TenantSpec, scripted_tenants
from repro.cloud.placement import PlacementPolicy
from repro.cloud.slo import SloAccountant, TenantSloStats
from repro.engine.events import (
    EventBus,
    TenantAdmitted,
    TenantDeparted,
    TenantPlaced,
    TenantRejected,
    get_default_bus,
)
from repro.errors import UnknownTenantError
from repro.platform.machine import Machine
from repro.platform.managers import CacheManager
from repro.platform.sim import CloudSimulation, SimulationResult
from repro.platform.vm import VirtualMachine

__all__ = [
    "ResidentTenant",
    "FleetMachine",
    "PlacementRecord",
    "FleetResult",
    "CloudFleet",
    "entitled_ipc",
]


def entitled_ipc(
    machine: Machine,
    vm: VirtualMachine,
    dram_latency_cycles: Optional[float] = None,
) -> Optional[float]:
    """The IPC the tenant's reservation alone entitles it to, this phase.

    Deterministic (noise-free): the analytical hit rate of the current
    phase at ``baseline_ways``, through the core model's CPI.  Passing the
    machine's *loaded* DRAM latency keeps the entitlement cache-side — a
    tenant slowed only by fleet-wide memory-bandwidth load is not having
    its cache contract violated.  ``None`` once the workload has finished.
    """
    phase = vm.workload.current_phase()
    if phase is None:
        return None
    hit = 0.0
    if (
        phase.pattern is not AccessPattern.NONE
        and phase.wss_bytes > 0
        and phase.behavior.l1_miss_ratio > 0
    ):
        ways = min(vm.baseline_ways, machine.num_ways)
        hit = machine.analytic.hit_rate_fp(phase.footprint, ways)
    cpi = machine.core_models[vm.vcpus[0]].cpi(
        phase.behavior, hit, dram_latency=dram_latency_cycles
    )
    return 1.0 / cpi


@dataclass
class ResidentTenant:
    """A tenant currently hosted on one machine."""

    spec: TenantSpec
    vm: VirtualMachine
    admitted_s: float

    @property
    def lease_end_s(self) -> float:
        if self.spec.lifetime_s is None:
            return float("inf")
        return self.admitted_s + self.spec.lifetime_s


class FleetMachine:
    """One host of the fleet: a machine, its manager, and resource pools.

    Tracks the three admission budgets — hardware-thread slots, allocatable
    COS classes, and reserved LLC ways — and performs attach/detach against
    its :class:`~repro.platform.sim.CloudSimulation`.

    Args:
        name: Fleet-unique machine name.
        machine: The simulated host.
        manager: Its cache-management regime (one instance per machine).
        bus: Event bus handed to the simulation.
        vcpus_per_vm: Dedicated hardware threads per tenant (paper: 2).
        fault_plan: Optional :class:`~repro.faults.plan.FaultPlan` to
            inject on this host's control loop (dcat managers only); give
            each machine its own derived seed so schedules differ.
        substrate: Optional :class:`~repro.platform.substrate.CacheSubstrate`
            for this host's simulation (one instance per machine); defaults
            to the process default fidelity.
    """

    def __init__(
        self,
        name: str,
        machine: Machine,
        manager: CacheManager,
        bus: Optional[EventBus] = None,
        vcpus_per_vm: int = 2,
        fault_plan=None,
        substrate=None,
    ) -> None:
        if vcpus_per_vm < 1:
            raise ValueError("vcpus_per_vm must be >= 1")
        self.name = name
        self.machine = machine
        self.vcpus_per_vm = vcpus_per_vm
        self.sim = CloudSimulation(machine, [], manager, bus=bus, substrate=substrate)
        self.injector = None
        if fault_plan is not None:
            # Imported lazily: fault injection is opt-in per scenario.
            from repro.faults.injectors import FaultInjector

            controller = getattr(manager, "controller", None)
            if controller is None:
                raise ValueError(
                    f"machine {name!r}: fault injection requires a dcat "
                    f"manager (other regimes have no control loop to fault)"
                )
            self.injector = FaultInjector(fault_plan).install(controller)
        self.residents: Dict[str, ResidentTenant] = {}
        self.reserved_ways = 0
        self._free_threads: List[int] = list(range(machine.spec.num_threads))
        # COS0 is the unmanaged default; the rest are allocatable tenants.
        self._cos_capacity = machine.pqos.cap_get().num_cos - 1

    # -- capacity ----------------------------------------------------------

    @property
    def free_ways(self) -> int:
        """Reserved-way headroom (not the controller's live free pool)."""
        return self.machine.num_ways - self.reserved_ways

    @property
    def free_thread_slots(self) -> int:
        return len(self._free_threads) // self.vcpus_per_vm

    def fits(self, baseline_ways: int) -> bool:
        """Whether one more tenant with this reservation can be hosted."""
        return (
            len(self._free_threads) >= self.vcpus_per_vm
            and len(self.residents) < self._cos_capacity
            and self.reserved_ways + baseline_ways <= self.machine.num_ways
        )

    # -- churn -------------------------------------------------------------

    def admit(self, spec: TenantSpec, workload, now: float) -> VirtualMachine:
        """Attach a tenant: pin the lowest free threads and register it."""
        if not self.fits(spec.baseline_ways):
            raise ValueError(f"machine {self.name!r} cannot host {spec.name!r}")
        vcpus = tuple(self._free_threads[: self.vcpus_per_vm])
        vm = VirtualMachine(
            name=spec.name,
            workload=workload,
            vcpus=vcpus,
            baseline_ways=spec.baseline_ways,
        )
        self.sim.attach_vm(vm)
        del self._free_threads[: self.vcpus_per_vm]
        self.reserved_ways += spec.baseline_ways
        self.residents[spec.name] = ResidentTenant(
            spec=spec, vm=vm, admitted_s=now
        )
        return vm

    def depart(self, tenant_id: str) -> ResidentTenant:
        """Detach a tenant and return its pooled resources.

        Raises:
            UnknownTenantError: If no such tenant is resident here.
        """
        if tenant_id not in self.residents:
            raise UnknownTenantError(
                f"tenant {tenant_id!r} is not resident on machine {self.name!r}"
            )
        resident = self.residents.pop(tenant_id)
        self.sim.detach_vm(tenant_id)
        self._free_threads.extend(resident.vm.vcpus)
        self._free_threads.sort()
        self.reserved_ways -= resident.spec.baseline_ways
        return resident

    # -- the event clock ---------------------------------------------------

    @property
    def should_step(self) -> bool:
        """Whether this host has anything to simulate this interval.

        Empty hosts are parked by the fleet's discrete-event clock and
        wake on the next arrival; a host with a fault injector always
        steps so its fault schedule stays on the controller timeline.
        """
        return bool(self.residents) or self.injector is not None

    def catch_up(self, fleet_tick: int) -> None:
        """Advance a parked host's sim clock to the fleet's tick.

        A no-op for hosts that stepped every interval (``behind == 0``).
        """
        behind = fleet_tick - self.sim.tick
        if behind > 0:
            self.sim.skip_idle(behind)


@dataclass(frozen=True)
class PlacementRecord:
    """One admission decision (kept in arrival order)."""

    time_s: float
    tenant_id: str
    machine: Optional[str]  # None => rejected
    reason: str  # "placed" or why the tenant was rejected


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    interval_s: float
    machines: Dict[str, SimulationResult] = field(default_factory=dict)
    tenants: Dict[str, TenantSloStats] = field(default_factory=dict)
    placements: List[PlacementRecord] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    #: Applied fault counts per machine, keyed by fault kind — empty
    #: unless the fleet ran with per-machine fault plans.
    faults: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def admitted(self) -> List[PlacementRecord]:
        return [p for p in self.placements if p.machine is not None]

    @property
    def rejected(self) -> List[PlacementRecord]:
        return [p for p in self.placements if p.machine is None]

    def canonical_bytes(self) -> bytes:
        """A canonical encoding for byte-identity checks.

        Components — and within them, each machine's and each tenant's
        entry — are pickled separately (fixed protocol): an in-process
        run shares objects *across* machines and components (one phase
        name string on two hosts; an SLO ledger holding the same float
        object a timeline record holds) where a process-pool run cannot,
        and pickle's memoization records that sharing.  The object-graph
        artifact must not distinguish otherwise identical results, so
        every unit that may cross a process boundary is encoded on its
        own.
        """
        import pickle

        def dumps(part: Any) -> bytes:
            return pickle.dumps(part, protocol=4)

        chunks = [dumps(self.interval_s)]
        for name in self.machines:
            chunks.append(dumps(name))
            chunks.append(dumps(self.machines[name]))
        for tid in sorted(self.tenants):
            chunks.append(dumps(tid))
            chunks.append(dumps(self.tenants[tid]))
        chunks.append(dumps(self.placements))
        chunks.append(dumps(self.summary))
        for name in sorted(self.faults):
            chunks.append(dumps(name))
            chunks.append(dumps(self.faults[name]))
        return b"".join(chunks)


class CloudFleet:
    """Drives a machine fleet through a tenant lifecycle stream.

    Args:
        machines: The hosts (names must be unique; equal intervals).
        policy: Placement policy for arrivals.
        tenants: The lifecycle stream (any order; sorted internally).
        bus: Event bus for tenant lifecycle events (defaults to the
            process default bus, so ``--trace`` captures fleet churn).
        slo_tolerance: Relative shortfall tolerated before an interval
            counts as an SLO violation.
    """

    def __init__(
        self,
        machines: Sequence[FleetMachine],
        policy: PlacementPolicy,
        tenants: Sequence[TenantSpec],
        bus: Optional[EventBus] = None,
        slo_tolerance: float = 0.05,
    ) -> None:
        if not machines:
            raise ValueError("a fleet needs at least one machine")
        names = [m.name for m in machines]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate machine names: {names}")
        intervals = {m.machine.interval_s for m in machines}
        if len(intervals) != 1:
            raise ValueError("all fleet machines must share one interval_s")
        self.machines = list(machines)
        self.policy = policy
        self.bus = bus if bus is not None else get_default_bus()
        self.interval_s = machines[0].machine.interval_s
        self._pending = scripted_tenants(tenants)
        self._next_arrival = 0
        # Integer fleet tick: `now` is derived (tick * interval_s), never
        # accumulated, so lease ends and arrivals at t~1e7 with ms
        # intervals land on the exact interval (the old `+= interval_s`
        # clock drifted about one interval per 1e6 steps).
        self._tick = 0
        # tenant -> hosting machine; replaces the O(machines) scan that
        # made bulk departures O(machines x departures).
        self._hosts: Dict[str, FleetMachine] = {}
        # Hosts with anything to simulate, rebuilt lazily on churn so one
        # fleet interval costs O(active hosts), not O(fleet size).
        self._active: List[FleetMachine] = []
        self._active_stale = True
        self.accountant = SloAccountant(
            self.interval_s, tolerance=slo_tolerance, bus=self.bus
        )
        self.placements: List[PlacementRecord] = []

    @property
    def now(self) -> float:
        return self._time_s

    @property
    def tick(self) -> int:
        """Completed fleet intervals (the integer timebase)."""
        return self._tick

    @property
    def _time_s(self) -> float:
        """The fleet clock: ``tick * interval_s``, never accumulated."""
        return self._tick * self.interval_s

    def _active_machines(self) -> List[FleetMachine]:
        """Hosts with residents or fault injectors, in fleet order."""
        if self._active_stale:
            self._active = [m for m in self.machines if m.should_step]
            self._active_stale = False
        return self._active

    # -- main loop ---------------------------------------------------------

    def run(self, duration_s: float) -> FleetResult:
        """Advance the whole fleet by ``duration_s`` of virtual time.

        The fleet only moves in whole intervals; a duration that is not a
        whole multiple of ``interval_s`` raises (the old code rounded, so
        ``run(0.35)`` at 0.1 s quietly simulated 0.4 s).

        While no host has residents or a fault injector, the
        discrete-event clock jumps straight to the next arrival instead
        of stepping empty intervals one by one.

        Raises:
            ValueError: If ``duration_s`` is negative or not a whole
                number of fleet intervals.
        """
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        steps_exact = duration_s / self.interval_s
        steps = int(round(steps_exact))
        if abs(steps_exact - steps) > 1e-9 * max(1.0, abs(steps_exact)):
            raise ValueError(
                f"duration {duration_s} s is not a whole number of "
                f"{self.interval_s} s fleet intervals"
            )
        end_tick = self._tick + steps
        while self._tick < end_tick:
            if self._fleet_quiescent():
                jump = self._next_busy_tick(end_tick) - self._tick
                if jump > 0:
                    self._bulk_skip(jump)
                    continue
            self.step()
        return self.result()

    def step(self) -> None:
        """One fleet interval: depart, admit, simulate active hosts, account."""
        now = self._time_s
        self._process_departures(now)
        self._process_arrivals(now)
        entitlements = self._snapshot_entitlements()
        for machine in self._active_machines():
            machine.catch_up(self._tick)
            machine.sim.step()
        self._account(now, entitlements)
        self._tick += 1

    def _fleet_quiescent(self) -> bool:
        """No host needs stepping; only a due arrival can wake the fleet."""
        return not self._active_machines()

    def _next_busy_tick(self, target: int) -> int:
        """First tick in ``[tick, target]`` at which an arrival is due.

        Computes the minimal ``t`` with ``arrival_s <= t * interval_s``
        by integer estimate plus local fix-up, so float rounding cannot
        land the wake-up one interval off the admission predicate.
        """
        if self._next_arrival >= len(self._pending):
            return target
        arrival_s = self._pending[self._next_arrival].arrival_s
        t = int(arrival_s / self.interval_s)
        while t * self.interval_s < arrival_s:
            t += 1
        while t > self._tick and (t - 1) * self.interval_s >= arrival_s:
            t -= 1
        return max(self._tick, min(t, target))

    def _bulk_skip(self, intervals: int) -> None:
        """Jump the fleet clock; parked hosts catch up lazily."""
        self._tick += intervals

    def result(self) -> FleetResult:
        return FleetResult(
            interval_s=self.interval_s,
            machines=self.machine_results(),
            tenants=dict(self.accountant.tenants),
            placements=list(self.placements),
            summary=self.accountant.fleet_summary(),
            faults=self.fault_counts(),
        )

    # -- fleet state hooks (overridden by the parallel executor, which
    #    must query its workers for the same answers) ------------------------

    def machine_results(self) -> Dict[str, SimulationResult]:
        """Per-machine simulation results, clocks caught up to the fleet."""
        for machine in self.machines:
            machine.catch_up(self._tick)
        return {m.name: m.sim.result for m in self.machines}

    def fault_counts(self) -> Dict[str, Dict[str, int]]:
        """Applied fault counts per machine, keyed by fault kind."""
        return {
            m.name: m.injector.faults_by_kind()
            for m in self.machines
            if m.injector is not None
        }

    def tenant_cos(self, tenant_id: str) -> Optional[int]:
        """The COS the host's controller assigned a resident tenant.

        ``None`` for non-resident tenants and for non-dcat managers.
        """
        machine = self._hosts.get(tenant_id)
        if machine is None:
            return None
        controller = getattr(machine.sim.manager, "controller", None)
        if controller is None:
            return None
        record = controller.records.get(tenant_id)
        return record.cos_id if record is not None else None

    def state_populations(self) -> Dict[str, Optional[Dict[str, int]]]:
        """Controller-state counts per machine (``None`` for non-dcat hosts)."""
        populations: Dict[str, Optional[Dict[str, int]]] = {}
        for machine in self.machines:
            controller = getattr(machine.sim.manager, "controller", None)
            if controller is None:
                populations[machine.name] = None
                continue
            counts: Dict[str, int] = {}
            for rec in controller.records.values():
                key = rec.state.value
                counts[key] = counts.get(key, 0) + 1
            populations[machine.name] = dict(sorted(counts.items()))
        return populations

    def checker_stats(self) -> Tuple[int, int]:
        """``(violations, intervals checked)`` from executor-side invariant
        checkers.  The serial fleet's checkers subscribe in-process, so
        there is nothing extra to fold here."""
        return (0, 0)

    def close(self) -> None:
        """Release executor resources (no-op for the serial fleet)."""

    # -- tenant lifecycle (public: scripted streams and the service both
    #    funnel through these two, so online and replayed admissions are
    #    the same code path) -------------------------------------------------

    def machine_of(self, tenant_id: str) -> Optional[FleetMachine]:
        """The machine currently hosting ``tenant_id`` (``None`` if absent)."""
        return self._hosts.get(tenant_id)

    def admit_tenant(self, spec: TenantSpec, now: Optional[float] = None) -> PlacementRecord:
        """Place and (maybe) admit one tenant at ``now``.

        The single admission path: batch arrival streams and the service
        daemon both call it, so placement, SLO ledger creation, event
        emission order, and the placement log are identical however the
        tenant arrived.  Returns the :class:`PlacementRecord`; a rejected
        tenant gets ``machine=None`` and a structured
        :class:`~repro.cloud.admission.RejectReason` value as ``reason``.
        """
        if now is None:
            now = self._time_s
        bus = self.bus
        workload = spec.build_workload()
        chosen = self.policy.place(spec, workload, self.machines)
        if chosen is None:
            reason = classify_rejection(self.machines, spec.baseline_ways).value
            record = PlacementRecord(
                time_s=now,
                tenant_id=spec.name,
                machine=None,
                reason=reason,
            )
            self.placements.append(record)
            if bus.active:
                bus.emit(
                    TenantRejected.fast(
                        time_s=now, tenant_id=spec.name, reason=reason
                    )
                )
            return record
        if bus.active:
            bus.emit(
                TenantPlaced.fast(
                    time_s=now,
                    tenant_id=spec.name,
                    machine=chosen.name,
                    policy=self.policy.name,
                )
            )
        chosen.catch_up(self._tick)
        chosen.admit(spec, workload, now)
        self._hosts[spec.name] = chosen
        self._active_stale = True
        self.accountant.admitted(spec.name, chosen.name, now)
        record = PlacementRecord(
            time_s=now,
            tenant_id=spec.name,
            machine=chosen.name,
            reason="placed",
        )
        self.placements.append(record)
        if bus.active:
            bus.emit(
                TenantAdmitted.fast(
                    time_s=now,
                    tenant_id=spec.name,
                    machine=chosen.name,
                    baseline_ways=spec.baseline_ways,
                )
            )
        return record

    def depart_tenant(
        self,
        tenant_id: str,
        now: Optional[float] = None,
        reason: Optional[str] = None,
    ) -> ResidentTenant:
        """Detach one resident tenant at ``now`` and settle its ledger.

        ``reason`` defaults to ``"finished"``/``"lease-end"`` from the
        workload's state; the service passes ``"detached"`` for
        API-requested departures.

        Raises:
            UnknownTenantError: If the tenant is not resident anywhere.
        """
        if now is None:
            now = self._time_s
        machine = self._hosts.pop(tenant_id, None)
        if machine is None:
            raise UnknownTenantError(
                f"tenant {tenant_id!r} is not resident in the fleet"
            )
        resident = machine.depart(tenant_id)
        self._active_stale = True
        if reason is None:
            reason = (
                "finished" if resident.vm.workload.finished else "lease-end"
            )
        self.accountant.departed(tenant_id, now)
        if self.bus.active:
            self.bus.emit(
                TenantDeparted.fast(
                    time_s=now,
                    tenant_id=tenant_id,
                    machine=machine.name,
                    reason=reason,
                )
            )
        return resident

    # -- interval stages -----------------------------------------------------

    def _process_departures(self, now: float) -> None:
        for machine in list(self._active_machines()):
            for tid, reason in self._due_departures(machine, now):
                self.depart_tenant(tid, now, reason=reason)

    def _due_departures(self, machine: FleetMachine, now: float):
        """``(tenant_id, reason)`` pairs due to leave ``machine`` at ``now``.

        A seam for the parallel executor, whose mirror workloads never
        advance: it substitutes worker-reported completions for the
        ``workload.finished`` check.
        """
        due = []
        for tid, res in machine.residents.items():
            if res.vm.workload.finished:
                due.append((tid, "finished"))
            elif res.lease_end_s <= now:
                due.append((tid, "lease-end"))
        return due

    def _process_arrivals(self, now: float) -> None:
        while (
            self._next_arrival < len(self._pending)
            and self._pending[self._next_arrival].arrival_s <= now
        ):
            spec = self._pending[self._next_arrival]
            self._next_arrival += 1
            self.admit_tenant(spec, now)

    def _snapshot_entitlements(self) -> Dict[str, Optional[float]]:
        """Entitled IPC per resident, from the phase about to execute."""
        entitlements: Dict[str, Optional[float]] = {}
        for machine in self._active_machines():
            dram_latency = machine.sim.dram_latency_cycles
            for tid, resident in machine.residents.items():
                entitlements[tid] = entitled_ipc(
                    machine.machine, resident.vm, dram_latency_cycles=dram_latency
                )
        return entitlements

    def _account(
        self, now: float, entitlements: Dict[str, Optional[float]]
    ) -> None:
        for machine in self._active_machines():
            for tid in machine.residents:
                timeline = machine.sim.result.records[tid]
                if not timeline:
                    continue
                record = timeline[-1]
                active = (
                    record.phase_name is not None
                    and "idle" not in record.phase_name
                )
                self.accountant.observe(
                    tid,
                    now,
                    ipc=record.ipc,
                    entitled_ipc=entitlements.get(tid),
                    active=active,
                )
