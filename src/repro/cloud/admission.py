"""Structured admission-rejection reasons.

Placement used to collapse every rejection into the string
``"no-capacity"``.  The service API (and the churn reports) want to say
*which* budget ran out, so rejection causes are now a closed enum:

* ``no-threads`` — every machine is out of dedicated hardware-thread
  slots (``vcpus_per_vm`` each);
* ``no-cos`` — every machine has exhausted its allocatable classes of
  service (COS0 stays unmanaged);
* ``no-ways`` — the reservation does not fit next to any machine's
  already-reserved LLC ways;
* ``no-capacity`` — machines are full for *different* reasons (or a
  policy declined for its own reasons despite raw headroom);
* ``duplicate-tenant`` — the id is already resident or has a ledger
  (service-level admission only; batch streams pre-validate names);
* ``controller-rejected`` — the machine accepted placement but its
  controller could not carve out the baseline (never happens for the
  built-in policies, which only pick fitting machines; kept for
  custom policies).

The enum *values* are the wire/report strings; events and
``PlacementRecord.reason`` carry the value, not the enum member, so
JSONL traces stay plain strings.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Sequence

__all__ = ["RejectReason", "machine_reject_reason", "classify_rejection"]


class RejectReason(str, Enum):
    """Why admission control turned a tenant away."""

    NO_CAPACITY = "no-capacity"
    NO_THREADS = "no-threads"
    NO_COS = "no-cos"
    NO_WAYS = "no-ways"
    DUPLICATE_TENANT = "duplicate-tenant"
    CONTROLLER_REJECTED = "controller-rejected"


def machine_reject_reason(machine, baseline_ways: int) -> Optional[RejectReason]:
    """Why one machine cannot host a tenant, or ``None`` if it fits.

    Budgets are checked in the same order :meth:`FleetMachine.fits`
    evaluates them (threads, then COS, then ways), so the reported
    reason is the first exhausted budget.
    """
    if len(machine._free_threads) < machine.vcpus_per_vm:
        return RejectReason.NO_THREADS
    if len(machine.residents) >= machine._cos_capacity:
        return RejectReason.NO_COS
    if machine.reserved_ways + baseline_ways > machine.machine.num_ways:
        return RejectReason.NO_WAYS
    return None


def classify_rejection(
    machines: Sequence, baseline_ways: int
) -> RejectReason:
    """The fleet-wide rejection reason for a tenant no policy placed.

    If every machine is out of the *same* budget the specific reason is
    returned; if machines are full for different reasons — or some
    machine actually fits but the policy still declined — the generic
    ``NO_CAPACITY`` is reported.
    """
    reasons = {machine_reject_reason(m, baseline_ways) for m in machines}
    if len(reasons) == 1:
        only = next(iter(reasons))
        if only is not None:
            return only
    return RejectReason.NO_CAPACITY
