"""Per-tenant SLO accounting: baseline violations and entitlement ratios.

dCat's contract is that every tenant performs at least as well as it would
on its statically reserved ways.  The cloud layer checks that contract
explicitly: each interval, a tenant's measured IPC is compared against its
*entitled* IPC — the deterministic core-model IPC at the reservation's hit
rate — and intervals below ``(1 - tolerance)`` of entitlement are counted
as violations and merged into violation spans.  The per-tenant records
aggregate into a fleet-wide summary the experiment harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.events import EventBus, SloViolated, get_default_bus
from repro.errors import UnknownTenantError

__all__ = ["TenantSloStats", "SloAccountant"]


@dataclass
class TenantSloStats:
    """One tenant's SLO ledger over its whole residency.

    Attributes:
        tenant_id: The tenant.
        machine: Host machine name.
        admitted_s: Admission time.
        departed_s: Departure time (``None`` while resident).
        active_intervals: Intervals with a non-idle phase observed.
        violation_intervals: Active intervals below the SLO threshold.
        normalized_sum: Sum over active intervals of measured/entitled IPC.
        violation_spans: Merged ``[start, end)`` spans of violation time.
    """

    tenant_id: str
    machine: str
    admitted_s: float
    departed_s: Optional[float] = None
    active_intervals: int = 0
    violation_intervals: int = 0
    normalized_sum: float = 0.0
    violation_spans: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def mean_normalized_ipc(self) -> float:
        """Mean measured-over-entitled IPC (>= 1 means the SLO was beaten)."""
        if not self.active_intervals:
            return 0.0
        return self.normalized_sum / self.active_intervals

    @property
    def violation_fraction(self) -> float:
        if not self.active_intervals:
            return 0.0
        return self.violation_intervals / self.active_intervals


class SloAccountant:
    """Accumulates per-tenant SLO ledgers for one fleet run.

    Args:
        interval_s: The fleet's control interval (span bookkeeping).
        tolerance: Allowed relative shortfall before an interval counts as
            a violation (absorbs the core model's measurement noise).
        bus: Event bus for :class:`SloViolated` emissions; defaults to the
            process default (the null bus unless observability is on).
    """

    def __init__(
        self,
        interval_s: float,
        tolerance: float = 0.05,
        bus: Optional[EventBus] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be within [0, 1)")
        self.interval_s = interval_s
        self.tolerance = tolerance
        self.bus = bus if bus is not None else get_default_bus()
        self.tenants: Dict[str, TenantSloStats] = {}

    def admitted(self, tenant_id: str, machine: str, time_s: float) -> None:
        if tenant_id in self.tenants:
            raise ValueError(f"tenant {tenant_id!r} already has a ledger")
        self.tenants[tenant_id] = TenantSloStats(
            tenant_id=tenant_id, machine=machine, admitted_s=time_s
        )

    def departed(self, tenant_id: str, time_s: float) -> None:
        if tenant_id not in self.tenants:
            raise UnknownTenantError(f"tenant {tenant_id!r} has no SLO ledger")
        self.tenants[tenant_id].departed_s = time_s

    def observe(
        self,
        tenant_id: str,
        time_s: float,
        ipc: float,
        entitled_ipc: Optional[float],
        active: bool,
    ) -> None:
        """Account one interval of one tenant.

        Idle intervals (``active=False``) and intervals without a defined
        entitlement are recorded as non-active and never count against the
        SLO — an idle tenant is not being violated, it is just quiet.
        """
        stats = self.tenants[tenant_id]
        if not active or entitled_ipc is None or entitled_ipc <= 0:
            return
        stats.active_intervals += 1
        stats.normalized_sum += ipc / entitled_ipc
        if ipc < (1.0 - self.tolerance) * entitled_ipc:
            stats.violation_intervals += 1
            end = time_s + self.interval_s
            spans = stats.violation_spans
            # Interval timestamps are float-accumulated, so adjacency must
            # be judged at interval scale: an absolute epsilon (1e-9) falls
            # below float64 resolution once time_s grows past ~1e7 with
            # millisecond intervals and splits one contiguous violation
            # into many single-interval spans.
            if spans and abs(spans[-1][1] - time_s) < 0.5 * self.interval_s:
                spans[-1] = (spans[-1][0], end)
            else:
                spans.append((time_s, end))
            if self.bus.active:
                self.bus.emit(
                    SloViolated.fast(
                        time_s=time_s,
                        tenant_id=tenant_id,
                        machine=stats.machine,
                        ipc=ipc,
                        entitled_ipc=entitled_ipc,
                    )
                )

    # -- aggregation -----------------------------------------------------------

    def fleet_summary(self) -> Dict[str, float]:
        """Fleet-wide totals: tenants, active/violation intervals, ratios."""
        active = sum(s.active_intervals for s in self.tenants.values())
        violations = sum(s.violation_intervals for s in self.tenants.values())
        normalized = sum(s.normalized_sum for s in self.tenants.values())
        return {
            "tenants": float(len(self.tenants)),
            "active_intervals": float(active),
            "violation_intervals": float(violations),
            "violation_fraction": violations / active if active else 0.0,
            "mean_normalized_ipc": normalized / active if active else 0.0,
        }
