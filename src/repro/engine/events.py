"""Typed events and the cross-layer event bus.

Both interval loops — :class:`~repro.platform.sim.CloudSimulation` and
:class:`~repro.core.controller.DCatController` — are staged pipelines whose
stages publish what they observed and decided as frozen event dataclasses on
an :class:`EventBus`.  Subscribers (trace writers, metrics, tests, future
fault injectors) attach without the loops knowing about them.

The bus is engineered for the hot path: loops guard every emission with
``if bus.active`` so that with no subscribers (the :data:`NULL_BUS` default)
no event object is ever constructed.  The benchmark in
``benchmarks/test_overhead.py`` pins the subscribed-bus overhead below 10%
of a full simulation step.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from enum import Enum
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    TextIO,
    Tuple,
    Type,
    Union,
)

__all__ = [
    "Event",
    "IntervalStarted",
    "SampleCollected",
    "PhaseChanged",
    "StateTransition",
    "WorkloadRegistered",
    "WorkloadDeregistered",
    "TenantAdmitted",
    "TenantPlaced",
    "TenantRejected",
    "TenantDeparted",
    "AllocationPlanned",
    "MasksProgrammed",
    "FaultInjected",
    "FaultRecovered",
    "FidelityDivergence",
    "InvariantViolated",
    "SloViolated",
    "IntervalFinished",
    "EventBus",
    "NullBus",
    "NULL_BUS",
    "RingBufferRecorder",
    "JsonlTraceWriter",
    "MetricsSink",
    "event_payload",
    "event_from_payload",
    "get_default_bus",
    "set_default_bus",
    "use_bus",
]


# -- events -----------------------------------------------------------------


@dataclass(frozen=True)
class Event:
    """Base class: every event is stamped with the interval's start time."""

    time_s: float

    @classmethod
    def fast(cls, **fields: Any) -> "Event":
        """Construct without the frozen ``__init__``'s per-field checks.

        A frozen dataclass pays one ``object.__setattr__`` call per field;
        on the interval loops' emit sites that triples construction cost.
        This path fills ``__dict__`` directly, so the caller must supply
        **every** field — defaults are not applied.  Instances compare and
        ``repr`` identically to normally constructed ones (see the
        equivalence test in ``tests/test_engine.py``).
        """
        self = object.__new__(cls)
        self.__dict__.update(fields)
        return self


@dataclass(frozen=True)
class IntervalStarted(Event):
    """A loop began an interval.  ``source`` is ``"sim"`` or ``"controller"``."""

    source: str


@dataclass(frozen=True)
class SampleCollected(Event):
    """One workload's counters were read and aggregated this interval."""

    source: str
    workload_id: str
    ipc: float
    llc_miss_rate: float
    mem_refs_per_instr: float
    instructions: int
    cycles: int
    idle: bool = False


@dataclass(frozen=True)
class PhaseChanged(Event):
    """The phase detector flagged a new phase for a workload."""

    workload_id: str
    mem_refs_per_instr: float
    idle: bool


@dataclass(frozen=True)
class StateTransition(Event):
    """A workload moved between Fig. 6 states (values of ``WorkloadState``)."""

    workload_id: str
    old_state: str
    new_state: str


@dataclass(frozen=True)
class WorkloadRegistered(Event):
    """A controller started managing a workload (it received a COS)."""

    workload_id: str
    cos_id: int
    baseline_ways: int


@dataclass(frozen=True)
class WorkloadDeregistered(Event):
    """A controller stopped managing a workload; its COS returned to the pool."""

    workload_id: str
    cos_id: int


@dataclass(frozen=True)
class TenantAdmitted(Event):
    """The cloud layer accepted a tenant onto a machine."""

    tenant_id: str
    machine: str
    baseline_ways: int


@dataclass(frozen=True)
class TenantPlaced(Event):
    """A placement policy chose a machine for a tenant."""

    tenant_id: str
    machine: str
    policy: str


@dataclass(frozen=True)
class TenantRejected(Event):
    """Admission control turned a tenant away; ``reason`` says why."""

    tenant_id: str
    reason: str


@dataclass(frozen=True)
class TenantDeparted(Event):
    """A tenant left its machine (lease expiry or workload completion)."""

    tenant_id: str
    machine: str
    reason: str


@dataclass(frozen=True)
class AllocationPlanned(Event):
    """The arbiter produced a way plan; ``free_ways`` is what remains pooled."""

    plan: Mapping[str, int]
    free_ways: int


@dataclass(frozen=True)
class MasksProgrammed(Event):
    """Contiguous masks were packed and written to the allocation hardware."""

    masks: Mapping[str, int]
    moved: Tuple[str, ...]


@dataclass(frozen=True)
class FaultInjected(Event):
    """A fault-injection proxy perturbed the substrate (``repro.faults``).

    ``kind`` is a :class:`~repro.faults.plan.FaultKind` value; ``target`` is
    the workload it hit, or ``""`` for backend-wide faults (pqos writes).
    """

    kind: str
    target: str
    detail: str


@dataclass(frozen=True)
class FaultRecovered(Event):
    """The hardened controller absorbed a fault.

    ``action`` says how: ``retry`` (a retried call succeeded),
    ``stale_sample`` (last interval's counters substituted), ``reprogram``
    (verify-after-write rewrote a mask), ``assoc_rewrite`` (a dropped core
    association was re-issued), ``deferred_reset`` (a deregistration mask
    reset was skipped after exhausting retries), ``quarantine`` /
    ``quarantine_release`` (an erratic workload parked at / released from
    its baseline).  ``attempts`` counts the calls or intervals consumed.
    """

    kind: str
    target: str
    action: str
    attempts: int


@dataclass(frozen=True)
class FidelityDivergence(Event):
    """The mixed-fidelity oracle caught the analytical model drifting.

    Emitted by :class:`~repro.platform.substrate.MixedSubstrate` when a
    sampled interval's exact tag-array replay disagrees with the analytical
    hit rate by more than ``tolerance``.  Like :class:`InvariantViolated`,
    a healthy configuration emits none: the fidelity smoke job treats any
    occurrence as a failed model guarantee.
    """

    workload_id: str
    analytical: float
    exact: float
    tolerance: float


@dataclass(frozen=True)
class InvariantViolated(Event):
    """The online checker caught a broken allocation invariant.

    Never emitted in a healthy run: the chaos harness treats any occurrence
    as a failed guarantee (see ``repro.faults.invariants``).
    """

    invariant: str
    detail: str


@dataclass(frozen=True)
class SloViolated(Event):
    """A tenant's measured IPC fell below its SLO threshold this interval.

    Emitted by :class:`~repro.cloud.slo.SloAccountant` when an active
    interval lands under ``(1 - tolerance)`` of the entitled IPC.
    """

    tenant_id: str
    machine: str
    ipc: float
    entitled_ipc: float


@dataclass(frozen=True)
class IntervalFinished(Event):
    """The interval's last stage completed (same ``time_s`` as its start)."""

    source: str


# -- bus --------------------------------------------------------------------

Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe fan-out for :class:`Event` objects.

    ``active`` is True iff at least one handler is subscribed; emitters guard
    event *construction* behind it, so an unobserved loop pays one attribute
    read per potential emission and nothing else.
    """

    __slots__ = ("_by_type", "_any", "active")

    def __init__(self) -> None:
        self._by_type: Dict[Type[Event], List[Handler]] = {}
        self._any: List[Handler] = []
        self.active: bool = False

    def subscribe(
        self, handler: Handler, event_type: Optional[Type[Event]] = None
    ) -> Callable[[], None]:
        """Attach a handler (to one event type, or to everything).

        Returns a zero-argument unsubscribe callable.
        """
        if event_type is None:
            self._any.append(handler)
        else:
            self._by_type.setdefault(event_type, []).append(handler)
        self.active = True

        def unsubscribe() -> None:
            bucket = self._any if event_type is None else self._by_type.get(event_type, [])
            if handler in bucket:
                bucket.remove(handler)
            self.active = bool(self._any or any(self._by_type.values()))

        return unsubscribe

    def emit(self, event: Event) -> None:
        """Deliver an event to every matching subscriber, in subscribe order."""
        for handler in self._any:
            handler(event)
        typed = self._by_type.get(type(event))
        if typed:
            for handler in typed:
                handler(event)


class NullBus(EventBus):
    """The no-op bus: never active, rejects subscribers, drops emissions.

    A single shared instance (:data:`NULL_BUS`) is the default everywhere,
    so "no observability configured" costs one boolean check per emission
    site and can never accumulate subscribers by accident.
    """

    __slots__ = ()

    def subscribe(
        self, handler: Handler, event_type: Optional[Type[Event]] = None
    ) -> Callable[[], None]:
        raise TypeError(
            "cannot subscribe to NULL_BUS; pass an EventBus() to the loop instead"
        )

    def emit(self, event: Event) -> None:  # pragma: no cover - guarded by .active
        pass


NULL_BUS = NullBus()


# -- default-bus plumbing -----------------------------------------------------

_default_bus: EventBus = NULL_BUS


def get_default_bus() -> EventBus:
    """The bus components fall back to when none is passed explicitly."""
    return _default_bus


def set_default_bus(bus: Optional[EventBus]) -> None:
    """Install a process-wide default bus (``None`` restores the null bus)."""
    global _default_bus
    _default_bus = bus if bus is not None else NULL_BUS


@contextmanager
def use_bus(bus: EventBus) -> Iterator[EventBus]:
    """Temporarily install ``bus`` as the process default."""
    previous = _default_bus
    set_default_bus(bus)
    try:
        yield bus
    finally:
        set_default_bus(previous)


# -- built-in sinks ----------------------------------------------------------


class RingBufferRecorder:
    """Keeps the last ``capacity`` events in memory (tests, debugging)."""

    def __init__(self, capacity: int = 4096) -> None:
        self._events: deque = deque(maxlen=capacity)

    def __call__(self, event: Event) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        """The recorded events, oldest first (a copy; slice freely)."""
        return list(self._events)

    def of_type(self, event_type: Type[Event]) -> List[Event]:
        return [e for e in self._events if isinstance(e, event_type)]

    def type_names(self) -> List[str]:
        """The recorded sequence as class names (order assertions)."""
        return [type(e).__name__ for e in self._events]

    def clear(self) -> None:
        self._events.clear()


def _jsonable(value: Any) -> Any:
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def event_payload(event: Event) -> Dict[str, Any]:
    """A JSON-ready dict of an event (type name under ``"event"``)."""
    payload: Dict[str, Any] = {"event": type(event).__name__}
    for f in fields(event):
        payload[f.name] = _jsonable(getattr(event, f.name))
    return payload


def _event_registry() -> Dict[str, Type[Event]]:
    return {
        cls.__name__: cls
        for cls in (
            IntervalStarted,
            SampleCollected,
            PhaseChanged,
            StateTransition,
            WorkloadRegistered,
            WorkloadDeregistered,
            TenantAdmitted,
            TenantPlaced,
            TenantRejected,
            TenantDeparted,
            AllocationPlanned,
            MasksProgrammed,
            FaultInjected,
            FaultRecovered,
            FidelityDivergence,
            InvariantViolated,
            SloViolated,
            IntervalFinished,
        )
    }


def event_from_payload(payload: Mapping[str, Any]) -> Event:
    """Rebuild an event from its :func:`event_payload` dict.

    The inverse transport for merging per-shard JSONL streams: JSON turns
    tuples into lists, so tuple-annotated fields are converted back before
    reconstruction.  Enum-valued fields stay as their serialized strings
    (exactly what :func:`event_payload` would re-produce), so a rebuilt
    event round-trips to the identical trace line.

    Raises:
        KeyError: For an unknown ``"event"`` type name.
    """
    cls = _event_registry()[payload["event"]]
    data: Dict[str, Any] = {}
    for f in fields(cls):
        value = payload[f.name]
        if isinstance(value, list) and "Tuple" in str(f.type):
            value = tuple(value)
        data[f.name] = value
    return cls.fast(**data)


class JsonlTraceWriter:
    """Streams every event as one JSON object per line.

    The sink contract: callers either use the writer as a context manager
    or call :meth:`close` on every exit path (the daemon calls it from
    its SIGTERM/SIGINT handler).  ``close`` flushes, is idempotent, and
    drops any event delivered afterwards — a late emitter racing a
    shutdown must not raise on a closed file.

    Args:
        target: A path to create/truncate, or an open text file object.
    """

    def __init__(self, target: Union[str, TextIO]) -> None:
        if isinstance(target, str):
            self._file: TextIO = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self._closed = False

    def __call__(self, event: Event) -> None:
        if self._closed:
            return
        self._file.write(json.dumps(event_payload(event), sort_keys=True) + "\n")

    def mark(self, **extra: Any) -> None:
        """Write an out-of-band marker line (e.g. an experiment boundary)."""
        if self._closed:
            return
        self._file.write(json.dumps({"event": "Marker", **extra}, sort_keys=True) + "\n")

    def flush(self) -> None:
        """Push buffered lines to the OS without closing the sink."""
        if not self._closed:
            self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class HistogramSummary:
    """Streaming min/mean/max summary of one numeric event field."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsSink:
    """Counts events per type and summarizes their numeric fields.

    Histogram keys are ``"EventType.field"`` (e.g. ``SampleCollected.ipc``).
    """

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.histograms: Dict[str, HistogramSummary] = {}

    def __call__(self, event: Event) -> None:
        name = type(event).__name__
        self.counters[name] += 1
        for f in fields(event):
            value = getattr(event, f.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            key = f"{name}.{f.name}"
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = HistogramSummary()
            hist.observe(float(value))
