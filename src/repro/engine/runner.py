"""Parallel experiment runner.

``dcat-experiment run all`` registers ~25 independent experiments; each
builds its own :class:`~repro.platform.machine.Machine` from an explicit
seed, so they parallelize perfectly across a process pool.  The one rule is
determinism: a parallel run must produce *identical* results to the serial
run, interval for interval.  Both paths therefore derive each experiment's
seed the same way — a stable CRC32 mix of the base seed and the experiment
id — and results come back in request order regardless of completion order.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # imported lazily at runtime: harness pulls in the world
    from repro.harness.results import ExperimentResult

__all__ = ["derive_seed", "run_experiments"]


def derive_seed(seed: int, experiment_id: str) -> int:
    """A per-experiment seed, stable across processes and Python versions.

    ``hash()`` is salted per interpreter, so the mix uses CRC32 of the id.
    """
    return (seed ^ zlib.crc32(experiment_id.encode("utf-8"))) & 0x7FFFFFFF


def _run_one(experiment_id: str, seed: int) -> "ExperimentResult":
    """Worker entry point: run one experiment under its derived seed."""
    from repro.harness.registry import run_experiment

    return run_experiment(experiment_id, seed=derive_seed(seed, experiment_id))


def run_experiments(
    ids: Sequence[str],
    jobs: int = 1,
    seed: int = 1234,
    trace_path: Optional[str] = None,
) -> "List[ExperimentResult]":
    """Run experiments serially (``jobs <= 1``) or across a process pool.

    Args:
        ids: Experiment ids, validated against the registry up front.
        jobs: Worker processes; capped at ``len(ids)``.
        seed: Base seed; each experiment runs under ``derive_seed(seed, id)``.
        trace_path: When given (serial only), a JSONL event trace of every
            experiment is written there, with marker lines at experiment
            boundaries, and bus metrics are appended to each result's notes.

    Returns:
        Results in the order of ``ids``, identical for any ``jobs`` value.

    Raises:
        KeyError: For unknown experiment ids.
        ValueError: If ``jobs`` is not positive, or if ``trace_path`` is
            combined with ``jobs > 1`` (the subscribers would live in the
            wrong process).
    """
    from repro.harness.registry import EXPERIMENTS

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; known ids: {known}"
        )
    if trace_path is not None and jobs > 1:
        raise ValueError("--trace requires a serial run (jobs=1)")

    if jobs <= 1 or len(ids) <= 1:
        if trace_path is not None:
            return _run_traced(ids, seed, trace_path)
        return [_run_one(experiment_id, seed) for experiment_id in ids]

    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        futures = [pool.submit(_run_one, experiment_id, seed) for experiment_id in ids]
        return [f.result() for f in futures]


def _run_traced(
    ids: Sequence[str], seed: int, trace_path: str
) -> "List[ExperimentResult]":
    """Serial run with a JSONL trace and per-experiment bus metrics."""
    from repro.engine.events import EventBus, JsonlTraceWriter, MetricsSink, use_bus
    from repro.harness.report import render_metrics

    results: "List[ExperimentResult]" = []
    with JsonlTraceWriter(trace_path) as writer:
        for experiment_id in ids:
            bus = EventBus()
            bus.subscribe(writer)
            metrics = MetricsSink()
            bus.subscribe(metrics)
            writer.mark(experiment_id=experiment_id, seed=derive_seed(seed, experiment_id))
            with use_bus(bus):
                result = _run_one(experiment_id, seed)
            if metrics.counters:
                for line in render_metrics(metrics).splitlines():
                    result.note(line)
            results.append(result)
    return results
