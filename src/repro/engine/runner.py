"""Parallel experiment runner.

``dcat-experiment run all`` registers ~25 independent experiments; each
builds its own :class:`~repro.platform.machine.Machine` from an explicit
seed, so they parallelize perfectly across a process pool.  The one rule is
determinism: a parallel run must produce *identical* results to the serial
run, interval for interval.  Both paths therefore derive each experiment's
seed the same way — a stable CRC32 mix of the base seed and the experiment
id — and results come back in request order regardless of completion order.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # imported lazily at runtime: harness pulls in the world
    from repro.harness.results import ExperimentResult

__all__ = ["derive_seed", "run_experiments"]


def derive_seed(seed: int, experiment_id: str) -> int:
    """A per-experiment seed, stable across processes and Python versions.

    ``hash()`` is salted per interpreter, so the mix uses CRC32 of the id.
    """
    return (seed ^ zlib.crc32(experiment_id.encode("utf-8"))) & 0x7FFFFFFF


def _run_one(
    experiment_id: str,
    seed: int,
    fidelity: Optional[str] = None,
    policy: Optional[str] = None,
) -> "ExperimentResult":
    """Worker entry point: run one experiment under its derived seed.

    ``fidelity`` installs the process-default cache substrate and
    ``policy`` the process-default allocation strategy for the
    experiment's simulations; applied here (not in the parent) so they
    also take effect inside process-pool workers.
    """
    from contextlib import ExitStack

    from repro.harness.registry import run_experiment

    with ExitStack() as stack:
        if fidelity is not None:
            from repro.platform.substrate import use_fidelity

            stack.enter_context(use_fidelity(fidelity))
        if policy is not None:
            from repro.core.policies import use_policy

            stack.enter_context(use_policy(policy))
        return run_experiment(experiment_id, seed=derive_seed(seed, experiment_id))


def run_experiments(
    ids: Sequence[str],
    jobs: int = 1,
    seed: int = 1234,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    fidelity: Optional[str] = None,
    policy: Optional[str] = None,
) -> "List[ExperimentResult]":
    """Run experiments serially (``jobs <= 1``) or across a process pool.

    Args:
        ids: Experiment ids, validated against the registry up front.
        jobs: Worker processes; capped at ``len(ids)``.
        seed: Base seed; each experiment runs under ``derive_seed(seed, id)``.
        trace_path: When given (serial only), a JSONL event trace of every
            experiment is written there, with marker lines at experiment
            boundaries, and bus metrics are appended to each result's notes.
        metrics_path: When given (serial only), a per-stage profiler and a
            bus collector observe the whole run and the registry is written
            there as Prometheus text plus a ``.json`` sibling.  Reports are
            unchanged: telemetry goes to the files, not into the results.
        fidelity: Optional cache-substrate fidelity (``analytical`` /
            ``exact`` / ``mixed``) installed as the process default around
            each experiment, in workers too.
        policy: Optional allocation strategy (any registered name)
            installed as the process default around each experiment, in
            workers too; configs built without an explicit policy pick
            it up.

    Returns:
        Results in the order of ``ids``, identical for any ``jobs`` value.

    Raises:
        KeyError: For unknown experiment ids.
        ValueError: If ``jobs`` is not positive, or if ``trace_path`` /
            ``metrics_path`` is combined with ``jobs > 1`` (the subscribers
            would live in the wrong process).
    """
    from repro.harness.registry import EXPERIMENTS

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; known ids: {known}"
        )
    if trace_path is not None and jobs > 1:
        raise ValueError("--trace requires a serial run (jobs=1)")
    if metrics_path is not None and jobs > 1:
        raise ValueError("--metrics requires a serial run (jobs=1)")

    if fidelity is not None:
        from repro.platform.substrate import FIDELITIES

        if fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown fidelity {fidelity!r}; use one of {list(FIDELITIES)}"
            )

    if policy is not None:
        from repro.core.policies import canonical_name

        canonical_name(policy)  # raises ValueError listing the registry

    if jobs <= 1 or len(ids) <= 1:
        if trace_path is not None or metrics_path is not None:
            return _run_observed(
                ids, seed, trace_path, metrics_path, fidelity, policy
            )
        return [
            _run_one(experiment_id, seed, fidelity, policy)
            for experiment_id in ids
        ]

    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        futures = [
            pool.submit(_run_one, experiment_id, seed, fidelity, policy)
            for experiment_id in ids
        ]
        return [f.result() for f in futures]


def _run_observed(
    ids: Sequence[str],
    seed: int,
    trace_path: Optional[str],
    metrics_path: Optional[str],
    fidelity: Optional[str] = None,
    policy: Optional[str] = None,
) -> "List[ExperimentResult]":
    """Serial run under observation: JSONL trace and/or metrics snapshot.

    Tracing appends bus-metrics notes to each result (as it always has);
    metrics collection deliberately leaves the results untouched so that
    ``run X --metrics out.prom`` prints byte-identical reports to ``run X``.
    """
    from contextlib import ExitStack

    from repro.engine.events import EventBus, JsonlTraceWriter, MetricsSink, use_bus
    from repro.engine.pipeline import use_profiler
    from repro.harness.report import render_metrics
    from repro.obs.collectors import BusMetricsCollector
    from repro.obs.export import write_metrics
    from repro.obs.profiler import StageProfiler

    results: "List[ExperimentResult]" = []
    with ExitStack() as stack:
        writer = (
            stack.enter_context(JsonlTraceWriter(trace_path))
            if trace_path is not None
            else None
        )
        profiler: Optional[StageProfiler] = None
        collector: Optional[BusMetricsCollector] = None
        if metrics_path is not None:
            profiler = StageProfiler()
            collector = BusMetricsCollector(registry=profiler.registry)
            stack.enter_context(use_profiler(profiler))
        for experiment_id in ids:
            bus = EventBus()
            metrics: Optional[MetricsSink] = None
            if writer is not None:
                bus.subscribe(writer)
                metrics = MetricsSink()
                bus.subscribe(metrics)
                writer.mark(
                    experiment_id=experiment_id, seed=derive_seed(seed, experiment_id)
                )
            if collector is not None:
                bus.subscribe(collector.on_event)
            with use_bus(bus):
                result = _run_one(experiment_id, seed, fidelity, policy)
            if metrics is not None and metrics.counters:
                for line in render_metrics(metrics).splitlines():
                    result.note(line)
            results.append(result)
        if profiler is not None and metrics_path is not None:
            write_metrics(profiler.registry, metrics_path)
    return results
