"""Staged interval loops.

A :class:`StagedLoop` decomposes a monolithic per-interval ``step()`` into
an ordered list of named stages sharing one mutable context object.  The
stage list is data, not code, so callers can inspect it, wrap a stage with
instrumentation, inject a fault between two stages, or swap an
implementation (e.g. a vectorized core model) without touching the loop
that owns it.

Stages are duck-typed against the :class:`Stage` protocol — anything with a
``name`` and a ``run(ctx)``.  Plain callables are adapted with
:class:`FunctionStage`.

Per-stage profiling hooks in here the same way the default event bus hooks
into :mod:`repro.engine.events`: a process-wide default profiler
(:func:`set_default_profiler` / :func:`use_profiler`) is captured by every
:class:`StagedLoop` at construction, and ``run()`` times each stage through
it.  With no profiler installed (the default) the loop pays a single
attribute read per interval — the observability layer costs nothing until
someone asks for it.  The concrete profiler lives in
:mod:`repro.obs.profiler`; this module only defines the hook so the engine
never depends on the metrics layer.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

__all__ = [
    "Stage",
    "FunctionStage",
    "StagedLoop",
    "StageObserver",
    "get_default_profiler",
    "set_default_profiler",
    "use_profiler",
]


@runtime_checkable
class Stage(Protocol):
    """One named step of an interval loop."""

    name: str

    def run(self, ctx: Any) -> None:
        """Advance the interval: read and mutate the shared context."""
        ...


@runtime_checkable
class StageObserver(Protocol):
    """Receives one wall-time sample per executed stage.

    ``observe`` must be cheap and must never raise: it runs on the interval
    hot path of every profiled loop.  :class:`repro.obs.profiler.StageProfiler`
    is the standard implementation.
    """

    def observe(self, loop: str, stage: str, elapsed_s: float) -> None:
        ...


_default_profiler: Optional[StageObserver] = None


def get_default_profiler() -> Optional[StageObserver]:
    """The profiler new :class:`StagedLoop` instances pick up (or ``None``)."""
    return _default_profiler


def set_default_profiler(profiler: Optional[StageObserver]) -> None:
    """Install a process-wide default profiler (``None`` disables)."""
    global _default_profiler
    _default_profiler = profiler


@contextmanager
def use_profiler(profiler: Optional[StageObserver]) -> Iterator[Optional[StageObserver]]:
    """Temporarily install ``profiler`` as the process default.

    Loops constructed inside the ``with`` block are profiled; loops that
    already exist keep whatever :attr:`StagedLoop.profiler` they captured
    (attach to those explicitly via ``loop.profiler = profiler``).
    """
    previous = _default_profiler
    set_default_profiler(profiler)
    try:
        yield profiler
    finally:
        set_default_profiler(previous)


class FunctionStage:
    """Adapts a ``ctx -> None`` callable to the :class:`Stage` protocol."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[Any], None]) -> None:
        self.name = name
        self.fn = fn

    def run(self, ctx: Any) -> None:
        self.fn(ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionStage({self.name!r})"


class StagedLoop:
    """An ordered, editable composition of uniquely named stages.

    Args:
        stages: Initial stage order.
        name: Label for error messages (e.g. ``"sim"``, ``"controller"``).
    """

    def __init__(self, stages: Sequence[Stage], name: str = "loop") -> None:
        self.name = name
        self._stages: List[Stage] = []
        #: Per-stage wall-time observer, captured from the process default at
        #: construction; assign directly to (de)instrument a live loop.
        self.profiler: Optional[StageObserver] = get_default_profiler()
        for s in stages:
            self.append(s)

    # -- composition ----------------------------------------------------------

    @property
    def stage_names(self) -> List[str]:
        return [s.name for s in self._stages]

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def _index(self, name: str) -> int:
        for i, s in enumerate(self._stages):
            if s.name == name:
                return i
        raise KeyError(f"{self.name}: no stage named {name!r} "
                       f"(stages: {', '.join(self.stage_names)})")

    def get(self, name: str) -> Stage:
        return self._stages[self._index(name)]

    def append(self, stage: Stage) -> None:
        if stage.name in self.stage_names:
            raise ValueError(f"{self.name}: duplicate stage name {stage.name!r}")
        self._stages.append(stage)

    def insert_before(self, name: str, stage: Stage) -> None:
        """Insert a new stage just before an existing one."""
        idx = self._index(name)
        if stage.name in self.stage_names:
            raise ValueError(f"{self.name}: duplicate stage name {stage.name!r}")
        self._stages.insert(idx, stage)

    def insert_after(self, name: str, stage: Stage) -> None:
        """Insert a new stage just after an existing one."""
        idx = self._index(name)
        if stage.name in self.stage_names:
            raise ValueError(f"{self.name}: duplicate stage name {stage.name!r}")
        self._stages.insert(idx + 1, stage)

    def replace(self, name: str, stage: Stage) -> Stage:
        """Swap a stage in place (instrumented wrappers, alternate models).

        Returns the stage that was replaced.
        """
        idx = self._index(name)
        if stage.name != name and stage.name in self.stage_names:
            raise ValueError(f"{self.name}: duplicate stage name {stage.name!r}")
        old = self._stages[idx]
        self._stages[idx] = stage
        return old

    def remove(self, name: str) -> Stage:
        """Drop a stage from the loop (returns it)."""
        return self._stages.pop(self._index(name))

    # -- execution ------------------------------------------------------------

    def run(self, ctx: Any) -> None:
        """Run every stage, in order, over one shared context.

        With a profiler attached, each stage is timed individually and the
        sample reported as ``(loop name, stage name, elapsed seconds)``.
        """
        profiler = self.profiler
        if profiler is None:
            for stage in self._stages:
                stage.run(ctx)
            return
        loop_name = self.name
        for stage in self._stages:
            start = perf_counter()
            stage.run(ctx)
            profiler.observe(loop_name, stage.name, perf_counter() - start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StagedLoop({self.name!r}: {' -> '.join(self.stage_names)})"
