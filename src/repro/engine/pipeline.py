"""Staged interval loops.

A :class:`StagedLoop` decomposes a monolithic per-interval ``step()`` into
an ordered list of named stages sharing one mutable context object.  The
stage list is data, not code, so callers can inspect it, wrap a stage with
instrumentation, inject a fault between two stages, or swap an
implementation (e.g. a vectorized core model) without touching the loop
that owns it.

Stages are duck-typed against the :class:`Stage` protocol — anything with a
``name`` and a ``run(ctx)``.  Plain callables are adapted with
:class:`FunctionStage`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Protocol, Sequence, runtime_checkable

__all__ = ["Stage", "FunctionStage", "StagedLoop"]


@runtime_checkable
class Stage(Protocol):
    """One named step of an interval loop."""

    name: str

    def run(self, ctx: Any) -> None:
        """Advance the interval: read and mutate the shared context."""
        ...


class FunctionStage:
    """Adapts a ``ctx -> None`` callable to the :class:`Stage` protocol."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[Any], None]) -> None:
        self.name = name
        self.fn = fn

    def run(self, ctx: Any) -> None:
        self.fn(ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionStage({self.name!r})"


class StagedLoop:
    """An ordered, editable composition of uniquely named stages.

    Args:
        stages: Initial stage order.
        name: Label for error messages (e.g. ``"sim"``, ``"controller"``).
    """

    def __init__(self, stages: Sequence[Stage], name: str = "loop") -> None:
        self.name = name
        self._stages: List[Stage] = []
        for s in stages:
            self.append(s)

    # -- composition ----------------------------------------------------------

    @property
    def stage_names(self) -> List[str]:
        return [s.name for s in self._stages]

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def _index(self, name: str) -> int:
        for i, s in enumerate(self._stages):
            if s.name == name:
                return i
        raise KeyError(f"{self.name}: no stage named {name!r} "
                       f"(stages: {', '.join(self.stage_names)})")

    def get(self, name: str) -> Stage:
        return self._stages[self._index(name)]

    def append(self, stage: Stage) -> None:
        if stage.name in self.stage_names:
            raise ValueError(f"{self.name}: duplicate stage name {stage.name!r}")
        self._stages.append(stage)

    def insert_before(self, name: str, stage: Stage) -> None:
        """Insert a new stage just before an existing one."""
        idx = self._index(name)
        if stage.name in self.stage_names:
            raise ValueError(f"{self.name}: duplicate stage name {stage.name!r}")
        self._stages.insert(idx, stage)

    def insert_after(self, name: str, stage: Stage) -> None:
        """Insert a new stage just after an existing one."""
        idx = self._index(name)
        if stage.name in self.stage_names:
            raise ValueError(f"{self.name}: duplicate stage name {stage.name!r}")
        self._stages.insert(idx + 1, stage)

    def replace(self, name: str, stage: Stage) -> Stage:
        """Swap a stage in place (instrumented wrappers, alternate models).

        Returns the stage that was replaced.
        """
        idx = self._index(name)
        if stage.name != name and stage.name in self.stage_names:
            raise ValueError(f"{self.name}: duplicate stage name {stage.name!r}")
        old = self._stages[idx]
        self._stages[idx] = stage
        return old

    def remove(self, name: str) -> Stage:
        """Drop a stage from the loop (returns it)."""
        return self._stages.pop(self._index(name))

    # -- execution ------------------------------------------------------------

    def run(self, ctx: Any) -> None:
        """Run every stage, in order, over one shared context."""
        for stage in self._stages:
            stage.run(ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StagedLoop({self.name!r}: {' -> '.join(self.stage_names)})"
