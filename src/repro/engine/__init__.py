"""The staged interval engine: events, pipelines, and the parallel runner.

This package is the seam between the reproduction's layers:

* :mod:`repro.engine.events` — frozen event types, the :class:`EventBus`
  (with a null-bus fast path), and built-in sinks (ring buffer, JSONL
  trace, counters/histograms);
* :mod:`repro.engine.pipeline` — the :class:`Stage` protocol and
  :class:`StagedLoop` that both interval loops are composed from;
* :mod:`repro.engine.runner` — the deterministic process-pool experiment
  runner behind ``dcat-experiment run all --jobs N``.
"""

from repro.engine.events import (
    AllocationPlanned,
    Event,
    EventBus,
    IntervalFinished,
    IntervalStarted,
    JsonlTraceWriter,
    MasksProgrammed,
    MetricsSink,
    NULL_BUS,
    NullBus,
    PhaseChanged,
    RingBufferRecorder,
    SampleCollected,
    StateTransition,
    get_default_bus,
    set_default_bus,
    use_bus,
)
from repro.engine.pipeline import FunctionStage, Stage, StagedLoop
from repro.engine.runner import derive_seed, run_experiments

__all__ = [
    "AllocationPlanned",
    "Event",
    "EventBus",
    "IntervalFinished",
    "IntervalStarted",
    "JsonlTraceWriter",
    "MasksProgrammed",
    "MetricsSink",
    "NULL_BUS",
    "NullBus",
    "PhaseChanged",
    "RingBufferRecorder",
    "SampleCollected",
    "StateTransition",
    "get_default_bus",
    "set_default_bus",
    "use_bus",
    "FunctionStage",
    "Stage",
    "StagedLoop",
    "derive_seed",
    "run_experiments",
]
