"""Cross-layer typed exceptions.

Kept dependency-free and at the package root so every layer — the
controller, the platform simulation, the cloud fleet, and the HTTP
service — can raise and catch the same types without import cycles.
"""

from __future__ import annotations

__all__ = ["UnknownTenantError"]


class UnknownTenantError(ValueError, KeyError):
    """A tenant/workload id that no layer currently knows about.

    Raised by :meth:`~repro.platform.sim.CloudSimulation.detach_vm`,
    :meth:`~repro.core.controller.DCatController.deregister_workload`,
    :meth:`~repro.cloud.fleet.FleetMachine.depart` and the
    :class:`~repro.cloud.handle.FleetHandle` lifecycle ops when asked
    about an id that is not attached/registered/resident.  The HTTP
    service maps it to a 404 instead of a 500.

    Subclasses both :class:`ValueError` (the historical type these
    paths raised, so existing ``except ValueError`` callers keep
    working) and :class:`KeyError` (the shape dict-backed callers
    expect).
    """

    def __str__(self) -> str:
        # KeyError.__str__ reprs its single argument ("'msg'"); keep the
        # plain ValueError-style message instead.
        return str(self.args[0]) if self.args else ""
