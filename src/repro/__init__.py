"""repro: a full reproduction of dCat (EuroSys 2018) on a simulated x86 platform.

dCat is a dynamic last-level-cache manager built on Intel Cache Allocation
Technology: it guarantees every tenant the performance of its reserved cache
partition while harvesting under-used ways for cache-hungry neighbors.

Package layout:

* :mod:`repro.core` — the dCat controller (the paper's contribution);
* :mod:`repro.cache`, :mod:`repro.mem`, :mod:`repro.cpu`,
  :mod:`repro.hwcounters`, :mod:`repro.cat` — the hardware substrates,
  modeled because no CAT-capable hardware is assumed;
* :mod:`repro.workloads` — microbenchmarks (MLR/MLOAD/lookbusy), SPEC
  CPU2006 proxies, and Redis/PostgreSQL/Elasticsearch application models;
* :mod:`repro.platform` — VMs, pinning, and the simulation loop;
* :mod:`repro.harness` — one runner per paper figure/table.

Quickstart::

    from repro import quick_dcat_demo
    result = quick_dcat_demo()
"""

from repro.core import AllocationPolicy, DCatConfig, DCatController, WorkloadState
from repro.platform import (
    CloudSimulation,
    DCatManager,
    Machine,
    SharedCacheManager,
    StaticCatManager,
    VirtualMachine,
    pin_vms,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationPolicy",
    "DCatConfig",
    "DCatController",
    "WorkloadState",
    "CloudSimulation",
    "DCatManager",
    "Machine",
    "SharedCacheManager",
    "StaticCatManager",
    "VirtualMachine",
    "pin_vms",
    "quick_dcat_demo",
]


def quick_dcat_demo(duration_s: float = 30.0):
    """Run the canonical scenario: one MLR VM among lookbusy neighbors.

    Returns the :class:`~repro.platform.sim.SimulationResult`; see
    ``examples/quickstart.py`` for a walk-through of reading it.
    """
    from repro.mem.address import MB
    from repro.platform.vm import pin_vms as _pin
    from repro.workloads import LookbusyWorkload, MlrWorkload

    machine = Machine()
    vms = [
        VirtualMachine(
            name="target",
            workload=MlrWorkload(8 * MB, start_delay_s=2.0),
            baseline_ways=3,
        )
    ] + [
        VirtualMachine(
            name=f"lookbusy-{i}", workload=LookbusyWorkload(), baseline_ways=3
        )
        for i in range(5)
    ]
    _pin(vms, machine.spec)
    sim = CloudSimulation(machine, vms, DCatManager())
    return sim.run(duration_s)
