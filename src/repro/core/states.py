"""Workload states and the legal-transition map (paper Fig. 6).

Every workload is always in exactly one state:

* **Keeper** — would suffer with less cache but does not benefit from more;
  the start state for every workload.
* **Donor** — neither suffers from less nor benefits from more; holds the
  minimum (idle/low-LLC-use donors) or shrinks one way per round
  (low-miss-rate donors).
* **Unknown** — starved for cache but not yet proven to benefit; receives
  ways with priority so it can be resolved quickly.
* **Receiver** — proven to benefit from more cache; keeps growing while the
  gains continue.
* **Streaming** — misses heavily but never reuses; a special Donor pinned to
  the minimum allocation.
* **Reclaim** — transient: a phase change was detected and the workload must
  return to its baseline allocation before re-categorization.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

__all__ = ["WorkloadState", "ALLOWED_TRANSITIONS", "can_transition"]


class WorkloadState(enum.Enum):
    KEEPER = "keeper"
    DONOR = "donor"
    UNKNOWN = "unknown"
    RECEIVER = "receiver"
    STREAMING = "streaming"
    RECLAIM = "reclaim"


# The transition structure of paper Fig. 6.  RECLAIM is reachable from every
# state (a phase change preempts everything) and resolves to KEEPER once the
# baseline allocation is restored.
ALLOWED_TRANSITIONS: Dict[WorkloadState, FrozenSet[WorkloadState]] = {
    WorkloadState.KEEPER: frozenset(
        {
            WorkloadState.KEEPER,
            WorkloadState.DONOR,
            WorkloadState.UNKNOWN,
            WorkloadState.RECLAIM,
        }
    ),
    WorkloadState.DONOR: frozenset(
        {
            WorkloadState.DONOR,
            WorkloadState.KEEPER,
            WorkloadState.UNKNOWN,
            WorkloadState.RECLAIM,
        }
    ),
    WorkloadState.UNKNOWN: frozenset(
        {
            WorkloadState.UNKNOWN,
            WorkloadState.RECEIVER,
            WorkloadState.STREAMING,
            WorkloadState.DONOR,
            WorkloadState.KEEPER,
            WorkloadState.RECLAIM,
        }
    ),
    WorkloadState.RECEIVER: frozenset(
        {
            WorkloadState.RECEIVER,
            WorkloadState.KEEPER,
            WorkloadState.DONOR,
            WorkloadState.RECLAIM,
        }
    ),
    WorkloadState.STREAMING: frozenset(
        {
            WorkloadState.STREAMING,
            WorkloadState.DONOR,
            WorkloadState.RECLAIM,
        }
    ),
    # RECLAIM is transient: once the baseline allocation is restored the
    # workload is re-categorized from scratch, so any state may follow.
    WorkloadState.RECLAIM: frozenset(
        {
            WorkloadState.RECLAIM,
            WorkloadState.KEEPER,
            WorkloadState.DONOR,
            WorkloadState.UNKNOWN,
        }
    ),
}


def can_transition(src: WorkloadState, dst: WorkloadState) -> bool:
    """True if Fig. 6 permits moving from ``src`` to ``dst``."""
    return dst in ALLOWED_TRANSITIONS[src]
