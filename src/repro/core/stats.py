"""Per-workload runtime records kept by the controller.

A :class:`WorkloadRecord` is everything dCat remembers about one workload
between control intervals: its cores and COS, its reserved baseline, its
current state and allocation, its phase detector and performance table, and
the small amount of history the classifier needs (previous allocation,
grants made while Unknown, the donor shrink floor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.hints import DeclaredSchedule
from repro.core.perftable import PerformanceTable
from repro.core.phase import PhaseDetector, PhaseSignature
from repro.core.states import WorkloadState
from repro.hwcounters.perfmon import CounterSample

__all__ = ["WorkloadRecord"]


@dataclass
class WorkloadRecord:
    """Controller-side record for one managed workload.

    Attributes:
        workload_id: Stable identifier (the VM / tenant name).
        cores: Hardware threads the workload's vCPUs are pinned to.
        cos_id: The CAT class of service assigned to those cores.
        baseline_ways: Contracted (reserved) allocation — the performance
            guarantee anchor.
        state: Current Fig. 6 state.
        ways: Allocation currently programmed.
        prev_ways: Allocation during the *previous* interval, for
            attributing IPC movement to grants.
        detector: Phase-change detector.
        table: Per-phase performance tables.
        signature: Current phase signature.
        last_sample: Previous interval's counters.
        last_ipc: Previous interval's IPC.
        unknown_grants: Ways granted since entering Unknown without a
            confirmed improvement (streaming evidence).
        donor_floor_ways: Shrink floor learned when a donor shrink caused
            misses — prevents shrink/grow oscillation within a phase.
        growth_ceiling_ways: Allocation at which growth stopped paying for
            this phase (set on Unknown/Receiver -> Keeper).  A Keeper with a
            high miss rate re-enters Unknown only below this ceiling, which
            prevents grow/stop oscillation when gains are sub-threshold.
        idle: Whether the workload was idle last interval.
        erratic_streak: Consecutive intervals whose sample had to be
            discarded (counter read failure or implausible values); feeds
            the quarantine threshold and resets on the first clean sample.
        quarantined: Whether the hardened controller has parked this
            workload at its reserved baseline until its counters recover.
        declared: Optional tenant-declared phase schedule; handed to the
            allocation strategy each interval as a trust-but-verify hint
            (only the ``phase_hint`` strategy consumes it today).
    """

    workload_id: str
    cores: Tuple[int, ...]
    cos_id: int
    baseline_ways: int
    state: WorkloadState = WorkloadState.KEEPER
    ways: int = 0
    prev_ways: int = 0
    detector: PhaseDetector = field(default_factory=PhaseDetector)
    table: Optional[PerformanceTable] = None
    signature: PhaseSignature = field(default_factory=PhaseSignature.idle_signature)
    last_sample: Optional[CounterSample] = None
    last_ipc: float = 0.0
    unknown_grants: int = 0
    donor_floor_ways: int = 0
    growth_ceiling_ways: int = 0
    growth_ceiling_miss_rate: float = 0.0
    idle: bool = False
    erratic_streak: int = 0
    quarantined: bool = False
    declared: Optional[DeclaredSchedule] = None

    def __post_init__(self) -> None:
        if self.baseline_ways < 1:
            raise ValueError("baseline_ways must be >= 1")
        if not self.cores:
            raise ValueError("a workload needs at least one core")
        if self.ways == 0:
            self.ways = self.baseline_ways
        if self.prev_ways == 0:
            self.prev_ways = self.ways
        if self.table is None:
            self.table = PerformanceTable(self.baseline_ways)

    def reset_phase_state(self) -> None:
        """Clear per-phase learning on a phase change."""
        self.unknown_grants = 0
        self.donor_floor_ways = 0
        self.growth_ceiling_ways = 0
        self.growth_ceiling_miss_rate = 0.0

    @property
    def got_grant_last_round(self) -> bool:
        return self.ways > self.prev_ways

    @property
    def shrunk_last_round(self) -> bool:
        return self.ways < self.prev_ways
