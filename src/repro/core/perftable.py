"""Per-phase performance tables (paper Table 1 and §3.5).

For every (workload, phase) pair dCat accumulates a mapping from cache-way
count to IPC normalized against the phase's *baseline* IPC — the IPC
measured at the statically reserved allocation.  The table serves three
purposes:

* deciding whether a grant actually helped (Unknown -> Receiver);
* jumping a re-encountered phase straight to its *preferred* allocation
  instead of re-growing one way per round (paper Fig. 12);
* the max-performance allocation policy's search for the way split that
  maximizes the sum of normalized IPCs (paper §3.5's worked example).

Entries are EWMA-smoothed so counter noise does not churn decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.phase import PhaseSignature

__all__ = ["PhaseTable", "PerformanceTable"]


@dataclass
class PhaseTable:
    """ways -> normalized-IPC samples for one phase of one workload."""

    baseline_ways: int
    baseline_ipc: Optional[float] = None
    entries: Dict[int, float] = field(default_factory=dict)
    ewma_alpha: float = 0.4

    def record_baseline(self, ipc: float) -> None:
        """Record (or refresh) the baseline IPC, re-normalizing entries."""
        if ipc <= 0:
            return
        if self.baseline_ipc is None:
            self.baseline_ipc = ipc
        else:
            self.baseline_ipc += self.ewma_alpha * (ipc - self.baseline_ipc)
        self.entries[self.baseline_ways] = 1.0

    def record(self, ways: int, ipc: float) -> None:
        """Record an IPC observation at an allocation (noop pre-baseline)."""
        if self.baseline_ipc is None or self.baseline_ipc <= 0 or ipc <= 0:
            return
        norm = ipc / self.baseline_ipc
        prev = self.entries.get(ways)
        self.entries[ways] = (
            norm if prev is None else prev + self.ewma_alpha * (norm - prev)
        )

    def normalized(self, ways: int) -> Optional[float]:
        return self.entries.get(ways)

    def best_normalized(self) -> Optional[float]:
        return max(self.entries.values()) if self.entries else None

    def preferred_ways(self, tolerance: float = 0.02) -> Optional[int]:
        """Smallest allocation within ``tolerance`` of the best entry.

        This is the paper's "preferred" mark in Table 1: 6 ways is preferred
        when 6, 7, and 8 all reach the plateau.
        """
        if not self.entries:
            return None
        best = max(self.entries.values())
        candidates = [w for w, n in self.entries.items() if n >= best * (1 - tolerance)]
        return min(candidates) if candidates else None


class PerformanceTable:
    """All phase tables for one workload.

    Args:
        baseline_ways: The workload's reserved (contracted) way count.
    """

    def __init__(self, baseline_ways: int) -> None:
        if baseline_ways < 1:
            raise ValueError("baseline_ways must be >= 1")
        self.baseline_ways = baseline_ways
        self._phases: Dict[PhaseSignature, PhaseTable] = {}

    def phase(self, signature: PhaseSignature) -> PhaseTable:
        """The (created-on-demand) table for a phase signature."""
        table = self._phases.get(signature)
        if table is None:
            table = PhaseTable(baseline_ways=self.baseline_ways)
            self._phases[signature] = table
        return table

    def known_phase(self, signature: PhaseSignature) -> Optional[PhaseTable]:
        """The phase's table if it has a baseline recorded, else None."""
        table = self._phases.get(signature)
        if table is not None and table.baseline_ipc is not None:
            return table
        return None

    def invalidate(self, signature: PhaseSignature) -> None:
        """Drop a phase's contents (paper: tables are per-phase only)."""
        self._phases.pop(signature, None)

    def __len__(self) -> int:
        return len(self._phases)
