"""Pluggable allocation strategies: the objectives behind Allocate Cache.

The paper ships two §3.5 objectives — max-fairness and max-performance —
but its setting (IaaS under churn) invites more.  This module promotes the
objective to a first-class :class:`AllocationStrategy` with a registry, so
:func:`~repro.core.allocation.plan_allocation` dispatches by name instead
of branching on the two-member enum.  Five strategies ship:

* ``max_fairness`` — steps 1–3 only (reclaim/donate/grant); the paper's
  default, byte-identical to the pre-registry behaviour.
* ``max_performance`` — steps 1–3 plus the grouped-knapsack rebalance of
  §3.5's worked example; byte-identical to the pre-registry enum path.
* ``lfoc_clustering`` — LFOC-style: score each workload's miss-curve
  curvature from its learned performance table, squeeze flat-curved
  squanderers (streamers, donors, insensitive tenants) to their protected
  floors, and split the harvested ways across the cache-sensitive cluster
  in proportion to curvature.
* ``phase_hint`` — Com-CAS-style: workloads may carry a declared phase
  schedule (:class:`~repro.core.hints.DeclaredSchedule`); when the
  declared signature matches the measured counters (trust-but-verify),
  the strategy steers the allocation straight to the declared phase's
  preferred ways instead of waiting on the detector.
* ``reserved_pooled`` — Memshare-style: every tenant keeps a reserved
  floor; the remaining pooled region is granted one way at a time to
  whichever tenant's performance table shows the highest marginal gain.

Every strategy starts from :func:`~repro.core.allocation.base_plan` and
only moves capacity *between* protected floors and the pool, so the §3.5
contract (min-ways, socket budget, baseline guarantee when feasible)
holds for all of them — the allocation fuzz suite pins this per strategy.

A process-default slot (:func:`use_policy`) mirrors the fidelity slot in
:mod:`repro.platform.substrate` so ``dcat-experiment run --policy`` takes
effect inside process-pool workers too.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.core.allocation import (
    AllocationInput,
    _rebalance_max_performance,
    base_plan,
)
from repro.core.config import AllocationPolicy, DCatConfig
from repro.core.grouping import curvature_score
from repro.core.perftable import PhaseTable
from repro.core.states import WorkloadState

__all__ = [
    "AllocationStrategy",
    "MaxFairnessStrategy",
    "MaxPerformanceStrategy",
    "LfocClusteringStrategy",
    "PhaseHintStrategy",
    "ReservedPooledStrategy",
    "register_strategy",
    "strategy_names",
    "canonical_name",
    "normalize_policy",
    "policy_name",
    "get_strategy",
    "get_default_policy",
    "set_default_policy",
    "use_policy",
    "protected_floors",
    "fit_to_budget",
]

#: Anything ``DCatConfig.policy`` accepts: an enum member (legacy), a
#: registered strategy name, or None (resolve the process default).
PolicyLike = Union[AllocationPolicy, str]


class AllocationStrategy(abc.ABC):
    """One allocation objective: turns §3.5 inputs into a ways plan.

    Subclasses must preserve the base-plan invariants: every workload at
    least ``config.min_ways``, the sum within ``total_ways``, and the
    baseline guarantee whenever baselines fit the socket.  Starting from
    :func:`~repro.core.allocation.base_plan` and never dropping anyone
    below :func:`protected_floors` is the easy way to comply.
    """

    #: Registry key; also what scenario files and ``--policy`` accept.
    name: str = "strategy"
    #: Extra accepted spellings (normalized), mapped to ``name``.
    aliases: Sequence[str] = ()

    @abc.abstractmethod
    def plan(
        self,
        inputs: Sequence[AllocationInput],
        total_ways: int,
        config: DCatConfig,
    ) -> Dict[str, int]:
        """The next ``{workload: ways}`` plan for this interval."""


# -- invariant-safe helpers ----------------------------------------------------


def protected_floors(
    plan: Mapping[str, int],
    inputs: Sequence[AllocationInput],
    config: DCatConfig,
) -> Dict[str, int]:
    """Per-workload floors below which no strategy may squeeze anyone.

    The floor is the baseline for workloads entitled to it this interval
    (reclaiming, or targeting at least their baseline), ``min_ways``
    otherwise — capped at the base plan's value so a strategy that holds
    everyone at or above these floors, within the total budget, keeps
    every base-plan invariant.
    """
    floors: Dict[str, int] = {}
    for inp in inputs:
        keep = config.min_ways
        if inp.reclaiming or inp.target_ways >= inp.baseline_ways:
            keep = max(keep, inp.baseline_ways)
        floors[inp.workload_id] = min(plan[inp.workload_id], keep)
    return floors


def fit_to_budget(
    floors: Mapping[str, int],
    desires: Mapping[str, int],
    total_ways: int,
) -> Dict[str, int]:
    """Grow every workload from its floor toward its desire, fairly.

    One way per workload per round, in sorted-id order, until the budget
    runs out or every desire is met — so a shortage is shared instead of
    starving whoever sorts last.
    """
    plan = dict(floors)
    budget = total_ways - sum(plan.values())
    progress = True
    while budget > 0 and progress:
        progress = False
        for wid in sorted(plan):
            if budget <= 0:
                break
            if plan[wid] < desires.get(wid, plan[wid]):
                plan[wid] += 1
                budget -= 1
                progress = True
    return plan


def _apportion(budget: int, weights: Mapping[str, float]) -> Dict[str, int]:
    """Split ``budget`` integer ways proportionally to positive weights.

    Largest-remainder rounding with a deterministic (remainder, id)
    tiebreak, so equal inputs always split the same way.
    """
    total_w = sum(weights.values())
    if budget <= 0 or total_w <= 0:
        return {wid: 0 for wid in weights}
    shares = {wid: budget * w / total_w for wid, w in weights.items()}
    granted = {wid: int(share) for wid, share in shares.items()}
    left = budget - sum(granted.values())
    order = sorted(weights, key=lambda wid: (-(shares[wid] - granted[wid]), wid))
    for wid in order[:left]:
        granted[wid] += 1
    return granted


def _table_curvature(table: Optional[PhaseTable]) -> Optional[float]:
    """Per-way normalized-IPC slope across a table's recorded range.

    None when the table has fewer than two entries (curvature unknown).
    """
    if table is None or len(table.entries) < 2:
        return None
    ways = sorted(table.entries)
    lo, hi = ways[0], ways[-1]
    return curvature_score(lambda w: table.entries[w], lo, hi)


def _interp(points: Sequence[tuple], ways: float) -> float:
    """Piecewise-linear read of sorted ``(ways, value)`` points.

    Flat beyond both ends, so marginal gains vanish outside the measured
    range and greedy harvesting terminates.
    """
    if ways <= points[0][0]:
        return points[0][1]
    if ways >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= ways <= x1:
            if x1 == x0:
                return y1
            return y0 + (y1 - y0) * (ways - x0) / (x1 - x0)
    return points[-1][1]


# -- the five shipped strategies -----------------------------------------------


class MaxFairnessStrategy(AllocationStrategy):
    """Paper §3.5 max-fairness: reclaim, donate, grant — nothing more."""

    name = "max_fairness"
    aliases = ("fairness",)

    def plan(self, inputs, total_ways, config):
        return base_plan(inputs, total_ways, config)


class MaxPerformanceStrategy(AllocationStrategy):
    """Paper §3.5 max-performance: the grouped-knapsack rebalance."""

    name = "max_performance"
    aliases = ("performance",)

    def plan(self, inputs, total_ways, config):
        plan = base_plan(inputs, total_ways, config)
        _rebalance_max_performance(plan, inputs, total_ways, config)
        return plan


class LfocClusteringStrategy(AllocationStrategy):
    """LFOC-style clustering by miss-curve curvature.

    Workloads split into a *sensitive* cluster (steep learned curve, in an
    isolating state) and a *squanderer* cluster (streamers, donors, and
    tenants whose learned curve is measurably flat).  Squanderers drop to
    their protected floors; the harvested ways plus the free pool go to
    the sensitive cluster in proportion to curvature.  Workloads whose
    curvature is still unknown (fresh phases, short tables) keep their
    base-plan allocation — the probing that builds their tables must not
    be starved.

    Args:
        threshold: Normalized-IPC gain per way below which a *measured*
            curve counts as flat (default 1%/way, matching the placement
            layer's sensitivity threshold).
    """

    name = "lfoc_clustering"
    aliases = ("lfoc",)

    _SQUANDER_STATES = (WorkloadState.STREAMING, WorkloadState.DONOR)

    def __init__(self, threshold: float = 0.01) -> None:
        if threshold < 0:
            raise ValueError("threshold cannot be negative")
        self.threshold = threshold

    def plan(self, inputs, total_ways, config):
        plan = base_plan(inputs, total_ways, config)
        floors = protected_floors(plan, inputs, config)
        sensitive: Dict[str, float] = {}
        squanderers: List[str] = []
        for inp in inputs:
            curvature = _table_curvature(inp.phase_table)
            if inp.state in self._SQUANDER_STATES:
                squanderers.append(inp.workload_id)
            elif curvature is None:
                continue  # unknown curve: leave the base plan alone
            elif curvature >= self.threshold:
                sensitive[inp.workload_id] = curvature
            else:
                squanderers.append(inp.workload_id)
        if not sensitive:
            return plan
        for wid in squanderers:
            plan[wid] = floors[wid]
        pool = total_ways - sum(plan.values())
        for wid, extra in _apportion(pool, sensitive).items():
            plan[wid] += extra
        return plan


class PhaseHintStrategy(AllocationStrategy):
    """Declared-phase apportioning with a trust-but-verify fallback.

    Workloads carrying a :class:`~repro.core.hints.PhaseHint` whose active
    declared phase matches the measured counters are steered straight to
    the declared ``preferred_ways`` (never below their protected floor);
    everyone else — including hinted workloads whose declared signature
    diverges from the counters beyond ``tolerance`` — follows the
    detector-driven base plan.

    Args:
        tolerance: Relative divergence between the declared and measured
            ``refs_per_instr`` beyond which a declared phase is distrusted
            (default 30%).  Declared phases without a signature are always
            trusted.
    """

    name = "phase_hint"
    aliases = ("hints", "declared", "phase_hints")

    def __init__(self, tolerance: float = 0.3) -> None:
        if tolerance < 0:
            raise ValueError("tolerance cannot be negative")
        self.tolerance = tolerance

    def _trusted(self, declared, measured_refs: float) -> bool:
        if declared.refs_per_instr is None:
            return True
        expected = declared.refs_per_instr
        return abs(measured_refs - expected) <= self.tolerance * expected

    def plan(self, inputs, total_ways, config):
        plan = base_plan(inputs, total_ways, config)
        floors = protected_floors(plan, inputs, config)
        desires = dict(plan)
        hinted = False
        for inp in inputs:
            hint = inp.hint
            if hint is None:
                continue
            declared = hint.schedule.active_at(hint.time_s)
            if declared is None:
                continue
            if not self._trusted(declared, hint.measured_refs_per_instr):
                continue  # verify failed: fall back to the detector's plan
            wid = inp.workload_id
            desires[wid] = max(floors[wid], min(declared.preferred_ways, total_ways))
            hinted = True
        if not hinted:
            return plan
        return fit_to_budget(floors, desires, total_ways)


class ReservedPooledStrategy(AllocationStrategy):
    """Memshare-style reserved floors plus a benefit-arbitrated pool.

    Every tenant owns its protected floor (baseline when entitled, the
    minimum otherwise); everything above the floors is one pooled region,
    granted a way at a time to whichever tenant's learned performance
    curve shows the largest marginal normalized-IPC gain (piecewise-linear
    between recorded entries, flat outside them).  Growers without a
    usable curve yet harvest at a nominal epsilon benefit — capped at
    their requested target — so probing still makes progress; ways nobody
    can benefit from stay free.
    """

    name = "reserved_pooled"
    aliases = ("memshare", "harvest")

    #: Nominal marginal benefit for table-less growers: loses every
    #: comparison against a measured gain, wins against "no benefit".
    _EPSILON = 1e-9

    def _marginal_gain(self, inp: AllocationInput, ways: int) -> float:
        table = inp.phase_table
        if table is None or len(table.entries) < 2:
            if inp.grow_request > 0 and ways < inp.target_ways + inp.grow_request:
                return self._EPSILON
            return 0.0
        points = sorted(table.entries.items())
        return max(0.0, _interp(points, ways + 1) - _interp(points, ways))

    def plan(self, inputs, total_ways, config):
        plan = base_plan(inputs, total_ways, config)
        floors = protected_floors(plan, inputs, config)
        plan = dict(floors)
        by_id = {inp.workload_id: inp for inp in inputs}
        pool = total_ways - sum(plan.values())
        while pool > 0:
            best_wid = None
            best_gain = 0.0
            for wid in sorted(plan):
                gain = self._marginal_gain(by_id[wid], plan[wid])
                if gain > best_gain:
                    best_wid, best_gain = wid, gain
            if best_wid is None:
                break
            plan[best_wid] += 1
            pool -= 1
        return plan


# -- registry ------------------------------------------------------------------

_STRATEGIES: Dict[str, AllocationStrategy] = {}
_ALIASES: Dict[str, str] = {}


def register_strategy(strategy: AllocationStrategy) -> AllocationStrategy:
    """Add a strategy to the registry (idempotent per name+instance).

    Raises:
        ValueError: On a duplicate name or alias owned by another strategy.
    """
    name = strategy.name
    if not name or name != name.strip().lower():
        raise ValueError(f"strategy name {name!r} must be non-empty lowercase")
    existing = _STRATEGIES.get(name)
    if existing is not None and existing is not strategy:
        raise ValueError(f"allocation strategy {name!r} is already registered")
    # Validate every alias before touching either table, so a collision
    # cannot leave a half-registered strategy behind.
    for alias in strategy.aliases:
        owner = _ALIASES.get(alias)
        if owner is not None and owner != name:
            raise ValueError(
                f"alias {alias!r} already points at strategy {owner!r}"
            )
    _STRATEGIES[name] = strategy
    for alias in strategy.aliases:
        _ALIASES[alias] = name
    return strategy


def strategy_names() -> List[str]:
    """Every registered strategy name, sorted (the ``--policy`` vocabulary)."""
    return sorted(_STRATEGIES)


def canonical_name(value: PolicyLike) -> str:
    """Resolve any accepted policy spelling to its registered name.

    Accepts enum members, registered names, aliases, and case/separator
    variants (``Max-Performance`` → ``max_performance``).

    Raises:
        ValueError: For an unknown policy, listing the registered names.
    """
    if isinstance(value, AllocationPolicy):
        return value.value
    if not isinstance(value, str):
        raise ValueError(
            f"allocation policy must be a string or AllocationPolicy, "
            f"got {type(value).__name__}"
        )
    name = value.strip().lower().replace("-", "_").replace(" ", "_")
    name = _ALIASES.get(name, name)
    if name not in _STRATEGIES:
        raise ValueError(
            f"unknown allocation policy {value!r}; "
            f"registered strategies: {strategy_names()}"
        )
    return name


#: Registered names that keep resolving to the legacy enum members, so the
#: controller's identity comparisons and reports stay byte-identical.
_LEGACY = {p.value: p for p in AllocationPolicy}


def normalize_policy(value: Optional[PolicyLike]) -> PolicyLike:
    """What ``DCatConfig.policy`` stores: enum for legacy names, else str.

    ``None`` resolves to the process default (see :func:`use_policy`).

    Raises:
        ValueError: For an unknown policy, listing the registered names.
    """
    if value is None:
        return get_default_policy()
    name = canonical_name(value)
    return _LEGACY.get(name, name)


def policy_name(value: PolicyLike) -> str:
    """The registry name of an already-normalized policy value."""
    return value.value if isinstance(value, AllocationPolicy) else value


def get_strategy(policy: PolicyLike) -> AllocationStrategy:
    """The registered strategy behind a normalized policy value."""
    return _STRATEGIES[canonical_name(policy)]


# -- default-policy plumbing (mirrors substrate.use_fidelity) ------------------

_default_policy: PolicyLike = AllocationPolicy.MAX_FAIRNESS


def get_default_policy() -> PolicyLike:
    """The policy configs fall back to when none is given."""
    return _default_policy


def set_default_policy(policy: Optional[PolicyLike]) -> None:
    """Install a process-wide default policy (``None`` restores fairness).

    Raises:
        ValueError: For an unknown policy, listing the registered names.
    """
    global _default_policy
    if policy is None:
        _default_policy = AllocationPolicy.MAX_FAIRNESS
        return
    name = canonical_name(policy)
    _default_policy = _LEGACY.get(name, name)


@contextmanager
def use_policy(policy: PolicyLike) -> Iterator[PolicyLike]:
    """Temporarily install ``policy`` as the process default.

    The seam ``dcat-experiment run --policy`` uses: every
    :class:`~repro.core.config.DCatConfig` built without an explicit
    policy — including each fleet machine's — picks the default up at
    construction, in process-pool workers too.
    """
    global _default_policy
    previous = _default_policy
    set_default_policy(policy)
    try:
        yield _default_policy
    finally:
        _default_policy = previous


for _strategy in (
    MaxFairnessStrategy(),
    MaxPerformanceStrategy(),
    LfocClusteringStrategy(),
    PhaseHintStrategy(),
    ReservedPooledStrategy(),
):
    register_strategy(_strategy)
del _strategy
