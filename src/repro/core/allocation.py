"""The Allocate Cache step (paper §3.5): pool arbitration and policies.

Inputs are the per-workload :class:`~repro.core.classifier.Decision`
targets; output is a concrete ``{workload: ways}`` plan that always sums to
at most the socket's ways.  The ordering the paper prescribes:

1. **Reclaim first** — a workload returning to baseline after a phase change
   has absolute priority; if the pool cannot cover it, ways are taken back
   from workloads holding more than their baseline.
2. **Donations** — Donor / Streaming shrink targets free ways into the pool.
3. **Grants** — Unknown workloads are served before Receivers (so streaming
   suspects are resolved quickly), one ``grow_step`` way per round.
4. Under the **max-performance** policy, once the pool cannot satisfy every
   grower, the plan is re-balanced by a dynamic program over the growers'
   performance tables: maximize the sum of normalized IPCs subject to the
   way budget, never dropping anyone below baseline (the §3.5 worked
   example with workloads A, B and C).

Steps 1–3 are exposed as :func:`base_plan`; step 4 is one of several
pluggable objectives.  :func:`plan_allocation` dispatches through the
:mod:`repro.core.policies` strategy registry, where the two §3.5
objectives are registered alongside LFOC-style clustering, declared
phase-hint apportioning and Memshare-style reserved+pooled harvesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.config import DCatConfig
from repro.core.hints import PhaseHint
from repro.core.perftable import PhaseTable
from repro.core.states import WorkloadState

__all__ = ["AllocationInput", "base_plan", "plan_allocation", "optimize_way_split"]


@dataclass(frozen=True)
class AllocationInput:
    """One workload's inputs to the allocation round."""

    workload_id: str
    state: WorkloadState
    target_ways: int
    grow_request: int
    baseline_ways: int
    reclaiming: bool = False
    phase_table: Optional[PhaseTable] = None
    hint: Optional[PhaseHint] = None


def plan_allocation(
    inputs: Sequence[AllocationInput],
    total_ways: int,
    config: DCatConfig,
) -> Dict[str, int]:
    """Produce the next ``{workload: ways}`` plan.

    Dispatches to the registered :class:`~repro.core.policies
    .AllocationStrategy` named by ``config.policy``; the legacy enum
    members resolve to the ``max_fairness`` / ``max_performance``
    strategies, which reproduce the pre-registry behaviour byte for byte.

    Raises:
        ValueError: If even the guaranteed minimums cannot fit (more
            workloads than ways — a deployment error dCat cannot fix).
    """
    if len(inputs) * config.min_ways > total_ways:
        raise ValueError(
            f"{len(inputs)} workloads cannot each hold {config.min_ways} way(s) "
            f"of a {total_ways}-way cache"
        )
    # Imported here, not at module level: policies builds on base_plan.
    from repro.core.policies import get_strategy

    plan = get_strategy(config.policy).plan(inputs, total_ways, config)
    assert sum(plan.values()) <= total_ways
    return plan


def base_plan(
    inputs: Sequence[AllocationInput],
    total_ways: int,
    config: DCatConfig,
) -> Dict[str, int]:
    """Steps 1–3 of §3.5, shared by every strategy: reclaim, donate, grant.

    Returns a plan where every workload holds at least ``min_ways``, the
    budget fits the socket, and — when baselines are feasible — nobody
    asking for at least its baseline sits below it.  Strategies refine this
    plan without weakening those invariants.
    """
    plan: Dict[str, int] = {
        inp.workload_id: max(config.min_ways, inp.target_ways) for inp in inputs
    }

    # -- step 1: make room for reclaims --------------------------------------
    _enforce_budget(plan, inputs, total_ways, config)

    # -- step 2/3: grant from the pool, Unknown before Receiver ---------------
    free = total_ways - sum(plan.values())
    for priority_states in _grant_order(config):
        for inp in sorted(inputs, key=lambda i: i.workload_id):
            if free <= 0:
                break
            if inp.state in priority_states and inp.grow_request > 0:
                grant = min(inp.grow_request, free)
                plan[inp.workload_id] += grant
                free -= grant

    return plan


def _grant_order(config: DCatConfig) -> List[frozenset]:
    if config.unknown_priority:
        return [
            frozenset({WorkloadState.UNKNOWN}),
            frozenset({WorkloadState.RECEIVER}),
        ]
    return [frozenset({WorkloadState.UNKNOWN, WorkloadState.RECEIVER})]


def _enforce_budget(
    plan: Dict[str, int],
    inputs: Sequence[AllocationInput],
    total_ways: int,
    config: DCatConfig,
) -> None:
    """Shrink over-baseline holders until the plan fits the socket.

    Reclaiming workloads' baselines are sacred; everyone else is reduced
    toward baseline, largest surplus first, then — if it still does not fit —
    non-reclaiming workloads are reduced toward the minimum, which can only
    happen when baselines oversubscribe the cache (the operator's choice).
    """
    by_id = {inp.workload_id: inp for inp in inputs}

    def overshoot() -> int:
        return sum(plan.values()) - total_ways

    while overshoot() > 0:
        # Candidates holding more than baseline, not currently reclaiming.
        candidates = [
            wid
            for wid, ways in plan.items()
            if ways > by_id[wid].baseline_ways and not by_id[wid].reclaiming
        ]
        if candidates:
            victim = max(
                candidates, key=lambda w: (plan[w] - by_id[w].baseline_ways, w)
            )
            plan[victim] -= 1
            continue
        # Oversubscribed baselines: shave the largest non-reclaiming holder.
        fallback = [
            wid
            for wid, ways in plan.items()
            if ways > config.min_ways and not by_id[wid].reclaiming
        ]
        if not fallback:
            fallback = [
                wid for wid, ways in plan.items() if ways > config.min_ways
            ]
        if not fallback:
            raise ValueError("cannot fit even minimum allocations")
        victim = max(fallback, key=lambda w: (plan[w], w))
        plan[victim] -= 1


def _rebalance_max_performance(
    plan: Dict[str, int],
    inputs: Sequence[AllocationInput],
    total_ways: int,
    config: DCatConfig,
) -> None:
    """Re-split the flexible capacity to maximize total normalized IPC.

    Only workloads with a usable phase table participate; their combined
    budget (current plan shares plus any remaining free ways) is re-divided
    by :func:`optimize_way_split`.  To keep actuation gentle (the paper
    moves one way per round), each participant moves at most one way toward
    its optimal share per control round.
    """
    participants = [
        inp
        for inp in inputs
        if inp.phase_table is not None
        and len(inp.phase_table.entries) >= 2
        and inp.state
        in (WorkloadState.RECEIVER, WorkloadState.UNKNOWN, WorkloadState.KEEPER)
    ]
    if len(participants) < 2:
        return
    free = total_ways - sum(plan.values())
    budget = free + sum(plan[p.workload_id] for p in participants)
    optimal = optimize_way_split(
        {p.workload_id: p.phase_table for p in participants},
        budget=budget,
        baselines={p.workload_id: p.baseline_ways for p in participants},
        min_ways=config.min_ways,
        growing={
            p.workload_id
            for p in participants
            if p.state in (WorkloadState.RECEIVER, WorkloadState.UNKNOWN)
        },
    )
    if not optimal:
        return
    for p in participants:
        wid = p.workload_id
        want = optimal.get(wid, plan[wid])
        if want > plan[wid]:
            plan[wid] += 1
        elif want < plan[wid]:
            plan[wid] -= 1


def _table_options(
    table: PhaseTable, baseline: int, min_ways: int, extend: int = 0
) -> Dict[int, float]:
    """Candidate (ways -> normalized IPC) choices for the DP.

    Uses the recorded entries at or above the guarantee floor.  For
    workloads still growing (``extend=1``), a mild linear extrapolation one
    step beyond the largest recorded allocation lets the DP consider
    untried sizes; settled Keepers get recorded entries only, so the
    rebalancer cannot creep them past their growth stop.
    """
    floor = max(min_ways, baseline)
    options = {w: n for w, n in table.entries.items() if w >= floor}
    if not options:
        options[floor] = 1.0
    top = max(options)
    if extend > 0 and top - 1 in options:
        slope = max(0.0, options[top] - options[top - 1])
        options[top + extend] = options[top] + 0.8 * slope * extend
    return options


def optimize_way_split(
    tables: Mapping[str, PhaseTable],
    budget: int,
    baselines: Mapping[str, int],
    min_ways: int = 1,
    growing: Optional[set] = None,
) -> Optional[Dict[str, int]]:
    """Maximize the sum of normalized IPCs subject to a way budget.

    The paper's formulation: find ``Max(sum_i norm_IPC_i)`` such that
    ``sum_i ways_i <= m``, searching each workload's performance table.
    Solved as a grouped knapsack DP over the workloads' candidate entries.

    Args:
        growing: Workload ids still in a growth state; only these get the
            one-step extrapolation beyond their recorded entries.

    Returns None when the budget cannot cover every participant's floor.
    """
    wids = sorted(tables)
    floors = {w: max(min_ways, baselines.get(w, min_ways)) for w in wids}
    if sum(floors.values()) > budget:
        return None

    grow_set = growing if growing is not None else set(wids)
    options = {
        w: _table_options(
            tables[w], floors[w], min_ways, extend=1 if w in grow_set else 0
        )
        for w in wids
    }

    # dp[b] = (best total normIPC, chosen ways per wid) using budget b.
    NEG = float("-inf")
    dp: List[float] = [NEG] * (budget + 1)
    choice: List[Optional[Dict[str, int]]] = [None] * (budget + 1)
    dp[0] = 0.0
    choice[0] = {}
    for wid in wids:
        ndp: List[float] = [NEG] * (budget + 1)
        nchoice: List[Optional[Dict[str, int]]] = [None] * (budget + 1)
        for b in range(budget + 1):
            if dp[b] == NEG:
                continue
            for ways, norm in options[wid].items():
                nb = b + ways
                if nb > budget:
                    continue
                val = dp[b] + norm
                if val > ndp[nb]:
                    ndp[nb] = val
                    picked = dict(choice[b])
                    picked[wid] = ways
                    nchoice[nb] = picked
        dp, choice = ndp, nchoice

    best_b = max(range(budget + 1), key=lambda b: dp[b])
    if dp[best_b] == NEG:
        return None
    return choice[best_b]
