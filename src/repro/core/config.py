"""dCat controller configuration: every threshold the paper defines.

All thresholds are "configurable depending on the needs of users" (paper
§3.2); the defaults here are the values the paper selects for its
evaluation: 3% LLC miss-rate threshold (chosen in Fig. 8), 5% IPC
improvement threshold (chosen in Fig. 9), a 10% phase-change threshold on
memory accesses per instruction, a 3x-baseline streaming threshold, and a
1-second control interval.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

__all__ = ["AllocationPolicy", "DCatConfig"]


class AllocationPolicy(enum.Enum):
    """The two allocation objectives of paper §3.5.

    Kept for backward compatibility: these two members are the legacy
    spellings of the ``max_fairness`` / ``max_performance`` strategies in
    the :mod:`repro.core.policies` registry, which also hosts the rival
    objectives (``lfoc_clustering``, ``phase_hint``, ``reserved_pooled``).
    """

    MAX_FAIRNESS = "max_fairness"
    MAX_PERFORMANCE = "max_performance"


@dataclass
class DCatConfig:
    """Tunable parameters of the dCat control loop.

    Attributes:
        llc_miss_rate_thr: LLC miss-per-reference ratio above which a
            workload is considered starved for cache (paper's 3%).
        ipc_imp_thr: Relative IPC improvement a granted way must produce for
            the workload to be considered benefiting (paper's 5%).
        llc_ref_per_kinstr_thr: LLC references per 1000 instructions below
            which the workload "does not require lots of LLC" and becomes a
            Donor.  (The paper thresholds the raw llc_ref count; normalizing
            by instructions makes the threshold independent of the counter
            scaling.)
        phase_change_thr: Relative change in memory-accesses-per-instruction
            that signals a phase change (paper's 10%).
        streaming_multiple: Multiple of the baseline allocation at which a
            still-Unknown workload is declared Streaming (paper's 3x).
        streaming_gain_eps: Relative IPC gain below which a grant counts as
            "no improvement at all" (streaming evidence).  A gain between
            this and ``ipc_imp_thr`` means the workload benefits, just not
            enough to keep growing — it becomes a Keeper, not Streaming.
        idle_cycles_fraction: Fraction of the interval's nominal cycles
            below which the workload counts as idle (immediate Donor).
        min_ways: Smallest allocation CAT permits (1 way on Intel).
        interval_s: Control period (paper's default 1 s).
        policy: Which allocation objective to pursue — an
            :class:`AllocationPolicy` member, any registered strategy name
            or alias (case/separator-insensitive), or None to pick up the
            process default (see :func:`repro.core.policies.use_policy`).
        grow_step_ways: Ways added per control round to a growing workload.
        shrink_step_ways: Ways removed per round from a low-miss-rate Donor.
        use_performance_table: Reuse per-phase performance tables to jump
            straight to a phase's preferred allocation (paper Fig. 12);
            disable for the ablation study.
        unknown_priority: Grant Unknown workloads before Receivers so
            streaming workloads are unmasked sooner (paper §3.5); disable
            for the ablation study.
        flush_reassigned_ways: Model the user-level way-flush helper the
            paper describes, clearing ways that change owners.
        hardened: Master switch for the robustness layer (retry, stale-sample
            fallback, write verification, quarantine).  Every hardening path
            is a no-op until a fault actually occurs, so a clean run behaves
            identically with it on or off; disable for the chaos ablation.
        sampler_max_retries: Extra sampling attempts after a transient
            counter read error before falling back to the stale sample.
        l3ca_max_retries: Extra attempts for a failed pqos write (mask
            programming, core association) before the controller gives up.
        verify_mask_writes: Read the COS table back after programming and
            reprogram any entry that did not land (verify-after-write).
        max_plausible_ipc: IPC above which a sample is rejected as counter
            corruption, triggering the stale-sample fallback.
        max_plausible_cycles_slack: Multiple of the nominal per-interval
            cycle budget above which a sample's cycle count is physically
            impossible (saturated counters) and the sample is rejected.
        quarantine_after: Consecutive erratic intervals (read failures or
            implausible samples) after which a workload is quarantined back
            to Reclaim at its reserved baseline until its counters recover.
    """

    llc_miss_rate_thr: float = 0.03
    ipc_imp_thr: float = 0.05
    llc_ref_per_kinstr_thr: float = 1.0
    phase_change_thr: float = 0.10
    streaming_multiple: float = 3.0
    streaming_gain_eps: float = 0.02
    idle_cycles_fraction: float = 0.05
    min_ways: int = 1
    interval_s: float = 1.0
    policy: Optional[Union[AllocationPolicy, str]] = None
    grow_step_ways: int = 1
    shrink_step_ways: int = 1
    use_performance_table: bool = True
    unknown_priority: bool = True
    flush_reassigned_ways: bool = True
    hardened: bool = True
    sampler_max_retries: int = 2
    l3ca_max_retries: int = 2
    verify_mask_writes: bool = True
    max_plausible_ipc: float = 8.0
    max_plausible_cycles_slack: float = 2.0
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        # Imported here, not at module level: policies imports this module.
        from repro.core.policies import normalize_policy

        self.policy = normalize_policy(self.policy)
        if not 0 < self.llc_miss_rate_thr < 1:
            raise ValueError("llc_miss_rate_thr must be in (0, 1)")
        if not 0 < self.ipc_imp_thr < 1:
            raise ValueError("ipc_imp_thr must be in (0, 1)")
        if self.llc_ref_per_kinstr_thr < 0:
            raise ValueError("llc_ref_per_kinstr_thr cannot be negative")
        if not 0 < self.phase_change_thr < 1:
            raise ValueError("phase_change_thr must be in (0, 1)")
        if self.streaming_multiple < 1:
            raise ValueError("streaming_multiple must be >= 1")
        if not 0 <= self.streaming_gain_eps <= self.ipc_imp_thr:
            raise ValueError(
                "streaming_gain_eps must be within [0, ipc_imp_thr]"
            )
        if not 0 <= self.idle_cycles_fraction < 1:
            raise ValueError("idle_cycles_fraction must be in [0, 1)")
        if self.min_ways < 1:
            raise ValueError("min_ways must be >= 1 (CAT forbids empty masks)")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.grow_step_ways < 1 or self.shrink_step_ways < 1:
            raise ValueError("grow/shrink steps must be >= 1")
        if self.sampler_max_retries < 0 or self.l3ca_max_retries < 0:
            raise ValueError("retry budgets cannot be negative")
        if self.max_plausible_ipc <= 0:
            raise ValueError("max_plausible_ipc must be positive")
        if self.max_plausible_cycles_slack < 1:
            raise ValueError("max_plausible_cycles_slack must be >= 1")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
