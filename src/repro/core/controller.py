"""DCatController: the five-step control loop (paper Fig. 4).

Once per interval the controller runs, per managed workload:

1. **Collect Statistics** — sample the workload's cores through the
   MSR-style perf-counter substrate and aggregate.
2. **Detect Phase Change** — feed memory-accesses-per-instruction to the
   phase detector.
3. **Get Baseline** — on a phase change, either jump straight to the
   phase's known preferred allocation (performance-table reuse, Fig. 12) or
   Reclaim to the reserved baseline so the phase's baseline IPC can be
   measured.
4. **Categorize Workloads** — run the Fig. 6 state machine.
5. **Allocate Cache** — arbitrate the free pool (reclaim first, Unknown
   before Receiver), apply the configured policy, pack the result into
   contiguous non-overlapping CAT masks, and program them through the
   pqos-style API.

The controller is backend-agnostic: it sees only a ``PqosLibrary``-shaped
allocator and a ``PerfMonitor``-shaped sampler, so the same code drives the
simulated platform here and would drive ``/dev/cpu/*/msr`` + libpqos (or
resctrl) on real hardware.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cat.layout import pack_contiguous
from repro.cat.pqos import PqosError, PqosL3Ca, PqosLibrary
from repro.core.allocation import AllocationInput, plan_allocation
from repro.core.classifier import Decision, categorize, _improvement
from repro.core.config import DCatConfig
from repro.core.hints import DeclaredSchedule, PhaseHint
from repro.core.states import WorkloadState
from repro.core.stats import WorkloadRecord
from repro.core.phase import PhaseDetector
from repro.engine.events import (
    AllocationPlanned,
    EventBus,
    FaultRecovered,
    IntervalFinished,
    IntervalStarted,
    MasksProgrammed,
    NULL_BUS,
    PhaseChanged,
    SampleCollected,
    StateTransition,
    WorkloadDeregistered,
    WorkloadRegistered,
)
from repro.engine.pipeline import FunctionStage, StagedLoop
from repro.errors import UnknownTenantError
from repro.hwcounters.msr import CounterReadError
from repro.hwcounters.perfmon import CounterSample, PerfMonitor

__all__ = ["WorkloadStatus", "StepResult", "ControlStepContext", "DCatController"]


@dataclass(frozen=True)
class WorkloadStatus:
    """One workload's externally visible status after a control step."""

    workload_id: str
    state: WorkloadState
    ways: int
    ipc: float
    normalized_ipc: Optional[float]
    llc_miss_rate: float
    phase_changed: bool
    sample: CounterSample


@dataclass
class StepResult:
    """Everything one control step decided (for timelines and debugging)."""

    time_s: float
    statuses: Dict[str, WorkloadStatus] = field(default_factory=dict)
    free_ways: int = 0
    moved_workloads: List[str] = field(default_factory=list)


@dataclass
class ControlStepContext:
    """Shared state flowing through one control interval's stages."""

    time_s: float
    result: StepResult
    samples: Dict[str, CounterSample] = field(default_factory=dict)
    changed: Dict[str, bool] = field(default_factory=dict)
    decisions: Dict[str, Decision] = field(default_factory=dict)
    reclaiming: Dict[str, bool] = field(default_factory=dict)
    plan: Dict[str, int] = field(default_factory=dict)
    # Workloads whose sample this interval is a stale-fallback copy (their
    # performance tables must not ingest it).  Empty on a healthy substrate.
    stale: Dict[str, bool] = field(default_factory=dict)
    # known_phase lookups resolved once in allocate and reused by commit
    # (the table cannot change between the two stages of one interval).
    phase_tables: Dict[str, Any] = field(default_factory=dict)


class DCatController:
    """The dCat daemon.

    ``step()`` runs a :class:`~repro.engine.pipeline.StagedLoop` of the
    paper's five steps plus a commit (``collect -> detect_phase ->
    get_baseline -> categorize -> allocate -> commit``) over a shared
    :class:`ControlStepContext`.  Each stage publishes what it observed and
    decided on the event bus; the loop is exposed as ``self.loop`` for
    instrumentation and fault injection.

    Args:
        pqos: Allocation backend (pqos-style API over CAT).
        perfmon: Counter sampling backend.
        config: Thresholds and policy.
        nominal_cycles_per_core: Unhalted cycles a fully busy core retires
            per interval (for idle detection).
        flush_callback: Optional hook invoked with the way mask of every
            span that changed owners, modeling the paper's user-level
            way-flush helper.
        bus: Event bus for control-plane events (defaults to the null bus).
    """

    def __init__(
        self,
        pqos: PqosLibrary,
        perfmon: PerfMonitor,
        config: Optional[DCatConfig] = None,
        nominal_cycles_per_core: int = 2_000_000,
        flush_callback: Optional[Callable[[int], None]] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.pqos = pqos
        self.perfmon = perfmon
        self.config = config if config is not None else DCatConfig()
        self.nominal_cycles_per_core = nominal_cycles_per_core
        self.flush_callback = flush_callback
        self.bus = bus if bus is not None else NULL_BUS
        cap = pqos.cap_get()
        self.total_ways = cap.num_ways
        self._max_cos = cap.num_cos
        self._records: Dict[str, WorkloadRecord] = {}
        self._masks: Dict[str, int] = {}
        # COS0 stays the unmanaged default; 1..num_cos-1 are allocatable.
        # A min-heap so re-registration reuses the lowest released id first.
        self._free_cos: List[int] = list(range(1, self._max_cos))
        self._pool_empty = False
        # Integer interval counter; the float clock is derived from it so a
        # billion intervals of 0.1 s accumulate zero drift (PR 1's residual
        # fix, applied to the controller's own timebase).
        self._tick = 0
        self.history: List[StepResult] = []
        self.loop = StagedLoop(
            [
                FunctionStage("collect", self._stage_collect),
                FunctionStage("detect_phase", self._stage_detect_phase),
                FunctionStage("get_baseline", self._stage_get_baseline),
                FunctionStage("categorize", self._stage_categorize),
                FunctionStage("allocate", self._stage_allocate),
                FunctionStage("commit", self._stage_commit),
            ],
            name="controller",
        )

    # -- registration ----------------------------------------------------------

    def register_workload(
        self,
        workload_id: str,
        cores: Sequence[int],
        baseline_ways: int,
        declared_schedule: Optional[DeclaredSchedule] = None,
    ) -> WorkloadRecord:
        """Start managing a workload (a VM / container / tenant).

        Assigns the lowest free class of service and associates the cores.
        Ids released by :meth:`deregister_workload` are reused, so a
        register/deregister churn can never collide two live workloads on
        one COS.  An optional declared phase schedule is stored on the
        record and offered to the allocation strategy each interval.
        """
        if workload_id in self._records:
            raise ValueError(f"workload {workload_id!r} already registered")
        if not self._free_cos:
            raise ValueError(
                f"CAT supports {self._max_cos} classes; cannot isolate more "
                f"than {self._max_cos - 1} workloads"
            )
        cos_id = heapq.heappop(self._free_cos)
        record = WorkloadRecord(
            workload_id=workload_id,
            cores=tuple(cores),
            cos_id=cos_id,
            baseline_ways=baseline_ways,
            detector=PhaseDetector(threshold=self.config.phase_change_thr),
            declared=declared_schedule,
        )
        self._records[workload_id] = record
        done: List[int] = []
        try:
            for core in cores:
                self._assoc_set(core, cos_id)
                done.append(core)
        except PqosError:
            # Roll back: cores already moved return to the unmanaged
            # default, the COS goes back to the pool, nothing stays managed.
            for prev in done:
                self._assoc_set(prev, 0, best_effort=True)
            del self._records[workload_id]
            heapq.heappush(self._free_cos, cos_id)
            raise
        if self.bus.active:
            self.bus.emit(
                WorkloadRegistered.fast(
                    time_s=self._time_s,
                    workload_id=workload_id,
                    cos_id=cos_id,
                    baseline_ways=baseline_ways,
                )
            )
        return record

    def deregister_workload(self, workload_id: str) -> None:
        """Stop managing a workload and release its COS and mask.

        The cores fall back to the unmanaged default (COS0), the class of
        service returns to the free pool for reuse, its mask is reset to the
        full-LLC default, and the span it occupied is released to the free
        pool at the next packing round.

        Deregistration always completes: when hardened, persistent pqos
        write failures are retried and then absorbed (the stale mask is
        reprogrammed before any reuse of the COS can matter), so a flaky
        write path can never leave a departed workload half-managed.
        """
        record = self._records.pop(workload_id, None)
        if record is None:
            raise UnknownTenantError(
                f"workload {workload_id!r} is not registered"
            )
        for core in record.cores:
            self._assoc_set(core, 0, best_effort=True)
        reset = [
            PqosL3Ca(cos_id=record.cos_id, ways_mask=(1 << self.total_ways) - 1)
        ]
        if self.config.hardened:
            try:
                self._pqos_retry(
                    lambda: self.pqos.l3ca_set(reset),
                    self.config.l3ca_max_retries,
                )
            except PqosError:
                # The COS keeps its stale mask for now; reuse goes through
                # _apply_plan, which programs it before the plan lands.
                if self.bus.active:
                    self.bus.emit(
                        FaultRecovered.fast(
                            time_s=self._time_s,
                            kind="l3ca_set_fail",
                            target=workload_id,
                            action="deferred_reset",
                            attempts=self.config.l3ca_max_retries + 1,
                        )
                    )
        else:
            self.pqos.l3ca_set(reset)
        heapq.heappush(self._free_cos, record.cos_id)
        self._masks.pop(workload_id, None)
        if self.bus.active:
            self.bus.emit(
                WorkloadDeregistered.fast(
                    time_s=self._time_s,
                    workload_id=workload_id,
                    cos_id=record.cos_id,
                )
            )

    def admit_workload(
        self,
        workload_id: str,
        cores: Sequence[int],
        baseline_ways: int,
        declared_schedule: Optional[DeclaredSchedule] = None,
    ) -> WorkloadRecord:
        """Register a workload mid-run and carve out its baseline allocation.

        Unlike :meth:`register_workload` + :meth:`initialize` (which resets
        everyone to baseline), this reclaims only what the newcomer's
        reservation needs: first the free pool, then surplus ways above the
        incumbents' baselines, largest surplus first.  The resulting plan is
        packed and programmed immediately, so the newcomer never observes the
        power-on full mask.

        Raises:
            ValueError: If the reservations cannot fit even after reclaiming
                every surplus way (the registration is rolled back).
            PqosError: If the hardware write path keeps failing beyond the
                retry budget (the registration is likewise rolled back).
        """
        record = self.register_workload(
            workload_id, cores, baseline_ways, declared_schedule=declared_schedule
        )
        plan = {
            wid: rec.ways
            for wid, rec in self._records.items()
            if wid != workload_id
        }
        needed = baseline_ways - (self.total_ways - sum(plan.values()))
        if needed > 0:
            surplus_order = sorted(
                plan,
                key=lambda wid: (
                    -(plan[wid] - self._records[wid].baseline_ways),
                    wid,
                ),
            )
            for wid in surplus_order:
                if needed <= 0:
                    break
                take = min(plan[wid] - self._records[wid].baseline_ways, needed)
                if take > 0:
                    plan[wid] -= take
                    needed -= take
        if needed > 0:
            self.deregister_workload(workload_id)
            raise ValueError(
                f"cannot admit {workload_id!r}: {baseline_ways} reserved way(s) "
                f"do not fit next to the incumbents' reservations"
            )
        plan[workload_id] = baseline_ways
        try:
            self._apply_plan(plan)
        except PqosError:
            self.deregister_workload(workload_id)
            raise
        for wid, ways in plan.items():
            self._records[wid].ways = ways
        record.prev_ways = baseline_ways
        return record

    @property
    def records(self) -> Mapping[str, WorkloadRecord]:
        """Read-only view of the managed workloads.

        Registration state changes only through :meth:`register_workload`,
        :meth:`deregister_workload` and :meth:`admit_workload`; handing out
        the raw dict would let callers bypass the COS pool bookkeeping.
        """
        return MappingProxyType(self._records)

    def initialize(self) -> None:
        """Program every workload's reserved baseline (static-CAT start)."""
        plan = {
            wid: rec.baseline_ways for wid, rec in self._records.items()
        }
        inputs = [
            AllocationInput(
                workload_id=wid,
                state=WorkloadState.KEEPER,
                target_ways=rec.baseline_ways,
                grow_request=0,
                baseline_ways=rec.baseline_ways,
            )
            for wid, rec in self._records.items()
        ]
        plan = plan_allocation(inputs, self.total_ways, self.config)
        self._apply_plan(plan)
        for wid, rec in self._records.items():
            rec.ways = plan[wid]
            rec.prev_ways = plan[wid]

    # -- the control loop ----------------------------------------------------------

    @property
    def _time_s(self) -> float:
        """The control clock: ``tick * interval_s``, never accumulated."""
        return self._tick * self.config.interval_s

    def skip_idle(self, intervals: int) -> None:
        """Advance the clock over intervals with no registered workloads.

        The discrete-event fleet clock skips a host's control loop while
        nothing is registered on it; when a tenant lands, the controller
        must already be at fleet time so registration and event timestamps
        line up.  A skipped interval appends nothing to :attr:`history` —
        only executed control steps are history.

        Raises:
            ValueError: If workloads are registered (their counters would
                silently go unsampled) or ``intervals`` is negative.
        """
        if intervals < 0:
            raise ValueError(f"intervals must be >= 0, got {intervals}")
        if self._records:
            raise ValueError(
                f"cannot skip_idle with {len(self._records)} registered "
                f"workload(s); the control loop must run every interval"
            )
        self._tick += intervals

    def step(self) -> StepResult:
        """Run one control interval; returns what was observed and decided."""
        bus = self.bus
        ctx = ControlStepContext(
            time_s=self._time_s, result=StepResult(time_s=self._time_s)
        )
        if bus.active:
            bus.emit(IntervalStarted.fast(time_s=ctx.time_s, source="controller"))
        self.loop.run(ctx)
        if bus.active:
            bus.emit(IntervalFinished.fast(time_s=ctx.time_s, source="controller"))
        return ctx.result

    # -- stages (paper Fig. 4, one per step, plus commit) ----------------------

    def _stage_collect(self, ctx: ControlStepContext) -> None:
        """Step 1 — sample every workload's cores and flag idleness.

        When ``config.hardened``, sampling goes through bounded retries, a
        plausibility gate and a stale-sample fallback
        (:meth:`_sample_hardened`); on a healthy substrate that path issues
        the exact same reads as the direct call.
        """
        bus = self.bus
        hardened = self.config.hardened
        for wid, rec in self._records.items():
            if hardened:
                sample = self._sample_hardened(wid, rec, ctx)
            else:
                sample = self.perfmon.sample_cores(rec.cores)
            ctx.samples[wid] = sample
            # Idle detection: the cores barely ran this interval.
            busy_budget = self.nominal_cycles_per_core * len(rec.cores)
            rec.idle = sample.cycles < self.config.idle_cycles_fraction * busy_budget
            if bus.active:
                bus.emit(
                    SampleCollected.fast(
                        time_s=ctx.time_s,
                        source="controller",
                        workload_id=wid,
                        ipc=sample.ipc,
                        llc_miss_rate=sample.llc_miss_rate,
                        mem_refs_per_instr=sample.mem_refs_per_instr,
                        instructions=sample.ret_ins,
                        cycles=sample.cycles,
                        idle=rec.idle,
                    )
                )

    def _stage_detect_phase(self, ctx: ControlStepContext) -> None:
        """Step 2 — feed the phase detectors with the mem/instr signature."""
        bus = self.bus
        for wid, rec in self._records.items():
            sample = ctx.samples[wid]
            changed = rec.detector.observe(sample.mem_refs_per_instr, idle=rec.idle)
            ctx.changed[wid] = changed
            # Keep the signature synced every interval: the first-ever
            # observation establishes a phase without flagging a change.
            rec.signature = rec.detector.current_signature
            if changed and bus.active:
                bus.emit(
                    PhaseChanged.fast(
                        time_s=ctx.time_s,
                        workload_id=wid,
                        mem_refs_per_instr=sample.mem_refs_per_instr,
                        idle=rec.signature.idle,
                    )
                )

    def _stage_get_baseline(self, ctx: ControlStepContext) -> None:
        """Step 3 — on a phase change, jump to a known allocation or Reclaim;
        otherwise feed the phase's performance table."""
        for wid, rec in self._records.items():
            if ctx.changed[wid]:
                rec.reset_phase_state()
                ctx.decisions[wid], ctx.reclaiming[wid] = (
                    self._phase_change_decision(rec)
                )
            elif not ctx.stale.get(wid):
                sample = ctx.samples[wid]
                self._record_performance(rec, sample)
                self._update_unknown_bookkeeping(rec, sample)

    def _stage_categorize(self, ctx: ControlStepContext) -> None:
        """Step 4 — run the Fig. 6 state machine for phase-stable workloads."""
        for wid, rec in self._records.items():
            if rec.quarantined:
                # Erratic counters: park the workload at its reserved
                # baseline (overriding even a phase-change jump) until its
                # samples become trustworthy again.
                ctx.decisions[wid] = Decision(
                    WorkloadState.RECLAIM, rec.baseline_ways
                )
                ctx.reclaiming[wid] = True
                continue
            if ctx.changed[wid]:
                continue  # decided in get_baseline
            sample = ctx.samples[wid]
            decision = categorize(rec, sample, self.config, self._pool_empty)
            if (
                decision.state is WorkloadState.UNKNOWN
                and rec.shrunk_last_round
                and rec.state is WorkloadState.DONOR
            ):
                # The shrink we just made provoked misses; remember the
                # floor so this phase is not probed again.
                rec.donor_floor_ways = rec.prev_ways
            ctx.decisions[wid] = decision
            ctx.reclaiming[wid] = False

    def _stage_allocate(self, ctx: ControlStepContext) -> None:
        """Step 5 — arbitrate the pool, pack masks, program the hardware."""
        bus = self.bus
        ctx.phase_tables = {
            wid: rec.table.known_phase(rec.signature)
            for wid, rec in self._records.items()
        }
        inputs = [
            AllocationInput(
                workload_id=wid,
                state=ctx.decisions[wid].state,
                target_ways=ctx.decisions[wid].target_ways,
                grow_request=ctx.decisions[wid].grow_request,
                baseline_ways=self._records[wid].baseline_ways,
                reclaiming=ctx.reclaiming[wid],
                phase_table=ctx.phase_tables[wid],
                hint=(
                    PhaseHint(
                        time_s=ctx.time_s,
                        schedule=self._records[wid].declared,
                        measured_refs_per_instr=(
                            ctx.samples[wid].mem_refs_per_instr
                        ),
                    )
                    if self._records[wid].declared is not None
                    else None
                ),
            )
            for wid in self._records
        ]
        ctx.plan = plan_allocation(inputs, self.total_ways, self.config)
        free = self.total_ways - sum(ctx.plan.values())
        if bus.active:
            bus.emit(
                AllocationPlanned.fast(
                    time_s=ctx.time_s, plan=dict(ctx.plan), free_ways=free
                )
            )
        moved = self._apply_plan(ctx.plan, time_s=ctx.time_s)
        ctx.result.moved_workloads = moved
        self._pool_empty = free <= 0
        ctx.result.free_ways = free

    def _stage_commit(self, ctx: ControlStepContext) -> None:
        """Write back records, publish statuses, advance controller time."""
        bus = self.bus
        for wid, rec in self._records.items():
            sample = ctx.samples[wid]
            decision = ctx.decisions[wid]
            if (
                decision.state is WorkloadState.KEEPER
                and rec.state in (WorkloadState.UNKNOWN, WorkloadState.RECEIVER)
            ):
                rec.growth_ceiling_ways = rec.ways
                rec.growth_ceiling_miss_rate = sample.llc_miss_rate
            elif decision.state is WorkloadState.UNKNOWN:
                # A fresh growth episode invalidates the old stop point.
                rec.growth_ceiling_ways = 0
                rec.growth_ceiling_miss_rate = 0.0
            if bus.active and decision.state is not rec.state:
                bus.emit(
                    StateTransition.fast(
                        time_s=ctx.time_s,
                        workload_id=wid,
                        old_state=rec.state.value,
                        new_state=decision.state.value,
                    )
                )
            rec.prev_ways = rec.ways
            rec.ways = ctx.plan[wid]
            rec.state = decision.state
            rec.last_sample = sample
            rec.last_ipc = sample.ipc
            table = ctx.phase_tables[wid]
            baseline_ipc = table.baseline_ipc if table else None
            ctx.result.statuses[wid] = WorkloadStatus(
                workload_id=wid,
                state=decision.state,
                ways=ctx.plan[wid],
                ipc=sample.ipc,
                normalized_ipc=(
                    sample.ipc / baseline_ipc if baseline_ipc else None
                ),
                llc_miss_rate=sample.llc_miss_rate,
                phase_changed=ctx.changed[wid],
                sample=sample,
            )

        self._tick += 1
        self.history.append(ctx.result)

    # -- helpers ------------------------------------------------------------------

    def _phase_change_decision(
        self, rec: WorkloadRecord
    ) -> Tuple[Decision, bool]:
        """Reclaim to baseline, or jump to a known phase's preferred ways."""
        if rec.signature.idle:
            # The workload went quiet; it will be classified Donor next
            # interval, but return it to the minimum right away.
            return Decision(WorkloadState.DONOR, self.config.min_ways), False
        if self.config.use_performance_table:
            table = rec.table.known_phase(rec.signature)
            if table is not None:
                preferred = table.preferred_ways()
                if preferred is not None:
                    return (
                        Decision(WorkloadState.KEEPER, preferred),
                        False,
                    )
        return Decision(WorkloadState.RECLAIM, rec.baseline_ways), True

    def _record_performance(self, rec: WorkloadRecord, sample: CounterSample) -> None:
        """Feed this interval's IPC into the phase's performance table."""
        if rec.signature.idle or rec.idle or sample.ipc <= 0:
            return
        phase_table = rec.table.phase(rec.signature)
        if rec.ways == rec.baseline_ways:
            phase_table.record_baseline(sample.ipc)
        phase_table.record(rec.ways, sample.ipc)

    def _update_unknown_bookkeeping(
        self, rec: WorkloadRecord, sample: CounterSample
    ) -> None:
        """Count grants that failed to improve an Unknown workload."""
        if rec.state is not WorkloadState.UNKNOWN:
            return
        if not rec.got_grant_last_round:
            return
        gain = _improvement(rec, sample)
        if gain is None or gain < self.config.ipc_imp_thr:
            rec.unknown_grants += 1
        else:
            rec.unknown_grants = 0

    def _apply_plan(
        self, plan: Dict[str, int], time_s: Optional[float] = None
    ) -> List[str]:
        """Pack the plan into contiguous masks and program the hardware."""
        layout = pack_contiguous(plan, self.total_ways, previous=self._masks)
        entries = []
        for wid, mask in layout.masks.items():
            rec = self._records[wid]
            entries.append(PqosL3Ca(cos_id=rec.cos_id, ways_mask=mask))
        when = self._time_s if time_s is None else time_s
        if self.config.hardened:
            self._program_masks(entries, when)
        else:
            self.pqos.l3ca_set(entries)
        if self.config.flush_reassigned_ways and self.flush_callback is not None:
            for wid in layout.moved:
                self.flush_callback(layout.masks[wid])
        self._masks = dict(layout.masks)
        if self.bus.active:
            self.bus.emit(
                MasksProgrammed.fast(
                    time_s=when,
                    masks=dict(layout.masks),
                    moved=tuple(layout.moved),
                )
            )
        return list(layout.moved)

    # -- hardening (the repro.faults robustness layer) -------------------------

    @staticmethod
    def _pqos_retry(call: Callable[[], None], max_retries: int) -> int:
        """Run a pqos write, retrying transient failures; returns attempts.

        Raises:
            PqosError: When the call still fails after ``max_retries``
                additional attempts.
        """
        for attempt in range(1, max_retries + 2):
            try:
                call()
                return attempt
            except PqosError:
                if attempt > max_retries:
                    raise
        raise AssertionError("unreachable")

    def _program_masks(self, entries: List[PqosL3Ca], time_s: float) -> None:
        """Program COS masks with bounded retries and verify-after-write.

        After the (atomic) batch write succeeds, the COS table is read back
        via ``l3ca_get`` and any entry that did not land is reprogrammed —
        the paper's daemon must never run an interval on masks it merely
        believes it wrote.

        Raises:
            PqosError: If the write keeps failing beyond ``l3ca_max_retries``
                or readback never converges to the requested table.
        """
        cfg = self.config
        bus = self.bus
        attempts = self._pqos_retry(
            lambda: self.pqos.l3ca_set(entries), cfg.l3ca_max_retries
        )
        if attempts > 1 and bus.active:
            bus.emit(
                FaultRecovered.fast(
                    time_s=time_s,
                    kind="l3ca_set_fail",
                    target="",
                    action="retry",
                    attempts=attempts,
                )
            )
        if not cfg.verify_mask_writes:
            return
        wanted = {e.cos_id: e.ways_mask for e in entries}
        for round_ in range(cfg.l3ca_max_retries + 1):
            table = {e.cos_id: e.ways_mask for e in self.pqos.l3ca_get()}
            stray = [
                PqosL3Ca(cos_id=cos, ways_mask=mask)
                for cos, mask in sorted(wanted.items())
                if table.get(cos) != mask
            ]
            if not stray:
                return
            self._pqos_retry(
                lambda: self.pqos.l3ca_set(stray), cfg.l3ca_max_retries
            )
            if bus.active:
                bus.emit(
                    FaultRecovered.fast(
                        time_s=time_s,
                        kind="l3ca_set_fail",
                        target="",
                        action="reprogram",
                        attempts=round_ + 1,
                    )
                )
        table = {e.cos_id: e.ways_mask for e in self.pqos.l3ca_get()}
        if any(table.get(cos) != mask for cos, mask in wanted.items()):
            raise PqosError("COS mask readback never matched the plan")

    def _assoc_set(
        self, core: int, cos_id: int, *, best_effort: bool = False
    ) -> bool:
        """Associate a core with a COS, verifying the write took effect.

        A dropped association (the write silently not landing) is detected
        by readback and re-issued up to ``l3ca_max_retries`` times.  Returns
        True once the association is in place; with ``best_effort`` a
        persistent failure returns False instead of raising.
        """
        if not self.config.hardened:
            self.pqos.alloc_assoc_set(core, cos_id)
            return True
        for attempt in range(1, self.config.l3ca_max_retries + 2):
            try:
                self.pqos.alloc_assoc_set(core, cos_id)
            except PqosError:
                continue
            if self.pqos.alloc_assoc_get(core) == cos_id:
                if attempt > 1 and self.bus.active:
                    self.bus.emit(
                        FaultRecovered.fast(
                            time_s=self._time_s,
                            kind="assoc_drop",
                            target=f"core:{core}",
                            action="assoc_rewrite",
                            attempts=attempt,
                        )
                    )
                return True
        if best_effort:
            return False
        raise PqosError(
            f"core {core} association with COS {cos_id} did not take effect"
        )

    def _plausible(self, rec: WorkloadRecord, sample: CounterSample) -> bool:
        """Physical sanity gate: IPC and per-interval cycle-budget bounds."""
        if sample.ipc > self.config.max_plausible_ipc:
            return False
        budget = self.nominal_cycles_per_core * len(rec.cores)
        return sample.cycles <= self.config.max_plausible_cycles_slack * budget

    def _sample_hardened(
        self, wid: str, rec: WorkloadRecord, ctx: ControlStepContext
    ) -> CounterSample:
        """Sample with bounded retries, a plausibility gate, stale fallback.

        A transient :class:`CounterReadError` is retried up to
        ``sampler_max_retries`` extra times (the fault raises before the
        counters are consumed, so a retry still sees the full interval
        delta).  A read that keeps failing — or that returns physically
        impossible values — is replaced by the previous interval's sample
        (an idle zero sample if there is none) and counts toward the
        quarantine streak; the first clean sample clears the streak and
        releases any quarantine.
        """
        cfg = self.config
        bus = self.bus
        time_s = ctx.time_s
        sample: Optional[CounterSample] = None
        kind = ""
        attempts = 0
        for attempts in range(1, cfg.sampler_max_retries + 2):
            try:
                candidate = self.perfmon.sample_cores(rec.cores)
            except CounterReadError:
                kind = "counter_read_error"
                continue
            if self._plausible(rec, candidate):
                sample = candidate
            else:
                # The interval's deltas are already consumed; retrying
                # would read near-zero noise, so fall back immediately.
                kind = "implausible_sample"
            break
        if sample is not None:
            if attempts > 1 and bus.active:
                bus.emit(
                    FaultRecovered.fast(
                        time_s=time_s,
                        kind=kind,
                        target=wid,
                        action="retry",
                        attempts=attempts,
                    )
                )
            if rec.erratic_streak:
                rec.erratic_streak = 0
                if rec.quarantined:
                    rec.quarantined = False
                    if bus.active:
                        bus.emit(
                            FaultRecovered.fast(
                                time_s=time_s,
                                kind="erratic_counters",
                                target=wid,
                                action="quarantine_release",
                                attempts=attempts,
                            )
                        )
            return sample
        ctx.stale[wid] = True
        rec.erratic_streak += 1
        if bus.active:
            bus.emit(
                FaultRecovered.fast(
                    time_s=time_s,
                    kind=kind,
                    target=wid,
                    action="stale_sample",
                    attempts=attempts,
                )
            )
        if not rec.quarantined and rec.erratic_streak >= cfg.quarantine_after:
            rec.quarantined = True
            if bus.active:
                bus.emit(
                    FaultRecovered.fast(
                        time_s=time_s,
                        kind="erratic_counters",
                        target=wid,
                        action="quarantine",
                        attempts=rec.erratic_streak,
                    )
                )
        return rec.last_sample if rec.last_sample is not None else CounterSample()

    # -- introspection ------------------------------------------------------------

    def mask_of(self, workload_id: str) -> int:
        return self._masks[workload_id]

    def ways_of(self, workload_id: str) -> int:
        return self._records[workload_id].ways

    def state_of(self, workload_id: str) -> WorkloadState:
        return self._records[workload_id].state
