"""DCatController: the five-step control loop (paper Fig. 4).

Once per interval the controller runs, per managed workload:

1. **Collect Statistics** — sample the workload's cores through the
   MSR-style perf-counter substrate and aggregate.
2. **Detect Phase Change** — feed memory-accesses-per-instruction to the
   phase detector.
3. **Get Baseline** — on a phase change, either jump straight to the
   phase's known preferred allocation (performance-table reuse, Fig. 12) or
   Reclaim to the reserved baseline so the phase's baseline IPC can be
   measured.
4. **Categorize Workloads** — run the Fig. 6 state machine.
5. **Allocate Cache** — arbitrate the free pool (reclaim first, Unknown
   before Receiver), apply the configured policy, pack the result into
   contiguous non-overlapping CAT masks, and program them through the
   pqos-style API.

The controller is backend-agnostic: it sees only a ``PqosLibrary``-shaped
allocator and a ``PerfMonitor``-shaped sampler, so the same code drives the
simulated platform here and would drive ``/dev/cpu/*/msr`` + libpqos (or
resctrl) on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cat.layout import pack_contiguous
from repro.cat.pqos import PqosL3Ca, PqosLibrary
from repro.core.allocation import AllocationInput, plan_allocation
from repro.core.classifier import Decision, categorize, _improvement
from repro.core.config import DCatConfig
from repro.core.states import WorkloadState
from repro.core.stats import WorkloadRecord
from repro.core.phase import PhaseDetector
from repro.hwcounters.perfmon import CounterSample, PerfMonitor

__all__ = ["WorkloadStatus", "StepResult", "DCatController"]


@dataclass(frozen=True)
class WorkloadStatus:
    """One workload's externally visible status after a control step."""

    workload_id: str
    state: WorkloadState
    ways: int
    ipc: float
    normalized_ipc: Optional[float]
    llc_miss_rate: float
    phase_changed: bool
    sample: CounterSample


@dataclass
class StepResult:
    """Everything one control step decided (for timelines and debugging)."""

    time_s: float
    statuses: Dict[str, WorkloadStatus] = field(default_factory=dict)
    free_ways: int = 0
    moved_workloads: List[str] = field(default_factory=list)


class DCatController:
    """The dCat daemon.

    Args:
        pqos: Allocation backend (pqos-style API over CAT).
        perfmon: Counter sampling backend.
        config: Thresholds and policy.
        nominal_cycles_per_core: Unhalted cycles a fully busy core retires
            per interval (for idle detection).
        flush_callback: Optional hook invoked with the way mask of every
            span that changed owners, modeling the paper's user-level
            way-flush helper.
    """

    def __init__(
        self,
        pqos: PqosLibrary,
        perfmon: PerfMonitor,
        config: Optional[DCatConfig] = None,
        nominal_cycles_per_core: int = 2_000_000,
        flush_callback: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.pqos = pqos
        self.perfmon = perfmon
        self.config = config if config is not None else DCatConfig()
        self.nominal_cycles_per_core = nominal_cycles_per_core
        self.flush_callback = flush_callback
        cap = pqos.cap_get()
        self.total_ways = cap.num_ways
        self._max_cos = cap.num_cos
        self._records: Dict[str, WorkloadRecord] = {}
        self._masks: Dict[str, int] = {}
        self._pool_empty = False
        self._time_s = 0.0
        self.history: List[StepResult] = []

    # -- registration ----------------------------------------------------------

    def register_workload(
        self, workload_id: str, cores: Sequence[int], baseline_ways: int
    ) -> WorkloadRecord:
        """Start managing a workload (a VM / container / tenant).

        Assigns the next free class of service and associates the cores.
        """
        if workload_id in self._records:
            raise ValueError(f"workload {workload_id!r} already registered")
        cos_id = len(self._records) + 1  # COS0 stays the unmanaged default
        if cos_id >= self._max_cos:
            raise ValueError(
                f"CAT supports {self._max_cos} classes; cannot isolate more "
                f"than {self._max_cos - 1} workloads"
            )
        record = WorkloadRecord(
            workload_id=workload_id,
            cores=tuple(cores),
            cos_id=cos_id,
            baseline_ways=baseline_ways,
            detector=PhaseDetector(threshold=self.config.phase_change_thr),
        )
        self._records[workload_id] = record
        for core in cores:
            self.pqos.alloc_assoc_set(core, cos_id)
        return record

    @property
    def records(self) -> Dict[str, WorkloadRecord]:
        return self._records

    def initialize(self) -> None:
        """Program every workload's reserved baseline (static-CAT start)."""
        plan = {
            wid: rec.baseline_ways for wid, rec in self._records.items()
        }
        inputs = [
            AllocationInput(
                workload_id=wid,
                state=WorkloadState.KEEPER,
                target_ways=rec.baseline_ways,
                grow_request=0,
                baseline_ways=rec.baseline_ways,
            )
            for wid, rec in self._records.items()
        ]
        plan = plan_allocation(inputs, self.total_ways, self.config)
        self._apply_plan(plan)
        for wid, rec in self._records.items():
            rec.ways = plan[wid]
            rec.prev_ways = plan[wid]

    # -- the control loop ----------------------------------------------------------

    def step(self) -> StepResult:
        """Run one control interval; returns what was observed and decided."""
        config = self.config
        result = StepResult(time_s=self._time_s)
        decisions: Dict[str, Decision] = {}
        reclaiming: Dict[str, bool] = {}
        samples: Dict[str, CounterSample] = {}
        changed_flags: Dict[str, bool] = {}

        for wid, rec in self._records.items():
            sample = self.perfmon.sample_cores(rec.cores)
            samples[wid] = sample

            # Idle detection: the cores barely ran this interval.
            busy_budget = self.nominal_cycles_per_core * len(rec.cores)
            rec.idle = sample.cycles < config.idle_cycles_fraction * busy_budget

            changed = rec.detector.observe(sample.mem_refs_per_instr, idle=rec.idle)
            changed_flags[wid] = changed
            # Keep the signature synced every interval: the first-ever
            # observation establishes a phase without flagging a change.
            rec.signature = rec.detector.current_signature

            if changed:
                rec.reset_phase_state()
                decisions[wid], reclaiming[wid] = self._phase_change_decision(rec)
            else:
                self._record_performance(rec, sample)
                self._update_unknown_bookkeeping(rec, sample)
                decision = categorize(rec, sample, config, self._pool_empty)
                if (
                    decision.state is WorkloadState.UNKNOWN
                    and rec.shrunk_last_round
                    and rec.state is WorkloadState.DONOR
                ):
                    # The shrink we just made provoked misses; remember the
                    # floor so this phase is not probed again.
                    rec.donor_floor_ways = rec.prev_ways
                decisions[wid] = decision
                reclaiming[wid] = False

        # -- allocate ---------------------------------------------------------
        inputs = [
            AllocationInput(
                workload_id=wid,
                state=decisions[wid].state,
                target_ways=decisions[wid].target_ways,
                grow_request=decisions[wid].grow_request,
                baseline_ways=self._records[wid].baseline_ways,
                reclaiming=reclaiming[wid],
                phase_table=self._records[wid].table.known_phase(
                    self._records[wid].signature
                ),
            )
            for wid in self._records
        ]
        plan = plan_allocation(inputs, self.total_ways, config)
        moved = self._apply_plan(plan)
        result.moved_workloads = moved
        free = self.total_ways - sum(plan.values())
        self._pool_empty = free <= 0
        result.free_ways = free

        # -- commit records and statuses ------------------------------------------
        for wid, rec in self._records.items():
            sample = samples[wid]
            decision = decisions[wid]
            if (
                decision.state is WorkloadState.KEEPER
                and rec.state in (WorkloadState.UNKNOWN, WorkloadState.RECEIVER)
            ):
                rec.growth_ceiling_ways = rec.ways
                rec.growth_ceiling_miss_rate = sample.llc_miss_rate
            elif decision.state is WorkloadState.UNKNOWN:
                # A fresh growth episode invalidates the old stop point.
                rec.growth_ceiling_ways = 0
                rec.growth_ceiling_miss_rate = 0.0
            rec.prev_ways = rec.ways
            rec.ways = plan[wid]
            rec.state = decision.state
            rec.last_sample = sample
            rec.last_ipc = sample.ipc
            table = rec.table.known_phase(rec.signature)
            baseline_ipc = table.baseline_ipc if table else None
            result.statuses[wid] = WorkloadStatus(
                workload_id=wid,
                state=decision.state,
                ways=plan[wid],
                ipc=sample.ipc,
                normalized_ipc=(
                    sample.ipc / baseline_ipc if baseline_ipc else None
                ),
                llc_miss_rate=sample.llc_miss_rate,
                phase_changed=changed_flags[wid],
                sample=sample,
            )

        self._time_s += config.interval_s
        self.history.append(result)
        return result

    # -- helpers ------------------------------------------------------------------

    def _phase_change_decision(
        self, rec: WorkloadRecord
    ) -> Tuple[Decision, bool]:
        """Reclaim to baseline, or jump to a known phase's preferred ways."""
        if rec.signature.idle:
            # The workload went quiet; it will be classified Donor next
            # interval, but return it to the minimum right away.
            return Decision(WorkloadState.DONOR, self.config.min_ways), False
        if self.config.use_performance_table:
            table = rec.table.known_phase(rec.signature)
            if table is not None:
                preferred = table.preferred_ways()
                if preferred is not None:
                    return (
                        Decision(WorkloadState.KEEPER, preferred),
                        False,
                    )
        return Decision(WorkloadState.RECLAIM, rec.baseline_ways), True

    def _record_performance(self, rec: WorkloadRecord, sample: CounterSample) -> None:
        """Feed this interval's IPC into the phase's performance table."""
        if rec.signature.idle or rec.idle or sample.ipc <= 0:
            return
        phase_table = rec.table.phase(rec.signature)
        if rec.ways == rec.baseline_ways:
            phase_table.record_baseline(sample.ipc)
        phase_table.record(rec.ways, sample.ipc)

    def _update_unknown_bookkeeping(
        self, rec: WorkloadRecord, sample: CounterSample
    ) -> None:
        """Count grants that failed to improve an Unknown workload."""
        if rec.state is not WorkloadState.UNKNOWN:
            return
        if not rec.got_grant_last_round:
            return
        gain = _improvement(rec, sample)
        if gain is None or gain < self.config.ipc_imp_thr:
            rec.unknown_grants += 1
        else:
            rec.unknown_grants = 0

    def _apply_plan(self, plan: Dict[str, int]) -> List[str]:
        """Pack the plan into contiguous masks and program the hardware."""
        layout = pack_contiguous(plan, self.total_ways, previous=self._masks)
        entries = []
        for wid, mask in layout.masks.items():
            rec = self._records[wid]
            entries.append(PqosL3Ca(cos_id=rec.cos_id, ways_mask=mask))
        self.pqos.l3ca_set(entries)
        if self.config.flush_reassigned_ways and self.flush_callback is not None:
            for wid in layout.moved:
                self.flush_callback(layout.masks[wid])
        self._masks = dict(layout.masks)
        return list(layout.moved)

    # -- introspection ------------------------------------------------------------

    def mask_of(self, workload_id: str) -> int:
        return self._masks[workload_id]

    def ways_of(self, workload_id: str) -> int:
        return self._records[workload_id].ways

    def state_of(self, workload_id: str) -> WorkloadState:
        return self._records[workload_id].state
