"""dCat core: the dynamic cache-allocation controller (the paper's contribution)."""

from repro.core.allocation import AllocationInput, optimize_way_split, plan_allocation
from repro.core.classifier import Decision, categorize
from repro.core.config import AllocationPolicy, DCatConfig
from repro.core.controller import DCatController, StepResult, WorkloadStatus
from repro.core.perftable import PerformanceTable, PhaseTable
from repro.core.phase import PhaseDetector, PhaseSignature
from repro.core.states import ALLOWED_TRANSITIONS, WorkloadState, can_transition
from repro.core.stats import WorkloadRecord

__all__ = [
    "AllocationInput",
    "optimize_way_split",
    "plan_allocation",
    "Decision",
    "categorize",
    "AllocationPolicy",
    "DCatConfig",
    "DCatController",
    "StepResult",
    "WorkloadStatus",
    "PerformanceTable",
    "PhaseTable",
    "PhaseDetector",
    "PhaseSignature",
    "ALLOWED_TRANSITIONS",
    "WorkloadState",
    "can_transition",
    "WorkloadRecord",
]
