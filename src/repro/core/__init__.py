"""dCat core: the dynamic cache-allocation controller (the paper's contribution)."""

from repro.core.allocation import (
    AllocationInput,
    base_plan,
    optimize_way_split,
    plan_allocation,
)
from repro.core.classifier import Decision, categorize
from repro.core.config import AllocationPolicy, DCatConfig
from repro.core.controller import DCatController, StepResult, WorkloadStatus
from repro.core.hints import DeclaredPhase, DeclaredSchedule, PhaseHint
from repro.core.perftable import PerformanceTable, PhaseTable
from repro.core.phase import PhaseDetector, PhaseSignature
from repro.core.policies import (
    AllocationStrategy,
    get_strategy,
    normalize_policy,
    policy_name,
    register_strategy,
    strategy_names,
    use_policy,
)
from repro.core.states import ALLOWED_TRANSITIONS, WorkloadState, can_transition
from repro.core.stats import WorkloadRecord

__all__ = [
    "AllocationInput",
    "base_plan",
    "optimize_way_split",
    "plan_allocation",
    "Decision",
    "categorize",
    "AllocationPolicy",
    "DCatConfig",
    "DCatController",
    "StepResult",
    "WorkloadStatus",
    "DeclaredPhase",
    "DeclaredSchedule",
    "PhaseHint",
    "PerformanceTable",
    "PhaseTable",
    "PhaseDetector",
    "PhaseSignature",
    "AllocationStrategy",
    "get_strategy",
    "normalize_policy",
    "policy_name",
    "register_strategy",
    "strategy_names",
    "use_policy",
    "ALLOWED_TRANSITIONS",
    "WorkloadState",
    "can_transition",
    "WorkloadRecord",
]
