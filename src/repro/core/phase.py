"""Phase-change detection on memory accesses per instruction (paper §3.3).

dCat's phase signal is ``l1_ref / ret_ins`` — memory accesses per retired
instruction.  The paper verifies (its Fig. 5) that this ratio depends only
on the workload's code, not on its cache allocation, which is exactly the
property a phase detector needs: IPC moves when dCat moves ways, the phase
signature must not.

A change of more than 10% (configurable) against the reference value set at
the last phase boundary declares a new phase.  Each phase also gets a stable
*signature* — the ratio quantized into 10%-wide geometric buckets — used to
key the performance table so a re-encountered phase is recognized (paper
Fig. 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["PhaseSignature", "PhaseDetector"]


@dataclass(frozen=True)
class PhaseSignature:
    """Stable identifier for a workload phase.

    ``bucket`` is the geometric quantization of mem-accesses-per-instruction;
    ``idle`` marks the do-nothing phase, which never keys a performance
    table.
    """

    bucket: int
    idle: bool = False

    @classmethod
    def idle_signature(cls) -> "PhaseSignature":
        return cls(bucket=0, idle=True)


class PhaseDetector:
    """Per-workload phase tracker.

    Args:
        threshold: Relative change that declares a phase boundary (0.10).
        min_refs_per_instr: Ratios below this are treated as idle.
    """

    def __init__(self, threshold: float = 0.10, min_refs_per_instr: float = 1e-6) -> None:
        if not 0 < threshold < 1:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold
        self.min_refs_per_instr = min_refs_per_instr
        self._reference: Optional[float] = None
        self._idle: bool = False

    # -- signatures ------------------------------------------------------------

    def signature_for(self, refs_per_instr: float) -> PhaseSignature:
        """Quantize a ratio into its phase signature."""
        if refs_per_instr < self.min_refs_per_instr:
            return PhaseSignature.idle_signature()
        # Buckets are geometric with ratio (1 + threshold), so two ratios
        # within the detection threshold of each other share a bucket (up to
        # boundary effects), and a re-encountered phase re-derives the same
        # signature.
        width = math.log1p(self.threshold)
        return PhaseSignature(bucket=int(round(math.log(refs_per_instr) / width)))

    @property
    def current_signature(self) -> PhaseSignature:
        if self._idle or self._reference is None:
            return PhaseSignature.idle_signature()
        return self.signature_for(self._reference)

    # -- detection ---------------------------------------------------------------

    def observe(self, refs_per_instr: float, idle: bool = False) -> bool:
        """Feed one interval's ratio; returns True on a phase change.

        Args:
            refs_per_instr: This interval's l1_ref / ret_ins.
            idle: Whether the workload was idle this interval (near-zero
                unhalted cycles); idle-to-active and active-to-idle
                transitions are phase changes.
        """
        if idle or refs_per_instr < self.min_refs_per_instr:
            changed = not self._idle and self._reference is not None
            self._idle = True
            self._reference = None
            return changed

        if self._idle or self._reference is None:
            # Waking up (or first observation): a new phase begins.
            first = self._reference is None and not self._idle
            self._idle = False
            self._reference = refs_per_instr
            return not first  # the very first observation is not a "change"

        relative = abs(refs_per_instr - self._reference) / self._reference
        if relative > self.threshold:
            self._reference = refs_per_instr
            return True
        return False

    def reset(self) -> None:
        """Forget the reference (used when a workload restarts)."""
        self._reference = None
        self._idle = False
