"""Tenant grouping: managing more workloads than CAT has classes.

The paper's Discussion lists a hard limit: "Intel Xeon processors currently
support up to 16 COS, thus the isolated VMs/containers per socket can not
exceed 16" (one class stays reserved for the unmanaged default, so 15
tenants).  This module implements the natural extension the paper leaves to
future work: when more tenants than classes exist, tenants with *similar
cache behaviour* share a class of service.

Grouping preserves dCat's structure: Donors cost one way whether there is
one of them or five, so donor-like tenants are packed together first;
cache-hungry tenants get classes of their own for as long as classes last,
because their allocations are the ones the controller actively resizes.
The grouper re-evaluates as behaviour changes, with hysteresis so tenants
do not bounce between groups every interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

from repro.core.states import WorkloadState

__all__ = ["GroupPlan", "TenantGrouper", "curvature_score"]


def curvature_score(
    value_of: Callable[[int], float], floor: int, ceiling: int
) -> float:
    """Mean per-way gain of a ways->value curve between floor and ceiling.

    The LFOC-style sensitivity figure both layers use: placement evaluates
    the analytical hit-rate curve between a tenant's reservation and the
    full LLC; the LFOC allocation strategy evaluates a learned performance
    table between its smallest and largest recorded allocations.  A curve
    that is flat past its floor (a streaming scan, or a working set already
    resident) scores ~0 — exactly the workloads that can be packed tightly
    without hurting anyone.

    Args:
        value_of: The curve (hit rate, normalized IPC, ...) as a function
            of the way count; only evaluated at ``floor`` and ``ceiling``.
        floor: The allocation the workload already holds (or is owed).
        ceiling: The largest allocation worth considering.

    Returns:
        ``max(0, value_of(ceiling) - value_of(floor)) / (ceiling - floor)``,
        or 0.0 when ``ceiling <= floor`` (no headroom to score).
    """
    if ceiling <= floor:
        return 0.0
    gain = value_of(ceiling) - value_of(floor)
    return max(0.0, gain) / (ceiling - floor)


@dataclass(frozen=True)
class GroupPlan:
    """The grouper's output: which tenants share which class slot.

    Attributes:
        groups: Slot index -> tenant ids sharing it (slot indices are
            abstract; the controller maps them onto real COS ids).
        slot_of: Tenant id -> slot index (the inverse view).
    """

    groups: Dict[int, List[str]]
    slot_of: Dict[str, int]

    @property
    def num_slots(self) -> int:
        return len(self.groups)


# States that can share a slot without hurting anyone: they all sit at (or
# shrink toward) the minimum allocation anyway.
_POOLABLE = {WorkloadState.DONOR, WorkloadState.STREAMING}


@dataclass
class TenantGrouper:
    """Assigns tenants to a bounded number of class slots.

    Args:
        max_slots: Class-of-service slots available to tenants (15 on the
            paper's parts: 16 classes minus the unmanaged default).
        stickiness: Re-planning keeps a tenant in its previous slot unless
            its pooling eligibility changed — this field exists for tests
            to disable that hysteresis.
    """

    max_slots: int = 15
    stickiness: bool = True
    _last_plan: Dict[str, int] = field(default_factory=dict)

    def plan(
        self,
        states: Mapping[str, WorkloadState],
        order: Sequence[str] | None = None,
    ) -> GroupPlan:
        """Produce a slot assignment for the given tenant states.

        Tenants needing isolation (Keeper/Unknown/Receiver/Reclaim) get
        dedicated slots first, in the given order (callers pass, e.g.,
        most-cache-held-first).  Donor-like tenants share the last slot
        when dedicated slots run out; if even the isolating tenants exceed
        the slots, the overflow shares the final slot (a degradation the
        operator is warned about via the plan shape).

        With stickiness enabled (the default), tenants keep their previous
        slots wherever the new plan's structure allows, so re-planning with
        unchanged behaviour moves nobody.

        Raises:
            ValueError: If there are tenants but no slots.
        """
        tenants = list(order) if order is not None else sorted(states)
        if not tenants:
            return GroupPlan(groups={}, slot_of={})
        if self.max_slots < 1:
            raise ValueError("need at least one class slot")

        if len(tenants) <= self.max_slots:
            slot_of = self._assign_dedicated(
                tenants, list(range(self.max_slots))
            )
        else:
            pool_slot = self.max_slots - 1
            isolating = [t for t in tenants if states[t] not in _POOLABLE]
            poolable = [t for t in tenants if states[t] in _POOLABLE]
            dedicated = isolating[: pool_slot]
            overflow = isolating[pool_slot:]
            slot_of = self._assign_dedicated(dedicated, list(range(pool_slot)))
            for t in poolable + overflow:
                slot_of[t] = pool_slot

        self._last_plan = dict(slot_of)
        groups: Dict[int, List[str]] = {}
        for t, slot in slot_of.items():
            groups.setdefault(slot, []).append(t)
        return GroupPlan(groups=groups, slot_of=slot_of)

    def _assign_dedicated(
        self, tenants: Sequence[str], slots: List[int]
    ) -> Dict[str, int]:
        """Give each tenant its own slot, preferring last round's placement.

        Two passes: returning tenants whose previous slot is in the allowed
        set reclaim it first (previous plans were injective over dedicated
        slots, so no two returners collide); everyone else fills the
        remaining slots in order.
        """
        result: Dict[str, int] = {}
        taken: set = set()
        pending: List[str] = []
        for t in tenants:
            prev = self._last_plan.get(t) if self.stickiness else None
            if prev is not None and prev in slots and prev not in taken:
                result[t] = prev
                taken.add(prev)
            else:
                pending.append(t)
        free = [sl for sl in slots if sl not in taken]
        for t, sl in zip(pending, free):
            result[t] = sl
        return result
