"""Declared phase schedules: operator hints the controller may trust.

dCat learns a workload's phase structure online — the detector notices a
phase change, the controller reclaims to baseline, and the performance
table is rebuilt from scratch.  Com-CAS-style systems instead let the
*tenant* declare its phase schedule up front ("compute for 10 s at 2 ways,
then a scan wanting 6").  A declared schedule can never be blindly trusted
(tenants lie, compilers mispredict), so each declared phase may carry the
``refs_per_instr`` signature the tenant expects; a strategy following the
schedule compares it against the measured counters and falls back to the
detector-driven plan when they diverge (trust-but-verify).

The types here are deliberately dependency-free (stdlib only) so the
controller, the allocation strategies and the workload builders can all
share them without layering cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = ["DeclaredPhase", "DeclaredSchedule", "PhaseHint"]


@dataclass(frozen=True)
class DeclaredPhase:
    """One entry of a declared schedule.

    Attributes:
        start_s: Workload-relative time at which the phase begins.
        preferred_ways: The LLC allocation the tenant claims this phase
            wants (clamped to the socket by the consuming strategy).
        refs_per_instr: Optional expected memory-accesses-per-instruction
            signature; when present, strategies verify the measured
            counters against it before trusting ``preferred_ways``.
    """

    start_s: float
    preferred_ways: int
    refs_per_instr: Optional[float] = None


@dataclass(frozen=True)
class DeclaredSchedule:
    """An ordered, immutable sequence of declared phases."""

    phases: Tuple[DeclaredPhase, ...]

    def active_at(self, time_s: float) -> Optional[DeclaredPhase]:
        """The declared phase covering ``time_s``, or None before the first."""
        current: Optional[DeclaredPhase] = None
        for phase in self.phases:
            if phase.start_s <= time_s:
                current = phase
            else:
                break
        return current

    @classmethod
    def from_spec(cls, data: Any, ctx: str = "declared_phases") -> "DeclaredSchedule":
        """Parse the workload-spec ``declared_phases`` list.

        Expected shape::

            [{"start_s": 0, "preferred_ways": 2, "refs_per_instr": 0.05},
             {"start_s": 10, "preferred_ways": 6}]

        Raises:
            ValueError: Naming the offending field (``ctx[i].key``).
        """
        if not isinstance(data, list) or not data:
            raise ValueError(f"{ctx}: expected a non-empty list of phase objects")
        phases = []
        prev_start = None
        for i, raw in enumerate(data):
            entry_ctx = f"{ctx}[{i}]"
            if not isinstance(raw, dict):
                raise ValueError(
                    f"{entry_ctx}: expected an object, got {type(raw).__name__}"
                )
            start = raw.get("start_s", None)
            if isinstance(start, bool) or not isinstance(start, (int, float)):
                raise ValueError(f"{entry_ctx}.start_s: expected a number")
            if start < 0:
                raise ValueError(f"{entry_ctx}.start_s: must be >= 0, got {start}")
            if prev_start is not None and start <= prev_start:
                raise ValueError(
                    f"{entry_ctx}.start_s: must increase "
                    f"(got {start} after {prev_start})"
                )
            prev_start = start
            ways = raw.get("preferred_ways", None)
            if isinstance(ways, bool) or not isinstance(ways, int):
                raise ValueError(f"{entry_ctx}.preferred_ways: expected an integer")
            if ways < 1:
                raise ValueError(
                    f"{entry_ctx}.preferred_ways: must be >= 1, got {ways}"
                )
            refs = raw.get("refs_per_instr", None)
            if refs is not None:
                if isinstance(refs, bool) or not isinstance(refs, (int, float)):
                    raise ValueError(
                        f"{entry_ctx}.refs_per_instr: expected a number"
                    )
                if refs <= 0:
                    raise ValueError(
                        f"{entry_ctx}.refs_per_instr: must be positive, got {refs}"
                    )
                refs = float(refs)
            unknown = sorted(
                set(raw) - {"start_s", "preferred_ways", "refs_per_instr"}
            )
            if unknown:
                raise ValueError(f"{entry_ctx}: unknown field(s) {unknown}")
            phases.append(
                DeclaredPhase(
                    start_s=float(start), preferred_ways=ways, refs_per_instr=refs
                )
            )
        return cls(phases=tuple(phases))


@dataclass(frozen=True)
class PhaseHint:
    """Per-interval hint the controller hands the allocation strategy.

    Attributes:
        time_s: Controller time of the interval being planned.
        schedule: The workload's declared phase schedule.
        measured_refs_per_instr: This interval's measured
            memory-accesses-per-instruction, for trust-but-verify.
    """

    time_s: float
    schedule: DeclaredSchedule
    measured_refs_per_instr: float
