"""The Categorize Workloads step (paper §3.4, Fig. 6).

Given a workload's record and this interval's counter sample, decide its
next state and allocation intent.  The paper's rules, as implemented:

* idle, or LLC references below threshold  -> **Donor** at the minimum
  allocation immediately;
* busy with LLC references but (near-)zero miss rate -> **Donor**, shrinking
  one way per round, until misses become non-trivial -> **Keeper**;
* significant references *and* misses -> wants cache: **Unknown** until a
  grant demonstrably improves IPC (-> **Receiver**) or growth exhausts the
  streaming threshold / the free pool without improvement (-> **Streaming**,
  pinned to the minimum);
* a **Receiver** keeps growing one way per round until its miss rate drops
  below threshold or a grant stops paying -> **Keeper**.

Two refinements the paper leaves implicit are made explicit (and are
ablatable via the config):

* *hysteresis*: the shrink trigger uses a lower miss threshold
  (``donor_miss_rate``) than the grow trigger (``llc_miss_rate_thr``), so a
  workload sitting between the two is a stable Keeper instead of
  oscillating;
* *shrink floor*: when a donor shrink provokes misses, the floor is
  remembered for the rest of the phase so the probe is not repeated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import DCatConfig
from repro.core.states import WorkloadState, can_transition
from repro.core.stats import WorkloadRecord
from repro.hwcounters.perfmon import CounterSample

__all__ = ["Decision", "DONOR_MISS_RATE_FRACTION", "categorize"]


# The donor (shrink) threshold sits well below the grow threshold.
DONOR_MISS_RATE_FRACTION = 1.0 / 6.0


@dataclass(frozen=True)
class Decision:
    """One workload's categorization outcome for this interval.

    Attributes:
        state: The next state.
        target_ways: Allocation the workload should hold regardless of pool
            availability (shrinks and holds; grants go via grow_request).
        grow_request: Extra ways wanted if the pool can supply them.
    """

    state: WorkloadState
    target_ways: int
    grow_request: int = 0


def _improvement(record: WorkloadRecord, sample: CounterSample) -> Optional[float]:
    """Relative IPC improvement attributable to the last grant.

    Compares this interval's IPC against the last interval's (measured at
    one way less).  Fresh measurements are preferred over the performance
    table here: table entries can be stale when a working set changed
    without moving the refs/instr phase signature, and the thresholds
    (>= 5%) sit far above the per-interval measurement noise.  The table
    remains the source of truth for preferred-ways jumps and the
    max-performance split.  Returns None when no grant landed last round
    or data is missing.
    """
    if not record.got_grant_last_round:
        return None
    if record.last_ipc > 0 and sample.ipc > 0:
        return sample.ipc / record.last_ipc - 1.0
    table = record.table.known_phase(record.signature)
    if table is not None:
        now = table.normalized(record.ways)
        before = table.normalized(record.prev_ways)
        if now is not None and before is not None and before > 0:
            return now / before - 1.0
    return None


def _cumulative_gain_per_way(record: WorkloadRecord) -> float:
    """Average normalized-IPC gain per way granted beyond the baseline.

    Uses the phase's performance table, so the estimate integrates every
    interval observed at the two allocations instead of one noisy pair.
    Returns 0.0 when no evidence exists yet.
    """
    extra = record.ways - record.baseline_ways
    if extra <= 0:
        return 0.0
    table = record.table.known_phase(record.signature)
    if table is None:
        return 0.0
    norm = table.normalized(record.ways)
    if norm is None:
        return 0.0
    return (norm - 1.0) / extra


def categorize(
    record: WorkloadRecord,
    sample: CounterSample,
    config: DCatConfig,
    pool_empty: bool,
) -> Decision:
    """Run the Fig. 6 state machine for one workload and interval.

    Args:
        record: The workload's controller record (state read, not written —
            the controller applies the decision).
        sample: This interval's counters.
        config: Controller thresholds.
        pool_empty: Whether the free pool was exhausted after the previous
            allocation round (the Unknown -> Streaming escape hatch).
    """
    state = record.state
    ways = record.ways
    min_ways = config.min_ways

    refs_per_kinstr = (
        1000.0 * sample.llc_ref / sample.ret_ins if sample.ret_ins else 0.0
    )
    miss_rate = sample.llc_miss_rate
    donor_miss_thr = config.llc_miss_rate_thr * DONOR_MISS_RATE_FRACTION

    # -- idle / no LLC use: immediate Donor at the minimum ------------------
    if record.idle or refs_per_kinstr <= config.llc_ref_per_kinstr_thr:
        return _checked(state, Decision(WorkloadState.DONOR, min_ways))

    # -- streaming stays streaming until the phase changes -------------------
    if state is WorkloadState.STREAMING:
        return Decision(WorkloadState.STREAMING, min_ways)

    # -- busy, but the cache is absorbing everything -------------------------
    if miss_rate <= donor_miss_thr:
        if state in (WorkloadState.UNKNOWN, WorkloadState.RECEIVER):
            # Growth achieved its goal; hold what we have.
            return _checked(state, Decision(WorkloadState.KEEPER, ways))
        floor = max(min_ways, record.donor_floor_ways)
        if ways > floor:
            target = max(floor, ways - config.shrink_step_ways)
            return _checked(state, Decision(WorkloadState.DONOR, target))
        return _checked(state, Decision(WorkloadState.KEEPER, ways))

    # -- moderate miss rate: the stable Keeper band ---------------------------
    if miss_rate <= config.llc_miss_rate_thr:
        if state in (WorkloadState.UNKNOWN, WorkloadState.RECEIVER):
            return _checked(state, Decision(WorkloadState.KEEPER, ways))
        return _checked(state, Decision(WorkloadState.KEEPER, ways))

    # -- starved: significant references and misses ----------------------------
    if state in (WorkloadState.KEEPER, WorkloadState.DONOR, WorkloadState.RECLAIM):
        ceiling_active = (
            state is WorkloadState.KEEPER
            and record.growth_ceiling_ways
            and ways >= record.growth_ceiling_ways
        )
        if ceiling_active:
            # Growth already stopped paying at this allocation in this
            # phase.  Stay put — unless misses have risen well past the
            # level at which growth stopped (e.g. the working set grew
            # without a refs/instr phase change), which reopens growth.
            stop_level = record.growth_ceiling_miss_rate
            reopened = miss_rate > max(
                1.5 * stop_level, stop_level + config.llc_miss_rate_thr
            )
            if not reopened:
                return Decision(WorkloadState.KEEPER, ways)
        return _checked(
            state,
            Decision(
                WorkloadState.UNKNOWN, ways, grow_request=config.grow_step_ways
            ),
        )

    if state is WorkloadState.UNKNOWN:
        gain = _improvement(record, sample)
        if gain is not None and gain >= config.ipc_imp_thr:
            return Decision(
                WorkloadState.RECEIVER, ways, grow_request=config.grow_step_ways
            )
        if _cumulative_gain_per_way(record) >= config.streaming_gain_eps:
            # Real but sub-threshold benefit: not streaming, not worth more
            # ways.  Hold what we have.  (Cumulative since baseline, so a
            # single noisy interval cannot trigger this.)
            return Decision(WorkloadState.KEEPER, ways)
        hit_streaming_size = ways >= config.streaming_multiple * record.baseline_ways
        exhausted_pool = pool_empty and record.unknown_grants >= 1
        if hit_streaming_size or exhausted_pool:
            return Decision(WorkloadState.STREAMING, min_ways)
        return Decision(
            WorkloadState.UNKNOWN, ways, grow_request=config.grow_step_ways
        )

    # RECEIVER: keep growing while grants keep paying.
    gain = _improvement(record, sample)
    if gain is not None and gain < config.ipc_imp_thr:
        return Decision(WorkloadState.KEEPER, ways)
    return Decision(
        WorkloadState.RECEIVER, ways, grow_request=config.grow_step_ways
    )


def _checked(src: WorkloadState, decision: Decision) -> Decision:
    """Assert the decision respects the Fig. 6 transition map."""
    if not can_transition(src, decision.state):
        raise AssertionError(
            f"illegal transition {src.value} -> {decision.state.value}"
        )
    return decision
