"""ASCII rendering of experiment results.

The harness prints each experiment in roughly the visual form the paper
uses: tables as aligned columns, bar groups as labeled horizontal bars,
series as compact (x, y) listings.  Nothing here affects measurements; it
exists so ``dcat-experiment run fig17`` is directly comparable against the
paper page.
"""

from __future__ import annotations

from typing import List, Union

from repro.engine.events import MetricsSink
from repro.harness.results import BarGroup, ExperimentResult, Series, TableResult

__all__ = [
    "render_table",
    "render_bars",
    "render_series",
    "render_sparkline",
    "render_metrics",
    "render_experiment",
]

_BAR_WIDTH = 40


def _fmt(value: Union[str, float, int]) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(table: TableResult) -> str:
    """Align a TableResult into monospace columns."""
    rows = [[_fmt(c) for c in row] for row in table.rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(table.headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(table.headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(group: BarGroup) -> str:
    """Horizontal ASCII bars, scaled to the group's maximum."""
    if not group.bars:
        return f"{group.name}: (empty)"
    peak = max(abs(v) for v in group.bars.values()) or 1.0
    width = max(len(k) for k in group.bars)
    lines = [f"{group.name}:"]
    for label, value in group.bars.items():
        filled = int(round(abs(value) / peak * _BAR_WIDTH))
        lines.append(f"  {label.ljust(width)}  {'#' * filled} {value:.3f}")
    return "\n".join(lines)


_SPARK_LEVELS = " .:-=+*#%@"


def render_sparkline(series: Series, width: int = 60) -> str:
    """A one-line character plot of a series (timelines at a glance)."""
    n = len(series.y)
    if n == 0:
        return f"{series.name}: (empty)"
    stride = max(1, n // width)
    ys = series.y[::stride]
    lo, hi = min(ys), max(ys)
    span = hi - lo
    if span <= 0:
        body = _SPARK_LEVELS[-1] * len(ys)
    else:
        body = "".join(
            _SPARK_LEVELS[
                min(
                    len(_SPARK_LEVELS) - 1,
                    int((y - lo) / span * (len(_SPARK_LEVELS) - 1)),
                )
            ]
            for y in ys
        )
    return f"{series.name} [{lo:.3g}..{hi:.3g}]: |{body}|"


def render_series(series: Series, max_points: int = 40) -> str:
    """A compact x->y listing plus a sparkline, subsampled for long series."""
    n = len(series.x)
    if n == 0:
        return f"{series.name}: (empty)"
    stride = max(1, n // max_points)
    pairs = [
        f"({series.x[i]:g}, {series.y[i]:.3f})" for i in range(0, n, stride)
    ]
    listing = f"{series.name}: " + " ".join(pairs)
    if n >= 8:
        return render_sparkline(series) + "\n" + listing
    return listing


def render_metrics(metrics: MetricsSink) -> str:
    """Event-bus counters and histograms as aligned text.

    The CLI appends this to an experiment's notes when ``--trace`` is on,
    so a run's observability cost and event mix are visible in the report.
    """
    lines: List[str] = ["event counts:"]
    if not metrics.counters:
        return "event counts: (none)"
    width = max(len(name) for name in metrics.counters)
    for name, count in sorted(metrics.counters.items()):
        lines.append(f"  {name.ljust(width)}  {count}")
    if metrics.histograms:
        lines.append("field summaries (count / mean / min / max):")
        hwidth = max(len(key) for key in metrics.histograms)
        for key, hist in sorted(metrics.histograms.items()):
            lines.append(
                f"  {key.ljust(hwidth)}  {hist.count}  {hist.mean:.4g}  "
                f"{hist.minimum:.4g}  {hist.maximum:.4g}"
            )
    return "\n".join(lines)


def render_experiment(result: ExperimentResult) -> str:
    """Render a whole experiment, artifact by artifact."""
    lines: List[str] = [
        f"== {result.experiment_id}: {result.title} ==",
    ]
    for name, artifact in result.artifacts.items():
        lines.append("")
        lines.append(f"-- {name} --")
        if isinstance(artifact, TableResult):
            lines.append(render_table(artifact))
        elif isinstance(artifact, BarGroup):
            lines.append(render_bars(artifact))
        elif isinstance(artifact, Series):
            lines.append(render_series(artifact))
        else:  # pragma: no cover - container enforces the union
            lines.append(repr(artifact))
    if result.notes:
        lines.append("")
        lines.append("-- notes --")
        lines.extend(f"* {n}" for n in result.notes)
    return "\n".join(lines)
