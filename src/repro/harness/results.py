"""Result containers for the experiment harness.

Every experiment runner returns an :class:`ExperimentResult` holding one or
more named artifacts — tables, bar groups, time series — in the same shape
the paper presents them, so the report renderer can print "the same
rows/series the paper reports" and the benchmarks can assert on shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

__all__ = ["Series", "BarGroup", "TableResult", "ExperimentResult", "geomean"]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's SPEC aggregate)."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class Series:
    """One line of a figure: y-values over an x-axis."""

    name: str
    x: List[float]
    y: List[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: x and y lengths differ")

    def at(self, x_value: float) -> float:
        """The y value at an exact x (KeyError-like failure if absent)."""
        for xv, yv in zip(self.x, self.y):
            if xv == x_value:
                return yv
        raise ValueError(f"series {self.name!r} has no point at x={x_value}")

    @property
    def final(self) -> float:
        if not self.y:
            raise ValueError(f"series {self.name!r} is empty")
        return self.y[-1]

    @property
    def peak(self) -> float:
        if not self.y:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.y)


@dataclass
class BarGroup:
    """One group of labeled bars (one cluster of a bar chart)."""

    name: str
    bars: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, label: str) -> float:
        return self.bars[label]

    def ratio(self, numerator: str, denominator: str) -> float:
        denom = self.bars[denominator]
        if denom == 0:
            raise ZeroDivisionError(f"bar {denominator!r} is zero")
        return self.bars[numerator] / denom


@dataclass
class TableResult:
    """A paper-style table: headers plus rows of cells."""

    headers: List[str]
    rows: List[List[Union[str, float, int]]] = field(default_factory=list)

    def add_row(self, *cells: Union[str, float, int]) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.headers)} headers"
            )
        self.rows.append(list(cells))

    def column(self, header: str) -> List[Union[str, float, int]]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def lookup(self, key_header: str, key: str, value_header: str):
        """The cell at (row where key_header == key, value_header)."""
        kidx = self.headers.index(key_header)
        vidx = self.headers.index(value_header)
        for row in self.rows:
            if row[kidx] == key:
                return row[vidx]
        raise KeyError(f"no row with {key_header}={key!r}")


Artifact = Union[Series, BarGroup, TableResult]


@dataclass
class ExperimentResult:
    """The complete output of one paper experiment.

    Attributes:
        experiment_id: ``fig1`` .. ``fig17``, ``tab1`` .. ``tab6``, or an
            ablation id.
        title: The paper's caption, abbreviated.
        artifacts: Named tables / series / bar groups.
        notes: Free-form observations recorded by the runner.
    """

    experiment_id: str
    title: str
    artifacts: Dict[str, Artifact] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add(self, name: str, artifact: Artifact) -> None:
        if name in self.artifacts:
            raise ValueError(f"artifact {name!r} already present")
        self.artifacts[name] = artifact

    def series(self, name: str) -> Series:
        art = self.artifacts[name]
        if not isinstance(art, Series):
            raise TypeError(f"{name!r} is a {type(art).__name__}, not a Series")
        return art

    def bars(self, name: str) -> BarGroup:
        art = self.artifacts[name]
        if not isinstance(art, BarGroup):
            raise TypeError(f"{name!r} is a {type(art).__name__}, not a BarGroup")
        return art

    def table(self, name: str) -> TableResult:
        art = self.artifacts[name]
        if not isinstance(art, TableResult):
            raise TypeError(f"{name!r} is a {type(art).__name__}, not a TableResult")
        return art

    def note(self, text: str) -> None:
        self.notes.append(text)
