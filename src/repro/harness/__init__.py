"""Experiment harness: one runner per paper figure/table, plus reporting."""

from repro.harness.registry import EXPERIMENTS, run_experiment
from repro.harness.report import render_experiment
from repro.harness.results import (
    BarGroup,
    ExperimentResult,
    Series,
    TableResult,
    geomean,
)
from repro.harness.scenarios import (
    build_stage,
    manager_factories,
    paper_machine,
    run_scenario,
    run_three_managers,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "render_experiment",
    "BarGroup",
    "ExperimentResult",
    "Series",
    "TableResult",
    "geomean",
    "build_stage",
    "manager_factories",
    "paper_machine",
    "run_scenario",
    "run_three_managers",
]
