"""Paper Table 1: a real performance table accumulated by the controller.

Runs the canonical MLR probe under dCat and then dumps the controller's
per-phase performance table — ways against normalized IPC with the baseline
and preferred allocations marked, exactly the paper's Table 1 shape.
"""

from __future__ import annotations

from repro.harness.results import ExperimentResult, TableResult
from repro.harness.scenarios import build_stage, paper_machine
from repro.mem.address import MB
from repro.platform.managers import DCatManager
from repro.platform.sim import CloudSimulation
from repro.workloads.mlr import MlrWorkload

__all__ = ["run_tab1"]


def run_tab1(seed: int = 1234) -> ExperimentResult:
    """Dump the MLR-8MB phase's performance table (paper Table 1)."""
    result = ExperimentResult(
        "tab1", "Performance table for one workload phase (ways -> norm. IPC)"
    )
    machine = paper_machine(seed=seed)
    vms = build_stage(
        machine,
        [MlrWorkload(8 * MB, start_delay_s=2.0, name="target")],
        baseline_ways=3,
        n_lookbusy=5,
    )
    manager = DCatManager()
    sim = CloudSimulation(machine, vms, manager)
    sim.run(30.0)

    record = manager.controller.records["target"]
    phase_table = record.table.known_phase(record.signature)
    if phase_table is None:
        raise RuntimeError("controller never learned the MLR phase")

    table = TableResult(headers=["cache-ways", "normalized IPC", "mark"])
    preferred = phase_table.preferred_ways()
    for ways in range(1, machine.num_ways + 1):
        norm = phase_table.normalized(ways)
        if norm is None:
            if ways <= max(phase_table.entries, default=0):
                table.add_row(ways, "N/A", "")
            continue
        mark = ""
        if ways == record.baseline_ways:
            mark = "baseline"
        elif ways == preferred:
            mark = "preferred"
        table.add_row(ways, norm, mark)
    result.add("performance_table", table)
    result.note(
        "Mirrors paper Table 1: normalized IPC grows with ways and plateaus "
        "at the preferred allocation."
    )
    return result
