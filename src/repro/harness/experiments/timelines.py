"""Controller-dynamics experiments: paper Figures 10 through 16.

All of these watch dCat's per-interval decisions on the canonical stage
(target VMs plus lookbusy donors, 3-way baselines) and reproduce the
timeline figures: growth to the preferred allocation (Fig. 10), the latency
it buys (Fig. 11), performance-table reuse (Fig. 12), streaming demotion
(Fig. 13), the two allocation policies (Fig. 14), and the mixed MLR+MLOAD
run (Figs. 15/16).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import AllocationPolicy, DCatConfig
from repro.harness.results import BarGroup, ExperimentResult, Series, TableResult
from repro.harness.scenarios import build_stage, run_scenario
from repro.mem.address import MB
from repro.platform.managers import DCatManager, SharedCacheManager, StaticCatManager
from repro.platform.sim import SimulationResult
from repro.workloads.base import PhasedWorkload, idle_phase
from repro.workloads.mload import MloadWorkload
from repro.workloads.mlr import MlrWorkload, mlr_phase

__all__ = [
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "baseline_normalized_ipc",
]


def baseline_normalized_ipc(
    result: SimulationResult, vm_name: str, baseline_ways: int
) -> Series:
    """IPC over time normalized to the first active baseline-allocation IPC.

    This is how the paper's timeline figures plot "normalized IPC (to
    baseline)": the anchor is the IPC measured while the workload ran at its
    reserved allocation.
    """
    timeline = result.timeline(vm_name)
    anchor: Optional[float] = None
    for rec in timeline:
        if (
            rec.phase_name
            and "idle" not in rec.phase_name
            and int(round(rec.ways)) == baseline_ways
            and rec.ipc > 0
        ):
            anchor = rec.ipc
            break
    xs: List[float] = []
    ys: List[float] = []
    for rec in timeline:
        xs.append(rec.time_s)
        active = rec.phase_name is not None and "idle" not in rec.phase_name
        ys.append(rec.ipc / anchor if (anchor and active) else 0.0)
    return Series(f"{vm_name} normalized ipc", xs, ys)


def _ways_series(result: SimulationResult, vm_name: str) -> Series:
    return Series(
        f"{vm_name} ways",
        [r.time_s for r in result.timeline(vm_name)],
        [r.ways for r in result.timeline(vm_name)],
    )


def run_fig10(seed: int = 1234) -> ExperimentResult:
    """Way allocation and normalized IPC for MLR, WSS 4-16 MB (Fig. 10)."""
    result = ExperimentResult(
        "fig10", "dCat allocation timelines for MLR, 6 VMs, 3-way baselines"
    )
    finals = TableResult(headers=["wss_mb", "final ways", "steady norm ipc"])
    for wss_mb in (4, 8, 12, 16):

        def factory(machine, wss_mb=wss_mb):
            return build_stage(
                machine,
                [MlrWorkload(wss_mb * MB, start_delay_s=2.0, name="target")],
                baseline_ways=3,
                n_lookbusy=5,
            )

        res = run_scenario(
            factory, DCatManager(), duration_s=30.0, seed=seed
        )
        result.add(f"ways_{wss_mb}mb", _ways_series(res, "target"))
        norm = baseline_normalized_ipc(res, "target", baseline_ways=3)
        result.add(f"normipc_{wss_mb}mb", norm)
        finals.add_row(
            wss_mb,
            res.steady_mean("target", "ways", 5),
            sum(norm.y[-5:]) / 5,
        )
    result.add("finals", finals)
    result.note(
        "Larger working sets converge at more ways; lookbusy VMs hold 1 way "
        "each as Donors throughout."
    )
    return result


def run_fig11(seed: int = 1234) -> ExperimentResult:
    """Normalized (to full cache) MLR latency: dCat vs static CAT (Fig. 11)."""
    result = ExperimentResult(
        "fig11", "MLR data-access latency normalized to the full-cache run"
    )
    wss_axis = [4, 8, 12, 16]
    rows: Dict[str, List[float]] = {"static": [], "dcat": []}
    for wss_mb in wss_axis:

        def factory(machine, wss_mb=wss_mb):
            return build_stage(
                machine,
                [MlrWorkload(wss_mb * MB, start_delay_s=2.0, name="target")],
                baseline_ways=3,
                n_lookbusy=5,
            )

        def alone_factory(machine, wss_mb=wss_mb):
            return build_stage(
                machine,
                [MlrWorkload(wss_mb * MB, name="target")],
                baseline_ways=3,
            )

        full = run_scenario(
            alone_factory, SharedCacheManager(), duration_s=12.0, seed=seed
        ).mean("target", "avg_mem_latency_cycles", t0=4.0)
        for label, manager in (
            ("static", StaticCatManager()),
            ("dcat", DCatManager()),
        ):
            res = run_scenario(factory, manager, duration_s=30.0, seed=seed)
            latency = res.steady_mean("target", "avg_mem_latency_cycles", 8)
            rows[label].append(latency / full)
    for label, values in rows.items():
        result.add(
            label, Series(f"{label} normalized latency", [float(w) for w in wss_axis], values)
        )
    result.note(
        "dCat stays close to 1.0 (full cache); static CAT degrades steeply "
        "once the working set outgrows 3 ways (6.75 MB)."
    )
    return result


def run_fig12(seed: int = 1234) -> ExperimentResult:
    """Performance-table reuse across a stop/restart (paper Fig. 12)."""
    result = ExperimentResult(
        "fig12", "MLR-8MB run, stop, run again: second run jumps to preferred"
    )

    def make_workload():
        return PhasedWorkload(
            name="target",
            phases=[
                idle_phase(duration_s=2.0, name="idle-before"),
                mlr_phase(8 * MB, duration_s=12.0),
                idle_phase(duration_s=5.0, name="idle-between"),
                mlr_phase(8 * MB, duration_s=12.0),
                idle_phase(name="idle-after"),
            ],
        )

    def factory(machine):
        return build_stage(machine, [make_workload()], baseline_ways=3, n_lookbusy=5)

    for label, config in (
        ("with_table", DCatConfig(use_performance_table=True)),
        ("without_table", DCatConfig(use_performance_table=False)),
    ):
        res = run_scenario(
            factory, DCatManager(config=config), duration_s=34.0, seed=seed
        )
        result.add(f"ways_{label}", _ways_series(res, "target"))
    result.note(
        "With the table, the restart at ~19 s goes straight to the preferred "
        "ways; without it, growth restarts from the baseline one way per round."
    )
    return result


def run_fig13(seed: int = 1234) -> ExperimentResult:
    """Streaming detection for MLOAD-60MB (paper Fig. 13)."""
    result = ExperimentResult(
        "fig13", "MLOAD-60MB grows to the streaming threshold, then donates"
    )

    def factory(machine):
        return build_stage(
            machine,
            [MloadWorkload(60 * MB, start_delay_s=2.0, name="target")],
            baseline_ways=3,
            n_lookbusy=5,
        )

    res = run_scenario(factory, DCatManager(), duration_s=25.0, seed=seed)
    result.add("ways", _ways_series(res, "target"))
    result.add("normipc", baseline_normalized_ipc(res, "target", baseline_ways=3))
    states = [
        str(r.state.value) if r.state else "-" for r in res.timeline("target")
    ]
    table = TableResult(headers=["t", "ways", "state"])
    for rec, state in zip(res.timeline("target"), states):
        table.add_row(rec.time_s, rec.ways, state)
    result.add("states", table)
    result.note(
        "IPC never improves with added ways; at 3x the baseline (9 ways) the "
        "workload is classified Streaming and drops to 1 way."
    )
    return result


def run_fig14(seed: int = 1234) -> ExperimentResult:
    """Two receivers under both allocation policies (paper Fig. 14)."""
    result = ExperimentResult(
        "fig14", "MLR-8MB and MLR-12MB: max-fairness vs max-performance"
    )

    def factory(machine):
        return build_stage(
            machine,
            [
                MlrWorkload(8 * MB, start_delay_s=2.0, name="mlr-8mb"),
                MlrWorkload(12 * MB, start_delay_s=2.0, name="mlr-12mb"),
            ],
            baseline_ways=3,
            n_lookbusy=6,
        )

    finals = TableResult(headers=["policy", "mlr-8mb ways", "mlr-12mb ways"])
    for policy in (AllocationPolicy.MAX_FAIRNESS, AllocationPolicy.MAX_PERFORMANCE):
        config = DCatConfig(policy=policy)
        res = run_scenario(
            factory, DCatManager(config=config), duration_s=40.0, seed=seed
        )
        for vm in ("mlr-8mb", "mlr-12mb"):
            result.add(f"ways_{vm}_{policy.value}", _ways_series(res, vm))
        finals.add_row(
            policy.value,
            res.steady_mean("mlr-8mb", "ways", 5),
            res.steady_mean("mlr-12mb", "ways", 5),
        )
    result.add("finals", finals)
    result.note(
        "Fairness splits the pool evenly; max-performance shifts ways toward "
        "the working set that still converts them into IPC."
    )
    return result


def _fig15_scenario(seed: int):
    def factory(machine):
        return build_stage(
            machine,
            [
                MlrWorkload(8 * MB, start_delay_s=2.0, name="mlr-8mb"),
                MloadWorkload(60 * MB, start_delay_s=2.0, name="mload-60mb"),
            ],
            baseline_ways=3,
            n_lookbusy=5,
        )

    return run_scenario(factory, DCatManager(), duration_s=30.0, seed=seed)


def run_fig15(seed: int = 1234) -> ExperimentResult:
    """MLR + MLOAD allocation timeline (paper Fig. 15)."""
    result = ExperimentResult(
        "fig15", "MLR-8MB and MLOAD-60MB compete; Unknown outranks Receiver"
    )
    res = _fig15_scenario(seed)
    for vm in ("mlr-8mb", "mload-60mb"):
        result.add(f"ways_{vm}", _ways_series(res, vm))
        result.add(
            f"normipc_{vm}", baseline_normalized_ipc(res, vm, baseline_ways=3)
        )
    result.note(
        "MLOAD (Unknown) takes grant priority until it exhausts its chances "
        "and is demoted to Streaming; MLR then collects the freed ways."
    )
    return result


def run_fig16(seed: int = 1234) -> ExperimentResult:
    """Normalized latency for the Fig. 15 pair under dCat (paper Fig. 16)."""
    result = ExperimentResult(
        "fig16", "dCat latency vs full-cache runs for MLR-8MB and MLOAD-60MB"
    )
    res = _fig15_scenario(seed)
    group = BarGroup(name="latency normalized to solo full-cache run")
    for vm, wss_mb, make in (
        ("mlr-8mb", 8, lambda: MlrWorkload(8 * MB, name="solo")),
        ("mload-60mb", 60, lambda: MloadWorkload(60 * MB, name="solo")),
    ):

        def alone_factory(machine, make=make):
            return build_stage(machine, [make()], baseline_ways=3)

        full = run_scenario(
            alone_factory, SharedCacheManager(), duration_s=12.0, seed=seed
        ).mean("solo", "avg_mem_latency_cycles", t0=4.0)
        dcat_latency = res.steady_mean(vm, "avg_mem_latency_cycles", 8)
        group.bars[vm] = dcat_latency / full
    result.add("normalized_latency", group)
    result.note(
        "MLR lands near 1.0 (its preferred allocation); MLOAD is insensitive, "
        "so holding 1 way costs it almost nothing."
    )
    return result
