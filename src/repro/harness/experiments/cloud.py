"""Cloud-layer experiments: tenant churn over a multi-machine fleet.

These go beyond the paper's fixed-VM evaluation into its claimed setting —
IaaS with tenant arrival/departure — using :mod:`repro.cloud`:

* ``cloud_churn_poisson`` — Poisson arrivals over a two-machine fleet under
  the sensitivity-aware placement policy, reporting admissions, rejections
  and per-tenant SLO accounting (baseline-violation intervals and
  normalized IPC vs. entitlement).
* ``cloud_churn_scripted`` — one scripted + Poisson churn trace replayed
  under each placement policy (first-fit, least-loaded,
  sensitivity-aware), comparing admission and SLO outcomes.
* ``cloud_churn_fleet1k`` — a sparse scripted trace over a 1000-machine
  fleet for 10k intervals, run serially and sharded across worker
  processes, asserting the two runs are byte-identical.  Exercises the
  discrete-event fleet clock (idle hosts don't step) and the process-pool
  executor at IaaS scale.

All are deterministic in ``seed``: machine seeds and the arrival stream
derive from it, so the same seed yields a byte-identical report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.harness.results import BarGroup, ExperimentResult, TableResult

if TYPE_CHECKING:  # imported lazily at run time to avoid a package cycle
    from repro.cloud.fleet import FleetResult

__all__ = [
    "run_cloud_churn_poisson",
    "run_cloud_churn_scripted",
    "run_cloud_churn_fleet1k",
]


def _churn_scenario(seed: int, placement: str) -> Dict[str, Any]:
    """The shared two-machine churn stage (Xeon-D hosts, dCat managers)."""
    return {
        "fleet": {"machines": 2, "socket": "xeon_d", "seed": seed},
        "manager": {"type": "dcat"},
        "placement": placement,
        "duration_s": 40,
        "slo": {"tolerance": 0.05},
        "tenants": [
            {
                "name": "db-anchor",
                "arrival_s": 0,
                "baseline_ways": 4,
                "lifetime_s": 30,
                "workload": {"type": "postgres"},
            },
            {
                "name": "kv-anchor",
                "arrival_s": 1,
                "baseline_ways": 4,
                "lifetime_s": 30,
                "workload": {"type": "redis"},
            },
        ],
        "poisson": {
            "rate_per_s": 0.45,
            "seed": seed + 1,
            "mix": [
                {
                    "weight": 2,
                    "baseline_ways": 3,
                    "mean_lifetime_s": 12,
                    "workload": {"type": "mlr", "wss_mb": 8},
                },
                {
                    "weight": 1,
                    "baseline_ways": 3,
                    "mean_lifetime_s": 12,
                    "workload": {"type": "mload", "wss_mb": 60},
                },
                {
                    "weight": 1,
                    "baseline_ways": 3,
                    "mean_lifetime_s": 12,
                    "workload": {"type": "lookbusy"},
                },
            ],
        },
    }


def _slo_table(result: FleetResult) -> TableResult:
    table = TableResult(
        headers=[
            "tenant",
            "machine",
            "active",
            "violations",
            "violation_frac",
            "norm_ipc",
        ]
    )
    for tid in sorted(result.tenants):
        stats = result.tenants[tid]
        table.add_row(
            tid,
            stats.machine,
            stats.active_intervals,
            stats.violation_intervals,
            stats.violation_fraction,
            stats.mean_normalized_ipc,
        )
    return table


def _admissions_table(result: FleetResult) -> TableResult:
    table = TableResult(headers=["t", "tenant", "machine", "outcome"])
    for rec in result.placements:
        table.add_row(
            rec.time_s, rec.tenant_id, rec.machine or "-", rec.reason
        )
    return table


def run_cloud_churn_poisson(seed: int = 1234, **_: Any) -> ExperimentResult:
    """Poisson churn over two machines, sensitivity-aware placement."""
    from repro.cloud.scenario import run_churn_scenario

    result = run_churn_scenario(_churn_scenario(seed, "sensitivity"))
    out = ExperimentResult(
        experiment_id="cloud_churn_poisson",
        title="Tenant churn: Poisson arrivals over a 2-machine fleet (dCat)",
    )
    out.add("admissions", _admissions_table(result))
    out.add("slo", _slo_table(result))
    out.add(
        "fleet",
        BarGroup(
            name="fleet summary",
            bars={
                "admitted": float(len(result.admitted)),
                "rejected": float(len(result.rejected)),
                "violation_fraction": result.summary["violation_fraction"],
                "mean_norm_ipc": result.summary["mean_normalized_ipc"],
            },
        ),
    )
    out.note(
        f"{len(result.admitted)} admitted, {len(result.rejected)} rejected; "
        f"fleet violation fraction "
        f"{result.summary['violation_fraction']:.3f}"
    )
    return out


def run_cloud_churn_scripted(seed: int = 1234, **_: Any) -> ExperimentResult:
    """The same churn trace under each placement policy, compared."""
    from repro.cloud.scenario import run_churn_scenario

    out = ExperimentResult(
        experiment_id="cloud_churn_scripted",
        title="Tenant churn: placement policies on one trace",
    )
    comparison = TableResult(
        headers=[
            "policy",
            "admitted",
            "rejected",
            "violation_frac",
            "norm_ipc",
        ]
    )
    for policy in ("first_fit", "least_loaded", "sensitivity"):
        result = run_churn_scenario(_churn_scenario(seed, policy))
        comparison.add_row(
            policy,
            len(result.admitted),
            len(result.rejected),
            result.summary["violation_fraction"],
            result.summary["mean_normalized_ipc"],
        )
        out.add(f"slo_{policy}", _slo_table(result))
    out.add("policies", comparison)
    return out


def _fleet1k_scenario(
    seed: int, machines: int, duration_s: float
) -> Dict[str, Any]:
    """A sparse scripted trace: 12 short-lived tenants over a big fleet.

    Most of the horizon is quiescent, so the run's cost is dominated by
    the ~480 busy host-intervals, not ``machines * duration`` — that is
    the discrete-event fleet clock at work.
    """
    workloads = [
        {"type": "redis"},
        {"type": "postgres"},
        {"type": "mlr", "wss_mb": 8},
        {"type": "lookbusy"},
    ]
    step = duration_s / 12.5
    tenants = []
    for i in range(12):
        tenants.append(
            {
                "name": f"batch-{i:02d}",
                "arrival_s": round(i * step, 3),
                "baseline_ways": 3 + (i % 3),
                "lifetime_s": 40,
                "workload": workloads[i % len(workloads)],
            }
        )
    return {
        "fleet": {
            "machines": machines,
            "socket": "xeon_d",
            "seed": seed,
            "interval_s": 1.0,
        },
        "manager": {"type": "dcat"},
        "placement": "least_loaded",
        "duration_s": duration_s,
        "slo": {"tolerance": 0.05},
        "tenants": tenants,
    }


def run_cloud_churn_fleet1k(
    seed: int = 1234,
    machines: int = 1000,
    duration_s: float = 10_000.0,
    fleet_jobs: int = 4,
    **_: Any,
) -> ExperimentResult:
    """1k-machine churn, serial vs. process-pool, byte-identity checked."""
    from repro.cloud.scenario import run_churn_scenario

    scenario = _fleet1k_scenario(seed, machines, duration_s)
    serial = run_churn_scenario(dict(scenario))
    parallel = run_churn_scenario(dict(scenario), fleet_jobs=fleet_jobs)
    identical = serial.canonical_bytes() == parallel.canonical_bytes()

    out = ExperimentResult(
        experiment_id="cloud_churn_fleet1k",
        title=(
            f"Tenant churn at scale: {machines} machines, "
            f"{int(duration_s)} intervals, serial vs {fleet_jobs} workers"
        ),
    )
    out.add("admissions", _admissions_table(serial))
    out.add("slo", _slo_table(serial))
    out.add(
        "fleet",
        BarGroup(
            name="fleet summary",
            bars={
                "machines": float(machines),
                "admitted": float(len(serial.admitted)),
                "rejected": float(len(serial.rejected)),
                "active_intervals": serial.summary["active_intervals"],
                "violation_fraction": serial.summary["violation_fraction"],
                "parallel_identical": 1.0 if identical else 0.0,
            },
        ),
    )
    out.note(
        f"serial and {fleet_jobs}-worker runs "
        f"{'byte-identical' if identical else 'DIVERGED'}; "
        f"{int(serial.summary['active_intervals'])} busy host-intervals "
        f"out of {machines * int(duration_s)} possible"
    )
    if not identical:
        raise AssertionError(
            "parallel fleet run diverged from the serial run "
            f"(seed={seed}, machines={machines}, jobs={fleet_jobs})"
        )
    return out
