"""The policy tournament: race every allocation strategy under churn.

The paper evaluates its two §3.5 objectives on fixed VM mixes; the
tournament races *every* registered strategy (see
:mod:`repro.core.policies`) across churn scenarios, with and without
fault injection, and reports four axes per cell:

* **throughput** — fleet normalized-IPC-seconds per wall second (how much
  entitled performance the fleet actually delivered);
* **jain_fairness** — Jain's index over per-tenant mean normalized IPC
  (1.0 = perfectly even outcomes);
* **slo_violation_s** — total seconds tenants spent below their SLO;
* **realloc_churn** — total way-allocation changes across all timelines
  (actuation cost: mask reprogramming plus way flushes).

No single number ranks policies — a strategy can buy throughput with
churn, or fairness with violations — so the summary marks the Pareto
frontier over per-policy aggregates instead of electing a winner.

The JSON payload is schema-versioned (:data:`TOURNAMENT_SCHEMA`) and
checked by :func:`validate_tournament_report`, so CI's tournament-smoke
job and downstream tooling can rely on its shape.  Per-cell metrics also
flow through a :class:`repro.obs.registry.MetricsRegistry` as one labeled
gauge per (policy, scenario, faults, metric) combination.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.harness.results import ExperimentResult, TableResult

__all__ = [
    "TOURNAMENT_SCHEMA",
    "METRIC_KEYS",
    "tournament_scenario_names",
    "build_tournament_report",
    "render_tournament_markdown",
    "run_policy_tournament",
    "validate_tournament_report",
    "jain_fairness",
    "pareto_frontier",
]

#: Version marker stamped into every report; bump on shape changes.
TOURNAMENT_SCHEMA = "dcat-tournament/v1"

#: The four per-cell metric axes, in report order.
METRIC_KEYS = ("throughput", "jain_fairness", "slo_violation_s", "realloc_churn")

#: Metrics where larger is better; the rest are costs.
_HIGHER_IS_BETTER = ("throughput", "jain_fairness")

#: Policies raced by ``--quick`` (CI smoke): the two paper objectives
#: plus one rival, keeping the sweep under a minute.
_QUICK_POLICIES = ("max_fairness", "max_performance", "lfoc_clustering")


def _steady_mix_scenario(seed: int, faults: bool, quick: bool) -> Dict[str, Any]:
    """Anchored databases plus a Poisson mlr/mload/lookbusy stream.

    The postgres anchor declares its phase schedule, so the ``phase_hint``
    strategy has a hint to act on while everyone else ignores it.
    """
    duration = 12 if quick else 30
    scenario: Dict[str, Any] = {
        "fleet": {"machines": 2, "socket": "xeon_d", "seed": seed},
        "manager": {"type": "dcat"},
        "placement": "sensitivity",
        "duration_s": duration,
        "slo": {"tolerance": 0.05},
        "tenants": [
            {
                "name": "db-anchor",
                "arrival_s": 0,
                "baseline_ways": 4,
                "lifetime_s": duration - 2,
                "workload": {
                    "type": "postgres",
                    "declared_phases": [
                        {"start_s": 0, "preferred_ways": 5}
                    ],
                },
            },
            {
                "name": "kv-anchor",
                "arrival_s": 1,
                "baseline_ways": 4,
                "lifetime_s": duration - 2,
                "workload": {"type": "redis"},
            },
        ],
        "poisson": {
            "rate_per_s": 0.45,
            "seed": seed + 1,
            "mix": [
                {
                    "weight": 2,
                    "baseline_ways": 3,
                    "mean_lifetime_s": 10,
                    "workload": {"type": "mlr", "wss_mb": 8},
                },
                {
                    "weight": 1,
                    "baseline_ways": 3,
                    "mean_lifetime_s": 10,
                    "workload": {"type": "mload", "wss_mb": 60},
                },
                {
                    "weight": 1,
                    "baseline_ways": 3,
                    "mean_lifetime_s": 10,
                    "workload": {"type": "lookbusy"},
                },
            ],
        },
    }
    if faults:
        scenario["faults"] = _fault_section(seed)
    return scenario


def _bursty_streamers_scenario(seed: int, faults: bool, quick: bool) -> Dict[str, Any]:
    """Short-lived, streamer-heavy arrivals: the squanderer-pressure case."""
    duration = 12 if quick else 30
    scenario: Dict[str, Any] = {
        "fleet": {"machines": 2, "socket": "xeon_d", "seed": seed + 7},
        "manager": {"type": "dcat"},
        "placement": "first_fit",
        "duration_s": duration,
        "slo": {"tolerance": 0.05},
        "tenants": [
            {
                "name": "search-anchor",
                "arrival_s": 0,
                "baseline_ways": 4,
                "lifetime_s": duration - 2,
                "workload": {"type": "elasticsearch"},
            },
        ],
        "poisson": {
            "rate_per_s": 0.6,
            "seed": seed + 8,
            "mix": [
                {
                    "weight": 3,
                    "baseline_ways": 3,
                    "mean_lifetime_s": 6,
                    "workload": {"type": "mload", "wss_mb": 60},
                },
                {
                    "weight": 1,
                    "baseline_ways": 3,
                    "mean_lifetime_s": 8,
                    "workload": {"type": "mlr", "wss_mb": 12},
                },
            ],
        },
    }
    if faults:
        scenario["faults"] = _fault_section(seed + 7)
    return scenario


def _fault_section(seed: int) -> Dict[str, Any]:
    """The faults-on plan: noisy counters, flaky writes, read errors."""
    return {
        "seed": seed + 99,
        "rules": [
            {"kind": "counter_noise", "magnitude": 3.0, "probability": 0.08},
            {"kind": "l3ca_set_fail", "probability": 0.08},
            {"kind": "counter_read_error", "probability": 0.05},
        ],
    }


_SCENARIOS = {
    "steady_mix": _steady_mix_scenario,
    "bursty_streamers": _bursty_streamers_scenario,
}


def tournament_scenario_names() -> List[str]:
    """The churn scenarios every policy is raced on, sorted."""
    return sorted(_SCENARIOS)


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)``; 1.0 when empty."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 1.0
    square_sum = sum(v * v for v in vals)
    if square_sum == 0:
        return 1.0
    return (sum(vals) ** 2) / (len(vals) * square_sum)


def _cell_metrics(result: Any, duration_s: float) -> Dict[str, float]:
    """The four tournament axes for one fleet run."""
    interval = result.interval_s
    throughput = (
        sum(s.normalized_sum for s in result.tenants.values())
        * interval
        / duration_s
    )
    fairness = jain_fairness(
        [
            s.mean_normalized_ipc
            for s in result.tenants.values()
            if s.active_intervals
        ]
    )
    violation_s = (
        sum(s.violation_intervals for s in result.tenants.values()) * interval
    )
    churn = 0
    for sim in result.machines.values():
        for timeline in sim.records.values():
            for prev, cur in zip(timeline, timeline[1:]):
                if cur.ways != prev.ways:
                    churn += 1
    return {
        "throughput": throughput,
        "jain_fairness": fairness,
        "slo_violation_s": violation_s,
        "realloc_churn": float(churn),
    }


def pareto_frontier(
    aggregates: Mapping[str, Mapping[str, float]],
) -> Dict[str, bool]:
    """Which policies no other policy dominates on all four axes.

    ``a`` dominates ``b`` when it is at least as good on every metric
    (higher throughput/fairness, lower violations/churn) and strictly
    better on at least one.
    """

    def _dominates(a: Mapping[str, float], b: Mapping[str, float]) -> bool:
        at_least_as_good = all(
            a[m] >= b[m] if m in _HIGHER_IS_BETTER else a[m] <= b[m]
            for m in METRIC_KEYS
        )
        strictly_better = any(a[m] != b[m] for m in METRIC_KEYS)
        return at_least_as_good and strictly_better

    return {
        name: not any(
            _dominates(other, agg)
            for other_name, other in aggregates.items()
            if other_name != name
        )
        for name, agg in aggregates.items()
    }


def build_tournament_report(
    seed: int = 1234,
    quick: bool = False,
    registry: Optional[Any] = None,
    fleet_jobs: int = 1,
) -> Dict[str, Any]:
    """Run the full sweep and return the schema-versioned payload.

    Args:
        seed: Base seed; every cell derives its own machine/arrival seeds
            from it, so the same seed gives a byte-identical report.
        quick: Race only :data:`_QUICK_POLICIES` (the CI smoke sweep);
            the full run races every registered strategy.
        registry: Optional :class:`repro.obs.registry.MetricsRegistry`;
            when given, each cell lands as a ``dcat_tournament_metric``
            gauge labeled (policy, scenario, faults, metric).
        fleet_jobs: Worker processes per cell's fleet (``--fleet-jobs``);
            cell results are byte-identical regardless of the value.
    """
    from repro.cloud.scenario import run_churn_scenario
    from repro.core.policies import strategy_names

    policies = (
        [p for p in _QUICK_POLICIES] if quick else strategy_names()
    )
    scenarios = tournament_scenario_names()
    fault_modes = ["off", "on"]

    family = None
    if registry is not None:
        family = registry.gauge(
            "dcat_tournament_metric",
            "Policy-tournament cell metrics",
            labels=("policy", "scenario", "faults", "metric"),
        )

    cells: List[Dict[str, Any]] = []
    totals: Dict[str, Dict[str, float]] = {
        p: {m: 0.0 for m in METRIC_KEYS} for p in policies
    }
    for policy in policies:
        for scenario_name in scenarios:
            for faults in fault_modes:
                scenario = _SCENARIOS[scenario_name](
                    seed, faults == "on", quick
                )
                result = run_churn_scenario(
                    scenario, policy=policy, fleet_jobs=fleet_jobs
                )
                metrics = _cell_metrics(result, float(scenario["duration_s"]))
                cell: Dict[str, Any] = {
                    "policy": policy,
                    "scenario": scenario_name,
                    "faults": faults,
                    "admitted": len(result.admitted),
                    "rejected": len(result.rejected),
                }
                cell.update(metrics)
                cells.append(cell)
                for metric, value in metrics.items():
                    totals[policy][metric] += value
                    if family is not None:
                        family.labels(
                            policy=policy,
                            scenario=scenario_name,
                            faults=faults,
                            metric=metric,
                        ).set(value)

    n_cells_per_policy = len(scenarios) * len(fault_modes)
    aggregates = {
        policy: {
            # Means for the quality axes, totals for the cost axes.
            "throughput": sums["throughput"] / n_cells_per_policy,
            "jain_fairness": sums["jain_fairness"] / n_cells_per_policy,
            "slo_violation_s": sums["slo_violation_s"],
            "realloc_churn": sums["realloc_churn"],
        }
        for policy, sums in totals.items()
    }
    frontier = pareto_frontier(aggregates)
    summary = {
        policy: dict(aggregates[policy], pareto=frontier[policy])
        for policy in policies
    }
    return {
        "schema": TOURNAMENT_SCHEMA,
        "seed": seed,
        "quick": quick,
        "policies": list(policies),
        "scenarios": scenarios,
        "fault_modes": fault_modes,
        "cells": cells,
        "summary": summary,
    }


def validate_tournament_report(payload: Any) -> None:
    """Check a tournament payload against the v1 schema.

    Raises:
        ValueError: Naming the first offending field.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"report: expected an object, got {type(payload).__name__}")
    if payload.get("schema") != TOURNAMENT_SCHEMA:
        raise ValueError(
            f"schema: expected {TOURNAMENT_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in ("seed", "quick", "policies", "scenarios", "fault_modes", "cells", "summary"):
        if key not in payload:
            raise ValueError(f"{key}: missing required field")
    policies = payload["policies"]
    scenarios = payload["scenarios"]
    fault_modes = payload["fault_modes"]
    for key, val in (("policies", policies), ("scenarios", scenarios), ("fault_modes", fault_modes)):
        if not isinstance(val, list) or not val or not all(isinstance(v, str) for v in val):
            raise ValueError(f"{key}: expected a non-empty list of strings")
    cells = payload["cells"]
    if not isinstance(cells, list):
        raise ValueError("cells: expected a list")
    expected = {
        (p, s, f) for p in policies for s in scenarios for f in fault_modes
    }
    seen = set()
    for i, cell in enumerate(cells):
        ctx = f"cells[{i}]"
        if not isinstance(cell, dict):
            raise ValueError(f"{ctx}: expected an object")
        key = (cell.get("policy"), cell.get("scenario"), cell.get("faults"))
        if key not in expected:
            raise ValueError(f"{ctx}: unexpected combination {key!r}")
        if key in seen:
            raise ValueError(f"{ctx}: duplicate combination {key!r}")
        seen.add(key)
        for metric in METRIC_KEYS:
            value = cell.get(metric)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{ctx}.{metric}: expected a number, got {value!r}")
        for count in ("admitted", "rejected"):
            value = cell.get(count)
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"{ctx}.{count}: expected a non-negative integer, got {value!r}"
                )
    missing = expected - seen
    if missing:
        raise ValueError(f"cells: missing combinations {sorted(missing)}")
    summary = payload["summary"]
    if not isinstance(summary, dict) or set(summary) != set(policies):
        raise ValueError("summary: expected one entry per policy")
    for policy, agg in summary.items():
        ctx = f"summary[{policy!r}]"
        if not isinstance(agg, dict):
            raise ValueError(f"{ctx}: expected an object")
        for metric in METRIC_KEYS:
            value = agg.get(metric)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{ctx}.{metric}: expected a number, got {value!r}")
        if not isinstance(agg.get("pareto"), bool):
            raise ValueError(f"{ctx}.pareto: expected a boolean")


def render_tournament_markdown(payload: Dict[str, Any]) -> str:
    """The payload as two markdown tables: Pareto summary, then cells."""
    lines = [
        f"# Policy tournament (seed {payload['seed']}"
        + (", quick)" if payload["quick"] else ")"),
        "",
        "## Pareto summary",
        "",
        "| policy | throughput | jain_fairness | slo_violation_s "
        "| realloc_churn | pareto |",
        "|---|---|---|---|---|---|",
    ]
    for policy in payload["policies"]:
        agg = payload["summary"][policy]
        lines.append(
            f"| {policy} | {agg['throughput']:.4f} | {agg['jain_fairness']:.4f} "
            f"| {agg['slo_violation_s']:.1f} | {agg['realloc_churn']:.0f} "
            f"| {'yes' if agg['pareto'] else 'no'} |"
        )
    lines += [
        "",
        "## Cells",
        "",
        "| policy | scenario | faults | throughput | jain_fairness "
        "| slo_violation_s | realloc_churn | admitted | rejected |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for cell in payload["cells"]:
        lines.append(
            f"| {cell['policy']} | {cell['scenario']} | {cell['faults']} "
            f"| {cell['throughput']:.4f} | {cell['jain_fairness']:.4f} "
            f"| {cell['slo_violation_s']:.1f} | {cell['realloc_churn']:.0f} "
            f"| {cell['admitted']} | {cell['rejected']} |"
        )
    return "\n".join(lines) + "\n"


def run_policy_tournament(
    seed: int = 1234, quick: bool = False, **_: Any
) -> ExperimentResult:
    """Registry entry point: the tournament as an ExperimentResult."""
    payload = build_tournament_report(seed=seed, quick=quick)
    validate_tournament_report(payload)
    out = ExperimentResult(
        experiment_id="policy_tournament",
        title="Allocation-policy tournament: strategies x churn x faults",
    )
    pareto = TableResult(
        headers=["policy", *METRIC_KEYS, "pareto"]
    )
    for policy in payload["policies"]:
        agg = payload["summary"][policy]
        pareto.add_row(
            policy,
            *(agg[m] for m in METRIC_KEYS),
            "yes" if agg["pareto"] else "no",
        )
    out.add("pareto", pareto)
    cells = TableResult(
        headers=["policy", "scenario", "faults", *METRIC_KEYS, "admitted", "rejected"]
    )
    for cell in payload["cells"]:
        cells.add_row(
            cell["policy"],
            cell["scenario"],
            cell["faults"],
            *(cell[m] for m in METRIC_KEYS),
            cell["admitted"],
            cell["rejected"],
        )
    out.add("cells", cells)
    frontier = [p for p in payload["policies"] if payload["summary"][p]["pareto"]]
    out.note(
        f"{len(payload['policies'])} policies x {len(payload['scenarios'])} "
        f"scenarios x faults on/off; Pareto frontier: {', '.join(frontier)}"
    )
    return out
