"""Fidelity validation: the analytical model vs the exact tag array, online.

Not a paper figure — the reproduction's own cross-check, promoted into the
registry so the exact substrate is exercised by ``dcat-experiment`` (and
the registry smoke sweep), not only by tests.  One stage — an MLR target
growing into its working set next to lookbusy neighbors under dCat — runs
at all three fidelities:

* **analytical** — the fast closed-form path every figure bench uses;
* **exact** — through :class:`~repro.platform.exact.ExactCloudSimulation`
  (the compatibility shim over ``ExactSubstrate``), measuring each hit
  rate on a real :class:`~repro.cache.setassoc.SetAssociativeCache`;
* **mixed** — analytical with the exact oracle spot-checking every
  interval (``sample_rate=1``), counting ``FidelityDivergence`` events.

The experiment passes when the controller's ways trajectory is identical
across fidelities, the steady-state hit rates agree within tolerance, and
the mixed oracle reports zero divergences.
"""

from __future__ import annotations

from repro.harness.results import ExperimentResult, Series, TableResult
from repro.harness.scenarios import build_stage, paper_machine
from repro.mem.address import MB
from repro.platform.exact import ExactCloudSimulation
from repro.platform.managers import DCatManager
from repro.platform.sim import CloudSimulation
from repro.platform.substrate import MixedSubstrate
from repro.workloads.mlr import MlrWorkload

__all__ = ["run_fidelity_validation"]

_TOLERANCE = 0.1


def _stage(machine):
    return build_stage(
        machine,
        [MlrWorkload(2 * MB, start_delay_s=2.0, name="target")],
        baseline_ways=1,
        n_lookbusy=3,
    )


def run_fidelity_validation(
    seed: int = 1234,
    duration_s: float = 18.0,
    accesses_per_interval: int = 120_000,
) -> ExperimentResult:
    """Cross-validate the cache substrates on one dCat stage.

    Args:
        seed: Machine seed, shared by all three runs (paired comparison).
        duration_s: Virtual time per run.
        accesses_per_interval: Exact-substrate trace budget per interval.
    """
    result = ExperimentResult(
        "fidelity_validation",
        "Analytical vs exact vs mixed cache substrates, one dCat stage",
    )

    runs = {}
    machine = paper_machine(seed=seed)
    fast = CloudSimulation(machine, _stage(machine), DCatManager())
    runs["analytical"] = fast.run(duration_s)

    machine = paper_machine(seed=seed)
    exact_sim = ExactCloudSimulation(
        machine,
        _stage(machine),
        DCatManager(),
        accesses_per_interval=accesses_per_interval,
    )
    runs["exact"] = exact_sim.run(duration_s)

    machine = paper_machine(seed=seed)
    oracle = MixedSubstrate(
        sample_rate=1.0,
        tolerance=_TOLERANCE,
        accesses_per_interval=accesses_per_interval,
    )
    mixed_sim = CloudSimulation(
        machine, _stage(machine), DCatManager(), substrate=oracle
    )
    runs["mixed"] = mixed_sim.run(duration_s)

    table = TableResult(
        headers=["fidelity", "steady_hit_rate", "steady_ipc", "final_ways"]
    )
    for label, run in runs.items():
        table.add_row(
            label,
            round(run.steady_mean("target", "llc_hit_rate", 5), 4),
            round(run.steady_mean("target", "ipc", 5), 4),
            run.final("target", "ways"),
        )
        times = run.series("target", "time_s")
        result.add(
            f"hit_rate_{label}",
            Series(
                name=f"target hit rate ({label})",
                x=times,
                y=run.series("target", "llc_hit_rate"),
            ),
        )
    result.add("substrates", table)

    ways_agree = (
        runs["analytical"].series("target", "ways")
        == runs["exact"].series("target", "ways")
        == runs["mixed"].series("target", "ways")
    )
    hit_gap = abs(
        runs["analytical"].steady_mean("target", "llc_hit_rate", 5)
        - runs["exact"].steady_mean("target", "llc_hit_rate", 5)
    )
    result.note(
        "controller ways trajectory identical across fidelities: "
        f"{'yes' if ways_agree else 'NO'}"
    )
    result.note(f"steady-state hit-rate gap (analytical vs exact): {hit_gap:.4f}")
    result.note(
        f"mixed oracle: {oracle.samples} spot checks, "
        f"{oracle.divergences} divergences past tolerance {_TOLERANCE}"
    )
    return result
