"""SPEC CPU2006 experiments: paper Figure 17 and Table 3.

Per benchmark: five VMs with 4-way (9 MB) baselines — the benchmark VM, two
MLOAD-60MB noisy neighbors, two lookbusy polite neighbors — run to the
benchmark's completion under shared cache, static CAT and dCat.  The figure
reports performance (reciprocal runtime) normalized to the shared-cache run;
the paper's headline is a 25% geomean gain over shared and 15.7% over static
partitioning, with omnetpp/astar the largest winners and the streaming and
compute-bound benchmarks unaffected.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.harness.results import ExperimentResult, TableResult, geomean
from repro.harness.scenarios import build_stage, manager_factories, run_scenario
from repro.workloads.spec import spec_benchmark_names, spec_workload

__all__ = ["run_fig17", "run_tab3", "run_spec_suite"]

_BASELINE_WAYS = 4
_MAX_DURATION_S = 900.0


def _run_one(
    benchmark: str, manager_label: str, seed: int, instructions: Optional[int]
):
    """Run one benchmark under one manager; returns (runtime_s, max_ways)."""

    def factory(machine):
        return build_stage(
            machine,
            [spec_workload(benchmark, instructions=instructions, start_delay_s=1.0)],
            baseline_ways=_BASELINE_WAYS,
            n_mload=2,
            n_lookbusy=2,
        )

    manager = manager_factories()[manager_label]()
    result = run_scenario(
        factory,
        manager,
        watch=[benchmark],
        max_duration_s=_MAX_DURATION_S,
        seed=seed,
    )
    finish = result.completion_time(benchmark, benchmark)
    if finish is None:
        raise RuntimeError(
            f"{benchmark} did not finish under {manager_label} within "
            f"{_MAX_DURATION_S}s of virtual time"
        )
    start = 1.0  # the start_delay_s idle lead-in
    runtime = finish - start
    active = [
        r.ways
        for r in result.timeline(benchmark)
        if r.phase_name == benchmark
    ]
    max_ways = max(active) if active else float(_BASELINE_WAYS)
    return runtime, max_ways


def run_spec_suite(
    seed: int = 1234,
    benchmarks=None,
    instructions: Optional[int] = None,
) -> TableResult:
    """Run the full suite; returns per-benchmark runtimes and dCat ways.

    Args:
        benchmarks: Subset to run (default: all 20).
        instructions: Per-benchmark instruction budget override (smaller is
            faster; runtimes scale together so normalized results hold).
    """
    table = TableResult(
        headers=[
            "benchmark",
            "shared_s",
            "static_s",
            "dcat_s",
            "norm_static",
            "norm_dcat",
            "dcat_max_ways",
        ]
    )
    for benchmark in benchmarks or spec_benchmark_names():
        runtimes: Dict[str, float] = {}
        dcat_ways = float(_BASELINE_WAYS)
        for label in ("shared", "static", "dcat"):
            runtime, max_ways = _run_one(benchmark, label, seed, instructions)
            runtimes[label] = runtime
            if label == "dcat":
                dcat_ways = max_ways
        table.add_row(
            benchmark,
            runtimes["shared"],
            runtimes["static"],
            runtimes["dcat"],
            runtimes["shared"] / runtimes["static"],
            runtimes["shared"] / runtimes["dcat"],
            dcat_ways,
        )
    return table


def run_fig17(
    seed: int = 1234, benchmarks=None, instructions: Optional[int] = None
) -> ExperimentResult:
    """Normalized SPEC performance under the three regimes (Fig. 17)."""
    result = ExperimentResult(
        "fig17", "SPEC CPU2006 performance normalized to shared cache"
    )
    table = run_spec_suite(seed=seed, benchmarks=benchmarks, instructions=instructions)
    result.add("per_benchmark", table)
    norm_static = [float(v) for v in table.column("norm_static")]
    norm_dcat = [float(v) for v in table.column("norm_dcat")]
    summary = TableResult(headers=["aggregate", "value"])
    summary.add_row("geomean dcat vs shared", geomean(norm_dcat))
    summary.add_row("geomean static vs shared", geomean(norm_static))
    summary.add_row(
        "geomean dcat vs static", geomean(norm_dcat) / geomean(norm_static)
    )
    result.add("summary", summary)
    result.note("Paper: +25% geomean over shared, +15.7% over static.")
    return result


def run_tab3(
    seed: int = 1234, benchmarks=None, instructions: Optional[int] = None
) -> ExperimentResult:
    """Peak ways dCat assigned to each benchmark (paper Table 3)."""
    result = ExperimentResult("tab3", "Ceiling of dCat way assignments per benchmark")
    table = run_spec_suite(seed=seed, benchmarks=benchmarks, instructions=instructions)
    out = TableResult(headers=["benchmark", "dcat_max_ways"])
    for row in table.rows:
        out.add_row(row[0], row[6])
    result.add("ways", out)
    return result
