"""Chaos experiments: fault injection against the hardened controller.

These run the :mod:`repro.faults` layer over a mixed tenant stage:

* ``chaos_guarantee`` — a seeded fault plan covering every fault kind
  (well above 5% of intervals faulted) against the hardened controller,
  reporting guarantee retention, recovery actions and invariant verdicts.
* ``chaos_hardening_ablation`` — the same scenario with hardening on vs.
  off, showing what the robustness layer buys (the unhardened controller
  typically dies on the first injected read error).

Both derive every seed from the experiment seed, so the same seed yields
a byte-identical report.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.harness.results import BarGroup, ExperimentResult, TableResult

__all__ = ["run_chaos_guarantee", "run_chaos_hardening_ablation"]


def _chaos_scenario(seed: int, hardened: bool = True) -> Dict[str, Any]:
    """A three-tenant stage with faults on every path the plan can reach.

    The plan keeps read-error/l3ca budgets at 1 (inside the controller's
    default retry budget of 2) so every injected failure is recoverable;
    the restart of ``spin`` overlaps the ``assoc_drop`` window so dropped
    association writes actually occur and must be caught by readback.
    """
    from repro.engine.runner import derive_seed

    machine_seed = derive_seed(seed, "chaos/machine")
    plan_seed = derive_seed(seed, "chaos/plan")
    return {
        "machine": {"socket": "xeon_e5", "seed": machine_seed},
        "manager": {
            "type": "dcat",
            "config": {"hardened": hardened},
        },
        "duration_s": 60,
        "vms": [
            {
                "name": "redis",
                "baseline_ways": 4,
                "workload": {"type": "redis"},
            },
            {
                "name": "noisy",
                "baseline_ways": 4,
                "workload": {"type": "mload", "wss_mb": 60},
            },
            {
                "name": "spin",
                "baseline_ways": 4,
                "workload": {"type": "lookbusy"},
            },
        ],
        "faults": {
            "seed": plan_seed,
            "rules": [
                {
                    "kind": "counter_read_error",
                    "target": "redis",
                    "probability": 0.1,
                },
                {"kind": "counter_noise", "magnitude": 3.0, "probability": 0.08},
                {
                    "kind": "sample_saturated",
                    "target": "noisy",
                    "probability": 0.05,
                },
                {"kind": "sample_zeroed", "target": "spin", "probability": 0.05},
                {
                    "kind": "workload_crash",
                    "target": "redis",
                    "start_interval": 30,
                    "end_interval": 33,
                },
                {
                    "kind": "workload_hang",
                    "target": "noisy",
                    "start_interval": 40,
                    "end_interval": 42,
                },
                {"kind": "l3ca_set_fail", "probability": 0.08},
                {
                    "kind": "assoc_drop",
                    "probability": 1.0,
                    "start_interval": 19,
                    "end_interval": 25,
                },
            ],
        },
        "restarts": [
            {"vm": "spin", "detach_interval": 20, "attach_interval": 24}
        ],
    }


def _report_table(report: Any) -> TableResult:
    table = TableResult(headers=["metric", "value"])
    table.add_row("intervals", report.intervals)
    table.add_row("faulted_intervals", report.faulted_intervals)
    table.add_row("fault_fraction", report.fault_fraction)
    table.add_row("invariant_violations", report.invariant_violations)
    table.add_row("guarantee_retention", report.guarantee_retention)
    table.add_row("recovery_latency_mean", report.recovery_latency_mean)
    table.add_row("recovery_latency_max", report.recovery_latency_max)
    table.add_row("crashed", report.crashed or "-")
    return table


def run_chaos_guarantee(seed: int = 1234, **_: Any) -> ExperimentResult:
    """Seeded faults on every path; the hardened controller must hold."""
    # Imported lazily at run time to avoid a package cycle.
    from repro.faults.chaos import run_chaos

    report = run_chaos(_chaos_scenario(seed, hardened=True))
    out = ExperimentResult(
        experiment_id="chaos_guarantee",
        title="Chaos: guarantee retention under seeded fault injection",
    )
    out.add("report", _report_table(report))
    out.add(
        "faults_by_kind",
        BarGroup(
            name="applied faults",
            bars={k: float(v) for k, v in report.faults_by_kind.items()},
        ),
    )
    out.add(
        "recoveries",
        BarGroup(
            name="recovery actions",
            bars={
                k: float(v) for k, v in report.recoveries_by_action.items()
            },
        ),
    )
    verdict = "PASS" if report.passed else "FAIL"
    out.note(
        f"{verdict}: {report.faulted_intervals}/{report.intervals} intervals "
        f"faulted ({report.fault_fraction:.1%}), "
        f"{report.invariant_violations} invariant violation(s), "
        f"guarantee retention {report.guarantee_retention:.4f}"
    )
    return out


def run_chaos_hardening_ablation(
    seed: int = 1234, **_: Any
) -> ExperimentResult:
    """The same fault plan with the robustness layer on vs. off."""
    from repro.faults.chaos import run_chaos

    out = ExperimentResult(
        experiment_id="chaos_hardening_ablation",
        title="Chaos: hardened vs. unhardened controller on one fault plan",
    )
    comparison = TableResult(
        headers=[
            "controller",
            "intervals",
            "faulted",
            "violations",
            "retention",
            "crashed",
        ]
    )
    for hardened in (True, False):
        report = run_chaos(_chaos_scenario(seed, hardened=hardened))
        comparison.add_row(
            "hardened" if hardened else "unhardened",
            report.intervals,
            report.faulted_intervals,
            report.invariant_violations,
            report.guarantee_retention,
            report.crashed or "-",
        )
    out.add("ablation", comparison)
    out.note(
        "the unhardened controller has no retry path, so the first injected "
        "counter read error terminates its control loop"
    )
    return out
