"""Ablation studies for dCat's design choices (DESIGN.md §5).

Not figures from the paper — these quantify the design decisions the paper
asserts without measurement:

* performance-table reuse (how much faster a re-encountered phase converges);
* Unknown-before-Receiver grant priority (how fast streaming is unmasked);
* the allocation policy (total normalized IPC, fairness vs max-performance);
* the control interval (time-to-converge vs reallocation churn);
* the phase-change threshold (false positives under noise vs detection).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import DCatConfig
from repro.core.states import WorkloadState
from repro.harness.results import ExperimentResult, TableResult
from repro.harness.scenarios import build_stage, run_scenario
from repro.mem.address import MB
from repro.platform.managers import DCatManager
from repro.platform.sim import SimulationResult
from repro.workloads.base import PhasedWorkload, idle_phase
from repro.workloads.mload import MloadWorkload
from repro.workloads.mlr import MlrWorkload, mlr_phase

__all__ = [
    "run_ablation_perftable",
    "run_ablation_priority",
    "run_ablation_policy",
    "run_ablation_interval",
    "run_ablation_phase_threshold",
]


def _time_to_ways(result: SimulationResult, vm: str, ways: float, t0: float = 0.0) -> Optional[float]:
    """First time the VM's allocation reaches ``ways`` after ``t0``."""
    for rec in result.timeline(vm):
        if rec.time_s >= t0 and rec.ways >= ways:
            return rec.time_s
    return None


def run_ablation_perftable(seed: int = 1234) -> ExperimentResult:
    """Time for a restarted phase to regain its allocation, table on/off."""
    result = ExperimentResult(
        "ablation_perftable", "Performance-table reuse: restart convergence time"
    )

    def make_workload():
        return PhasedWorkload(
            name="target",
            phases=[
                idle_phase(duration_s=2.0, name="idle-before"),
                mlr_phase(8 * MB, duration_s=12.0),
                idle_phase(duration_s=5.0, name="idle-between"),
                mlr_phase(8 * MB, duration_s=12.0),
                idle_phase(name="idle-after"),
            ],
        )

    def factory(machine):
        return build_stage(machine, [make_workload()], baseline_ways=3, n_lookbusy=5)

    table = TableResult(headers=["table reuse", "restart-to-converged (s)"])
    for label, enabled in (("on", True), ("off", False)):
        res = run_scenario(
            factory,
            DCatManager(config=DCatConfig(use_performance_table=enabled)),
            duration_s=34.0,
            seed=seed,
        )
        # The first run converges before t=16; the restart happens at ~19 s.
        converged = max(r.ways for r in res.timeline("target") if r.time_s < 16.0)
        t = _time_to_ways(res, "target", converged, t0=19.0)
        table.add_row(label, t if t is not None else float("nan"))
    result.add("convergence", table)
    return result


def run_ablation_priority(seed: int = 1234) -> ExperimentResult:
    """Unknown-before-Receiver priority: how fast streaming is unmasked."""
    result = ExperimentResult(
        "ablation_priority", "Grant priority and streaming-detection delay"
    )

    def factory(machine):
        return build_stage(
            machine,
            [
                MlrWorkload(8 * MB, start_delay_s=2.0, name="mlr-8mb"),
                MloadWorkload(60 * MB, start_delay_s=2.0, name="mload-60mb"),
            ],
            baseline_ways=3,
            n_lookbusy=5,
        )

    table = TableResult(
        headers=["unknown priority", "streaming detected at (s)", "mlr final ways"]
    )
    for label, enabled in (("on", True), ("off", False)):
        res = run_scenario(
            factory,
            DCatManager(config=DCatConfig(unknown_priority=enabled)),
            duration_s=30.0,
            seed=seed,
        )
        detected = None
        for rec in res.timeline("mload-60mb"):
            if rec.state is WorkloadState.STREAMING:
                detected = rec.time_s
                break
        table.add_row(
            label,
            detected if detected is not None else float("nan"),
            res.steady_mean("mlr-8mb", "ways", 5),
        )
    result.add("detection", table)
    return result


def run_ablation_policy(
    seed: int = 1234, duration_s: float = 40.0
) -> ExperimentResult:
    """Total normalized IPC under every registered allocation strategy."""
    from repro.core.policies import strategy_names
    from repro.harness.experiments.timelines import baseline_normalized_ipc

    result = ExperimentResult(
        "ablation_policy",
        "Sum of normalized IPCs across allocation strategies",
    )

    def factory(machine):
        return build_stage(
            machine,
            [
                MlrWorkload(8 * MB, start_delay_s=2.0, name="mlr-8mb"),
                MlrWorkload(12 * MB, start_delay_s=2.0, name="mlr-12mb"),
            ],
            baseline_ways=3,
            n_lookbusy=6,
        )

    table = TableResult(headers=["policy", "sum steady norm ipc"])
    for policy in strategy_names():
        res = run_scenario(
            factory,
            DCatManager(config=DCatConfig(policy=policy)),
            duration_s=duration_s,
            seed=seed,
        )
        total = 0.0
        for vm in ("mlr-8mb", "mlr-12mb"):
            norm = baseline_normalized_ipc(res, vm, baseline_ways=3)
            total += sum(norm.y[-5:]) / 5
        table.add_row(policy, total)
    result.add("totals", table)
    return result


def run_ablation_interval(seed: int = 1234) -> ExperimentResult:
    """Control-interval sweep: convergence time and reallocation churn."""
    result = ExperimentResult(
        "ablation_interval", "Interval length vs convergence and churn"
    )
    table = TableResult(
        headers=["interval_s", "converged at (s)", "way changes (count)"]
    )
    for interval in (0.25, 0.5, 1.0, 2.0, 4.0):

        def factory(machine):
            return build_stage(
                machine,
                [MlrWorkload(8 * MB, start_delay_s=2.0, name="target")],
                baseline_ways=3,
                n_lookbusy=5,
            )

        res = run_scenario(
            factory,
            DCatManager(config=DCatConfig(interval_s=interval)),
            duration_s=40.0,
            seed=seed,
            interval_s=interval,
        )
        ways = res.series("target", "ways")
        final = res.steady_mean("target", "ways", 3)
        t = _time_to_ways(res, "target", final)
        churn = sum(1 for a, b in zip(ways, ways[1:]) if a != b)
        table.add_row(interval, t if t is not None else float("nan"), churn)
    result.add("sweep", table)
    result.note("Shorter intervals converge sooner but reallocate more often.")
    return result


def run_ablation_phase_threshold(seed: int = 1234) -> ExperimentResult:
    """Phase-change threshold: spurious reclaims vs real-change detection."""
    result = ExperimentResult(
        "ablation_phase_threshold", "Reclaim counts vs phase_change_thr"
    )

    def make_two_phase():
        # Two genuinely different phases (refs/instr 0.25 -> 0.35).
        second = mlr_phase(8 * MB, duration_s=10.0, name="mlr-8mb-hot")
        from dataclasses import replace as _replace

        second = _replace(
            second,
            behavior=_replace(second.behavior, refs_per_instr=0.35),
        )
        return PhasedWorkload(
            name="target",
            phases=[
                idle_phase(duration_s=2.0, name="idle-before"),
                mlr_phase(8 * MB, duration_s=12.0),
                second,
                idle_phase(name="idle-after"),
            ],
        )

    table = TableResult(headers=["threshold", "phase changes seen"])
    for thr in (0.02, 0.05, 0.10, 0.30, 0.60):

        def factory(machine):
            return build_stage(machine, [make_two_phase()], baseline_ways=3, n_lookbusy=5)

        manager = DCatManager(config=DCatConfig(phase_change_thr=thr))
        res = run_scenario(factory, manager, duration_s=28.0, seed=seed)
        changes = sum(
            1
            for step in manager.controller.history
            if step.statuses["target"].phase_changed
        )
        table.add_row(thr, changes)
    result.add("sweep", table)
    result.note(
        "Too-small thresholds fire on noise; too-large ones miss the real "
        "0.25 -> 0.35 refs/instr transition. 10% sits in the stable middle."
    )
    return result
