"""Parameter-sensitivity experiments: paper Figures 8 and 9.

Both sweep one dCat threshold with the canonical probe — MLR-8MB in a VM
with a 2-way baseline, surrounded by lookbusy donors — and report the
converged allocation (and, for the miss threshold, the resulting latency).
"""

from __future__ import annotations

from repro.core.config import DCatConfig
from repro.harness.results import ExperimentResult, Series
from repro.harness.scenarios import build_stage, run_scenario
from repro.mem.address import MB
from repro.platform.managers import DCatManager
from repro.workloads.mlr import MlrWorkload

__all__ = ["run_fig8", "run_fig9"]

_DURATION_S = 30.0


def _converged_probe(config: DCatConfig, seed: int):
    """Run the probe scenario; returns (final ways, steady latency)."""

    def factory(machine):
        return build_stage(
            machine,
            [MlrWorkload(8 * MB, start_delay_s=1.0, name="target")],
            baseline_ways=2,
            n_lookbusy=5,
        )

    result = run_scenario(
        factory, DCatManager(config=config), duration_s=_DURATION_S, seed=seed
    )
    ways = result.steady_mean("target", "ways", tail_intervals=5)
    latency = result.steady_mean(
        "target", "avg_mem_latency_cycles", tail_intervals=5
    )
    return ways, latency


def run_fig8(seed: int = 1234) -> ExperimentResult:
    """Impact of the cache-miss threshold (paper Fig. 8).

    Smaller ``llc_miss_rate_thr`` demands a lower residual miss rate, so the
    probe converges at more ways and lower latency; larger values leave the
    pool fuller but the workload slower.
    """
    result = ExperimentResult(
        "fig8", "Converged allocation and latency vs llc_miss_rate_thr"
    )
    thresholds = [0.01, 0.02, 0.03, 0.05, 0.10, 0.20]
    ways_series = []
    latency_series = []
    for thr in thresholds:
        ways, latency = _converged_probe(
            DCatConfig(llc_miss_rate_thr=thr), seed=seed
        )
        ways_series.append(ways)
        latency_series.append(latency)
    result.add("ways", Series("converged ways", thresholds, ways_series))
    result.add(
        "latency", Series("steady latency (cycles)", thresholds, latency_series)
    )
    result.note("Paper picks 3% for the remaining experiments.")
    return result


def run_fig9(seed: int = 1234) -> ExperimentResult:
    """Impact of the IPC-improvement threshold (paper Fig. 9).

    A small ``ipc_imp_thr`` keeps the probe a Receiver longer (more ways); a
    large one stops growth after the first grant fails to clear the bar.
    """
    result = ExperimentResult("fig9", "Converged allocation vs ipc_imp_thr")
    thresholds = [0.03, 0.05, 0.10, 0.20, 0.30, 0.40]
    ways_series = []
    for thr in thresholds:
        # Keep the miss threshold permissive so ipc_imp_thr is the binding
        # stop condition, as in the paper's sweep.
        config = DCatConfig(ipc_imp_thr=thr, llc_miss_rate_thr=0.005)
        ways, _ = _converged_probe(config, seed=seed)
        ways_series.append(ways)
    result.add("ways", Series("converged ways", thresholds, ways_series))
    result.note("Paper reports 9 ways at 3% and picks 5% as the default.")
    return result
