"""Micro experiments: paper Figures 1, 2, 3 and 5.

These establish the problem dCat solves:

* **Fig. 1** — cache interference: an MLR victim with and without MLOAD
  noisy neighbors, with and without a static CAT partition.  CAT isolates
  only while the reserved partition holds the working set.
* **Fig. 2** — a CAT allocation sized to the working set still underperforms
  the full cache with 4 KB pages (conflict misses from page scatter); huge
  pages fix the Xeon-D case but not a >2 MB working set on Xeon-E5.
* **Fig. 3** — the underlying lines-per-set histograms.
* **Fig. 5** — memory accesses per instruction are invariant to the cache
  allocation (while IPC is not), validating the phase-change signal.
"""

from __future__ import annotations

from typing import List

from repro.cpu.coremodel import CoreTimingModel
from repro.harness.results import BarGroup, ExperimentResult, Series, TableResult
from repro.harness.scenarios import build_stage, run_scenario
from repro.mem.address import MB, CacheGeometry
from repro.mem.paging import PAGE_2M, PAGE_4K
from repro.cache.conflict import analyze_buffer_scatter
from repro.platform.managers import SharedCacheManager, StaticCatManager
from repro.workloads.base import l1_miss_ratio_for
from repro.cache.analytical import AccessPattern
from repro.workloads.mlr import MlrWorkload

__all__ = ["run_fig1", "run_fig2", "run_fig3", "run_fig5"]

_SETTLE_S = 6.0
_DURATION_S = 16.0


def _mlr_latency(wss_bytes: int, with_noisy: bool, static_ways: int | None, seed: int) -> float:
    """Steady-state MLR access latency under one Fig. 1 scenario."""

    def factory(machine):
        return build_stage(
            machine,
            [MlrWorkload(wss_bytes, name="mlr")],
            baseline_ways=static_ways if static_ways is not None else 6,
            n_mload=2 if with_noisy else 0,
        )

    if static_ways is not None:
        # Static CAT: the target keeps `static_ways`; neighbors split the rest.
        def factory(machine):  # noqa: F811 - deliberate shadowing per mode
            vms = build_stage(
                machine,
                [MlrWorkload(wss_bytes, name="mlr")],
                baseline_ways=static_ways,
                n_mload=2 if with_noisy else 0,
            )
            rest = machine.num_ways - static_ways
            for vm in vms[1:]:
                vm.baseline_ways = rest // max(1, len(vms) - 1)
            return vms

        manager = StaticCatManager()
    else:
        manager = SharedCacheManager()
    result = run_scenario(factory, manager, duration_s=_DURATION_S, seed=seed)
    return result.mean("mlr", "avg_mem_latency_cycles", t0=_SETTLE_S)


def run_fig1(seed: int = 1234) -> ExperimentResult:
    """Impact of cache interference for MLR (paper Fig. 1).

    Scenarios per working set: shared cache without noisy neighbors, shared
    cache with 2x MLOAD-60MB, and CAT with 6 dedicated ways (13.5 MB) with
    the same neighbors.
    """
    result = ExperimentResult(
        "fig1", "MLR latency under interference, 6 MB and 16 MB working sets"
    )
    for wss_mb in (6, 16):
        wss = wss_mb * MB
        group = BarGroup(name=f"mlr-{wss_mb}mb latency (cycles, lower is better)")
        group.bars["shared w/o noisy"] = _mlr_latency(wss, False, None, seed)
        group.bars["shared w/ noisy"] = _mlr_latency(wss, True, None, seed)
        group.bars["cat-6way w/ noisy"] = _mlr_latency(wss, True, 6, seed)
        result.add(f"mlr_{wss_mb}mb", group)
    result.note(
        "CAT isolates the 6 MB working set (cat ~ shared-without-noisy) but "
        "fails the 16 MB one: 13.5 MB of dedicated cache cannot hold it."
    )
    return result


_FIG2_CONFIGS = (
    ("xeon_d", CacheGeometry.xeon_d(), 2 * MB),
    ("xeon_e5", CacheGeometry.xeon_e5(), int(4.5 * MB)),
)


def _latency_from_hit(hit_rate: float, wss_bytes: int) -> float:
    """Average access latency implied by an LLC hit rate, MLR behaviour."""
    timing = CoreTimingModel(noise_sigma=0.0)
    l1_miss = l1_miss_ratio_for(AccessPattern.RANDOM, wss_bytes)
    return timing.l1_latency + l1_miss * (
        hit_rate * timing.llc_latency
        + (1.0 - hit_rate) * timing.dram.idle_latency_cycles
    )


def run_fig2(seed: int = 1) -> ExperimentResult:
    """Impact of CAT-limited cache size (paper Fig. 2).

    Working sets sized to exactly 2 ways; still slower than the full cache
    with 4 KB pages because of conflict misses.
    """
    result = ExperimentResult(
        "fig2", "Latency at a 2-way CAT allocation vs full cache, by page size"
    )
    for name, geo, wss in _FIG2_CONFIGS:
        group = BarGroup(name=f"{name} wss={wss / MB:.1f}MB latency (cycles)")
        for label, page in (("4k", PAGE_4K), ("2m-hugepage", PAGE_2M)):
            scatter = analyze_buffer_scatter(
                wss, geo, allocated_ways=2, page_size=page, seed=seed
            )
            group.bars[f"cat-2way {label}"] = _latency_from_hit(
                scatter.irm_hit_rate, wss
            )
        full = analyze_buffer_scatter(
            wss, geo, allocated_ways=geo.num_ways, page_size=PAGE_4K, seed=seed
        )
        group.bars["full cache 4k"] = _latency_from_hit(full.irm_hit_rate, wss)
        result.add(name, group)
    result.note(
        "Huge pages recover full-cache latency on Xeon-D (one 2 MB page "
        "covers every set exactly) but not for the 4.5 MB set on Xeon-E5."
    )
    return result


def run_fig3(seed: int = 1) -> ExperimentResult:
    """Cache-set conflict histograms (paper Fig. 3)."""
    result = ExperimentResult(
        "fig3", "Lines mapped per cache set for 2-way-sized working sets"
    )
    table = TableResult(
        headers=["machine", "page", "frac sets >=3 lines", "irm hit rate @2 ways"]
    )
    for name, geo, wss in _FIG2_CONFIGS:
        for label, page in (("4k", PAGE_4K), ("2m", PAGE_2M)):
            scatter = analyze_buffer_scatter(
                wss, geo, allocated_ways=2, page_size=page, seed=seed
            )
            frac3 = sum(v for k, v in scatter.histogram.items() if k >= 3)
            table.add_row(name, label, frac3, scatter.irm_hit_rate)
            hist = TableResult(headers=["lines per set", "fraction of sets"])
            for k in sorted(scatter.histogram):
                hist.add_row(k, scatter.histogram[k])
            result.add(f"hist_{name}_{label}", hist)
    result.add("summary", table)
    result.note(
        "Paper reports ~32.5% (Xeon-D 4K), ~29% (Xeon-E5 4K), 0% (Xeon-D "
        "hugepage) and ~11.2% (Xeon-E5 hugepage) of sets with 3+ lines."
    )
    return result


def run_fig5(seed: int = 1234) -> ExperimentResult:
    """Phase-signal invariance (paper Fig. 5).

    Measured memory accesses per instruction must not move with the cache
    allocation, while IPC does.
    """
    from repro.workloads.mload import MloadWorkload

    result = ExperimentResult(
        "fig5", "Memory accesses per instruction vs allocated ways"
    )
    ways_axis = list(range(1, 9))
    cases = [
        ("mlr-4mb", lambda: MlrWorkload(4 * MB, name="target")),
        ("mlr-8mb", lambda: MlrWorkload(8 * MB, name="target")),
        ("mload-60mb", lambda: MloadWorkload(60 * MB, name="target")),
    ]
    for label, make in cases:
        refs: List[float] = []
        ipcs: List[float] = []
        for ways in ways_axis:

            def factory(machine, make=make, ways=ways):
                vms = build_stage(machine, [make()], baseline_ways=ways)
                return vms

            res = run_scenario(
                factory, StaticCatManager(), duration_s=8.0, seed=seed
            )
            refs.append(res.mean("target", "mem_refs_per_instr", t0=2.0))
            ipcs.append(res.mean("target", "ipc", t0=2.0))
        result.add(
            f"{label}_refs_per_instr", Series(label, [float(w) for w in ways_axis], refs)
        )
        result.add(f"{label}_ipc", Series(f"{label}-ipc", [float(w) for w in ways_axis], ipcs))
    result.note("refs/instr flat across ways; IPC rises for MLR, flat for MLOAD.")
    return result
