"""Cloud-application experiments: paper Tables 4 (Redis), 5 (PostgreSQL)
and 6 (Elasticsearch).

Identical staging for all three (matching the paper's setup): the
application VM plus two MLOAD-60MB noisy neighbors and two lookbusy polite
neighbors, five VMs with 4-way baselines, measured at the client under
shared cache / static CAT / dCat.

Paper headlines: Redis +57.6% throughput over shared and +26.6% over static;
PostgreSQL ~5.7% over shared and 10.7% lower latency than static;
Elasticsearch ~10% average and 11.6% p99 latency improvement over both.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.harness.results import ExperimentResult, TableResult
from repro.harness.scenarios import build_stage, manager_factories, run_scenario
from repro.platform.sim import SimulationResult
from repro.workloads.apps import AppWorkload
from repro.workloads.database import PostgresWorkload
from repro.workloads.kvstore import RedisWorkload
from repro.workloads.search import ElasticsearchWorkload

__all__ = [
    "run_tab4",
    "run_tab5",
    "run_tab5_multi",
    "run_tab6",
    "run_app_comparison",
]

_BASELINE_WAYS = 4
_DURATION_S = 40.0
_TAIL = 10


def _steady_app(result: SimulationResult, vm: str):
    """Steady-state client metrics averaged over the run's tail."""
    records = [r for r in result.timeline(vm)[-_TAIL:] if r.app is not None]
    if not records:
        raise RuntimeError(f"no app metrics recorded for {vm!r}")
    n = len(records)
    return {
        "throughput": sum(r.app.throughput_ops for r in records) / n,
        "avg_latency": sum(r.app.avg_latency_s for r in records) / n,
        "p99_latency": sum(r.app.p99_latency_s for r in records) / n,
    }


def run_app_comparison(
    make_app: Callable[[], AppWorkload], seed: int = 1234
) -> Dict[str, Dict[str, float]]:
    """Run one application under the three regimes; returns steady metrics."""
    out: Dict[str, Dict[str, float]] = {}
    for label, factory in manager_factories().items():
        app = make_app()

        def vms_factory(machine, app=app):
            return build_stage(
                machine,
                [app],
                baseline_ways=_BASELINE_WAYS,
                n_mload=2,
                n_lookbusy=2,
            )

        result = run_scenario(
            vms_factory, factory(), duration_s=_DURATION_S, seed=seed
        )
        out[label] = _steady_app(result, app.name)
    return out


def _app_table(metrics: Dict[str, Dict[str, float]]) -> TableResult:
    table = TableResult(
        headers=[
            "manager",
            "throughput_ops",
            "avg_latency_ms",
            "p99_latency_ms",
            "tput vs shared",
        ]
    )
    shared_tput = metrics["shared"]["throughput"]
    for label in ("shared", "static", "dcat"):
        m = metrics[label]
        table.add_row(
            label,
            m["throughput"],
            m["avg_latency"] * 1e3,
            m["p99_latency"] * 1e3,
            m["throughput"] / shared_tput,
        )
    return table


def run_tab4(seed: int = 1234) -> ExperimentResult:
    """Redis under memtier (paper Table 4)."""
    result = ExperimentResult("tab4", "Redis GET throughput and latency")
    metrics = run_app_comparison(lambda: RedisWorkload(start_delay_s=1.0), seed=seed)
    result.add("redis", _app_table(metrics))
    result.note("Paper: dCat +57.6% over shared, +26.6% over static partition.")
    return result


def run_tab5(seed: int = 1234) -> ExperimentResult:
    """PostgreSQL under pgbench select-only (paper Table 5)."""
    result = ExperimentResult("tab5", "PostgreSQL TPS and per-select latency")
    metrics = run_app_comparison(
        lambda: PostgresWorkload(start_delay_s=1.0), seed=seed
    )
    result.add("postgres", _app_table(metrics))
    result.note(
        "Paper: dCat ~5.7% better than shared, 10.7% lower latency than static."
    )
    return result


def run_tab5_multi(seed: int = 1234) -> ExperimentResult:
    """Three PostgreSQL instances in three VMs (paper §5.2's variant).

    The paper: "we also tried the multiple database instances scenario in
    which 3 PostgreSQL instances run in 3 separate VMs (the adversary
    workloads are still MLOAD-60MB and lookbusy), we observed the similar
    improvement with dCat."
    """
    result = ExperimentResult(
        "tab5_multi", "Three PostgreSQL VMs vs the same noisy neighbors"
    )
    names = [f"postgres-{i}" for i in range(3)]
    per_manager: Dict[str, Dict[str, Dict[str, float]]] = {}
    for label, factory in manager_factories().items():
        def vms_factory(machine, label=label):
            apps = [
                PostgresWorkload(start_delay_s=1.0, name=name) for name in names
            ]
            return build_stage(
                machine,
                apps,
                baseline_ways=3,
                n_mload=2,
                n_lookbusy=1,
            )

        res = run_scenario(
            vms_factory, factory(), duration_s=_DURATION_S, seed=seed
        )
        per_manager[label] = {name: _steady_app(res, name) for name in names}

    table = TableResult(
        headers=["manager", "instance", "throughput_ops", "avg_latency_ms"]
    )
    for label in ("shared", "static", "dcat"):
        for name in names:
            m = per_manager[label][name]
            table.add_row(label, name, m["throughput"], m["avg_latency"] * 1e3)
    result.add("instances", table)

    mean_tput = {
        label: sum(per_manager[label][n]["throughput"] for n in names) / 3
        for label in per_manager
    }
    summary = TableResult(headers=["manager", "mean throughput", "vs shared"])
    for label in ("shared", "static", "dcat"):
        summary.add_row(
            label, mean_tput[label], mean_tput[label] / mean_tput["shared"]
        )
    result.add("summary", summary)
    result.note("Paper: improvement similar to the single-instance Table 5.")
    return result


def run_tab6(seed: int = 1234) -> ExperimentResult:
    """Elasticsearch under YCSB workload C (paper Table 6)."""
    result = ExperimentResult("tab6", "Elasticsearch YCSB-C avg and p99 latency")
    metrics = run_app_comparison(
        lambda: ElasticsearchWorkload(start_delay_s=1.0), seed=seed
    )
    result.add("elasticsearch", _app_table(metrics))
    result.note(
        "Paper: dCat improves avg latency ~10% and p99 ~11.6% over both "
        "static partitioning and shared cache (which tie)."
    )
    return result
