"""Experiment registry: one entry per paper figure/table plus ablations."""

from __future__ import annotations

from typing import Callable, Dict

from repro.harness.experiments.ablations import (
    run_ablation_interval,
    run_ablation_perftable,
    run_ablation_phase_threshold,
    run_ablation_policy,
    run_ablation_priority,
)
from repro.harness.experiments.apps import (
    run_tab4,
    run_tab5,
    run_tab5_multi,
    run_tab6,
)
from repro.harness.experiments.chaos import (
    run_chaos_guarantee,
    run_chaos_hardening_ablation,
)
from repro.harness.experiments.cloud import (
    run_cloud_churn_fleet1k,
    run_cloud_churn_poisson,
    run_cloud_churn_scripted,
)
from repro.harness.experiments.fidelity import run_fidelity_validation
from repro.harness.experiments.micro import run_fig1, run_fig2, run_fig3, run_fig5
from repro.harness.experiments.params import run_fig8, run_fig9
from repro.harness.experiments.spec2006 import run_fig17, run_tab3
from repro.harness.experiments.tables import run_tab1
from repro.harness.experiments.tournament import run_policy_tournament
from repro.harness.experiments.timelines import (
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
)
from repro.harness.results import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "SMOKE_KWARGS",
    "experiment_ids",
    "run_experiment",
    "run_experiment_smoke",
]

Runner = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig5": run_fig5,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "tab1": run_tab1,
    "tab3": run_tab3,
    "tab4": run_tab4,
    "tab5": run_tab5,
    "tab5_multi": run_tab5_multi,
    "tab6": run_tab6,
    "cloud_churn_poisson": run_cloud_churn_poisson,
    "cloud_churn_scripted": run_cloud_churn_scripted,
    "cloud_churn_fleet1k": run_cloud_churn_fleet1k,
    "chaos_guarantee": run_chaos_guarantee,
    "chaos_hardening_ablation": run_chaos_hardening_ablation,
    "fidelity_validation": run_fidelity_validation,
    "policy_tournament": run_policy_tournament,
    "ablation_perftable": run_ablation_perftable,
    "ablation_priority": run_ablation_priority,
    "ablation_policy": run_ablation_policy,
    "ablation_interval": run_ablation_interval,
    "ablation_phase_threshold": run_ablation_phase_threshold,
}


#: Size-shrinking keyword overrides for the few long-running experiments, so
#: a smoke sweep over the whole registry stays fast.  Experiments absent here
#: are already small and run with their defaults.
SMOKE_KWARGS: Dict[str, Dict[str, object]] = {
    "fig17": {"benchmarks": ["mcf"], "instructions": 2_000_000},
    "tab3": {"benchmarks": ["mcf"], "instructions": 2_000_000},
    "fidelity_validation": {"duration_s": 8.0, "accesses_per_interval": 30_000},
    "policy_tournament": {"quick": True},
    "ablation_policy": {"duration_s": 20.0},
    "cloud_churn_fleet1k": {
        "machines": 40,
        "duration_s": 400.0,
        "fleet_jobs": 2,
    },
}


def experiment_ids() -> list:
    """All registered experiment ids, in registration (paper) order."""
    return list(EXPERIMENTS)


def run_experiment_smoke(experiment_id: str, seed: int = 1234) -> ExperimentResult:
    """Run an experiment at its smallest size (the registry smoke sweep)."""
    return run_experiment(
        experiment_id, seed=seed, **SMOKE_KWARGS.get(experiment_id, {})
    )


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id (raises KeyError for unknown ids)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None
    return runner(**kwargs)
