"""Command-line entry point: ``dcat-experiment`` / ``python -m repro.harness``.

Usage::

    dcat-experiment list
    dcat-experiment run fig17 [--seed 1234]
    dcat-experiment run fig10 fig11 --jobs 2
    dcat-experiment run all --jobs 4
    dcat-experiment run fig10 --trace fig10.jsonl
    dcat-experiment scenario my_tenants.json [--vm redis]
    dcat-experiment churn my_churn.json [--metrics churn.prom]
    dcat-experiment chaos examples/chaos.json [--trace chaos.jsonl] [--json]
    dcat-experiment run fig10 --metrics out.prom
    dcat-experiment run fig17 --fidelity mixed
    dcat-experiment bench [--quick] [--out BENCH_controller.json]
    dcat-experiment serve examples/service.json [--port 8787] [--metrics serve.prom]
    dcat-experiment loadtest examples/service.json [--quick] [--out BENCH_service.json]
    dcat-experiment tournament [--quick] [--out tournament.json] [--json]
    dcat-experiment churn my_churn.json --policy lfoc_clustering

``--metrics PATH`` writes a telemetry snapshot of the run — per-stage
timing histograms and controller/cloud gauges — as Prometheus text at
``PATH`` plus a JSON twin at ``PATH.json``, leaving the printed reports
untouched.  ``--fidelity analytical|exact|mixed`` selects the cache
substrate for run/scenario/churn/chaos (see
:mod:`repro.platform.substrate`).  ``--policy NAME`` picks the
allocation strategy (any name from
:func:`repro.core.policies.strategy_names`) for
run/scenario/churn/chaos/serve/loadtest, overriding scenario files.
``bench`` times the hot paths and writes the ``dcat-bench/v1`` payload
that seeds the repo's perf trajectory.  ``tournament`` races every
registered strategy across churn scenarios with faults on/off and
emits a schema-validated Pareto report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.engine.runner import run_experiments
from repro.harness.registry import EXPERIMENTS
from repro.harness.report import render_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcat-experiment",
        description="Reproduce dCat (EuroSys 2018) figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run one or more experiments (or 'all')")
    run.add_argument(
        "experiment_id", nargs="+", help="e.g. fig10, tab4, or 'all'"
    )
    run.add_argument("--seed", type=int, default=1234, help="simulation seed")
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; results are identical for any value",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL event-bus trace (forces a serial run)",
    )
    run.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write Prometheus text + JSON telemetry (forces a serial run)",
    )
    _add_fidelity_flag(run)
    _add_policy_flag(run)
    scenario = sub.add_parser(
        "scenario", help="run a JSON scenario file (see repro.harness.scenario_file)"
    )
    scenario.add_argument("path", help="path to the scenario JSON")
    scenario.add_argument(
        "--vm",
        action="append",
        default=None,
        help="VM(s) to print timelines for (default: all)",
    )
    _add_fidelity_flag(scenario)
    _add_policy_flag(scenario)
    churn = sub.add_parser(
        "churn",
        help="run a JSON churn scenario over a machine fleet (see repro.cloud.scenario)",
    )
    churn.add_argument("path", help="path to the churn-scenario JSON")
    churn.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write Prometheus text + JSON telemetry for the fleet run",
    )
    churn.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL event trace of the fleet run",
    )
    _add_fidelity_flag(churn)
    _add_policy_flag(churn)
    _add_fleet_jobs_flag(churn)
    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection scenario and report guarantee retention "
        "(see repro.faults.chaos); exits 1 if any invariant broke",
    )
    chaos.add_argument("path", help="path to the chaos-scenario JSON")
    chaos.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL event trace including fault/invariant events",
    )
    chaos.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write Prometheus text + JSON telemetry for the chaos run",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of text",
    )
    _add_fidelity_flag(chaos)
    _add_policy_flag(chaos)
    _add_fleet_jobs_flag(chaos)
    bench = sub.add_parser(
        "bench",
        help="time the hot paths and write a dcat-bench/v1 JSON payload",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small batch sizes for smoke runs (same schema and benchmarks)",
    )
    bench.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_controller.json",
        help="where to write the payload (default: %(default)s)",
    )
    serve = sub.add_parser(
        "serve",
        help="run the asyncio controller daemon: tenant lifecycle over HTTP "
        "(see repro.service); stops gracefully on SIGTERM/SIGINT",
    )
    serve.add_argument("path", help="path to the service-config JSON")
    serve.add_argument(
        "--host", default="127.0.0.1", help="listen address (default: %(default)s)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="listen port; 0 picks an ephemeral one (default: %(default)s)",
    )
    serve.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write Prometheus text + JSON telemetry on shutdown",
    )
    serve.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL event trace of everything the fleet did",
    )
    _add_fidelity_flag(serve)
    _add_policy_flag(serve)
    _add_fleet_jobs_flag(serve)
    loadtest = sub.add_parser(
        "loadtest",
        help="boot a daemon, drive open-loop Poisson tenant churn over HTTP, "
        "verify replay determinism + SLOs, and write BENCH_service.json; "
        "exits 1 if any assertion fails",
    )
    loadtest.add_argument("path", help="path to the service-config JSON")
    loadtest.add_argument(
        "--quick",
        action="store_true",
        help="5-second smoke run (same schema and assertions, no request floor)",
    )
    loadtest.add_argument(
        "--rps", type=float, default=None, help="admission arrival rate"
    )
    loadtest.add_argument(
        "--duration", type=float, default=None, help="arrival window seconds"
    )
    loadtest.add_argument("--seed", type=int, default=7, help="request-plan seed")
    loadtest.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_service.json",
        help="where to write the payload (default: %(default)s)",
    )
    _add_fidelity_flag(loadtest)
    _add_policy_flag(loadtest)
    tournament = sub.add_parser(
        "tournament",
        help="race every registered allocation strategy across churn "
        "scenarios with faults on/off; writes a dcat-tournament/v1 "
        "Pareto report",
    )
    tournament.add_argument(
        "--seed", type=int, default=1234, help="simulation seed"
    )
    tournament.add_argument(
        "--quick",
        action="store_true",
        help="3 policies and short scenarios for smoke runs (same schema)",
    )
    tournament.add_argument(
        "--out",
        metavar="PATH",
        default="tournament.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    tournament.add_argument(
        "--json",
        action="store_true",
        help="print the report payload as JSON instead of markdown",
    )
    _add_fleet_jobs_flag(tournament)
    return parser


def _add_fidelity_flag(parser: argparse.ArgumentParser) -> None:
    # Validated manually in main() (not with argparse choices=) so invalid
    # values follow the scenario error contract: stderr message + exit 2.
    parser.add_argument(
        "--fidelity",
        metavar="MODE",
        default=None,
        help="cache substrate: analytical (fast closed forms, the default), "
        "exact (tag-array measurement), or mixed (analytical plus exact "
        "spot checks that emit FidelityDivergence)",
    )


def _check_fidelity(args) -> Optional[str]:
    """Field-contextual validation for --fidelity; returns an error or None."""
    from repro.platform.substrate import FIDELITIES

    fidelity = getattr(args, "fidelity", None)
    if fidelity is not None and fidelity not in FIDELITIES:
        return (
            f"--fidelity: unknown fidelity {fidelity!r}; "
            f"use one of {list(FIDELITIES)}"
        )
    return None


def _add_policy_flag(parser: argparse.ArgumentParser) -> None:
    # Like --fidelity: validated manually in main() rather than with
    # choices=, so unknown names get the field-contextual error + exit 2.
    parser.add_argument(
        "--policy",
        metavar="NAME",
        default=None,
        help="allocation strategy (e.g. max_fairness, max_performance, "
        "lfoc_clustering, phase_hint, reserved_pooled); overrides the "
        "scenario file's policy",
    )


def _add_fleet_jobs_flag(parser: argparse.ArgumentParser) -> None:
    # Like --fidelity/--policy: validated manually in main() so bad values
    # get the field-contextual stderr message + exit 2.
    parser.add_argument(
        "--fleet-jobs",
        metavar="N",
        type=int,
        default=1,
        help="shard the fleet across N worker processes (default 1 = "
        "serial in-process; results are byte-identical either way)",
    )


def _check_fleet_jobs(args) -> Optional[str]:
    """Field-contextual validation for --fleet-jobs; returns error or None."""
    jobs = getattr(args, "fleet_jobs", None)
    if jobs is not None and jobs < 1:
        return f"--fleet-jobs: must be >= 1, got {jobs}"
    return None


def _check_policy(args) -> Optional[str]:
    """Field-contextual validation for --policy; returns an error or None."""
    policy = getattr(args, "policy", None)
    if policy is None:
        return None
    from repro.core.policies import canonical_name

    try:
        canonical_name(policy)
    except ValueError as exc:
        return f"--policy: {exc}"
    return None


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    error = _check_fidelity(args) or _check_policy(args) or _check_fleet_jobs(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    if args.command == "tournament":
        return _run_tournament(args)
    if args.command == "scenario":
        return _run_scenario(args)
    if args.command == "churn":
        return _run_churn(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "loadtest":
        return _run_loadtest(args)
    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    requested = list(args.experiment_id)
    ids = list(EXPERIMENTS) if "all" in requested else requested
    jobs = args.jobs
    if (args.trace is not None or args.metrics is not None) and jobs > 1:
        which = "--trace" if args.trace is not None else "--metrics"
        print(f"{which} requires a serial run; ignoring --jobs", file=sys.stderr)
        jobs = 1
    try:
        results = run_experiments(
            ids,
            jobs=jobs,
            seed=args.seed,
            trace_path=args.trace,
            metrics_path=args.metrics,
            fidelity=args.fidelity,
            policy=args.policy,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot write trace or metrics: {exc}", file=sys.stderr)
        return 2
    for result in results:
        print(render_experiment(result))
        print()
    return 0


def _run_scenario(args) -> int:
    from repro.harness.scenario_file import ScenarioError, run_scenario_file

    try:
        result = run_scenario_file(
            args.path, fidelity=args.fidelity, policy=args.policy
        )
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2
    names = args.vm if args.vm else sorted(result.records)
    for name in names:
        timeline = result.timeline(name)
        if not timeline:
            print(f"(no records for {name!r})", file=sys.stderr)
            continue
        print(f"== {name} ==")
        print(f"{'t':>6} {'phase':<18} {'ways':>5} {'hit':>6} {'ipc':>7} state")
        for rec in timeline:
            state = rec.state.value if rec.state else "-"
            print(
                f"{rec.time_s:6.1f} {rec.phase_name or '-':<18} {rec.ways:5.1f} "
                f"{rec.llc_hit_rate:6.3f} {rec.ipc:7.3f} {state}"
            )
    return 0


def _run_chaos(args) -> int:
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlanError
    from repro.harness.scenario_file import ScenarioError

    if args.fleet_jobs > 1:
        # Chaos verdicts hang off per-machine invariant checkers wired to
        # the report; those live in-process, so chaos runs stay serial.
        print(
            "chaos runs are serial; ignoring --fleet-jobs", file=sys.stderr
        )
    try:
        report = run_chaos(
            args.path,
            trace=args.trace,
            metrics=args.metrics,
            fidelity=args.fidelity,
            policy=args.policy,
        )
    except (ScenarioError, FaultPlanError) as exc:
        print(f"chaos scenario error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot write trace or metrics: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.json else report.render())
    return 0 if report.passed else 1


def _run_bench(args) -> int:
    from repro.obs.bench import run_bench, write_bench

    payload = run_bench(quick=args.quick)
    try:
        write_bench(payload, args.out)
    except OSError as exc:
        print(f"cannot write bench payload: {exc}", file=sys.stderr)
        return 2
    for entry in payload["benchmarks"]:
        print(
            f"{entry['name']:<26} best {entry['best_s'] * 1e6:10.2f} us  "
            f"median {entry['median_s'] * 1e6:10.2f} us  "
            f"({entry['iterations']}x{entry['repeats']})"
        )
    print(f"wrote {args.out}")
    return 0


def _run_serve(args) -> int:
    import asyncio

    from repro.harness.scenario_file import ScenarioError

    try:
        from repro.service.config import load_service_config
        from repro.service.daemon import ControllerDaemon

        config = load_service_config(
            args.path,
            fidelity=args.fidelity,
            policy=args.policy,
            fleet_jobs=args.fleet_jobs,
        )
        daemon = ControllerDaemon(
            config,
            host=args.host,
            port=args.port,
            trace_path=args.trace,
            metrics_path=args.metrics,
        )
    except ScenarioError as exc:
        print(f"service config error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot open trace or metrics sink: {exc}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        await daemon.start()
        print(
            f"serving on http://{daemon.host}:{daemon.port} "
            f"(tick every {daemon.tick_interval_s:g}s; SIGTERM/SIGINT to stop)",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        import signal as _signal

        stop_event = asyncio.Event()
        installed = []
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_event.set)
                installed.append(sig)
            except NotImplementedError:  # pragma: no cover - non-posix loops
                pass
        try:
            await stop_event.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await daemon.stop()

    try:
        asyncio.run(_serve())
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    print(
        f"stopped at t={daemon.handle.fleet.now:g}s after {daemon.handle.ticks} "
        f"tick(s), {daemon.setup.violation_count()} invariant violation(s)"
    )
    return 0


def _run_loadtest(args) -> int:
    from repro.harness.scenario_file import ScenarioError

    try:
        from repro.service.loadgen import run_loadtest

        payload, failures = run_loadtest(
            args.path,
            out=args.out,
            quick=args.quick,
            rps=args.rps,
            duration_s=args.duration,
            seed=args.seed,
            fidelity=args.fidelity,
            policy=args.policy,
        )
    except ScenarioError as exc:
        print(f"service config error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot write bench payload: {exc}", file=sys.stderr)
        return 2
    requests = payload["requests"]
    latency = payload["latency_s"]["admit"]
    print(
        f"requests {requests['total']} "
        f"(admitted {requests['admitted']}, rejected "
        f"{sum(requests['rejected'].values())}, detached {requests['detached']})"
    )
    print(
        f"admit latency p50 {latency['p50_s'] * 1e3:.2f} ms  "
        f"p90 {latency['p90_s'] * 1e3:.2f} ms  "
        f"p99 {latency['p99_s'] * 1e3:.2f} ms"
    )
    print(
        f"invariants {payload['invariants']['violations']} violation(s) over "
        f"{payload['invariants']['intervals_checked']} interval(s); replay "
        f"{'identical' if payload['determinism']['replay_identical'] else 'DIVERGED'}"
    )
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _run_tournament(args) -> int:
    import json

    from repro.harness.experiments.tournament import (
        build_tournament_report,
        render_tournament_markdown,
        validate_tournament_report,
    )

    payload = build_tournament_report(
        seed=args.seed, quick=args.quick, fleet_jobs=args.fleet_jobs
    )
    validate_tournament_report(payload)
    try:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as exc:
        print(f"cannot write tournament report: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_tournament_markdown(payload))
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _run_churn(args) -> int:
    from repro.harness.scenario_file import ScenarioError

    try:
        from repro.cloud.scenario import run_churn_scenario

        result = run_churn_scenario(
            args.path,
            metrics=args.metrics,
            trace=args.trace,
            fidelity=args.fidelity,
            policy=args.policy,
            fleet_jobs=args.fleet_jobs,
        )
    except ScenarioError as exc:
        print(f"churn scenario error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot write metrics: {exc}", file=sys.stderr)
        return 2
    print("== admissions ==")
    print(f"{'t':>6} {'tenant':<16} {'machine':<8} outcome")
    for rec in result.placements:
        print(
            f"{rec.time_s:6.1f} {rec.tenant_id:<16} {rec.machine or '-':<8} "
            f"{rec.reason}"
        )
    print()
    print("== per-tenant SLO ==")
    print(
        f"{'tenant':<16} {'machine':<8} {'active':>6} {'viol':>5} "
        f"{'viol%':>7} {'norm_ipc':>8}"
    )
    for tid in sorted(result.tenants):
        stats = result.tenants[tid]
        print(
            f"{tid:<16} {stats.machine:<8} {stats.active_intervals:6d} "
            f"{stats.violation_intervals:5d} {stats.violation_fraction:7.3f} "
            f"{stats.mean_normalized_ipc:8.3f}"
        )
    print()
    print("== fleet ==")
    for key, value in result.summary.items():
        print(f"{key:<22} {value:.3f}")
    if result.faults:
        print()
        print("== injected faults ==")
        for machine_name in sorted(result.faults):
            kinds = " ".join(
                f"{k}={v}" for k, v in result.faults[machine_name].items()
            )
            print(f"{machine_name:<8} {kinds or '-'}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
