"""Command-line entry point: ``dcat-experiment`` / ``python -m repro.harness``.

Usage::

    dcat-experiment list
    dcat-experiment run fig17 [--seed 1234]
    dcat-experiment run all --jobs 4
    dcat-experiment run fig10 --trace fig10.jsonl
    dcat-experiment scenario my_tenants.json [--vm redis]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.engine.runner import run_experiments
from repro.harness.registry import EXPERIMENTS
from repro.harness.report import render_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcat-experiment",
        description="Reproduce dCat (EuroSys 2018) figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment_id", help="e.g. fig10, tab4, or 'all'")
    run.add_argument("--seed", type=int, default=1234, help="simulation seed")
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; results are identical for any value",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL event-bus trace (forces a serial run)",
    )
    scenario = sub.add_parser(
        "scenario", help="run a JSON scenario file (see repro.harness.scenario_file)"
    )
    scenario.add_argument("path", help="path to the scenario JSON")
    scenario.add_argument(
        "--vm",
        action="append",
        default=None,
        help="VM(s) to print timelines for (default: all)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "scenario":
        return _run_scenario(args)
    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    ids = list(EXPERIMENTS) if args.experiment_id == "all" else [args.experiment_id]
    jobs = args.jobs
    if args.trace is not None and jobs > 1:
        print("--trace requires a serial run; ignoring --jobs", file=sys.stderr)
        jobs = 1
    try:
        results = run_experiments(
            ids, jobs=jobs, seed=args.seed, trace_path=args.trace
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot write trace: {exc}", file=sys.stderr)
        return 2
    for result in results:
        print(render_experiment(result))
        print()
    return 0


def _run_scenario(args) -> int:
    from repro.harness.scenario_file import ScenarioError, run_scenario_file

    try:
        result = run_scenario_file(args.path)
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2
    names = args.vm if args.vm else sorted(result.records)
    for name in names:
        timeline = result.timeline(name)
        if not timeline:
            print(f"(no records for {name!r})", file=sys.stderr)
            continue
        print(f"== {name} ==")
        print(f"{'t':>6} {'phase':<18} {'ways':>5} {'hit':>6} {'ipc':>7} state")
        for rec in timeline:
            state = rec.state.value if rec.state else "-"
            print(
                f"{rec.time_s:6.1f} {rec.phase_name or '-':<18} {rec.ways:5.1f} "
                f"{rec.llc_hit_rate:6.3f} {rec.ipc:7.3f} {state}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
