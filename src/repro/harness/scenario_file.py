"""JSON scenario files: declarative multi-tenant experiments.

A downstream user should not need Python to ask "what would dCat do to *my*
mix?".  A scenario file describes the machine, the tenants and the
management regime; :func:`run_scenario_file` builds and runs it and returns
the standard :class:`~repro.platform.sim.SimulationResult`.

Example::

    {
      "machine": {"socket": "xeon_e5", "seed": 7},
      "manager": {"type": "dcat",
                  "config": {"llc_miss_rate_thr": 0.03,
                             "policy": "max_performance"}},
      "duration_s": 30,
      "vms": [
        {"name": "redis", "baseline_ways": 4, "workload": {"type": "redis"}},
        {"name": "noisy", "baseline_ways": 4,
         "workload": {"type": "mload", "wss_mb": 60}},
        {"name": "spin", "baseline_ways": 4, "workload": {"type": "lookbusy"}}
      ]
    }

Any workload spec may carry a ``declared_phases`` list — a declared
phase schedule (:class:`~repro.core.hints.DeclaredSchedule`) of
``{"start_s": ..., "preferred_ways": ..., "refs_per_instr": ...}``
objects with strictly increasing ``start_s``; ``refs_per_instr`` is the
optional signature the ``phase_hint`` allocation strategy verifies the
declaration against before trusting it (other strategies ignore hints
entirely)::

    "workload": {"type": "postgres",
                 "declared_phases": [
                   {"start_s": 0, "preferred_ways": 3},
                   {"start_s": 20, "preferred_ways": 6,
                    "refs_per_instr": 0.4}]}

Run from the CLI with ``dcat-experiment scenario path/to/file.json``.
The manager config's ``"policy"`` accepts any registered allocation
strategy name (see :mod:`repro.core.policies`); ``--policy`` on the CLI
overrides it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.config import DCatConfig
from repro.core.hints import DeclaredSchedule
from repro.core.policies import normalize_policy
from repro.cpu.socket import SocketSpec
from repro.mem.address import MB
from repro.platform.machine import Machine
from repro.platform.managers import (
    CacheManager,
    DCatManager,
    SharedCacheManager,
    StaticCatManager,
)
from repro.platform.sim import CloudSimulation, SimulationResult
from repro.platform.substrate import FIDELITIES, CacheSubstrate, build_substrate
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.base import Workload
from repro.workloads.database import PostgresWorkload
from repro.workloads.kvstore import RedisWorkload
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mload import MloadWorkload
from repro.workloads.mlr import MlrWorkload
from repro.workloads.search import ElasticsearchWorkload
from repro.workloads.spec import spec_workload

__all__ = [
    "ScenarioError",
    "build_manager",
    "build_workload",
    "load_scenario",
    "parse_fidelity",
    "run_scenario_file",
    "substrate_from_spec",
    "workload_kinds",
]


class ScenarioError(ValueError):
    """A scenario file is malformed; the message names the offending key."""


def _workload_mlr(name: str, spec: Dict[str, Any]) -> Workload:
    return MlrWorkload(
        int(spec.get("wss_mb", 8) * MB),
        start_delay_s=float(spec.get("start_delay_s", 0.0)),
        duration_s=spec.get("duration_s"),
        name=name,
    )


def _workload_mload(name: str, spec: Dict[str, Any]) -> Workload:
    return MloadWorkload(
        int(spec.get("wss_mb", 60) * MB),
        start_delay_s=float(spec.get("start_delay_s", 0.0)),
        duration_s=spec.get("duration_s"),
        name=name,
    )


def _workload_lookbusy(name: str, spec: Dict[str, Any]) -> Workload:
    return LookbusyWorkload(
        utilization=float(spec.get("utilization", 1.0)), name=name
    )


def _workload_spec(name: str, spec: Dict[str, Any]) -> Workload:
    try:
        benchmark = spec["benchmark"]
    except KeyError:
        raise ScenarioError("spec workloads need a 'benchmark' key") from None
    return spec_workload(
        benchmark,
        instructions=spec.get("instructions"),
        start_delay_s=float(spec.get("start_delay_s", 0.0)),
    )


def _workload_redis(name: str, spec: Dict[str, Any]) -> Workload:
    return RedisWorkload(
        records=int(spec.get("records", 1_000_000)),
        start_delay_s=float(spec.get("start_delay_s", 0.0)),
        name=name,
    )


def _workload_postgres(name: str, spec: Dict[str, Any]) -> Workload:
    return PostgresWorkload(
        tuples=int(spec.get("tuples", 10_000_000)),
        start_delay_s=float(spec.get("start_delay_s", 0.0)),
        name=name,
    )


def _workload_elasticsearch(name: str, spec: Dict[str, Any]) -> Workload:
    return ElasticsearchWorkload(
        documents=int(spec.get("documents", 100_000)),
        start_delay_s=float(spec.get("start_delay_s", 0.0)),
        name=name,
    )


_WORKLOADS: Dict[str, Callable[[str, Dict[str, Any]], Workload]] = {
    "mlr": _workload_mlr,
    "mload": _workload_mload,
    "lookbusy": _workload_lookbusy,
    "spec": _workload_spec,
    "redis": _workload_redis,
    "postgres": _workload_postgres,
    "elasticsearch": _workload_elasticsearch,
}

_SOCKETS = {
    "xeon_e5": SocketSpec.xeon_e5_2697v4,
    "xeon_d": SocketSpec.xeon_d,
}


def workload_kinds() -> List[str]:
    """The workload ``type`` values scenario and churn files accept."""
    return sorted(_WORKLOADS)


def build_workload(kind: str, name: str, spec: Dict[str, Any]) -> Workload:
    """Build one workload from its scenario-file ``workload`` spec.

    Shared by plain scenarios and the cloud layer's churn scenarios, so
    both file formats accept exactly the same workload descriptions —
    including the optional ``declared_phases`` schedule consumed by the
    ``phase_hint`` allocation strategy.

    Raises:
        ScenarioError: For an unknown ``kind`` or malformed ``spec``.
    """
    if kind not in _WORKLOADS:
        raise ScenarioError(
            f"unknown workload type {kind!r}; use one of {sorted(_WORKLOADS)}"
        )
    workload = _WORKLOADS[kind](name, spec)
    if "declared_phases" in spec:
        try:
            workload.declared_schedule = DeclaredSchedule.from_spec(
                spec["declared_phases"], ctx="workload.declared_phases"
            )
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
    return workload


def build_manager(
    spec: Dict[str, Any], policy: Optional[str] = None
) -> CacheManager:
    """Build the cache manager from a scenario's ``manager`` spec.

    Args:
        policy: Optional allocation-policy override (``--policy`` or a
            scenario's top-level ``policy``); wins over the manager
            config's own ``policy`` field.  Ignored by the shared/static
            managers, which have no allocation objective.

    Raises:
        ScenarioError: For an unknown manager type, policy, or config.
    """
    kind = spec.get("type", "dcat")
    if kind == "shared":
        return SharedCacheManager()
    if kind == "static":
        return StaticCatManager()
    if kind != "dcat":
        raise ScenarioError(
            f"unknown manager type {kind!r}; use shared/static/dcat"
        )
    config_spec = dict(spec.get("config", {}))
    if policy is not None:
        config_spec["policy"] = policy
    if "policy" in config_spec:
        try:
            config_spec["policy"] = normalize_policy(config_spec["policy"])
        except ValueError as exc:
            raise ScenarioError(f"policy: {exc}") from None
    try:
        config = DCatConfig(**config_spec)
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"bad dcat config: {exc}") from None
    return DCatManager(config=config)


def parse_fidelity(data: Dict[str, Any], ctx: str = "fidelity") -> Dict[str, Any]:
    """Normalize a scenario's fidelity into ``{"mode": ..., **options}``.

    Accepts a plain string (``"fidelity": "mixed"``) or an object with a
    ``mode`` plus substrate options (``{"mode": "mixed", "sample_rate":
    0.5, "tolerance": 0.15}``).  The legacy boolean ``"exact": true`` flag
    maps to ``{"mode": "exact"}``; combining it with ``fidelity`` is an
    error.  Every problem is reported with its field path under ``ctx``.

    Raises:
        ScenarioError: Naming the offending field.
    """
    if "fidelity" not in data:
        mode = "exact" if data.get("exact") else "analytical"
        return {"mode": mode}
    if "exact" in data:
        raise ScenarioError(
            f"{ctx}: cannot combine the legacy 'exact' flag with 'fidelity'; "
            "drop 'exact'"
        )
    raw = data["fidelity"]
    if isinstance(raw, str):
        spec: Dict[str, Any] = {"mode": raw}
    elif isinstance(raw, dict):
        spec = dict(raw)
        if "mode" not in spec:
            raise ScenarioError(
                f"{ctx}.mode: missing required field; use one of {list(FIDELITIES)}"
            )
    else:
        raise ScenarioError(
            f"{ctx}: expected a string or an object, got {type(raw).__name__}"
        )
    mode = spec["mode"]
    if mode not in FIDELITIES:
        raise ScenarioError(
            f"{ctx}.mode: unknown fidelity {mode!r}; use one of {list(FIDELITIES)}"
        )
    try:
        # Validate option names and values eagerly, with field context.
        build_substrate(mode, **{k: v for k, v in spec.items() if k != "mode"})
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"{ctx}: {exc}") from None
    return spec


def substrate_from_spec(spec: Dict[str, Any]) -> CacheSubstrate:
    """Build a fresh substrate from a normalized fidelity spec."""
    return build_substrate(
        spec["mode"], **{k: v for k, v in spec.items() if k != "mode"}
    )


def load_scenario(
    source: Union[str, Path, Dict[str, Any]],
    policy: Optional[str] = None,
):
    """Parse a scenario (dict, JSON string, or file path) into build parts.

    Args:
        policy: Optional allocation-policy override (``--policy``); wins
            over the scenario's manager config.

    Returns:
        ``(machine, vms, manager, duration_s, fidelity_spec)`` — the last
        element is a normalized ``{"mode": ..., **options}`` dict (see
        :func:`parse_fidelity`).

    Raises:
        ScenarioError: On any malformed field, naming it.
    """
    if isinstance(source, dict):
        data = source
    else:
        path = Path(source)
        try:
            is_file = path.exists()
        except OSError:  # e.g. a JSON blob too long to be a filename
            is_file = False
        if is_file:
            data = json.loads(path.read_text())
        else:
            try:
                data = json.loads(str(source))
            except json.JSONDecodeError:
                raise ScenarioError(
                    f"scenario {source!r} is neither a file nor valid JSON"
                ) from None

    machine_spec = data.get("machine", {})
    socket_name = machine_spec.get("socket", "xeon_e5")
    if socket_name not in _SOCKETS:
        raise ScenarioError(
            f"unknown socket {socket_name!r}; use one of {sorted(_SOCKETS)}"
        )
    machine = Machine(
        spec=_SOCKETS[socket_name](),
        seed=int(machine_spec.get("seed", 1234)),
        interval_s=float(machine_spec.get("interval_s", 1.0)),
    )

    vm_specs = data.get("vms")
    if not vm_specs:
        raise ScenarioError("a scenario needs a non-empty 'vms' list")
    vms: List[VirtualMachine] = []
    for i, vm_spec in enumerate(vm_specs):
        workload_spec = vm_spec.get("workload")
        if not workload_spec or "type" not in workload_spec:
            raise ScenarioError(f"vms[{i}] needs a workload with a 'type'")
        kind = workload_spec["type"]
        if kind not in _WORKLOADS:
            raise ScenarioError(
                f"vms[{i}]: unknown workload type {kind!r}; "
                f"use one of {sorted(_WORKLOADS)}"
            )
        name = vm_spec.get("name", f"{kind}-{i}")
        try:
            workload = build_workload(kind, name, dict(workload_spec))
        except ScenarioError as exc:
            raise ScenarioError(f"vms[{i}].{exc}") from None
        vms.append(
            VirtualMachine(
                name=name,
                workload=workload,
                baseline_ways=int(vm_spec.get("baseline_ways", 3)),
            )
        )
    names = [vm.name for vm in vms]
    if len(set(names)) != len(names):
        raise ScenarioError(f"duplicate VM names: {names}")
    pin_vms(vms, machine.spec)

    manager = build_manager(data.get("manager", {}), policy=policy)
    duration = float(data.get("duration_s", 30.0))
    if duration <= 0:
        raise ScenarioError("duration_s must be positive")
    fidelity = parse_fidelity(data)
    return machine, vms, manager, duration, fidelity


def run_scenario_file(
    source: Union[str, Path, Dict[str, Any]],
    fidelity: Optional[str] = None,
    policy: Optional[str] = None,
) -> SimulationResult:
    """Build and run a scenario; returns the simulation result.

    Args:
        source: Scenario dict, JSON string, or file path.
        fidelity: Optional fidelity override (``--fidelity``); wins over
            the scenario file's own ``fidelity`` / ``exact`` fields.
        policy: Optional allocation-policy override (``--policy``); wins
            over the scenario's manager config.
    """
    machine, vms, manager, duration, spec = load_scenario(source, policy=policy)
    if fidelity is not None:
        spec = parse_fidelity({"fidelity": fidelity}, ctx="--fidelity")
    sim = CloudSimulation(
        machine, vms, manager, substrate=substrate_from_spec(spec)
    )
    return sim.run(duration)
