"""Shared scenario builders for the paper's experiments.

Most of the evaluation reuses one stage: the paper's Xeon E5-2697 v4 host
running a *target* VM next to MLOAD-60MB noisy neighbors and lookbusy
polite neighbors, compared under shared cache / static CAT / dCat.  These
helpers build that stage so every experiment module stays a short script.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import DCatConfig
from repro.mem.address import MB
from repro.platform.machine import Machine
from repro.platform.managers import (
    CacheManager,
    DCatManager,
    SharedCacheManager,
    StaticCatManager,
)
from repro.platform.sim import CloudSimulation, SimulationResult
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.base import Workload
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mload import MloadWorkload

__all__ = [
    "MLOAD_NOISY_BYTES",
    "paper_machine",
    "build_stage",
    "run_scenario",
    "run_three_managers",
    "manager_factories",
]

MLOAD_NOISY_BYTES = 60 * MB


def paper_machine(seed: int = 1234, interval_s: float = 1.0) -> Machine:
    """The evaluation host: Xeon E5-2697 v4, 20-way 45 MB LLC."""
    return Machine(seed=seed, interval_s=interval_s)


def build_stage(
    machine: Machine,
    target_workloads: Sequence[Workload],
    baseline_ways: int,
    n_mload: int = 0,
    n_lookbusy: int = 0,
    mload_start_delay_s: float = 0.0,
) -> List[VirtualMachine]:
    """One VM per target workload, plus noisy and polite neighbor VMs.

    All VMs get the same ``baseline_ways`` reservation, matching the paper's
    symmetric-tenant setups.
    """
    vms: List[VirtualMachine] = [
        VirtualMachine(name=w.name, workload=w, baseline_ways=baseline_ways)
        for w in target_workloads
    ]
    for i in range(n_mload):
        vms.append(
            VirtualMachine(
                name=f"mload-noisy-{i}",
                workload=MloadWorkload(
                    MLOAD_NOISY_BYTES,
                    start_delay_s=mload_start_delay_s,
                    name=f"mload-noisy-{i}",
                ),
                baseline_ways=baseline_ways,
            )
        )
    for i in range(n_lookbusy):
        vms.append(
            VirtualMachine(
                name=f"lookbusy-{i}",
                workload=LookbusyWorkload(name=f"lookbusy-{i}"),
                baseline_ways=baseline_ways,
            )
        )
    return pin_vms(vms, machine.spec)


def run_scenario(
    vms_factory: Callable[[Machine], List[VirtualMachine]],
    manager: CacheManager,
    duration_s: Optional[float] = None,
    watch: Optional[Sequence[str]] = None,
    max_duration_s: float = 600.0,
    seed: int = 1234,
    interval_s: float = 1.0,
) -> SimulationResult:
    """Build a fresh machine + VMs, run one manager, return the result.

    Each manager gets its own machine so runs are independent and seeds
    identical (paired comparison, the way the paper reruns the host).
    """
    machine = paper_machine(seed=seed, interval_s=interval_s)
    vms = vms_factory(machine)
    sim = CloudSimulation(machine, vms, manager)
    if watch is not None:
        return sim.run_until_finished(watch, max_duration_s=max_duration_s)
    if duration_s is None:
        raise ValueError("pass duration_s or watch")
    return sim.run(duration_s)


def manager_factories(
    dcat_config: Optional[DCatConfig] = None,
) -> Dict[str, Callable[[], CacheManager]]:
    """The paper's three regimes, by report label."""
    return {
        "shared": SharedCacheManager,
        "static": StaticCatManager,
        "dcat": lambda: DCatManager(config=dcat_config),
    }


def run_three_managers(
    vms_factory: Callable[[Machine], List[VirtualMachine]],
    duration_s: Optional[float] = None,
    watch: Optional[Sequence[str]] = None,
    max_duration_s: float = 600.0,
    seed: int = 1234,
    dcat_config: Optional[DCatConfig] = None,
) -> Dict[str, SimulationResult]:
    """Run the identical stage under shared / static / dCat."""
    results: Dict[str, SimulationResult] = {}
    for label, factory in manager_factories(dcat_config).items():
        results[label] = run_scenario(
            vms_factory,
            factory(),
            duration_s=duration_s,
            watch=watch,
            max_duration_s=max_duration_s,
            seed=seed,
        )
    return results
