"""Memory substrate: address math, paging, and DRAM timing."""

from repro.mem.address import KB, MB, CacheGeometry, is_power_of_two
from repro.mem.dram import DramModel
from repro.mem.paging import PAGE_2M, PAGE_4K, MappedBuffer, PageTable

__all__ = [
    "KB",
    "MB",
    "CacheGeometry",
    "is_power_of_two",
    "DramModel",
    "PAGE_2M",
    "PAGE_4K",
    "MappedBuffer",
    "PageTable",
]
