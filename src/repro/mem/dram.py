"""DRAM latency/bandwidth model.

The core timing model charges a DRAM penalty for every LLC miss.  Real DRAM
latency is load dependent: as bandwidth utilization approaches saturation,
queuing delay grows sharply.  That effect matters for the paper's noisy-
neighbor experiments — two MLOAD-60MB streams drive memory close to
saturation, which is part of why an unprotected MLR suffers so badly — so we
model it with a standard M/M/1-style inflation factor, clamped to keep the
model stable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramModel"]


@dataclass
class DramModel:
    """Loaded-latency model for a socket's memory subsystem.

    Attributes:
        idle_latency_cycles: Unloaded access latency in core cycles
            (~200 cycles at 2.3 GHz is typical for Broadwell).
        peak_lines_per_cycle: Sustainable line transfers per core cycle for
            the whole socket.  At 2.3 GHz with ~60 GB/s per socket this is
            about 0.4 lines/cycle; the default is deliberately round.
        max_inflation: Cap on the queuing inflation factor so extreme
            overload cannot produce unbounded latencies.
    """

    idle_latency_cycles: float = 200.0
    peak_lines_per_cycle: float = 0.4
    max_inflation: float = 4.0

    def utilization(self, miss_lines_per_cycle: float) -> float:
        """Fraction of peak bandwidth consumed by the given miss traffic."""
        if miss_lines_per_cycle < 0:
            raise ValueError("miss traffic cannot be negative")
        return min(miss_lines_per_cycle / self.peak_lines_per_cycle, 1.0)

    def loaded_latency(self, miss_lines_per_cycle: float) -> float:
        """Average DRAM latency (cycles) under the given total miss traffic.

        Uses the classic ``idle / (1 - rho)`` queueing inflation with a cap:
        at rho = 0 the latency is the idle latency; as rho -> 1 it approaches
        ``idle * max_inflation``.
        """
        rho = self.utilization(miss_lines_per_cycle)
        # Solve inflation = 1 / (1 - rho) but clamp: pick rho* so that the
        # inflation never exceeds max_inflation.
        rho_cap = 1.0 - 1.0 / self.max_inflation
        inflation = 1.0 / (1.0 - min(rho, rho_cap))
        return self.idle_latency_cycles * inflation
