"""Virtual-to-physical address translation with 4 KB and 2 MB pages.

The dCat paper's Figures 2 and 3 show that even when a CAT allocation is
large enough to hold a working set, *conflict misses* still occur because a
contiguous virtual buffer is scattered across physical frames, so cache-set
occupancy is uneven.  Huge pages reduce the scatter (a 2 MB frame covers many
consecutive sets exactly once) but do not eliminate it once the working set
spans several huge pages.

This module reproduces that machinery: a :class:`PageTable` assigns physical
frames to virtual pages pseudo-randomly from a large physical address space
(modeling a fragmented, long-running host), and translation is exposed both
per-address and vectorized over numpy arrays so workload generators can map
entire buffers at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.mem.address import KB, MB, is_power_of_two

__all__ = ["PAGE_4K", "PAGE_2M", "PageTable", "MappedBuffer"]

PAGE_4K = 4 * KB
PAGE_2M = 2 * MB


class OutOfPhysicalMemoryError(RuntimeError):
    """Raised when the page table has no free frames left to hand out."""


@dataclass
class MappedBuffer:
    """A virtually contiguous buffer with a completed physical mapping.

    Attributes:
        vbase: Virtual base address (page aligned).
        size: Size in bytes.
        page_size: Page size used for the mapping.
    """

    vbase: int
    size: int
    page_size: int

    @property
    def vend(self) -> int:
        return self.vbase + self.size


class PageTable:
    """Single-address-space page table with pseudo-random frame allocation.

    The table models one tenant's view of memory.  Frames are drawn without
    replacement from a physical space of ``phys_bytes`` using the supplied
    RNG, mimicking the effectively random frame placement a guest sees on a
    fragmented host.  Both 4 KB and 2 MB pages may be mapped in the same
    table (they draw from disjoint frame pools, as a real buddy allocator
    with reserved hugetlb pages would).

    Args:
        page_size: Default page size for :meth:`map_buffer`.
        phys_bytes: Size of the physical address space frames are drawn from.
        rng: numpy random generator; pass a seeded generator for
            reproducibility.  Defaults to a fixed seed.
    """

    def __init__(
        self,
        page_size: int = PAGE_4K,
        phys_bytes: int = 4 * 1024 * MB,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if page_size not in (PAGE_4K, PAGE_2M):
            raise ValueError(f"page_size must be 4 KiB or 2 MiB, got {page_size}")
        if not is_power_of_two(phys_bytes):
            raise ValueError("phys_bytes must be a power of two")
        if phys_bytes < 2 * PAGE_2M:
            raise ValueError("physical space too small to be useful")
        self.page_size = page_size
        self.phys_bytes = phys_bytes
        self._rng = rng if rng is not None else np.random.default_rng(0x0DCA7)
        # Virtual page number -> (physical frame number, page size).
        self._mappings: Dict[int, int] = {}
        self._huge_mappings: Dict[int, int] = {}
        self._used_4k_frames: set = set()
        self._used_2m_frames: set = set()
        self._next_vbase = 0x10000 * PAGE_2M  # arbitrary non-zero start

    # -- allocation ---------------------------------------------------------

    def _alloc_frame(self, page_size: int) -> int:
        """Draw an unused frame number of the given page size."""
        nframes = self.phys_bytes // page_size
        used = self._used_4k_frames if page_size == PAGE_4K else self._used_2m_frames
        if len(used) >= nframes:
            raise OutOfPhysicalMemoryError(
                f"exhausted {nframes} frames of size {page_size}"
            )
        while True:
            frame = int(self._rng.integers(0, nframes))
            if frame not in used:
                used.add(frame)
                return frame

    def map_page(self, vaddr: int, page_size: Optional[int] = None) -> int:
        """Ensure the page containing ``vaddr`` is mapped; return its frame.

        Idempotent: re-mapping an already-mapped page returns the existing
        frame.
        """
        psize = page_size or self.page_size
        vpn = vaddr // psize
        table = self._mappings if psize == PAGE_4K else self._huge_mappings
        frame = table.get(vpn)
        if frame is None:
            frame = self._alloc_frame(psize)
            table[vpn] = frame
        return frame

    def map_buffer(self, size: int, page_size: Optional[int] = None) -> MappedBuffer:
        """Allocate and fully map a virtually contiguous buffer.

        Returns a :class:`MappedBuffer` whose pages are all resident, so
        later translation never faults.  Buffers are page aligned and carved
        from a monotonically increasing virtual cursor (no reuse), matching
        how the paper's microbenchmarks malloc one large array each.
        """
        if size <= 0:
            raise ValueError("buffer size must be positive")
        psize = page_size or self.page_size
        vbase = self._next_vbase
        npages = -(-size // psize)
        self._next_vbase = vbase + npages * max(psize, PAGE_2M)
        for i in range(npages):
            self.map_page(vbase + i * psize, psize)
        return MappedBuffer(vbase=vbase, size=size, page_size=psize)

    # -- translation ----------------------------------------------------------

    def translate(self, vaddr: int, page_size: Optional[int] = None) -> int:
        """Translate one virtual address; raises KeyError if unmapped."""
        psize = page_size or self.page_size
        table = self._mappings if psize == PAGE_4K else self._huge_mappings
        vpn, offset = divmod(vaddr, psize)
        frame = table[vpn]
        return frame * psize + offset

    def translate_buffer(self, buf: MappedBuffer, voffsets: np.ndarray) -> np.ndarray:
        """Vectorized translation of offsets into a mapped buffer.

        Args:
            buf: A buffer previously returned by :meth:`map_buffer`.
            voffsets: Array of byte offsets into the buffer (``< buf.size``).

        Returns:
            Array of physical byte addresses, same shape as ``voffsets``.
        """
        psize = buf.page_size
        table = self._mappings if psize == PAGE_4K else self._huge_mappings
        vaddrs = buf.vbase + voffsets
        vpns = vaddrs // psize
        unique_vpns = np.unique(vpns)
        # Dense lookup: map each unique vpn to its frame, then gather.
        frame_of = {vpn: table[int(vpn)] for vpn in unique_vpns}
        frames = np.array([frame_of[int(v)] for v in vpns.ravel()], dtype=np.int64)
        return (frames * psize + (vaddrs % psize)).reshape(np.shape(voffsets))

    def physical_lines(self, buf: MappedBuffer, line_size: int = 64) -> np.ndarray:
        """Physical line addresses backing every line of a mapped buffer.

        This is the input to the conflict-scatter analysis (paper Fig. 3):
        given the buffer's physical layout, which cache sets do its lines
        land in?
        """
        nlines = -(-buf.size // line_size)
        offsets = np.arange(nlines, dtype=np.int64) * line_size
        return self.translate_buffer(buf, offsets)

    # -- introspection ----------------------------------------------------------

    @property
    def mapped_bytes(self) -> int:
        """Total bytes of mapped physical memory."""
        return (
            len(self._mappings) * PAGE_4K + len(self._huge_mappings) * PAGE_2M
        )
