"""Physical address decomposition and cache geometry math.

An x86 last-level cache is physically indexed: the set an address maps to is
determined by bits of the *physical* address just above the line offset.  All
of the conflict-miss behaviour the dCat paper studies in its Figures 2 and 3
falls out of this decomposition, so it lives in its own small module that the
cache models, the paging model and the analytic conflict math all share.

Addresses are plain integers (byte addresses).  Vectorized variants accept
numpy arrays of addresses and are used by the workload generators, which
produce access streams as arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheGeometry", "is_power_of_two", "KB", "MB"]

KB = 1024
MB = 1024 * KB


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a set-associative cache.

    Parameters mirror how Intel documents its LLCs: total capacity is
    ``line_size * num_sets * num_ways``.  The dCat paper's two machines are
    available as the :func:`xeon_d` and :func:`xeon_e5` constructors.

    Attributes:
        line_size: Cache line size in bytes (64 on all modern x86).
        num_sets: Number of sets.  Need not be a power of two: Broadwell
            LLCs are sliced and hash addresses, so per-slice set counts like
            the Xeon-E5's 36864 arise; we model indexing as ``line_id mod
            num_sets`` which preserves the scatter statistics.
        num_ways: Associativity.  Intel CAT partitions capacity in units of
            ways, so this is also the number of allocatable units.
    """

    line_size: int = 64
    num_sets: int = 1024
    num_ways: int = 16

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.num_sets < 1:
            raise ValueError(f"num_sets must be >= 1, got {self.num_sets}")
        if self.num_ways < 1:
            raise ValueError(f"num_ways must be >= 1, got {self.num_ways}")

    # -- derived sizes ----------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.line_size * self.num_sets * self.num_ways

    @property
    def way_bytes(self) -> int:
        """Capacity of a single way in bytes (the CAT allocation unit)."""
        return self.line_size * self.num_sets

    @property
    def offset_bits(self) -> int:
        """Number of line-offset bits."""
        return int(self.line_size).bit_length() - 1

    def ways_for_bytes(self, size_bytes: int) -> int:
        """Smallest number of ways whose combined capacity holds ``size_bytes``."""
        return max(1, -(-size_bytes // self.way_bytes))

    # -- scalar decomposition ---------------------------------------------

    def line_address(self, paddr: int) -> int:
        """Return the line-aligned address containing ``paddr``."""
        return paddr & ~(self.line_size - 1)

    def set_index(self, paddr: int) -> int:
        """Return the set that physical address ``paddr`` maps to."""
        return (paddr >> self.offset_bits) % self.num_sets

    def tag(self, paddr: int) -> int:
        """Return the tag (the line id above the set index)."""
        return (paddr >> self.offset_bits) // self.num_sets

    def line_id_of(self, set_index: int, tag: int) -> int:
        """Reconstruct a physical line id from its (set, tag) pair."""
        return tag * self.num_sets + set_index

    # -- vectorized decomposition -------------------------------------------

    def set_indices(self, paddrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`set_index` over an array of physical addresses."""
        return (paddrs >> self.offset_bits) % self.num_sets

    def tags(self, paddrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`tag` over an array of physical addresses."""
        return (paddrs >> self.offset_bits) // self.num_sets

    def line_ids(self, paddrs: np.ndarray) -> np.ndarray:
        """Vectorized unique-line identifiers (address without offset bits)."""
        return paddrs >> self.offset_bits

    # -- paper machines -----------------------------------------------------

    @classmethod
    def xeon_d(cls) -> "CacheGeometry":
        """Xeon-D LLC from the paper: 12-way, 12 MB, 64 B lines (16384 sets)."""
        return cls(line_size=64, num_sets=12 * MB // (64 * 12), num_ways=12)

    @classmethod
    def xeon_e5(cls) -> "CacheGeometry":
        """Xeon E5-2697 v4 LLC from the paper: 20-way, 45 MB, 36864 sets,
        2.25 MB per way."""
        return cls(line_size=64, num_sets=45 * MB // (64 * 20), num_ways=20)


def xeon_e5_waysize() -> int:
    """The paper's quoted Xeon-E5 way capacity: 2.25 MB."""
    return 45 * MB // 20
